#!/usr/bin/env python3
"""Thin CLI wrapper: regenerate every table/figure at full scale.

Equivalent to ``python -m repro.experiments.harness``; kept here so the
benchmarks directory is self-contained:

    python benchmarks/harness.py table1
    python benchmarks/harness.py all --instances 10
"""

import sys

from repro.experiments.harness import main

if __name__ == "__main__":
    sys.exit(main())
