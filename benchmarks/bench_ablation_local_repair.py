"""Ablation — maintenance policy: full rebuild vs localized repair.

The paper leaves "dynamic updating of the planar backbone" as future
work; this ablation measures the extension built in
:mod:`repro.mobility.local_repair` against the conservative full
rebuild on the same mobility trace: how much of the network each
update touches (what an incremental protocol would transmit), how
often locality fails and escalates, and how stable roles stay.
"""

import random

import pytest

from repro.core.spanner import build_backbone
from repro.geometry.primitives import Point
from repro.graphs.planarity import is_planar_embedding
from repro.mobility.local_repair import localized_repair
from repro.workloads.generators import connected_udg_instance

STEPS = 6
MOVERS_PER_STEP = 4


@pytest.fixture(scope="module")
def trace():
    """A fixed mobility trace over a large-diameter deployment."""
    rng = random.Random(91)
    dep = connected_udg_instance(120, 400.0, 48.0, rng)
    frames = [list(dep.points)]
    positions = list(dep.points)
    for _ in range(STEPS):
        positions = list(positions)
        for m in rng.sample(range(120), MOVERS_PER_STEP):
            positions[m] = Point(
                min(max(positions[m].x + rng.uniform(-12, 12), 0.0), 400.0),
                min(max(positions[m].y + rng.uniform(-12, 12), 0.0), 400.0),
            )
        frames.append(positions)
    return dep, frames


def test_full_rebuild_policy(benchmark, trace):
    dep, frames = trace

    def run():
        results = []
        for frame in frames:
            results.append(build_backbone(frame, dep.radius))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(is_planar_embedding(r.ldel_icds) for r in results)


def test_localized_repair_policy(benchmark, trace):
    dep, frames = trace

    def run():
        current = build_backbone(frames[0], dep.radius)
        reports = []
        for frame in frames[1:]:
            report = localized_repair(current, frame)
            current = report.result
            reports.append(report)
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("localized repair per step (dirty fraction / escalated / role churn):")
    for i, report in enumerate(reports, 1):
        print(
            f"  step {i}: dirty {report.dirty_fraction:.2f}  "
            f"escalated {report.escalated}  roles changed {len(report.role_changes)}"
        )
        assert is_planar_embedding(report.result.ldel_icds)
    # The locality claim: updates touch a minority of the network.
    touched = [r.dirty_fraction for r in reports if r.changed_nodes]
    if touched:
        assert sum(touched) / len(touched) < 0.7
    # Escalation is the exception, not the rule, at this churn level.
    assert sum(r.escalated for r in reports) <= 1
