"""Ablation — CDS construction algorithms across the paper's citations.

The paper builds its backbone from MIS clustering + Algorithm 1; it
cites Wu & Li's marking process [8] and Max-Min d-clustering [16] as
the alternatives.  This ablation builds all three on the same
instances and compares backbone size, per-node message cost, and
whether the result can feed the LDel planarization (it can whenever
the relay set is a CDS).
"""

import random

import pytest

from repro.graphs.paths import is_connected
from repro.protocols.cds import build_cds_family
from repro.protocols.maxmin_cluster import run_maxmin_clustering
from repro.protocols.wu_li import wu_li_cds
from repro.workloads.generators import connected_udg_instance


@pytest.fixture(scope="module")
def instances():
    rng = random.Random(66)
    return [connected_udg_instance(80, 200.0, 60.0, rng) for _ in range(3)]


def test_mis_connectors_cds(benchmark, instances):
    families = benchmark.pedantic(
        lambda: [build_cds_family(d.udg()) for d in instances],
        rounds=1,
        iterations=1,
    )
    for family in families:
        sub, _ = family.cds.subgraph(family.backbone_nodes)
        assert is_connected(sub)


def test_wu_li_marking_cds(benchmark, instances):
    outcomes = benchmark.pedantic(
        lambda: [wu_li_cds(d.udg()) for d in instances],
        rounds=1,
        iterations=1,
    )
    for outcome, dep in zip(outcomes, instances):
        sub, _ = outcome.cds.subgraph(outcome.gateway_nodes)
        assert is_connected(sub)


def test_maxmin_clustering(benchmark, instances):
    outcomes = benchmark.pedantic(
        lambda: [run_maxmin_clustering(d.udg(), d=2) for d in instances],
        rounds=1,
        iterations=1,
    )
    for outcome in outcomes:
        assert outcome.clusterheads


def test_cds_algorithm_comparison(benchmark, instances):
    triples = benchmark.pedantic(
        lambda: [
            (
                dep.udg(),
                build_cds_family(dep.udg()),
                wu_li_cds(dep.udg()),
                run_maxmin_clustering(dep.udg(), d=2),
            )
            for dep in instances
        ],
        rounds=1,
        iterations=1,
    )
    print()
    print("CDS algorithm ablation (backbone sizes / max msgs per node):")
    print(f"{'MIS+conn':>9}{'Wu-Li':>7}{'MaxMin d=2 heads':>17}{'msg(MIS)':>10}{'msg(MaxMin)':>12}")
    for udg, mis, wu, mm in triples:
        print(
            f"{len(mis.backbone_nodes):>9}{wu.size:>7}"
            f"{len(mm.clusterheads):>17}"
            f"{mis.stats.max_per_node():>10}{mm.stats.max_per_node():>12}"
        )
        # All three dominate the graph (max-min with d=2 dominates at
        # distance 2, the others at distance 1).
        for v in udg.nodes():
            assert v in wu.gateway_nodes or (udg.neighbors(v) & wu.gateway_nodes)
        # Max-min's defining bound: 2d messages per node, exactly.
        assert mm.stats.max_per_node() == 4
