"""Ablation — how close do the localized structures get to the greedy yardstick?

The path-greedy t-spanner achieves the best stretch/sparseness trade
available to a *global* algorithm; the interference metric adds the
third axis.  This ablation lines up every constant-stretch structure
(greedy 1.5/2.0, Yao family, the paper's backbone) on edges, measured
stretch, max degree and interference — the full picture of what the
locality constraint costs.
"""

import random

import pytest

from repro.core.interference import interference
from repro.core.metrics import length_stretch
from repro.core.spanner import build_backbone
from repro.topology.greedy_spanner import greedy_spanner
from repro.topology.yao import yao_graph
from repro.topology.yao_sink import yao_sink_graph
from repro.topology.yao_yao import yao_yao_graph
from repro.workloads.generators import connected_udg_instance


@pytest.fixture(scope="module")
def world():
    dep = connected_udg_instance(80, 200.0, 60.0, random.Random(99))
    udg = dep.udg()
    backbone = build_backbone(udg.positions, udg.radius)
    return udg, backbone


def _structures(udg, backbone):
    return {
        "Greedy(1.5)": (greedy_spanner(udg, 1.5), False),
        "Greedy(2.0)": (greedy_spanner(udg, 2.0), False),
        "Yao8": (yao_graph(udg, 8), False),
        "YaoYao8": (yao_yao_graph(udg, 8), False),
        "YaoSink8": (yao_sink_graph(udg, 8), False),
        "LDel(ICDS')": (backbone.ldel_icds_prime, True),
    }


def test_build_all_quality_structures(benchmark, world):
    udg, backbone = world
    structures = benchmark.pedantic(
        _structures, args=(udg, backbone), rounds=1, iterations=1
    )
    assert len(structures) == 6


def test_quality_table(benchmark, world):
    udg, backbone = world

    def measure():
        rows = []
        for name, (graph, skip) in _structures(udg, backbone).items():
            stretch = length_stretch(graph, udg, skip_udg_adjacent=skip)
            rows.append(
                (
                    name,
                    graph.edge_count,
                    stretch.avg,
                    stretch.max,
                    max(graph.degrees(), default=0),
                    interference(graph).max,
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print("spanner quality ablation (UDG edges: %d):" % udg.edge_count)
    print(f"{'structure':<13}{'edges':>7}{'len avg':>9}{'len max':>9}{'deg max':>9}{'interf':>8}")
    for name, edges, s_avg, s_max, deg, interf in rows:
        print(f"{name:<13}{edges:>7}{s_avg:>9.3f}{s_max:>9.3f}{deg:>9}{interf:>8}")

    by_name = {r[0]: r for r in rows}
    # Greedy achieves its bound by construction.
    assert by_name["Greedy(1.5)"][3] <= 1.5 + 1e-9
    assert by_name["Greedy(2.0)"][3] <= 2.0 + 1e-9
    # The locality cost: the backbone is sparser than greedy(1.5) but
    # looser in stretch; its degree stays bounded like YaoSink's.
    assert by_name["LDel(ICDS')"][4] <= 45  # includes dominatee links
    # Yao family: YY and YaoSink prune Yao's degree.
    assert by_name["YaoYao8"][4] <= by_name["Yao8"][4]
