"""Figure 10 — per-node communication cost vs node density (R = 60).

Paper claims reproduced here: the maximum per-node message count to
build CDS/ICDS is a small constant, far below the theoretical bound,
and the LDel(ICDS) cost is the CDS cost plus a roughly fixed increment
(the local Delaunay messages depend only on the bounded ICDS degree).
Full-scale regeneration: ``python -m repro.experiments.harness fig10``.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    SweepCache,
    fig10_comm_vs_density,
    format_series,
)

SMOKE = ExperimentConfig(instances=2, seed=2002)
NS = (20, 60, 100)
# The second round replays cached deployments and backbones instead of
# rebuilding them per round.
CACHE = SweepCache(max_points=len(NS))


def test_fig10_comm_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: fig10_comm_vs_density(ns=NS, config=SMOKE, cache=CACHE),
        rounds=2,
        iterations=1,
    )
    print()
    print("Figure 10 series (reduced):")
    print(format_series(points, x_label="nodes"))

    for point in points:
        # Constant per-node cost at every density.
        assert point.values["CDS comm max"] <= 50
        assert point.values["LDelICDS comm max"] <= 120
        # Ledger nesting: each stage adds messages.
        assert point.values["CDS comm avg"] < point.values["ICDS comm avg"]
        assert point.values["ICDS comm avg"] < point.values["LDelICDS comm avg"]

    # The LDel increment over CDS is roughly flat across densities.
    increments = [
        p.values["LDelICDS comm max"] - p.values["CDS comm max"] for p in points
    ]
    assert max(increments) - min(increments) <= 25
