"""Deployment-shape sensitivity — the paper's claims beyond uniform fields.

The paper evaluates uniform random deployments; this benchmark
rebuilds the backbone on clustered, gridded and corridor deployments
and asserts the headline properties (bounded backbone degree, constant
stretch, constant per-node messages) are deployment-shape-independent.
Regenerate at full scale: ``python -m repro.experiments.harness sensitivity``.
"""

from repro.experiments.runner import ExperimentConfig, deployment_sensitivity

SMOKE = ExperimentConfig(instances=2, seed=2002)


def test_deployment_sensitivity(benchmark):
    results = benchmark.pedantic(
        lambda: deployment_sensitivity(n=60, config=SMOKE),
        rounds=1,
        iterations=1,
    )
    print()
    print("deployment sensitivity (LDel(ICDS') on 60 nodes):")
    metrics = list(next(iter(results.values())))
    print(f"{'generator':<12}" + "".join(f"{m:>20}" for m in metrics))
    for generator, values in results.items():
        print(
            f"{generator:<12}" + "".join(f"{values[m]:>20.3f}" for m in metrics)
        )
    for generator, values in results.items():
        # The paper's properties, shape-independent:
        assert values["backbone deg max"] <= 12, generator
        assert values["length avg"] <= 2.0, generator
        assert values["hop avg"] <= 2.0, generator
        assert values["comm max"] <= 120, generator
        assert 0.0 < values["backbone fraction"] < 1.0, generator
