"""Shared fixtures for the benchmark suite.

Benchmarks run at the paper's parameter points but with reduced
instance counts so ``pytest benchmarks/ --benchmark-only`` finishes in
minutes; the full-scale series are regenerated with
``python -m repro.experiments.harness all`` (see EXPERIMENTS.md for
recorded full-scale results).
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.workloads.generators import Deployment, connected_udg_instance

#: Instance counts for in-benchmark series regeneration.
SMOKE = ExperimentConfig(instances=2, seed=2002)


@pytest.fixture(scope="session")
def table1_deployment() -> Deployment:
    """One Table I-scale instance: n=100, R=60, 200x200."""
    return connected_udg_instance(100, 200.0, 60.0, random.Random(2002))


@pytest.fixture(scope="session")
def mid_deployment() -> Deployment:
    """A mid-density instance for component benchmarks."""
    return connected_udg_instance(60, 200.0, 60.0, random.Random(7))
