"""Service throughput — cold vs. warm-cache batch latency.

The serving layer's reason to exist: a batch of build requests that
each cost a full pipeline construction when cold should cost only a
content-addressed lookup when warm.  This benchmark drives the
:class:`~repro.service.server.SpannerService` application object
directly (no sockets) over a 100-scenario corpus, twice, and checks

* the warm pass is >= 10x faster than the cold pass, and
* the ``/metrics`` accounting is consistent: exactly one miss per
  distinct scenario on the cold pass, exactly one hit per request on
  the warm pass.

Run like every other benchmark here::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py \
        --benchmark-only --benchmark-json=service_throughput.json
"""

import time

import pytest

from repro.service.server import SpannerService

#: The corpus: 100 distinct small deployments across pipelines and
#: generator shapes — distinct cache keys, service-scale variety.
N_SCENARIOS = 100


def _corpus() -> list[dict]:
    requests = []
    for i in range(N_SCENARIOS):
        pipeline = ("backbone", "gg", "rng", "ldel")[i % 4]
        generator = ("uniform", "clustered", "corridor", "grid")[(i // 4) % 4]
        requests.append(
            {
                "pipeline": pipeline,
                "scenario": {
                    "nodes": 20 + (i % 3) * 5,
                    "side": 150.0,
                    "radius": 60.0,
                    "seed": i,
                    "generator": generator,
                },
            }
        )
    return requests


def _run_batches(service: SpannerService, requests: list[dict]) -> dict:
    cold_start = time.perf_counter()
    cold = service.batch({"requests": requests, "executor": {"mode": "serial"}})
    cold_s = time.perf_counter() - cold_start

    warm_start = time.perf_counter()
    warm = service.batch({"requests": requests, "executor": {"mode": "serial"}})
    warm_s = time.perf_counter() - warm_start
    return {
        "cold": cold, "warm": warm,
        "cold_s": cold_s, "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
    }


def test_cold_vs_warm_cache(benchmark):
    service = SpannerService(executor_mode="serial", cache_size=2 * N_SCENARIOS)
    requests = _corpus()
    run = benchmark.pedantic(
        lambda: _run_batches(service, requests), rounds=1, iterations=1
    )

    cold, warm = run["cold"], run["warm"]
    assert cold["succeeded"] == N_SCENARIOS
    assert warm["succeeded"] == N_SCENARIOS
    assert cold["cache_hits"] == 0
    assert warm["cache_hits"] == N_SCENARIOS

    metrics = service.metrics_snapshot()
    cache = metrics["cache"]
    counters = metrics["counters"]
    # Consistent accounting: one miss per scenario (cold), one hit per
    # request (warm); the service counters agree with the cache's own.
    assert counters["build.cache_misses"] == N_SCENARIOS
    assert counters["build.cache_hits"] == N_SCENARIOS
    assert cache["misses"] == N_SCENARIOS
    assert cache["hits"] == N_SCENARIOS
    assert cache["hit_rate"] == pytest.approx(0.5)

    print()
    print("service throughput (100-scenario corpus, serial executor):")
    print(f"{'pass':>6}{'total_s':>10}{'per_req_ms':>12}{'hit_rate':>10}")
    for name, seconds, hits in (
        ("cold", run["cold_s"], cold["cache_hits"]),
        ("warm", run["warm_s"], warm["cache_hits"]),
    ):
        print(
            f"{name:>6}{seconds:>10.3f}{seconds / N_SCENARIOS * 1000:>12.2f}"
            f"{hits / N_SCENARIOS:>10.2f}"
        )
    print(f"warm-cache speedup: {run['speedup']:.1f}x")
    assert run["speedup"] >= 10.0, (
        f"warm cache only {run['speedup']:.1f}x faster than cold construction"
    )


def test_parallel_cold_batch(benchmark):
    """The process-pool path on the same corpus (fresh cache)."""
    service = SpannerService(executor_mode="process", cache_size=2 * N_SCENARIOS)
    requests = _corpus()
    result = benchmark.pedantic(
        lambda: service.batch({"requests": requests}), rounds=1, iterations=1
    )
    assert result["succeeded"] == N_SCENARIOS
    print()
    print(
        f"parallel cold batch: mode={result['executor']['mode']} "
        f"workers={result['executor']['workers']} "
        f"succeeded={result['succeeded']}/{result['tasks']}"
    )
