#!/usr/bin/env python3
"""Benchmark the construction hot path against the recorded baseline.

Times UDG / Gabriel / LDel^1 / planarization / full-backbone
construction at the regression sizes and writes a machine-readable
report with per-stage speedups versus ``baseline_hotpath.json``:

    PYTHONPATH=src python benchmarks/bench_hotpath.py
    PYTHONPATH=src python benchmarks/bench_hotpath.py --sizes 200 --reps 3
    PYTHONPATH=src python benchmarks/bench_hotpath.py --write-baseline
    PYTHONPATH=src python benchmarks/bench_hotpath.py --sharded

``--write-baseline`` (alias ``--record-baseline``) re-pins the
baseline file from the current run, stamped with the current commit
and schema (do this only on a commit whose timings you want future
runs compared against); otherwise the report lands in
``BENCH_hotpath.json``.  A missing or stale-schema baseline is a hard
error (exit 2) unless you are recording one.

``--sharded`` adds the tiled-vs-serial PLDel comparison from
:mod:`repro.sharding` (sizes via ``--sharded-sizes``, tile count via
``--shards``), recording the speedup and the bit-identical-edges
tripwire.

``--soa-sizes`` adds the construction-core stage: the array-native
(SoA) pipeline against the pure-Python reference path (numpy masked
out at runtime), with a bit-identical tripwire on every stage's edge
set and both triangle lists.  ``--soa-scale N`` appends one large-n
SoA construction with no reference pass — the "n = 10^5 on one box"
probe.

The backbone-fast stage runs by default (``--backbone-sizes`` to
change the sizes, ``--skip-backbone`` to drop it): it times the
message-passing protocol path against the direct-computation fast
path and the sharded build, with a bit-identical tripwire on the
dominator/connector/edge sets.  Any tripwire failure exits 1.

The incremental stage also runs by default (``--incremental-sizes`` /
``--skip-incremental``): it times per-step incremental maintenance
against the from-scratch rebuild under single-node waypoint moves,
with the rebuild-equivalence tripwire after the trace, and runs the
long-trace acceptance check (``--incremental-trace-size`` /
``--incremental-trace-steps``, bit-identity after every batch).

The metrics stage also runs by default (``--metrics-sizes`` /
``--skip-metrics``): it summarizes the full Table I topology family
through the reference stretch implementation and through the
:class:`~repro.core.oracle.DistanceOracle`, cold and warm, with a
parity tripwire on every row/kind and an exactness tripwire on the
pure-Python fallback.

``--routing-sizes`` adds the batch-vs-scalar routing stage: the
:class:`~repro.core.route_engine.RouteEngine` kernels (greedy /
compass / GPSR over the UDG) and the backbone routing procedure
(GPSR and oracle-backed shortest cores) against the scalar
``routing/`` loops on the same pairs (``--routing-pairs``), with a
blocking hop-for-hop path-identity tripwire
(``--routing-identity-pairs``) and a shortest-mode length-parity
tripwire.  Timings are informational; tripwire failures exit 1.

``--step-summary`` appends a markdown table to the file
``$GITHUB_STEP_SUMMARY`` points at (no-op when the variable is unset).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.experiments.hotpath_bench import (
    BACKBONE_FAST_SIZES,
    DEFAULT_RADIUS,
    DEFAULT_SEED,
    DEFAULT_SHARDS,
    DEFAULT_SIZES,
    INCREMENTAL_SIZES,
    INCREMENTAL_STEPS,
    INCREMENTAL_TRACE_SIZE,
    INCREMENTAL_TRACE_STEPS,
    METRICS_REPS,
    METRICS_SIZES,
    ROUTING_IDENTITY_PAIRS,
    ROUTING_PAIRS,
    ROUTING_SCALAR_PAIRS,
    SHARDED_SIZES,
    SOA_SIZES,
    BaselineError,
    baseline_from_report,
    compare_metrics_to_baseline,
    compare_routing_to_baseline,
    default_baseline_path,
    format_markdown,
    format_report,
    load_baseline_strict,
    remediation_command,
    run_backbone_fast_benchmark,
    run_benchmark,
    run_incremental_benchmark,
    run_metrics_benchmark,
    run_routing_benchmark,
    run_sharded_benchmark,
    run_soa_benchmark,
)


def _current_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def _write_step_summary(markdown: str) -> None:
    """Append to the GitHub Actions job summary when available."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as fh:
        fh.write(markdown + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="deployment sizes to benchmark",
    )
    parser.add_argument("--radius", type=float, default=DEFAULT_RADIUS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--reps", type=int, default=1,
        help="timing repetitions per stage (minimum kept)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=default_baseline_path(),
        help="baseline file to compare against",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_hotpath.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--write-baseline", "--record-baseline", action="store_true",
        dest="write_baseline",
        help="overwrite the baseline file with this run's timings, "
        "stamped with the current commit and schema",
    )
    parser.add_argument(
        "--sharded", action="store_true",
        help="also run the sharded-vs-serial PLDel comparison",
    )
    parser.add_argument(
        "--shards", type=int, default=DEFAULT_SHARDS,
        help="tile count for the sharded comparison",
    )
    parser.add_argument(
        "--sharded-sizes", type=int, nargs="+", default=list(SHARDED_SIZES),
        help="deployment sizes for the sharded comparison",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the sharded build (0 = auto)",
    )
    parser.add_argument(
        "--soa-sizes", type=int, nargs="*", default=None,
        help="run the SoA-vs-reference construction-core stage at these "
        f"sizes (no argument = {list(SOA_SIZES)}; omit the flag to skip)",
    )
    parser.add_argument(
        "--soa-scale", type=int, default=0,
        help="also run one large-n SoA construction (no reference pass); "
        "0 skips the scale probe",
    )
    parser.add_argument(
        "--backbone-sizes", type=int, nargs="+",
        default=list(BACKBONE_FAST_SIZES),
        help="deployment sizes for the fast-vs-protocol backbone stage",
    )
    parser.add_argument(
        "--skip-backbone", action="store_true",
        help="skip the fast-vs-protocol backbone stage",
    )
    parser.add_argument(
        "--metrics-sizes", type=int, nargs="+", default=list(METRICS_SIZES),
        help="deployment sizes for the oracle-vs-reference metrics stage",
    )
    parser.add_argument(
        "--skip-metrics", action="store_true",
        help="skip the oracle-vs-reference metrics stage",
    )
    parser.add_argument(
        "--metrics-reps", type=int, default=METRICS_REPS,
        help="summarize passes per deployment in the metrics stage "
        "(the sweep-round protocol; min 2)",
    )
    parser.add_argument(
        "--incremental-sizes", type=int, nargs="+",
        default=list(INCREMENTAL_SIZES),
        help="deployment sizes for the incremental-vs-rebuild stage",
    )
    parser.add_argument(
        "--incremental-steps", type=int, default=INCREMENTAL_STEPS,
        help="timed single-move maintenance steps per size",
    )
    parser.add_argument(
        "--skip-incremental", action="store_true",
        help="skip the incremental-vs-rebuild maintenance stage",
    )
    parser.add_argument(
        "--incremental-trace-size", type=int, default=INCREMENTAL_TRACE_SIZE,
        help="deployment size for the long-trace acceptance run",
    )
    parser.add_argument(
        "--incremental-trace-steps", type=int,
        default=INCREMENTAL_TRACE_STEPS,
        help="move batches in the long-trace acceptance run (0 skips it)",
    )
    parser.add_argument(
        "--incremental-verify-every", type=int, default=1,
        help="assert rebuild equivalence every k trace batches",
    )
    parser.add_argument(
        "--routing-sizes", type=int, nargs="+", default=None,
        help="run the batch-vs-scalar routing stage at these deployment "
        "sizes (omit the flag to skip the stage)",
    )
    parser.add_argument(
        "--routing-pairs", type=int, default=ROUTING_PAIRS,
        help="(s, t) pairs routed per size in the routing stage",
    )
    parser.add_argument(
        "--routing-scalar-pairs", type=int, default=ROUTING_SCALAR_PAIRS,
        help="scalar-loop subset the per-pair scalar cost is measured on",
    )
    parser.add_argument(
        "--routing-identity-pairs", type=int, default=ROUTING_IDENTITY_PAIRS,
        help="pairs in the hop-for-hop path-identity tripwire subset",
    )
    parser.add_argument(
        "--step-summary", action="store_true",
        help="append a markdown summary to $GITHUB_STEP_SUMMARY",
    )
    args = parser.parse_args(argv)

    baseline = None
    if not args.write_baseline:
        try:
            baseline = load_baseline_strict(args.baseline)
        except BaselineError as exc:
            fix = remediation_command(args.baseline)
            print(f"error: {exc}", file=sys.stderr)
            print(
                f"to (re)pin the baseline on a known-good commit, run:\n  {fix}",
                file=sys.stderr,
            )
            if args.step_summary:
                _write_step_summary(
                    "## Hot-path benchmark: baseline unusable\n\n"
                    f"{exc}\n\n"
                    "Re-pin it on a known-good commit:\n\n"
                    f"```\n{fix}\n```"
                )
            return 2

    report = run_benchmark(
        args.sizes,
        radius=args.radius,
        seed=args.seed,
        reps=args.reps,
        baseline=baseline,
        baseline_path=str(args.baseline),
    )
    if args.sharded:
        report["sharded"] = run_sharded_benchmark(
            args.sharded_sizes,
            radius=args.radius,
            seed=args.seed,
            shards=args.shards,
            max_workers=args.workers or None,
            reps=args.reps,
        )
    if args.soa_sizes is not None or args.soa_scale:
        if args.soa_sizes:  # explicit sizes
            soa_sizes = args.soa_sizes
        elif args.soa_sizes is not None:  # bare --soa-sizes
            soa_sizes = list(SOA_SIZES)
        else:  # --soa-scale alone: scale probe only
            soa_sizes = []
        report["soa"] = run_soa_benchmark(
            soa_sizes,
            radius=args.radius,
            seed=args.seed,
            reps=max(2, args.reps),
            scale=args.soa_scale or None,
        )
    if not args.skip_backbone:
        report["backbone_fast"] = run_backbone_fast_benchmark(
            args.backbone_sizes,
            radius=args.radius,
            seed=args.seed,
            shards=args.shards,
            max_workers=args.workers or None,
            reps=args.reps,
        )
    if not args.skip_metrics:
        report["metrics"] = run_metrics_benchmark(
            args.metrics_sizes,
            radius=args.radius,
            seed=args.seed,
            reps=args.metrics_reps,
        )
        if baseline is not None:
            report["metrics"]["vs_baseline"] = compare_metrics_to_baseline(
                report["metrics"], baseline
            )
    if args.routing_sizes:
        report["routing"] = run_routing_benchmark(
            args.routing_sizes,
            radius=args.radius,
            seed=args.seed,
            pairs=args.routing_pairs,
            scalar_pairs=args.routing_scalar_pairs,
            identity_pairs=args.routing_identity_pairs,
        )
        if baseline is not None:
            report["routing"]["vs_baseline"] = compare_routing_to_baseline(
                report["routing"], baseline
            )
    if not args.skip_incremental:
        report["incremental"] = run_incremental_benchmark(
            args.incremental_sizes,
            radius=args.radius,
            seed=args.seed,
            steps=args.incremental_steps,
            reps=args.reps,
            trace_size=args.incremental_trace_size,
            trace_steps=args.incremental_trace_steps,
            trace_verify_every=args.incremental_verify_every,
        )

    if args.write_baseline:
        pinned = baseline_from_report(report, commit=_current_commit())
        args.baseline.write_text(json.dumps(pinned, indent=2, sort_keys=True) + "\n")
        print(f"baseline re-pinned: {args.baseline}")

    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(format_report(report))
    print(f"\nreport written: {args.output}")
    if args.step_summary:
        _write_step_summary(format_markdown(report))

    failures = []
    failures += [
        f"edge-count mismatch vs baseline at n={key}"
        for key, entry in report.get("speedup", {}).items()
        if not entry["edges_match"]
    ]
    failures += [
        f"sharded edges differ from serial at n={key}"
        for key, entry in report.get("sharded", {}).get("results", {}).items()
        if not entry["edges_match"]
    ]
    failures += [
        f"SoA construction differs from the pure-Python reference at n={key}"
        for key, entry in report.get("soa", {}).get("results", {}).items()
        if not entry["identical"]
    ]
    for key, entry in report.get("backbone_fast", {}).get("results", {}).items():
        if not entry["identical"]:
            failures.append(f"fast backbone differs from protocol at n={key}")
        if not entry["sharded_identical"]:
            failures.append(f"sharded backbone differs from protocol at n={key}")
    metrics = report.get("metrics", {})
    for key, entry in metrics.get("results", {}).items():
        parity = entry["parity"]
        if not parity["ok"]:
            failures.append(
                f"oracle stretch disagrees with reference at n={key} "
                f"(avg rel err {parity['avg_rel_err']:.3e}, "
                f"max rel err {parity['max_rel_err']:.3e}, "
                f"pair counts exact: {parity['pair_counts_exact']})"
            )
    fallback = metrics.get("fallback")
    if fallback and not fallback["exact"]:
        failures.append(
            f"pure-Python oracle fallback differs from reference at "
            f"n={fallback['n']}"
        )
    routing = report.get("routing", {})
    for key, entry in routing.get("results", {}).items():
        ident = entry["identity"]
        if not ident["ok"]:
            failures.append(
                f"batch routes diverge from scalar at n={key} "
                f"({ident['mismatches']} of {ident['pairs']} pairs)"
            )
        sp = entry["shortest_parity"]
        if not sp["ok"]:
            failures.append(
                f"oracle-backed shortest routing disagrees with Dijkstra "
                f"reference at n={key} (max rel err {sp['max_rel_err']:.3e})"
            )
    incremental = report.get("incremental", {})
    for key, entry in incremental.get("results", {}).items():
        if not entry["identical"]:
            failures.append(
                f"incremental maintenance diverged from rebuild at n={key} "
                f"(mismatches: {entry['mismatches']})"
            )
    trace = incremental.get("trace")
    if trace and not trace["all_verified"]:
        failures.append(
            f"incremental trace lost rebuild equivalence "
            f"({trace['verification_failures']} of {trace['verified_steps']} "
            "checks failed)"
        )
    if failures:
        for failure in failures:
            print(f"FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
