#!/usr/bin/env python3
"""Benchmark the construction hot path against the recorded baseline.

Times UDG / Gabriel / LDel^1 / planarization / full-backbone
construction at the regression sizes and writes a machine-readable
report with per-stage speedups versus ``baseline_hotpath.json``:

    PYTHONPATH=src python benchmarks/bench_hotpath.py
    PYTHONPATH=src python benchmarks/bench_hotpath.py --sizes 200 --reps 3
    PYTHONPATH=src python benchmarks/bench_hotpath.py --record-baseline

``--record-baseline`` re-pins the baseline file from the current run
(do this only on a commit whose timings you want future runs compared
against); otherwise the report lands in ``BENCH_hotpath.json``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.experiments.hotpath_bench import (
    DEFAULT_RADIUS,
    DEFAULT_SEED,
    DEFAULT_SIZES,
    baseline_from_report,
    default_baseline_path,
    format_report,
    load_baseline,
    run_benchmark,
)


def _current_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="deployment sizes to benchmark",
    )
    parser.add_argument("--radius", type=float, default=DEFAULT_RADIUS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--reps", type=int, default=1,
        help="timing repetitions per stage (minimum kept)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=default_baseline_path(),
        help="baseline file to compare against",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_hotpath.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--record-baseline", action="store_true",
        help="overwrite the baseline file with this run's timings",
    )
    args = parser.parse_args(argv)

    baseline = load_baseline(args.baseline)
    if baseline is None and not args.record_baseline:
        print(f"note: no baseline at {args.baseline}; reporting raw timings")

    report = run_benchmark(
        args.sizes,
        radius=args.radius,
        seed=args.seed,
        reps=args.reps,
        baseline=baseline,
        baseline_path=str(args.baseline),
    )

    if args.record_baseline:
        pinned = baseline_from_report(report, commit=_current_commit())
        args.baseline.write_text(json.dumps(pinned, indent=2, sort_keys=True) + "\n")
        print(f"baseline re-pinned: {args.baseline}")

    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(format_report(report))
    print(f"\nreport written: {args.output}")

    mismatches = [
        key for key, entry in report.get("speedup", {}).items()
        if not entry["edges_match"]
    ]
    if mismatches:
        print(f"EDGE-COUNT MISMATCH vs baseline at n in {mismatches}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
