"""Serving-tier load harness: blocking vs async under concurrency.

Boots both server transports as subprocesses (``python -m repro serve``
and ``... serve --async``), drives each with the same closed-loop
mixed workload — warm-heavy ``/build`` over a hot scenario set, plus
``/route_batch``, ``/route``, and ``/pipelines`` — from ``--concurrency``
persistent keep-alive connections, and writes ``BENCH_serving.json``
with throughput and p50/p95/p99 latency per transport plus the
async-over-blocking speedup.

The workload is deliberately cache-friendly (an 80% hot set over a
handful of scenarios, primed during warmup): this is the serving
tier's design point, where the async front end answers from its
response byte-cache on one event loop while the blocking server pays
a thread per connection and a full dispatch per request.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_load.py \
        --concurrency 32 --ops 25 --out BENCH_serving.json

``--min-speedup`` / ``--max-p99-ms`` turn the report into a gate
(non-zero exit on miss) — how the nightly CI job consumes it.
``--step-summary`` appends a markdown table to the file
``$GITHUB_STEP_SUMMARY`` points at (no-op when the variable is unset).
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: The hot set: scenarios the warmup primes and 80% of ops target.
HOT_SCENARIOS = [
    {"nodes": 40 + 4 * i, "side": 160.0, "radius": 55.0, "seed": 100 + i}
    for i in range(6)
]
#: The long tail: distinct-but-small scenarios for the cold 20%.
COLD_SCENARIOS = [
    {"nodes": 24, "side": 120.0, "radius": 50.0, "seed": 500 + i}
    for i in range(24)
]
PIPELINES = ("backbone", "gg", "ldel")


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def percentile(sorted_values: list, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


class ServerProcess:
    """A ``python -m repro serve`` subprocess with readiness + teardown."""

    def __init__(self, extra_args: list, port: int) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        self.port = port
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--host", "127.0.0.1", "--port", str(port), *extra_args],
            env=env, cwd=REPO,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )

    def wait_ready(self, timeout: float = 60.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"server exited early with {self.process.returncode}"
                )
            try:
                conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=5)
                conn.request("GET", "/healthz")
                if conn.getresponse().status == 200:
                    conn.close()
                    return
            except OSError:
                pass
            time.sleep(0.2)
        raise RuntimeError(f"server on :{self.port} never became healthy")

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGINT)
            try:
                self.process.wait(timeout=20)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)


def plan_ops(thread_id: int, count: int) -> list:
    """The per-client op sequence: seeded, hot-set skewed."""
    rng = random.Random(9000 + thread_id)
    ops = []
    for _ in range(count):
        scenario = (
            rng.choice(HOT_SCENARIOS) if rng.random() < 0.8
            else rng.choice(COLD_SCENARIOS)
        )
        pipeline = rng.choice(PIPELINES)
        roll = rng.random()
        if roll < 0.5:
            ops.append(("POST", "/build",
                        {"pipeline": pipeline, "scenario": scenario}))
        elif roll < 0.8:
            ops.append(("POST", "/route_batch",
                        {"pipeline": "backbone", "scenario": scenario,
                         "count": 20, "seed": thread_id, "mode": "gpsr"}))
        elif roll < 0.9:
            ops.append(("POST", "/route",
                        {"pipeline": "backbone", "scenario": scenario,
                         "source": 0, "target": scenario["nodes"] - 1}))
        else:
            ops.append(("GET", "/pipelines", None))
    return ops


def warmup(port: int) -> None:
    """Prime every hot (pipeline, scenario) pair once, serially."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    for scenario in HOT_SCENARIOS:
        for pipeline in PIPELINES:
            body = json.dumps(
                {"pipeline": pipeline, "scenario": scenario}
            ).encode()
            conn.request("POST", "/build", body=body)
            conn.getresponse().read()
        body = json.dumps(
            {"pipeline": "backbone", "scenario": scenario,
             "count": 20, "seed": 0, "mode": "gpsr"}
        ).encode()
        conn.request("POST", "/route_batch", body=body)
        conn.getresponse().read()
    conn.close()


def run_load(port: int, concurrency: int, ops_per_client: int) -> dict:
    """Closed loop: ``concurrency`` keep-alive clients, each running
    its seeded op sequence back-to-back; per-request latency recorded."""
    latencies: list = []
    errors = [0]
    retried = [0]
    lock = threading.Lock()

    def client_loop(thread_id: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        local: list = []
        for method, path, payload in plan_ops(thread_id, ops_per_client):
            body = json.dumps(payload).encode() if payload is not None else None
            started = time.perf_counter()
            reconnects = 0
            while True:
                try:
                    conn.request(method, path, body=body)
                    response = conn.getresponse()
                    response.read()
                    status = response.status
                except OSError:
                    # Stale keep-alive (server closed an idle socket):
                    # reconnect and retry the request once.
                    conn.close()
                    conn = http.client.HTTPConnection(
                        "127.0.0.1", port, timeout=120
                    )
                    reconnects += 1
                    if reconnects <= 1:
                        continue
                    with lock:
                        errors[0] += 1
                    break
                if status == 429:  # admission control: honor and retry
                    with lock:
                        retried[0] += 1
                    time.sleep(0.05)
                    continue
                if status >= 400:
                    with lock:
                        errors[0] += 1
                break
            local.append((time.perf_counter() - started) * 1000.0)
        conn.close()
        with lock:
            latencies.extend(local)

    threads = [
        threading.Thread(target=client_loop, args=(i,))
        for i in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    latencies.sort()
    total = len(latencies)
    return {
        "requests": total,
        "errors": errors[0],
        "throttled_retries": retried[0],
        "elapsed_s": round(elapsed, 3),
        "throughput_rps": round(total / elapsed, 1) if elapsed else 0.0,
        "p50_ms": round(percentile(latencies, 0.50), 3),
        "p95_ms": round(percentile(latencies, 0.95), 3),
        "p99_ms": round(percentile(latencies, 0.99), 3),
        "max_ms": round(latencies[-1], 3) if latencies else 0.0,
    }


def bench_transport(name: str, extra_args: list, concurrency: int,
                    ops_per_client: int) -> dict:
    port = free_port()
    server = ServerProcess(extra_args, port)
    try:
        server.wait_ready()
        warmup(port)
        result = run_load(port, concurrency, ops_per_client)
    finally:
        server.stop()
    result["transport"] = name
    print(
        f"{name:>9}: {result['throughput_rps']:>8.1f} req/s   "
        f"p50 {result['p50_ms']:.1f}ms  p95 {result['p95_ms']:.1f}ms  "
        f"p99 {result['p99_ms']:.1f}ms  "
        f"({result['requests']} reqs, {result['errors']} errors, "
        f"{result['throttled_retries']} 429-retries)"
    )
    return result


def write_step_summary(report: dict) -> None:
    """Append a markdown table to the GitHub Actions job summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    config = report["config"]
    lines = [
        "## Serving load "
        f"(concurrency {config['concurrency']}, "
        f"{config['ops_per_client']} ops/client, "
        f"{config['pool_workers']} pool workers)",
        "",
        "| transport | req/s | p50 ms | p95 ms | p99 ms | errors |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for name, result in report["results"].items():
        lines.append(
            f"| {name} | {result['throughput_rps']} | {result['p50_ms']} "
            f"| {result['p95_ms']} | {result['p99_ms']} "
            f"| {result['errors']} |"
        )
    if report["speedup"] is not None:
        lines += ["", f"**async speedup: {report['speedup']}x**"]
    with open(path, "a") as handle:
        handle.write("\n".join(lines) + "\n")


def main(argv: "list | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--ops", type=int, default=25,
                        help="requests per client (closed loop)")
    parser.add_argument("--pool-workers", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--out", default="BENCH_serving.json")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless async/blocking throughput >= this")
    parser.add_argument("--max-p99-ms", type=float, default=None,
                        help="fail unless the async p99 is under this")
    parser.add_argument("--skip-blocking", action="store_true",
                        help="bench only the async tier (no speedup)")
    parser.add_argument("--step-summary", action="store_true",
                        help="append a markdown summary to $GITHUB_STEP_SUMMARY")
    args = parser.parse_args(argv)

    print(
        f"serving load: concurrency={args.concurrency} "
        f"ops/client={args.ops} pool={args.pool_workers}"
    )
    results = {}
    if not args.skip_blocking:
        results["blocking"] = bench_transport(
            "blocking", [], args.concurrency, args.ops
        )
    results["async"] = bench_transport(
        "async",
        ["--async", "--pool-workers", str(args.pool_workers),
         "--queue-depth", str(args.queue_depth)],
        args.concurrency, args.ops,
    )

    speedup = None
    if "blocking" in results and results["blocking"]["throughput_rps"]:
        speedup = round(
            results["async"]["throughput_rps"]
            / results["blocking"]["throughput_rps"], 2,
        )
        print(f"async speedup: {speedup}x")

    report = {
        "config": {
            "concurrency": args.concurrency,
            "ops_per_client": args.ops,
            "pool_workers": args.pool_workers,
            "queue_depth": args.queue_depth,
            "hot_scenarios": len(HOT_SCENARIOS),
            "cpu_count": os.cpu_count(),
        },
        "results": results,
        "speedup": speedup,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.step_summary:
        write_step_summary(report)

    failures = []
    if args.min_speedup is not None and (
        speedup is None or speedup < args.min_speedup
    ):
        failures.append(f"speedup {speedup} < required {args.min_speedup}")
    if args.max_p99_ms is not None and (
        results["async"]["p99_ms"] > args.max_p99_ms
    ):
        failures.append(
            f"async p99 {results['async']['p99_ms']}ms "
            f"> budget {args.max_p99_ms}ms"
        )
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
