"""Table I — topology quality measurements.

Benchmarks the full construction of every Table I topology on one
paper-scale instance (n=100, R=60), and regenerates the table rows at
reduced instance count.  Full-scale regeneration:
``python -m repro.experiments.harness table1``.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    SweepCache,
    TABLE1_ORDER,
    build_all_topologies,
    format_rows,
    table1,
)

SMOKE = ExperimentConfig(instances=2, seed=2002)
# Table I is a single sweep point; later rounds replay the cached
# deployments, backbones, and the oracle's all-pairs matrices.
CACHE = SweepCache(max_points=1)


def test_build_all_topologies_table1_scale(benchmark, table1_deployment):
    """Time: all ten Table I topologies on one n=100 instance."""
    udg = table1_deployment.udg()
    graphs, _ = benchmark.pedantic(
        build_all_topologies, args=(udg,), rounds=3, iterations=1
    )
    assert set(graphs) == set(TABLE1_ORDER)


def test_regenerate_table1_rows(benchmark):
    """Regenerate Table I (reduced instances) and print the rows."""
    rows = benchmark.pedantic(
        lambda: table1(n=100, radius=60.0, config=SMOKE, cache=CACHE),
        rounds=2,
        iterations=1,
    )
    print()
    print("Table I (n=100, R=60, 200x200, reduced instances):")
    print(format_rows(rows))
    by_name = {r.name: r for r in rows}
    # The paper's qualitative claims must hold at any instance count:
    # RNG is the worst hop spanner; the backbone graphs beat it.
    assert by_name["RNG"].hop_avg > by_name["LDel(ICDS')"].hop_avg
    # LDel(ICDS) has the smallest max degree among backbone graphs.
    assert by_name["LDel(ICDS)"].deg_max <= by_name["ICDS"].deg_max
    # Everything is far sparser than the UDG.
    assert by_name["LDel(ICDS')"].edges < 0.5 * by_name["UDG"].edges
