"""Ablation — the beta-skeleton sparseness/stretch dial.

Bose et al. (the paper's [13]) proved Gabriel graphs (beta=1) have
length stretch Theta(sqrt(n)) and RNG (beta=2) Theta(n).  Sweeping
beta between the two shows the dial continuously trading edges for
stretch — context for why the paper needed a structurally different
construction (no beta gives a constant-stretch skeleton).
"""

import random

import pytest

from repro.core.metrics import length_stretch
from repro.topology.beta_skeleton import beta_skeleton
from repro.workloads.generators import connected_udg_instance

BETAS = (1.0, 1.25, 1.5, 1.75, 2.0)


@pytest.fixture(scope="module")
def udgs():
    rng = random.Random(88)
    return [connected_udg_instance(80, 200.0, 60.0, rng).udg() for _ in range(3)]


def test_beta_sweep(benchmark, udgs):
    results = benchmark.pedantic(
        lambda: [
            [beta_skeleton(udg, beta) for beta in BETAS] for udg in udgs
        ],
        rounds=1,
        iterations=1,
    )
    assert results


def test_beta_dial(benchmark, udgs):
    def sweep():
        rows = []
        for beta in BETAS:
            edges = 0.0
            s_avg = 0.0
            s_max = 0.0
            for udg in udgs:
                skeleton = beta_skeleton(udg, beta)
                stats = length_stretch(skeleton, udg)
                edges += skeleton.edge_count / len(udgs)
                s_avg += stats.avg / len(udgs)
                s_max = max(s_max, stats.max)
            rows.append((beta, edges, s_avg, s_max))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("beta-skeleton dial (mean over instances):")
    print(f"{'beta':>6}{'edges':>8}{'len stretch avg':>17}{'len stretch max':>17}")
    prev_edges = None
    for beta, edges, s_avg, s_max in rows:
        print(f"{beta:>6.2f}{edges:>8.1f}{s_avg:>17.3f}{s_max:>17.3f}")
        # Monotone: larger beta, fewer edges.
        if prev_edges is not None:
            assert edges <= prev_edges + 1e-9
        prev_edges = edges
