"""Ablation — power efficiency across topologies (the paper's d^alpha model).

Sparseness is ultimately about energy: a node's radio power is set by
its longest kept link.  This ablation computes assigned-power totals
for every topology under alpha in {2, 4} and checks the ordering the
paper's power-attenuation model predicts: the planar sparse structures
allow much lower power than the raw UDG, and the backbone's power
stretch stays a small constant.
"""

import random

import pytest

from repro.core.metrics import power_stretch
from repro.core.power import power_profile, power_saving_ratio
from repro.experiments.runner import build_all_topologies
from repro.workloads.generators import connected_udg_instance


@pytest.fixture(scope="module")
def world():
    rng = random.Random(77)
    dep = connected_udg_instance(80, 200.0, 60.0, rng)
    udg = dep.udg()
    graphs, backbone = build_all_topologies(udg)
    return udg, graphs, backbone


def test_power_profiles(benchmark, world):
    udg, graphs, _ = world
    profiles = benchmark.pedantic(
        lambda: {
            name: power_profile(g, alpha=2.0) for name, g in graphs.items()
        },
        rounds=3,
        iterations=1,
    )
    assert profiles


def test_power_ordering(benchmark, world):
    udg, graphs, _ = world
    profiles = benchmark.pedantic(
        lambda: {name: power_profile(g, alpha=2.0) for name, g in graphs.items()},
        rounds=1,
        iterations=1,
    )
    print()
    print("assigned-power ablation (alpha=2, ratio vs UDG):")
    udg_power = power_profile(udg, alpha=2.0).total_assigned_power
    for name, profile in profiles.items():
        ratio = udg_power / max(profile.total_assigned_power, 1e-9)
        print(f"  {name:<12} power {profile.total_assigned_power:>12.0f}  saving {ratio:>6.2f}x")
    # Every constructed topology lets radios run at lower power than
    # keeping all UDG links.
    for name in ("RNG", "GG", "LDel", "LDel(ICDS')"):
        assert power_saving_ratio(graphs[name], udg, alpha=2.0) > 1.0


@pytest.mark.parametrize("alpha", [2.0, 4.0])
def test_power_stretch_bounded(benchmark, world, alpha):
    udg, graphs, _ = world
    stats = benchmark.pedantic(
        lambda: power_stretch(
            graphs["LDel(ICDS')"], udg, alpha=alpha, skip_udg_adjacent=True
        ),
        rounds=1,
        iterations=1,
    )
    print(f"\nLDel(ICDS') power stretch (alpha={alpha}): "
          f"avg {stats.avg:.3f} max {stats.max:.3f}")
    # The backbone is a length spanner, not a power-optimized one: its
    # power stretch grows with alpha (the dense UDG can relay through
    # many short links whose d^alpha cost is tiny).  Assert the
    # alpha-dependent bands we observe, i.e. bounded but not 1.
    bounds = {2.0: (2.0, 8.0), 4.0: (5.0, 25.0)}
    avg_bound, max_bound = bounds[alpha]
    assert stats.avg < avg_bound
    assert stats.max < max_bound
