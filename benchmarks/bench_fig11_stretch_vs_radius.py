"""Figure 11 — spanning ratios vs transmission radius (N = 500).

Paper claim reproduced here: the stretch factors stay in the same
constant band across the whole radius sweep — the spanner property is
insensitive to the transmission range.  Full-scale regeneration:
``python -m repro.experiments.harness fig11``.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    SweepCache,
    fig11_stretch_vs_radius,
    format_series,
)

# N=500 with APSP is the most expensive sweep; one instance per radius
# point keeps the benchmark run under control.
SMOKE = ExperimentConfig(instances=1, seed=2002)
RADII = (25, 40, 60)
# One cache slot per radius point: the oracle's memoized all-pairs
# matrices make the second round a replay instead of a full re-APSP.
CACHE = SweepCache(max_points=len(RADII))


def test_fig11_stretch_vs_radius(benchmark):
    points = benchmark.pedantic(
        lambda: fig11_stretch_vs_radius(
            radii=RADII, n=500, config=SMOKE, cache=CACHE
        ),
        rounds=2,
        iterations=1,
    )
    print()
    print("Figure 11 series (N=500, reduced):")
    print(format_series(points, x_label="radius"))

    for point in points:
        for name in ("CDS'", "ICDS'", "LDel(ICDS')"):
            assert 1.0 <= point.values[f"{name} length avg"] <= 2.0
            assert 1.0 <= point.values[f"{name} hop avg"] <= 2.0
            assert point.values[f"{name} length max"] <= 7.0
            assert point.values[f"{name} hop max"] <= 5.0
