"""Ablation — clusterhead selection: lowest-ID vs highest-degree.

The paper reviews both criteria (Baker/Ephremides lowest-ID vs
Gerla/Tsai highest-degree).  Highest-degree heads cover more nodes
each, so the dominating set shrinks — at the price of less stable
heads under churn.  This ablation compares dominator counts, backbone
sizes, and message costs under the two priorities.
"""

import random

import pytest

from repro.protocols.cds import build_cds_family
from repro.protocols.clustering import highest_degree_priority
from repro.workloads.generators import connected_udg_instance


@pytest.fixture(scope="module")
def instances():
    rng = random.Random(44)
    return [connected_udg_instance(80, 200.0, 60.0, rng) for _ in range(3)]


def test_lowest_id_clustering(benchmark, instances):
    families = benchmark.pedantic(
        lambda: [build_cds_family(d.udg()) for d in instances],
        rounds=1,
        iterations=1,
    )
    assert all(f.dominators for f in families)


def test_highest_degree_clustering(benchmark, instances):
    families = benchmark.pedantic(
        lambda: [
            build_cds_family(d.udg(), priority=highest_degree_priority)
            for d in instances
        ],
        rounds=1,
        iterations=1,
    )
    assert all(f.dominators for f in families)


def test_clusterhead_comparison(benchmark, instances):
    triples = benchmark.pedantic(
        lambda: [
            (
                dep.udg(),
                build_cds_family(dep.udg()),
                build_cds_family(dep.udg(), priority=highest_degree_priority),
            )
            for dep in instances
        ],
        rounds=1,
        iterations=1,
    )
    print()
    print("clusterhead ablation (lowest-ID vs highest-degree):")
    print(f"{'dom(id)':>8}{'dom(deg)':>9}{'bb(id)':>8}{'bb(deg)':>9}{'msg(id)':>9}{'msg(deg)':>10}")
    for udg, by_id, by_deg in triples:
        print(
            f"{len(by_id.dominators):>8}{len(by_deg.dominators):>9}"
            f"{len(by_id.backbone_nodes):>8}{len(by_deg.backbone_nodes):>9}"
            f"{by_id.stats.max_per_node():>9}{by_deg.stats.max_per_node():>10}"
        )
        # Both produce valid dominating sets with bounded messages.
        for family in (by_id, by_deg):
            for u in udg.nodes():
                assert u in family.dominators or (
                    udg.neighbors(u) & family.dominators
                )
            assert family.stats.max_per_node() <= 60
