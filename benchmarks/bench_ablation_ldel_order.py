"""Ablation — LDel order: LDel^1 + planarization vs LDel^2.

Li et al.: LDel^2 is planar as built but needs 2-hop neighborhood
collection; LDel^1 is cheap but has thickness 2 and needs the
planarization pass (the paper's choice).  This ablation confirms
LDel^2 ⊆ planarized LDel^1 in practice, that both are planar, and
compares edge counts and construction times.
"""

import random

import pytest

from repro.graphs.planarity import is_planar_embedding
from repro.topology.ldel import local_delaunay_graph, planar_local_delaunay_graph
from repro.workloads.generators import connected_udg_instance


@pytest.fixture(scope="module")
def udgs():
    rng = random.Random(17)
    return [
        connected_udg_instance(60, 200.0, 60.0, rng).udg() for _ in range(3)
    ]


def test_ldel1_planarized(benchmark, udgs):
    results = benchmark.pedantic(
        lambda: [planar_local_delaunay_graph(u) for u in udgs],
        rounds=1,
        iterations=1,
    )
    for r in results:
        assert is_planar_embedding(r.graph)


def test_ldel2_direct(benchmark, udgs):
    results = benchmark.pedantic(
        lambda: [local_delaunay_graph(u, k=2) for u in udgs],
        rounds=1,
        iterations=1,
    )
    for r in results:
        assert is_planar_embedding(r.graph)


def test_protocol_cost_comparison(benchmark, udgs):
    """The communication trade the paper based its choice on."""
    from repro.protocols.ldel2_protocol import run_ldel2_protocol
    from repro.protocols.ldel_protocol import run_ldel_protocol

    pairs = benchmark.pedantic(
        lambda: [
            (run_ldel_protocol(udg), run_ldel2_protocol(udg)) for udg in udgs
        ],
        rounds=1,
        iterations=1,
    )
    print()
    print("LDel protocol cost (max msgs/node, rounds):")
    print(f"{'LDel1+prune msg':>16}{'LDel2 msg':>10}{'LDel1 rounds':>13}{'LDel2 rounds':>13}")
    for one, two in pairs:
        print(
            f"{one.stats.max_per_node():>16}{two.stats.max_per_node():>10}"
            f"{one.rounds:>13}{two.rounds:>13}"
        )
        # LDel2 uses fewer rounds and fewer (but much larger)
        # messages; both stay bounded per node.
        assert two.rounds < one.rounds
        assert one.stats.max_per_node() <= 60
        assert two.stats.max_per_node() <= 60
        # Identical Gabriel floor, planar results on both paths.
        assert one.gabriel_edges == two.gabriel_edges


def test_order_comparison(benchmark, udgs):
    pairs = benchmark.pedantic(
        lambda: [
            (planar_local_delaunay_graph(udg), local_delaunay_graph(udg, k=2))
            for udg in udgs
        ],
        rounds=1,
        iterations=1,
    )
    print()
    print("LDel order ablation:")
    print(f"{'PLDel edges':>12}{'LDel2 edges':>12}{'PLDel tris':>11}{'LDel2 tris':>11}")
    for udg, (pldel, ldel2) in zip(udgs, pairs):
        print(
            f"{pldel.graph.edge_count:>12}{ldel2.graph.edge_count:>12}"
            f"{len(pldel.triangles):>11}{len(ldel2.triangles):>11}"
        )
        # More witnesses can only remove triangles.
        assert set(ldel2.triangles) <= set(pldel.triangles) | set(
            local_delaunay_graph(udg, k=1).triangles
        )
        # LDel^2 never keeps more edges than planarized LDel^1 keeps
        # plus the Gabriel floor both share.
        assert ldel2.graph.edge_count <= pldel.graph.edge_count + 5
