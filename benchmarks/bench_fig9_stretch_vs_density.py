"""Figure 9 — spanning ratios vs node density (R = 60, 200x200 square).

Paper claim reproduced here: average length and hop stretch of CDS',
ICDS' and LDel(ICDS') sit in a narrow constant band (~1.1-1.5)
independent of density.  Full-scale regeneration:
``python -m repro.experiments.harness fig9``.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    SweepCache,
    fig9_stretch_vs_density,
    format_series,
)

SMOKE = ExperimentConfig(instances=2, seed=2002)
NS = (20, 60, 100)
# One cache slot per sweep point: the second benchmark round replays
# the deployments, backbones, and all-pairs matrices instead of
# rebuilding them (pre-cache, every round re-paid the full APSP cost).
CACHE = SweepCache(max_points=len(NS))


def test_fig9_stretch_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: fig9_stretch_vs_density(ns=NS, config=SMOKE, cache=CACHE),
        rounds=2,
        iterations=1,
    )
    print()
    print("Figure 9 series (reduced):")
    print(format_series(points, x_label="nodes"))

    for point in points:
        for name in ("CDS'", "ICDS'", "LDel(ICDS')"):
            # Constant-band claim: averages stay small at every density.
            assert 1.0 <= point.values[f"{name} length avg"] <= 2.0
            assert 1.0 <= point.values[f"{name} hop avg"] <= 2.0
            # Maxima are bounded constants, not growing with n.
            assert point.values[f"{name} length max"] <= 6.0
            assert point.values[f"{name} hop max"] <= 5.0
