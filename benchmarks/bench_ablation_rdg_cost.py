"""Ablation — construction cost: the paper's pipeline vs Gao et al.'s RDG.

The paper's critique of the Restricted Delaunay Graph is not the
resulting graph (it is a fine planar spanner) but the construction
cost: the RDG protocol charges each node one message per incident UDG
link (O(n^2) total worst case), while the CDS+LDel pipeline keeps
every node at a constant.  This benchmark measures both on the same
instances and shows the gap widening with density — the paper's
central "communication efficiency" argument, quantified.
"""

import random

import pytest

from repro.core.spanner import build_backbone
from repro.topology.rdg import rdg_message_cost
from repro.workloads.generators import connected_udg_instance


@pytest.fixture(scope="module")
def density_instances():
    rng = random.Random(55)
    return {
        n: connected_udg_instance(n, 200.0, 60.0, rng) for n in (40, 80, 120)
    }


def test_pipeline_cost(benchmark, density_instances):
    results = benchmark.pedantic(
        lambda: {
            n: build_backbone(d.points, d.radius)
            for n, d in density_instances.items()
        },
        rounds=1,
        iterations=1,
    )
    assert results


def test_cost_comparison(benchmark, density_instances):
    results = benchmark.pedantic(
        lambda: {
            n: build_backbone(dep.points, dep.radius)
            for n, dep in sorted(density_instances.items())
        },
        rounds=1,
        iterations=1,
    )
    print()
    print("construction-cost ablation (max messages per node):")
    print(f"{'n':>5}{'pipeline':>10}{'RDG':>8}{'ratio':>8}")
    prev_ratio = 0.0
    for n, result in sorted(results.items()):
        ours = result.stats_ldel.max_per_node()
        rdg = max(rdg_message_cost(result.udg))
        print(f"{n:>5}{ours:>10}{rdg:>8}{rdg / ours:>8.2f}")
        # Ours is constant; RDG tracks the max degree, which grows
        # with density, so the ratio widens.
        assert ours <= 120
        ratio = rdg / ours
        assert ratio >= prev_ratio * 0.8  # allow sampling noise
        prev_ratio = ratio
