"""Ablation — backbone robustness under node failures.

The paper keeps redundant connectors "to increase the robustness of
the backbone"; this ablation quantifies it: single-failure fragility
(articulation-point fraction) of CDS vs ICDS vs LDel(ICDS), and
routing availability after failing increasing fractions of backbone
nodes.
"""

import random

import pytest

from repro.core.spanner import build_backbone
from repro.graphs.connectivity import robustness, survives_failures
from repro.routing.gpsr import gpsr_route
from repro.workloads.generators import connected_udg_instance


@pytest.fixture(scope="module")
def world():
    dep = connected_udg_instance(100, 200.0, 55.0, random.Random(77))
    return dep, build_backbone(dep.points, dep.radius)


def test_single_failure_fragility(benchmark, world):
    _dep, result = world
    members = result.backbone_nodes

    def measure():
        return {
            "CDS": robustness(result.cds, nodes=members),
            "ICDS": robustness(result.icds, nodes=members),
            "LDel(ICDS)": robustness(result.ldel_icds, nodes=members),
        }

    reports = benchmark.pedantic(measure, rounds=3, iterations=1)
    print()
    print("single-failure fragility (fraction of backbone nodes that are cut vertices):")
    for name, report in reports.items():
        print(
            f"  {name:<11} cut fraction {report.cut_fraction:.2f}  "
            f"bridges {len(report.bridges)}"
        )
    # ICDS (all UDG links among members) is never more fragile than
    # the elected-edges-only CDS.
    assert reports["ICDS"].cut_fraction <= reports["CDS"].cut_fraction + 1e-9


def test_availability_under_failures(benchmark, world):
    _dep, result = world
    members = sorted(result.backbone_nodes)
    rng = random.Random(5)
    probe_pairs = [
        (members[i], members[-1 - i]) for i in range(0, len(members) // 2, 4)
    ]

    def sweep():
        rows = []
        for fraction in (0.0, 0.1, 0.2, 0.3):
            k = int(fraction * len(members))
            failed = set(rng.sample(members, k)) if k else set()
            survivor = survives_failures(result.ldel_icds, failed)
            alive_pairs = [
                (s, t)
                for s, t in probe_pairs
                if s not in failed and t not in failed
            ]
            delivered = sum(
                gpsr_route(survivor, s, t).delivered for s, t in alive_pairs
            )
            rows.append((fraction, delivered, len(alive_pairs)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("routing availability on LDel(ICDS) under random backbone failures:")
    for fraction, delivered, total in rows:
        pct = delivered / total if total else 1.0
        print(f"  fail {fraction:.0%}: {delivered}/{total} probes delivered ({pct:.0%})")
    # No failures -> full availability.
    assert rows[0][1] == rows[0][2]
