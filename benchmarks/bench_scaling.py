"""Scaling behaviour: construction cost as the network grows.

The paper's complexity claims — O(n) total messages, O(d log d)
per-node computation — imply near-linear wall-clock growth for the
whole pipeline on uniform-density deployments.  This benchmark times
the pipeline at increasing n (density held fixed by growing the region
with sqrt(n)) and checks the message ledger's linearity directly.
"""

import math
import random

import pytest

from repro.core.spanner import build_backbone
from repro.workloads.generators import connected_udg_instance

SIZES = (50, 100, 200, 400)
BASE_SIDE = 200.0
BASE_N = 100
RADIUS = 55.0


def _instance(n):
    side = BASE_SIDE * math.sqrt(n / BASE_N)  # constant density
    return connected_udg_instance(n, side, RADIUS, random.Random(n))


@pytest.mark.parametrize("n", SIZES)
def test_pipeline_scaling(benchmark, n):
    deployment = _instance(n)
    result = benchmark.pedantic(
        build_backbone,
        args=(list(deployment.points), deployment.radius),
        rounds=2,
        iterations=1,
    )
    # The linearity claim, checked on the ledger: total messages grow
    # linearly in n (constant per node).
    assert result.stats_ldel.total <= 60 * n
    assert result.stats_ldel.max_per_node() <= 120


def test_message_linearity_summary(benchmark):
    def sweep():
        rows = []
        for n in SIZES:
            deployment = _instance(n)
            result = build_backbone(list(deployment.points), deployment.radius)
            rows.append((n, result.stats_ldel.total))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("message totals vs n (constant density):")
    for n, total in rows:
        print(f"  n={n:>4}: {total:>6} messages ({total / n:.1f}/node)")
    per_node = [total / n for n, total in rows]
    # Per-node cost stays in a narrow band as n grows 8x.
    assert max(per_node) <= 2.5 * min(per_node)
