"""Benchmarks for the application-layer protocols.

Times the stateless routing protocol, convergecast, and neighbor
discovery on a shared deployment, and prints the headline cost
comparison: one convergecast wave vs per-reading unicast vs flooding.
"""

import random

import pytest

from repro.core.spanner import build_backbone
from repro.protocols.convergecast import run_convergecast
from repro.protocols.neighbor_discovery import detect_changes
from repro.protocols.routing_protocol import run_routing_protocol
from repro.routing.broadcast import flood
from repro.workloads.generators import connected_udg_instance


@pytest.fixture(scope="module")
def world():
    dep = connected_udg_instance(80, 200.0, 55.0, random.Random(50))
    result = build_backbone(dep.points, dep.radius)
    return dep, result


def test_routing_protocol_throughput(benchmark, world):
    dep, result = world
    n = result.udg.node_count
    packets = [(i, (i + n // 2) % n) for i in range(0, n, 2)]
    outcomes, _stats = benchmark.pedantic(
        lambda: run_routing_protocol(result, packets), rounds=3, iterations=1
    )
    assert all(o.delivered for o in outcomes if o.source != o.target)


def test_convergecast_wave(benchmark, world):
    dep, result = world
    out = benchmark.pedantic(
        lambda: run_convergecast(result.cds_prime, result.udg, sink=0),
        rounds=3,
        iterations=1,
    )
    assert out.contributors == result.udg.node_count


def test_neighbor_discovery(benchmark, world):
    dep, result = world
    udg = result.udg
    tables = {u: frozenset(udg.neighbors(u)) for u in udg.nodes()}
    out = benchmark.pedantic(
        lambda: detect_changes(list(dep.points), dep.radius, tables),
        rounds=3,
        iterations=1,
    )
    assert not out.any_change


def test_collection_cost_comparison(benchmark, world):
    """All-sensors-report-once: convergecast vs unicast vs flooding."""
    dep, result = world
    udg = result.udg
    n = udg.node_count

    def measure():
        wave = run_convergecast(result.cds_prime, udg, sink=0)
        packets = [(u, 0) for u in range(1, n)]
        _outcomes, unicast_stats = run_routing_protocol(result, packets)
        flood_cost = (n - 1) * flood(udg, 1).transmissions
        return wave.stats.total, unicast_stats.per_kind["Data"], flood_cost

    cc, unicast, flooding = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print("cost to collect one reading from every sensor (transmissions):")
    print(f"  convergecast  {cc:>8}")
    print(f"  unicast       {unicast:>8}")
    print(f"  flooding      {flooding:>8}")
    assert cc < unicast < flooding
