"""Ablation — connector election rule: smallest-ID vs first-response.

Section III-A.2 remark: waiting to collect neighbor IDs before
electing is what the smallest-ID rule costs; "instead ... we can pick
any node that comes first to the notice."  This ablation quantifies
the trade: first-response elects every candidate (no wait, more
redundancy), so the backbone gets bigger while connectivity and the
message count per node stay bounded.
"""

import random

import pytest

from repro.graphs.paths import is_connected
from repro.protocols.cds import build_cds_family
from repro.workloads.generators import connected_udg_instance


@pytest.fixture(scope="module")
def instances():
    rng = random.Random(2002)
    return [connected_udg_instance(80, 200.0, 60.0, rng) for _ in range(3)]


def _build_all(instances, election):
    return [
        build_cds_family(dep.udg(), election=election) for dep in instances
    ]


def test_smallest_id_rule(benchmark, instances):
    families = benchmark.pedantic(
        _build_all, args=(instances, "smallest-id"), rounds=1, iterations=1
    )
    for family in families:
        assert _backbone_connected(family)


def test_first_response_rule(benchmark, instances):
    families = benchmark.pedantic(
        _build_all, args=(instances, "first-response"), rounds=1, iterations=1
    )
    for family in families:
        assert _backbone_connected(family)


def test_rule_comparison(benchmark, instances):
    small, eager = benchmark.pedantic(
        lambda: (
            _build_all(instances, "smallest-id"),
            _build_all(instances, "first-response"),
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for s, e in zip(small, eager):
        rows.append(
            (
                len(s.connectors),
                len(e.connectors),
                s.stats.max_per_node(),
                e.stats.max_per_node(),
            )
        )
    print()
    print("connector-rule ablation (per instance):")
    print(f"{'conn(id)':>9}{'conn(first)':>12}{'msg(id)':>9}{'msg(first)':>11}")
    for r in rows:
        print(f"{r[0]:>9}{r[1]:>12}{r[2]:>9}{r[3]:>11}")
    # first-response never elects fewer connectors, and both rules keep
    # the per-node message count bounded.
    for s, e in zip(small, eager):
        assert s.connectors <= e.connectors
        assert e.stats.max_per_node() <= 60


def _backbone_connected(family):
    sub, _ = family.cds.subgraph(family.backbone_nodes)
    return is_connected(sub)
