"""Figure 8 — node degree vs node density (R = 60, 200x200 square).

Paper claim reproduced here: the max degree of the *backbone* graphs
(CDS, ICDS, LDel(ICDS)) stays flat as the node count grows, while the
primed graphs (which include dominatee links) track the UDG density.
Full-scale regeneration: ``python -m repro.experiments.harness fig8``.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    SweepCache,
    fig8_degree_vs_density,
    format_series,
)

SMOKE = ExperimentConfig(instances=2, seed=2002)
NS = (20, 60, 100)
# The second round replays cached deployments and backbones instead of
# rebuilding them per round.
CACHE = SweepCache(max_points=len(NS))


def test_fig8_degree_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: fig8_degree_vs_density(ns=NS, config=SMOKE, cache=CACHE),
        rounds=2,
        iterations=1,
    )
    print()
    print("Figure 8 series (reduced):")
    print(format_series(points, x_label="nodes"))

    sparse, dense = points[0].values, points[-1].values
    # Backbone max degree bounded by a density-independent constant
    # (the paper's Lemmas 4 and 8; empirically ~10-16 at these scales).
    for point in points:
        assert point.values["CDS deg max"] <= 20
        assert point.values["LDel(ICDS) deg max"] <= 12
    # Primed graphs' max degree grows with density (dominatee links).
    assert dense["CDS' deg max"] > sparse["CDS' deg max"]
    # LDel(ICDS) is the lowest-degree backbone at high density.
    assert dense["LDel(ICDS) deg max"] <= dense["ICDS deg max"]
