"""Ablation — routing substrate: flat planar graphs vs the backbone.

GPSR runs on any planar graph; the paper's pitch is that running it on
LDel(ICDS') beats the flat alternatives (GG) on *state*: every
ordinary node keeps only its dominator links, while the backbone does
the forwarding.  This ablation measures delivery rate, mean hop count
and mean path length for GPSR over GG vs dominating-set routing over
the backbone.

Both sides route through the batch engine
(:class:`~repro.core.route_engine.RouteEngine` /
:class:`~repro.core.route_engine.BackboneRouter`); a scalar spot-check
re-routes a subset through the pure-Python ``routing/`` loops and
asserts hop-for-hop identity, so the ablation numbers provably
describe the same paths the scalar reference would walk.
"""

import random

import pytest

from repro.core.route_engine import BackboneRouter, RouteEngine
from repro.core.spanner import build_backbone
from repro.routing.backbone_routing import backbone_route
from repro.routing.gpsr import gpsr_route
from repro.topology.gabriel import gabriel_graph
from repro.workloads.generators import connected_udg_instance

#: Pairs re-routed through the scalar loops for the identity spot-check.
SPOT_CHECK_PAIRS = 12


@pytest.fixture(scope="module")
def world():
    rng = random.Random(33)
    dep = connected_udg_instance(80, 200.0, 55.0, rng, generator="clustered")
    result = build_backbone(dep.points, dep.radius)
    gg = gabriel_graph(result.udg)
    pairs = [(s, t) for s in range(0, 80, 7) for t in range(3, 80, 11) if s != t]
    return result, gg, pairs


def _route_gg(world):
    result, gg, pairs = world
    batch = RouteEngine(gg).route_pairs(pairs, method="gpsr")
    return [batch.result(i) for i in range(batch.pairs)]


def _route_backbone(world):
    result, _gg, pairs = world
    batch = BackboneRouter(result).route_pairs(pairs, mode="gpsr")
    return [batch.result(i) for i in range(batch.pairs)]


def test_engine_matches_scalar_spot_check(world):
    """Batch ablation routes are the scalar routes, hop for hop."""
    result, gg, pairs = world
    sample = pairs[:SPOT_CHECK_PAIRS]
    gg_batch = RouteEngine(gg).route_pairs(sample, method="gpsr")
    bb_batch = BackboneRouter(result).route_pairs(sample, mode="gpsr")
    for i, (s, t) in enumerate(sample):
        scalar_gg = gpsr_route(gg, s, t)
        assert gg_batch.path(i) == scalar_gg.path
        assert gg_batch.reason(i) == scalar_gg.reason
        scalar_bb = backbone_route(result, s, t, mode="gpsr")
        assert bb_batch.path(i) == scalar_bb.path
        assert bb_batch.reason(i) == scalar_bb.reason


def test_gpsr_on_gabriel(benchmark, world):
    routes = benchmark.pedantic(_route_gg, args=(world,), rounds=3, iterations=1)
    assert all(r.delivered for r in routes)


def test_dominating_set_routing_on_backbone(benchmark, world):
    routes = benchmark.pedantic(
        _route_backbone, args=(world,), rounds=3, iterations=1
    )
    assert all(r.delivered for r in routes)


def test_routing_comparison(benchmark, world):
    result, gg, pairs = world
    gg_routes, bb_routes = benchmark.pedantic(
        lambda: (_route_gg(world), _route_backbone(world)),
        rounds=1,
        iterations=1,
    )
    gg_hops = sum(r.hops for r in gg_routes) / len(gg_routes)
    bb_hops = sum(r.hops for r in bb_routes) / len(bb_routes)
    gg_len = sum(r.length(gg) for r in gg_routes) / len(gg_routes)
    bb_len = sum(r.length(result.udg) for r in bb_routes) / len(bb_routes)
    print()
    print("routing ablation (GPSR/GG vs dominating-set/backbone):")
    print(f"  mean hops:   GG {gg_hops:.2f}  backbone {bb_hops:.2f}")
    print(f"  mean length: GG {gg_len:.1f}  backbone {bb_len:.1f}")
    print(
        f"  state: GG keeps {gg.edge_count} links across all nodes; "
        f"backbone routing keeps {result.ldel_icds.edge_count} backbone links "
        f"+ one dominator link per ordinary node"
    )
    # The backbone pays a bounded detour for its much smaller state.
    assert bb_hops <= 3.0 * gg_hops + 2.0
