"""Figure 12 — communication cost and node degree vs radius (N = 500).

Paper claims reproduced here: per-node communication cost and backbone
degree remain bounded by constants across the radius sweep — larger
radius means denser UDG, but the backbone absorbs it.  Full-scale
regeneration: ``python -m repro.experiments.harness fig12``.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    SweepCache,
    fig12_comm_vs_radius,
    format_series,
)

SMOKE = ExperimentConfig(instances=1, seed=2002)
RADII = (25, 40, 60)
# fig12 walks every radius point twice (comm pass + degree pass); the
# shared cache makes the second pass and the second round replays.
CACHE = SweepCache(max_points=len(RADII))


def test_fig12_comm_and_degree_vs_radius(benchmark):
    points = benchmark.pedantic(
        lambda: fig12_comm_vs_radius(
            radii=RADII, n=500, config=SMOKE, cache=CACHE
        ),
        rounds=2,
        iterations=1,
    )
    print()
    print("Figure 12 series (N=500, reduced):")
    print(format_series(points, x_label="radius"))

    for point in points:
        assert point.values["CDS comm max"] <= 60
        assert point.values["LDelICDS comm max"] <= 150
        assert point.values["CDS deg max"] <= 30
        assert point.values["LDel(ICDS) deg max"] <= 16
