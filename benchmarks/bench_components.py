"""Micro-benchmarks of the substrates the pipeline is built from.

Times each stage in isolation on a shared mid-size instance so
regressions in any layer (triangulation, UDG construction, protocol
simulation, APSP metrics, planarity check) show up individually.
"""

import random


from repro.core.metrics import hop_stretch, length_stretch
from repro.core.spanner import build_backbone
from repro.geometry.primitives import Point
from repro.geometry.triangulation import delaunay
from repro.graphs.planarity import is_planar_embedding
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.clustering import run_clustering
from repro.protocols.ldel_protocol import run_ldel_protocol
from repro.topology.gabriel import gabriel_graph
from repro.topology.ldel import planar_local_delaunay_graph
from repro.topology.rng import relative_neighborhood_graph
from repro.topology.yao_sink import yao_sink_graph


def test_delaunay_triangulation_200pts(benchmark):
    rng = random.Random(1)
    pts = [Point(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(200)]
    tri = benchmark(delaunay, pts)
    assert tri.triangles


def test_udg_construction(benchmark, mid_deployment):
    udg = benchmark(
        lambda: UnitDiskGraph(list(mid_deployment.points), mid_deployment.radius)
    )
    assert udg.edge_count > 0


def test_rng_construction(benchmark, mid_deployment):
    udg = mid_deployment.udg()
    graph = benchmark(relative_neighborhood_graph, udg)
    assert graph.edge_count > 0


def test_gabriel_construction(benchmark, mid_deployment):
    udg = mid_deployment.udg()
    graph = benchmark(gabriel_graph, udg)
    assert graph.edge_count > 0


def test_yao_sink_construction(benchmark, mid_deployment):
    udg = mid_deployment.udg()
    graph = benchmark(yao_sink_graph, udg)
    assert graph.edge_count > 0


def test_pldel_centralized(benchmark, mid_deployment):
    udg = mid_deployment.udg()
    result = benchmark.pedantic(
        planar_local_delaunay_graph, args=(udg,), rounds=3, iterations=1
    )
    assert result.triangles


def test_clustering_protocol(benchmark, mid_deployment):
    udg = mid_deployment.udg()
    outcome = benchmark.pedantic(
        run_clustering, args=(udg,), rounds=3, iterations=1
    )
    assert outcome.dominators


def test_ldel_protocol(benchmark, mid_deployment):
    udg = mid_deployment.udg()
    outcome = benchmark.pedantic(
        run_ldel_protocol, args=(udg,), rounds=3, iterations=1
    )
    assert outcome.graph.edge_count > 0


def test_full_pipeline(benchmark, mid_deployment):
    result = benchmark.pedantic(
        build_backbone,
        args=(list(mid_deployment.points), mid_deployment.radius),
        rounds=3,
        iterations=1,
    )
    assert result.ldel_icds.edge_count > 0


def test_stretch_metrics(benchmark, mid_deployment):
    udg = mid_deployment.udg()
    gg = gabriel_graph(udg)

    def measure():
        return length_stretch(gg, udg), hop_stretch(gg, udg)

    length, hops = benchmark(measure)
    assert length.pairs == hops.pairs > 0


def test_planarity_check(benchmark, mid_deployment):
    udg = mid_deployment.udg()
    gg = gabriel_graph(udg)
    assert benchmark(is_planar_embedding, gg)
