"""Shim for legacy editable installs (pip install -e . --no-use-pep517).

All metadata lives in pyproject.toml; this file exists because the
offline environment's setuptools predates PEP 660 editable wheels.
"""
from setuptools import setup

setup()
