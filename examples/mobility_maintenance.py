#!/usr/bin/env python3
"""Maintaining the backbone while nodes move.

The paper: "our algorithms do not need to update the network topology
when nodes are moving as long as no link used in the final network
topology is broken."  This example drives a random-waypoint mobility
session, applies exactly that policy via the BackboneMaintainer, and
reports how often a rebuild was actually needed, how much of the
backbone survived each rebuild, and how routing availability held up.

Run:
    python examples/mobility_maintenance.py [--steps 30] [--speed 2.0]
"""

import argparse
import random

from repro import build_backbone, connected_udg_instance
from repro.mobility.maintenance import BackboneMaintainer
from repro.mobility.waypoint import RandomWaypointModel
from repro.routing.backbone_routing import backbone_route


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=70)
    parser.add_argument("--radius", type=float, default=60.0)
    parser.add_argument("--side", type=float, default=200.0)
    parser.add_argument("--steps", type=int, default=30)
    parser.add_argument("--dt", type=float, default=1.0)
    parser.add_argument("--speed", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=21)
    args = parser.parse_args()

    rng = random.Random(args.seed)
    deployment = connected_udg_instance(args.nodes, args.side, args.radius, rng)
    result = build_backbone(deployment.points, deployment.radius)
    maintainer = BackboneMaintainer(result)
    model = RandomWaypointModel(
        list(deployment.points),
        args.side,
        rng,
        speed_range=(0.5 * args.speed, 1.5 * args.speed),
    )

    print(
        f"{args.nodes} nodes, radius {args.radius:g}, speeds around "
        f"{args.speed:g} units/step; running {args.steps} steps"
    )
    print(f"{'step':>5}{'broken':>8}{'rebuilt':>9}{'retention':>11}{'role churn':>12}{'routable':>10}")

    rebuilds = 0
    retention_sum = 0.0
    for step in range(1, args.steps + 1):
        positions = model.step(args.dt)
        report = maintainer.update(positions)
        if report.rebuilt:
            rebuilds += 1
            retention_sum += report.edge_retention
        # Spot-check routing availability on the current structure.
        current = maintainer.result
        probe_pairs = [(0, args.nodes - 1), (1, args.nodes // 2)]
        routable = sum(
            backbone_route(current, s, t).delivered
            for s, t in probe_pairs
            if s != t
        )
        print(
            f"{step:>5}{len(report.broken_links):>8}"
            f"{'yes' if report.rebuilt else 'no':>9}"
            f"{report.edge_retention:>11.2f}"
            f"{len(report.role_changes):>12}"
            f"{routable:>8}/{len(probe_pairs)}"
        )

    print()
    print(
        f"rebuilds: {rebuilds}/{args.steps} steps "
        f"({rebuilds / args.steps:.0%} of updates needed any work)"
    )
    if rebuilds:
        print(
            f"average backbone-edge retention across rebuilds: "
            f"{retention_sum / rebuilds:.0%} — most of the structure "
            "survives each repair, which is what makes localized "
            "maintenance viable (the paper's future-work direction)"
        )


if __name__ == "__main__":
    main()
