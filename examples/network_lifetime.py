#!/usr/bin/env python3
"""Capstone: a day in the life of an ad hoc network.

Everything the library implements, in one session: build the planar
spanner backbone with the distributed protocols (energy metered),
serve unicast traffic with the stateless routing protocol (packets as
radio frames), disseminate an alert with dominating-set broadcast,
then let nodes drift under random-waypoint mobility with the paper's
break-triggered maintenance policy — and account for every joule.

Run:
    python examples/network_lifetime.py [--nodes 80] [--seed 42]
"""

import argparse
import random

from repro import build_backbone, connected_udg_instance
from repro.mobility.session import run_mobility_session
from repro.protocols.routing_protocol import run_routing_protocol
from repro.routing.broadcast import backbone_broadcast, flood
from repro.sim.energy import protocol_energy
from repro.sim.stats import MessageStats


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=80)
    parser.add_argument("--radius", type=float, default=55.0)
    parser.add_argument("--side", type=float, default=200.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--flows", type=int, default=40)
    parser.add_argument("--mobility-steps", type=int, default=10)
    args = parser.parse_args()

    rng = random.Random(args.seed)
    deployment = connected_udg_instance(args.nodes, args.side, args.radius, rng)
    udg = deployment.udg()

    # --- phase 1: construction --------------------------------------
    print("phase 1 — construction")
    result = build_backbone(deployment.points, deployment.radius)
    build_energy = protocol_energy(result.stats_ldel, udg, alpha=2.0)
    print(
        f"  backbone: {len(result.backbone_nodes)}/{args.nodes} nodes, "
        f"{result.ldel_icds.edge_count} planar links"
    )
    print(
        f"  cost: {result.stats_ldel.total} broadcasts "
        f"(max {result.stats_ldel.max_per_node()}/node), "
        f"energy {build_energy.total:,.0f} units"
    )

    # --- phase 2: unicast traffic -------------------------------------
    print("\nphase 2 — unicast traffic (stateless GPSR over the backbone)")
    packets = [
        (rng.randrange(args.nodes), rng.randrange(args.nodes))
        for _ in range(args.flows)
    ]
    packets = [(s, t) for s, t in packets if s != t]
    outcomes, route_stats = run_routing_protocol(result, packets)
    delivered = sum(o.delivered for o in outcomes)
    total_hops = sum(o.hops for o in outcomes)
    route_energy = protocol_energy(route_stats, udg, alpha=2.0)
    print(
        f"  {delivered}/{len(packets)} packets delivered, "
        f"{total_hops} total hops, energy {route_energy.total:,.0f} units"
    )

    # --- phase 3: an alert broadcast -----------------------------------
    print("\nphase 3 — network-wide alert")
    origin = min(result.dominators)
    smart = backbone_broadcast(udg, origin, result.backbone_nodes)
    blind = flood(udg, origin)
    print(
        f"  backbone relay: {smart.transmissions} transmissions "
        f"(flooding would take {blind.transmissions}; "
        f"{blind.transmissions / smart.transmissions:.1f}x saving), "
        f"coverage {smart.coverage}/{args.nodes}"
    )

    # --- phase 4: mobility ----------------------------------------------
    print("\nphase 4 — mobility with break-triggered maintenance")
    session = run_mobility_session(
        deployment, steps=args.mobility_steps, speed=2.0, seed=args.seed
    )
    print(
        f"  {args.mobility_steps} steps: {session.rebuild_count} rebuilds "
        f"({session.rebuild_rate:.0%} of updates), mean edge retention "
        f"{session.mean_retention_on_rebuild:.0%}, routing availability "
        f"{session.availability:.0%}"
    )

    # --- ledger -----------------------------------------------------------
    print("\nenergy ledger (alpha=2, rx = 10% of tx)")
    rebuild_energy = session.rebuild_count * build_energy.total
    rows = [
        ("construction", build_energy.total),
        (f"{len(packets)} unicast flows", route_energy.total),
        ("1 alert broadcast", smart.transmissions * udg.radius**2 * 1.1),
        (f"~{session.rebuild_count} rebuilds", rebuild_energy),
    ]
    for label, value in rows:
        print(f"  {label:<22}{value:>14,.0f}")
    total = sum(v for _l, v in rows)
    print(f"  {'TOTAL':<22}{total:>14,.0f}")
    print(
        "\nunicast over the backbone is cheap (a few hops per flow) — but "
        "under mobility the FULL rebuilds dominate the ledger, which is "
        "precisely the paper's closing future-work problem: update the "
        "planar backbone *locally* when nodes move.  (The ~80% edge "
        "retention per rebuild shows how much a localized repair could save.)"
    )


if __name__ == "__main__":
    main()
