#!/usr/bin/env python3
"""Battery death: the backbone under progressive node failures.

Backbone nodes forward everyone's traffic, so they drain first — the
classic hierarchical-topology objection.  This example kills nodes in
descending forwarding-load order (worst case), measures routing
availability on the surviving structure after each death, and shows
when rebuilding the backbone over the survivors restores service —
with the robustness analysis (cut vertices) predicting which deaths
hurt before they happen.

Run:
    python examples/node_failures.py [--nodes 80] [--deaths 12]
"""

import argparse
import random
from collections import Counter

from repro import build_backbone, connected_udg_instance
from repro.graphs.connectivity import robustness, survives_failures
from repro.routing.backbone_routing import backbone_route
from repro.routing.gpsr import gpsr_route


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=80)
    parser.add_argument("--radius", type=float, default=55.0)
    parser.add_argument("--side", type=float, default=200.0)
    parser.add_argument("--seed", type=int, default=33)
    parser.add_argument("--deaths", type=int, default=12)
    args = parser.parse_args()

    rng = random.Random(args.seed)
    deployment = connected_udg_instance(args.nodes, args.side, args.radius, rng)
    result = build_backbone(deployment.points, deployment.radius)
    udg = result.udg

    # Forwarding load: route a packet between many pairs, count relays.
    load: Counter = Counter()
    pairs = [(s, t) for s in range(0, args.nodes, 5) for t in range(2, args.nodes, 7) if s != t]
    for s, t in pairs:
        route = backbone_route(result, s, t)
        if route.delivered:
            for node in route.path[1:-1]:
                load[node] += 1
    busiest = [n for n, _c in load.most_common(args.deaths)]
    report = robustness(result.ldel_icds, nodes=result.backbone_nodes)
    members_sorted = sorted(result.backbone_nodes)
    cut_nodes = {members_sorted[i] for i in report.articulation_points}
    print(
        f"backbone: {len(result.backbone_nodes)} nodes; "
        f"{len(cut_nodes)} are single points of failure "
        f"({report.cut_fraction:.0%} of the backbone)"
    )
    print(f"killing the {args.deaths} busiest relays, one by one:\n")

    probe_pairs = pairs[:: max(1, len(pairs) // 20)]
    print(f"{'death':>6}{'node':>6}{'cut?':>6}{'degraded avail':>16}{'after rebuild':>15}")
    failed: list[int] = []
    for i, victim in enumerate(busiest, 1):
        failed.append(victim)
        # Availability on the *degraded* old structure.
        survivor = survives_failures(result.ldel_icds, failed)
        alive_pairs = [
            (s, t) for s, t in probe_pairs if s not in failed and t not in failed
        ]
        degraded = 0
        for s, t in alive_pairs:
            entry = min(result.dominators_of(s) - set(failed), default=s if s in result.backbone_nodes else None)
            exit_ = min(result.dominators_of(t) - set(failed), default=t if t in result.backbone_nodes else None)
            if entry is None or exit_ is None:
                continue
            if entry == exit_ or gpsr_route(survivor, entry, exit_).delivered:
                degraded += 1
        # Availability after rebuilding over the survivors.
        alive_positions = [p for j, p in enumerate(deployment.points) if j not in failed]
        alive_ids = [j for j in range(args.nodes) if j not in failed]
        remap = {old: new for new, old in enumerate(alive_ids)}
        rebuilt = build_backbone(alive_positions, deployment.radius)
        restored = 0
        for s, t in alive_pairs:
            if backbone_route(rebuilt, remap[s], remap[t]).delivered:
                restored += 1
        print(
            f"{i:>6}{victim:>6}{'yes' if victim in cut_nodes else 'no':>6}"
            f"{degraded:>10}/{len(alive_pairs):<5}"
            f"{restored:>10}/{len(alive_pairs):<5}"
        )

    print(
        "\ncut-vertex deaths are the ones that crater degraded availability; "
        "a rebuild over the survivors restores full service whenever the "
        "surviving radio graph is still connected — the case for pairing the "
        "backbone with the maintenance layer."
    )


if __name__ == "__main__":
    main()
