#!/usr/bin/env python3
"""Network-wide broadcast: flooding vs the backbone vs a spanning tree.

The paper's opening complaint: "The simplest routing method is to
flood the message, which not only wastes the rare resources of
wireless nodes, but also diminishes the throughput of the network."
This example measures exactly that waste.  One message is broadcast
from several sources over (a) blind flooding, (b) dominating-set-based
relay over the constructed backbone, and (c) an MST — reporting
transmissions (energy), rounds (latency), and coverage for each.

Run:
    python examples/broadcast_comparison.py [--nodes 100] [--seed 5]
"""

import argparse
import random

from repro import build_backbone, connected_udg_instance
from repro.routing.broadcast import (
    backbone_broadcast,
    flood,
    rng_broadcast,
    tree_broadcast,
)
from repro.topology.mst import euclidean_mst


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=100)
    parser.add_argument("--radius", type=float, default=60.0)
    parser.add_argument("--side", type=float, default=200.0)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--sources", type=int, default=5)
    args = parser.parse_args()

    rng = random.Random(args.seed)
    deployment = connected_udg_instance(args.nodes, args.side, args.radius, rng)
    udg = deployment.udg()
    result = build_backbone(deployment.points, deployment.radius)
    mst = euclidean_mst(udg)

    print(
        f"{args.nodes} nodes, {udg.edge_count} links, backbone of "
        f"{len(result.backbone_nodes)} nodes"
    )
    sources = sorted(rng.sample(range(args.nodes), args.sources))
    print(f"broadcasting from sources {sources}\n")

    print(f"{'strategy':<22}{'tx (mean)':>11}{'rounds (mean)':>15}{'coverage':>10}")
    strategies = {
        "blind flooding": lambda s: flood(udg, s),
        "backbone relay": lambda s: backbone_broadcast(
            udg, s, result.backbone_nodes
        ),
        "RNG internal nodes": lambda s: rng_broadcast(udg, s),
        "MST tree": lambda s: tree_broadcast(udg, s, mst),
    }
    baseline_tx = None
    for name, run in strategies.items():
        outcomes = [run(s) for s in sources]
        tx = sum(o.transmissions for o in outcomes) / len(outcomes)
        rounds = sum(o.rounds for o in outcomes) / len(outcomes)
        coverage = min(o.coverage for o in outcomes)
        if baseline_tx is None:
            baseline_tx = tx
        print(
            f"{name:<22}{tx:>11.1f}{rounds:>15.1f}"
            f"{coverage:>7}/{args.nodes}"
            + (f"   ({baseline_tx / tx:.1f}x fewer tx)" if tx < baseline_tx else "")
        )

    print(
        "\nthe backbone relays with a fraction of the transmissions at "
        "near-flooding latency; the MST saves less than it seems (its "
        "many internal nodes must all transmit) and is far slower."
    )


if __name__ == "__main__":
    main()
