#!/usr/bin/env python3
"""Why planarity matters: GPSR on the planar backbone vs greedy-only.

A clustered deployment (dense sensor pockets with sparse space between
them) is full of routing *voids*: greedy forwarding frequently hits
local minima in the gaps between clusters.  GPSR's perimeter mode
rescues those packets — but only because LDel(ICDS) is planar; the
right-hand rule can loop on graphs with crossing edges.

This example routes between many node pairs over the backbone with
(a) greedy-only and (b) full GPSR, and reports delivery rates and the
local-minimum recovery count.

Run:
    python examples/gpsr_demo.py [--nodes 90] [--seed 12]
"""

import argparse
import random

from repro import build_backbone, connected_udg_instance
from repro.graphs.planarity import is_planar_embedding
from repro.routing.gpsr import gpsr_route
from repro.routing.greedy import greedy_route


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=90)
    parser.add_argument("--radius", type=float, default=45.0)
    parser.add_argument("--side", type=float, default=300.0)
    parser.add_argument("--seed", type=int, default=12)
    args = parser.parse_args()

    rng = random.Random(args.seed)
    deployment = connected_udg_instance(
        args.nodes, args.side, args.radius, rng, generator="clustered"
    )
    result = build_backbone(deployment.points, deployment.radius)
    backbone = result.ldel_icds
    members = sorted(result.backbone_nodes)
    print(
        f"clustered deployment: {args.nodes} nodes, backbone of "
        f"{len(members)} nodes / {backbone.edge_count} links, "
        f"planar: {is_planar_embedding(backbone)}"
    )

    pairs = [(s, t) for s in members for t in members if s < t]
    greedy_ok = 0
    gpsr_ok = 0
    recoveries = 0
    gpsr_extra_hops = 0
    for s, t in pairs:
        g = greedy_route(backbone, s, t)
        p = gpsr_route(backbone, s, t)
        greedy_ok += g.delivered
        gpsr_ok += p.delivered
        if p.delivered and not g.delivered:
            recoveries += 1
            gpsr_extra_hops += p.hops

    print()
    print(f"node pairs routed: {len(pairs)}")
    print(f"greedy-only delivery: {greedy_ok}/{len(pairs)} "
          f"({greedy_ok / len(pairs):.0%})")
    print(f"GPSR delivery:        {gpsr_ok}/{len(pairs)} "
          f"({gpsr_ok / len(pairs):.0%})")
    print(f"packets rescued by perimeter mode: {recoveries}")
    if gpsr_ok != len(pairs):
        failed = [
            (s, t)
            for s, t in pairs
            if not gpsr_route(backbone, s, t).delivered
        ]
        print(f"undelivered pairs (unexpected on a planar graph): {failed[:5]}")
    else:
        print("GPSR delivered everything — the guarantee planarity buys.")


if __name__ == "__main__":
    main()
