#!/usr/bin/env python3
"""Quickstart: build the paper's planar spanner backbone on a random network.

Reproduces Figures 6 and 7 of the paper as data: one random unit disk
graph and its ten derived topologies, with the quality numbers for
each, and (optionally) edge-list exports you can plot with any tool.

Run:
    python examples/quickstart.py [--nodes 100] [--radius 60] [--export-dir out]
"""

import argparse
import random
from pathlib import Path

from repro import build_backbone, connected_udg_instance
from repro.core.metrics import measure_topology
from repro.experiments.runner import STRETCH_TOPOLOGIES, build_all_topologies
from repro.graphs.planarity import is_planar_embedding


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=100)
    parser.add_argument("--radius", type=float, default=60.0)
    parser.add_argument("--side", type=float, default=200.0)
    parser.add_argument("--seed", type=int, default=6)
    parser.add_argument(
        "--export-dir",
        type=Path,
        default=None,
        help="write <topology>.edges files (x1 y1 x2 y2 per line)",
    )
    args = parser.parse_args()

    rng = random.Random(args.seed)
    deployment = connected_udg_instance(args.nodes, args.side, args.radius, rng)
    udg = deployment.udg()
    print(
        f"deployment: {args.nodes} nodes in a {args.side:g}x{args.side:g} "
        f"square, transmission radius {args.radius:g}"
    )
    print(f"UDG: {udg.edge_count} links, max degree {max(udg.degrees())}")
    print()

    graphs, backbone = build_all_topologies(udg)
    print(
        f"backbone: {len(backbone.dominators)} dominators + "
        f"{len(backbone.connectors)} connectors "
        f"({len(backbone.dominatees)} ordinary nodes)"
    )
    print(
        f"messages per node: CDS max {backbone.stats_cds.max_per_node()}, "
        f"full pipeline max {backbone.stats_ldel.max_per_node()}"
    )
    print()

    header = f"{'topology':<12}{'edges':>7}{'deg max':>9}{'planar':>8}{'len/hop stretch':>18}"
    print(header)
    print("-" * len(header))
    for name, graph in graphs.items():
        planar = "yes" if is_planar_embedding(graph) else "no"
        if name in STRETCH_TOPOLOGIES:
            skip = STRETCH_TOPOLOGIES[name]
            m = measure_topology(graph, udg, skip_udg_adjacent=skip)
            stretch = f"{m.length.avg:.2f} / {m.hops.avg:.2f}"
        else:
            stretch = "-"
        print(
            f"{name:<12}{graph.edge_count:>7}"
            f"{max(graph.degrees(), default=0):>9}{planar:>8}{stretch:>18}"
        )

    if args.export_dir is not None:
        args.export_dir.mkdir(parents=True, exist_ok=True)
        for name, graph in graphs.items():
            safe = name.replace("(", "_").replace(")", "").replace("'", "p")
            path = args.export_dir / f"{safe}.edges"
            with open(path, "w") as fh:
                for u, v in sorted(graph.edges()):
                    pu, pv = graph.positions[u], graph.positions[v]
                    fh.write(f"{pu.x:.3f} {pu.y:.3f} {pv.x:.3f} {pv.y:.3f}\n")
        print(f"\nedge lists written to {args.export_dir}/")


if __name__ == "__main__":
    main()
