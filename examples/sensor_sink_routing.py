#!/usr/bin/env python3
"""Sensor field reporting to a sink over the backbone.

The paper's motivating scenario (footnote 1): environmental sensors
periodically send readings to one static *sink* node whose position
everyone knows.  This example deploys a clustered sensor field, builds
the backbone once, then routes a reading from every sensor to the sink
with dominating-set-based routing — and compares the per-packet hop
counts and the *forwarding load* against naive flooding, which touches
every node for every reading.

Run:
    python examples/sensor_sink_routing.py [--nodes 120] [--seed 9]
"""

import argparse
import random
from collections import Counter

from repro import build_backbone, connected_udg_instance
from repro.graphs.paths import breadth_first_path
from repro.routing.backbone_routing import backbone_route


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=120)
    parser.add_argument("--radius", type=float, default=55.0)
    parser.add_argument("--side", type=float, default=200.0)
    parser.add_argument("--seed", type=int, default=9)
    args = parser.parse_args()

    rng = random.Random(args.seed)
    deployment = connected_udg_instance(
        args.nodes, args.side, args.radius, rng, generator="clustered"
    )
    udg = deployment.udg()
    result = build_backbone(deployment.points, deployment.radius)

    # The sink: the node closest to the region center (it is static and
    # its position is known to all, per the paper's assumption).
    center = (args.side / 2.0, args.side / 2.0)
    sink = min(
        udg.nodes(),
        key=lambda u: (udg.positions[u].x - center[0]) ** 2
        + (udg.positions[u].y - center[1]) ** 2,
    )
    print(
        f"clustered field: {args.nodes} sensors, sink = node {sink} "
        f"at {udg.positions[sink]}"
    )
    print(
        f"backbone: {len(result.backbone_nodes)} of {args.nodes} nodes "
        f"({len(result.dominators)} dominators, {len(result.connectors)} connectors)"
    )

    delivered = 0
    total_routed_hops = 0
    total_optimal_hops = 0
    forwarding_load: Counter = Counter()
    worst_ratio = 0.0
    for sensor in udg.nodes():
        if sensor == sink:
            continue
        route = backbone_route(result, sensor, sink)
        optimal = breadth_first_path(udg, sensor, sink)
        if not route.delivered:
            print(f"  !! sensor {sensor} failed: {route.reason}")
            continue
        delivered += 1
        total_routed_hops += route.hops
        total_optimal_hops += optimal.hops
        worst_ratio = max(worst_ratio, route.hops / max(optimal.hops, 1))
        for node in route.path[:-1]:
            forwarding_load[node] += 1

    n_packets = udg.node_count - 1
    print()
    print(f"delivered: {delivered}/{n_packets} readings")
    print(
        f"hops: routed total {total_routed_hops}, shortest-path total "
        f"{total_optimal_hops} (overhead {total_routed_hops / total_optimal_hops:.2f}x, "
        f"worst per-packet {worst_ratio:.2f}x)"
    )

    # Forwarding economics vs flooding: flooding one reading costs one
    # transmission per node (every node re-broadcasts once).
    flooding_tx = n_packets * udg.node_count
    routed_tx = total_routed_hops
    print(
        f"transmissions for one reading from every sensor: "
        f"routed {routed_tx} vs flooding {flooding_tx} "
        f"({flooding_tx / routed_tx:.1f}x saving)"
    )

    on_backbone = sum(
        count for node, count in forwarding_load.items()
        if node in result.backbone_nodes
    )
    print(
        f"forwarding concentrated on backbone: "
        f"{on_backbone / sum(forwarding_load.values()):.0%} of forwards "
        f"by {len(result.backbone_nodes)} backbone nodes"
    )
    busiest = forwarding_load.most_common(3)
    print(f"busiest relays: {busiest} (role of each: "
          + ", ".join(result.role_of(n) for n, _ in busiest) + ")")


if __name__ == "__main__":
    main()
