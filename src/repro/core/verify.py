"""Spanner verification: find the pairs that violate a claimed bound.

`length_stretch`/`hop_stretch` summarize; this module *witnesses*.
Given a claimed stretch factor, :func:`verify_spanner` returns every
node pair exceeding it, with the two path values — the tool for
debugging a construction change that quietly worsened the spanner, and
for demonstrating non-spanners (RNG's growing stretch) concretely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.metrics import _apsp
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph


@dataclass(frozen=True)
class StretchViolation:
    """One witnessed violation of a claimed stretch bound."""

    u: int
    v: int
    graph_value: float
    udg_value: float

    @property
    def ratio(self) -> float:
        return self.graph_value / self.udg_value


@dataclass(frozen=True)
class SpannerVerdict:
    """Result of a spanner verification."""

    claimed: float
    metric: str
    violations: tuple[StretchViolation, ...]
    pairs_checked: int

    @property
    def holds(self) -> bool:
        return not self.violations

    @property
    def worst(self) -> Optional[StretchViolation]:
        if not self.violations:
            return None
        return max(self.violations, key=lambda w: w.ratio)


def verify_spanner(
    graph: Graph,
    udg: UnitDiskGraph,
    claimed: float,
    *,
    metric: str = "length",
    skip_udg_adjacent: bool = False,
    max_witnesses: int = 100,
) -> SpannerVerdict:
    """Check ``graph`` is a ``claimed``-spanner of ``udg``.

    ``metric`` is ``"length"`` or ``"hops"``.  Returns at most
    ``max_witnesses`` violating pairs (worst ones are found by the
    caller via :attr:`SpannerVerdict.worst`; the list is in node
    order).  A disconnected pair in ``graph`` that is connected in the
    UDG is an infinite-ratio violation.
    """
    if claimed < 1.0:
        raise ValueError("a stretch factor below 1 is unsatisfiable")
    if metric not in ("length", "hops"):
        raise ValueError(f"unknown metric {metric!r}")
    if graph.node_count != udg.node_count:
        raise ValueError("graph and UDG must share the node set")
    weight = graph.edge_length if metric == "length" else None
    d_graph = _apsp(graph, weight)
    d_udg = _apsp(udg, weight)
    n = graph.node_count
    violations: list[StretchViolation] = []
    pairs = 0
    for u in range(n):
        row_g = d_graph[u]
        row_u = d_udg[u]
        for v in range(u + 1, n):
            base = row_u[v]
            if not (0.0 < base < math.inf):
                continue
            if skip_udg_adjacent and udg.has_edge(u, v):
                continue
            pairs += 1
            value = row_g[v]
            if value > claimed * base + 1e-9:
                violations.append(
                    StretchViolation(
                        u=u, v=v, graph_value=float(value), udg_value=float(base)
                    )
                )
                if len(violations) >= max_witnesses:
                    return SpannerVerdict(
                        claimed=claimed,
                        metric=metric,
                        violations=tuple(violations),
                        pairs_checked=pairs,
                    )
    return SpannerVerdict(
        claimed=claimed,
        metric=metric,
        violations=tuple(violations),
        pairs_checked=pairs,
    )
