"""Topology quality metrics: degrees, edge counts, stretch factors.

The paper's Table I and Figures 8–12 report, per topology:

* average and maximum node degree,
* average and maximum **length stretch factor** — the ratio of
  shortest-path length in the topology to shortest-path length in the
  UDG, over node pairs,
* average and maximum **hop stretch factor** — same with hop counts,
* the number of edges.

For the backbone graphs (CDS', ICDS', LDel(ICDS')) the routing rule
sends directly to UDG neighbors, and Lemma 6 restricts attention to
pairs more than one unit apart, so stretch is computed with
``skip_udg_adjacent=True`` for those rows (adjacent pairs have stretch
exactly 1 under the routing rule and are excluded rather than folded
in).  Power stretch (sum of ``length^alpha`` along the path) is also
provided — the paper defines it alongside the other two.

Pairs that the UDG itself cannot connect are out of scope for stretch.
Pairs the UDG connects but the measured graph does not are *excluded*
from ``avg``/``max`` and counted in ``StretchStats.unreachable_pairs``
(folding their ``inf`` ratio into a running average would poison it);
``StretchStats.disconnected`` flags the condition and
``StretchStats.max_or_inf`` restores the "∞ when disconnected" view
for callers that want it.

The heavy lifting — memoized all-pairs matrices shared across stretch
kinds and topology rows, plus the vectorized pair reduction — lives in
:class:`repro.core.oracle.DistanceOracle`; the public stretch functions
here accept an ``oracle=`` and build a throwaway one otherwise.
:func:`stretch_reference` keeps the straightforward per-call
implementation as the parity reference the benchmark tripwires compare
against.  All-pairs distances use :mod:`scipy.sparse.csgraph` when
available (C-speed Dijkstra) and fall back to the pure-Python routines
in :mod:`repro.graphs.paths`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Optional

from repro.graphs.graph import Graph
from repro.graphs.paths import bfs_hops, dijkstra_lengths
from repro.graphs.udg import UnitDiskGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.oracle import DistanceOracle

# Optional-dependency guards live in repro.core.compat; the module
# attributes below stay because tests patch them (see
# tests/test_metrics.py) to force the pure-Python fallbacks.
from repro.core.compat import HAVE_SCIPY as _HAVE_SCIPY
from repro.core.compat import csr_matrix as _csr_matrix
from repro.core.compat import scipy_dijkstra as _sp_dijkstra


@dataclass(frozen=True)
class StretchStats:
    """Average and maximum stretch over the measured node pairs.

    ``avg``/``max`` cover only pairs actually connected in the measured
    graph; pairs reachable in the UDG but not in the measured graph are
    tallied in ``unreachable_pairs`` instead of contributing ``inf``.
    """

    avg: float
    max: float
    pairs: int
    unreachable_pairs: int = 0

    @property
    def disconnected(self) -> bool:
        """True when some UDG-connected pair is cut in the measured graph."""
        return self.unreachable_pairs > 0

    @property
    def max_or_inf(self) -> float:
        """``max`` over measured pairs, or ``inf`` if any pair was cut."""
        return math.inf if self.disconnected else self.max

    @staticmethod
    def empty() -> "StretchStats":
        """The stats of zero measured pairs."""
        return StretchStats(avg=0.0, max=0.0, pairs=0, unreachable_pairs=0)


@dataclass(frozen=True)
class TopologyMetrics:
    """One row of the paper's Table I."""

    name: str
    node_count: int
    edge_count: int
    degree_avg: float
    degree_max: int
    length: Optional[StretchStats] = None
    hops: Optional[StretchStats] = None
    power: Optional[StretchStats] = None


def degree_stats(graph: Graph) -> tuple[float, int]:
    """(average degree, maximum degree) of ``graph``."""
    degrees = graph.degrees()
    if not degrees:
        return 0.0, 0
    return sum(degrees) / len(degrees), max(degrees)


# -- the reference implementation -----------------------------------------


def _apsp(
    graph: Graph,
    weight: Optional[Callable[[int, int], float]],
    *,
    use_scipy: Optional[bool] = None,
) -> "list[list[float]]":
    """All-pairs shortest distances; ``weight=None`` means hop counts."""
    n = graph.node_count
    scipy_ok = _HAVE_SCIPY if use_scipy is None else (use_scipy and _HAVE_SCIPY)
    if scipy_ok and n > 0:
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for u, v in graph.edges():
            w = 1.0 if weight is None else weight(u, v)
            rows.extend((u, v))
            cols.extend((v, u))
            data.extend((w, w))
        matrix = _csr_matrix((data, (rows, cols)), shape=(n, n))
        dist = _sp_dijkstra(matrix, directed=False, unweighted=weight is None)
        return dist  # ndarray, row-indexable like list[list[float]]
    if weight is None:
        return [
            [(h if h >= 0 else math.inf) for h in bfs_hops(graph, s)]
            for s in range(n)
        ]
    return [dijkstra_lengths(graph, s, weight) for s in range(n)]


def stretch_reference(
    graph: Graph,
    udg: UnitDiskGraph,
    weight: Optional[Callable[[int, int], float]],
    *,
    skip_udg_adjacent: bool,
    use_scipy: Optional[bool] = None,
) -> StretchStats:
    """Stretch of ``graph`` against ``udg``, the straightforward way.

    Fresh all-pairs matrices on every call, then a pure-Python pair
    reduction.  This is the semantic reference the oracle's vectorized
    kernel is verified against (see ``PARITY_RTOL`` in
    :mod:`repro.core.oracle`): the pure-Python oracle fallback matches
    it exactly, the numpy kernel to within the documented tolerance.
    ``use_scipy=False`` forces the pure-Python all-pairs routines.
    """
    if graph.node_count != udg.node_count:
        raise ValueError("graph and UDG must share the node set")
    n = graph.node_count
    d_graph = _apsp(graph, weight, use_scipy=use_scipy)
    d_udg = _apsp(udg, weight, use_scipy=use_scipy)
    total = 0.0
    worst = 0.0
    pairs = 0
    unreachable = 0
    for u in range(n):
        row_g = d_graph[u]
        row_u = d_udg[u]
        for v in range(u + 1, n):
            base = row_u[v]
            if not (0.0 < base < math.inf):
                continue  # same node or UDG-disconnected pair
            if skip_udg_adjacent and udg.has_edge(u, v):
                continue
            value = row_g[v]
            if value == math.inf:
                unreachable += 1
                continue
            ratio = value / base
            total += ratio
            if ratio > worst:
                worst = ratio
            pairs += 1
    if pairs == 0:
        return StretchStats(0.0, 0.0, 0, unreachable_pairs=unreachable)
    return StretchStats(
        avg=float(total / pairs), max=float(worst), pairs=pairs,
        unreachable_pairs=unreachable,
    )


# -- the oracle-backed public API -----------------------------------------


def _resolve_oracle(
    udg: UnitDiskGraph, oracle: "Optional[DistanceOracle]"
) -> "DistanceOracle":
    """Validate a caller-supplied oracle or build a throwaway one."""
    from repro.core.oracle import DistanceOracle

    if oracle is None:
        return DistanceOracle(udg, use_scipy=_HAVE_SCIPY)
    if not oracle.matches(udg):
        raise ValueError("oracle was built for a different baseline graph")
    return oracle


def length_stretch(
    graph: Graph,
    udg: UnitDiskGraph,
    *,
    skip_udg_adjacent: bool = False,
    oracle: "Optional[DistanceOracle]" = None,
) -> StretchStats:
    """Length stretch factor of ``graph`` relative to ``udg``.

    Pass ``oracle`` (a :class:`repro.core.oracle.DistanceOracle` built
    on ``udg``) to share the UDG all-pairs matrices across calls.
    """
    return _resolve_oracle(udg, oracle).stretch(
        graph, "length", skip_udg_adjacent=skip_udg_adjacent
    )


def hop_stretch(
    graph: Graph,
    udg: UnitDiskGraph,
    *,
    skip_udg_adjacent: bool = False,
    oracle: "Optional[DistanceOracle]" = None,
) -> StretchStats:
    """Hop stretch factor of ``graph`` relative to ``udg``."""
    return _resolve_oracle(udg, oracle).stretch(
        graph, "hops", skip_udg_adjacent=skip_udg_adjacent
    )


def power_stretch(
    graph: Graph,
    udg: UnitDiskGraph,
    *,
    alpha: float = 2.0,
    skip_udg_adjacent: bool = False,
    oracle: "Optional[DistanceOracle]" = None,
) -> StretchStats:
    """Power stretch factor: path cost is the sum of ``length**alpha``.

    ``alpha`` is the path-loss exponent, between 2 and 5 in the
    paper's power-attenuation model.
    """
    if alpha < 1.0:
        raise ValueError("alpha below 1 is not a power-attenuation model")
    return _resolve_oracle(udg, oracle).stretch(
        graph, "power", skip_udg_adjacent=skip_udg_adjacent, alpha=alpha
    )


def measure_topology(
    graph: Graph,
    udg: UnitDiskGraph,
    *,
    stretch: bool = True,
    skip_udg_adjacent: bool = False,
    power_alpha: Optional[float] = None,
    oracle: "Optional[DistanceOracle]" = None,
) -> TopologyMetrics:
    """Measure one topology the way the paper's Table I does.

    Set ``stretch=False`` for non-spanning graphs like the bare CDS
    (the paper's table leaves those cells empty).  One ``oracle``
    shared across calls makes the UDG matrices a one-time cost per
    deployment.
    """
    avg_deg, max_deg = degree_stats(graph)
    length = hops = power = None
    if stretch:
        shared = _resolve_oracle(udg, oracle)
        length = length_stretch(
            graph, udg, skip_udg_adjacent=skip_udg_adjacent, oracle=shared
        )
        hops = hop_stretch(
            graph, udg, skip_udg_adjacent=skip_udg_adjacent, oracle=shared
        )
        if power_alpha is not None:
            power = power_stretch(
                graph, udg, alpha=power_alpha,
                skip_udg_adjacent=skip_udg_adjacent, oracle=shared,
            )
    return TopologyMetrics(
        name=graph.name,
        node_count=graph.node_count,
        edge_count=graph.edge_count,
        degree_avg=avg_deg,
        degree_max=max_deg,
        length=length,
        hops=hops,
        power=power,
    )


def summarize_family(
    udg: UnitDiskGraph,
    graphs: Mapping[str, Graph],
    *,
    stretch_policy: Optional[Mapping[str, bool]] = None,
    power_alpha: Optional[float] = None,
    oracle: "Optional[DistanceOracle]" = None,
) -> "dict[str, TopologyMetrics]":
    """Measure a whole topology family against one UDG with one oracle.

    ``graphs`` maps row name → graph.  ``stretch_policy`` maps the row
    names that get stretch columns to their ``skip_udg_adjacent`` flag
    (the paper uses ``True`` for the backbone rows); rows absent from
    the policy are measured for degrees/edges only, like the bare CDS
    in Table I.  The UDG all-pairs matrices are built exactly once and
    shared across every row and stretch kind.
    """
    shared = _resolve_oracle(udg, oracle)
    policy = dict(stretch_policy or {})
    out: dict[str, TopologyMetrics] = {}
    for name, graph in graphs.items():
        if name in policy:
            out[name] = measure_topology(
                graph, udg, stretch=True, skip_udg_adjacent=policy[name],
                power_alpha=power_alpha, oracle=shared,
            )
        else:
            out[name] = measure_topology(graph, udg, stretch=False, oracle=shared)
    return out
