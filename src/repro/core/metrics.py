"""Topology quality metrics: degrees, edge counts, stretch factors.

The paper's Table I and Figures 8–12 report, per topology:

* average and maximum node degree,
* average and maximum **length stretch factor** — the ratio of
  shortest-path length in the topology to shortest-path length in the
  UDG, over node pairs,
* average and maximum **hop stretch factor** — same with hop counts,
* the number of edges.

For the backbone graphs (CDS', ICDS', LDel(ICDS')) the routing rule
sends directly to UDG neighbors, and Lemma 6 restricts attention to
pairs more than one unit apart, so stretch is computed with
``skip_udg_adjacent=True`` for those rows (adjacent pairs have stretch
exactly 1 under the routing rule and are excluded rather than folded
in).  Power stretch (sum of ``length^alpha`` along the path) is also
provided — the paper defines it alongside the other two.

All-pairs distances use :mod:`scipy.sparse.csgraph` when available
(C-speed Dijkstra) and fall back to the pure-Python routines in
:mod:`repro.graphs.paths`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.graphs.graph import Graph
from repro.graphs.paths import bfs_hops, dijkstra_lengths
from repro.graphs.udg import UnitDiskGraph

try:  # pragma: no cover - exercised implicitly everywhere
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _sp_dijkstra

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _HAVE_SCIPY = False


@dataclass(frozen=True)
class StretchStats:
    """Average and maximum stretch over the measured node pairs."""

    avg: float
    max: float
    pairs: int

    @staticmethod
    def empty() -> "StretchStats":
        return StretchStats(avg=0.0, max=0.0, pairs=0)


@dataclass(frozen=True)
class TopologyMetrics:
    """One row of the paper's Table I."""

    name: str
    node_count: int
    edge_count: int
    degree_avg: float
    degree_max: int
    length: Optional[StretchStats] = None
    hops: Optional[StretchStats] = None
    power: Optional[StretchStats] = None


def degree_stats(graph: Graph) -> tuple[float, int]:
    """(average degree, maximum degree) of ``graph``."""
    degrees = graph.degrees()
    if not degrees:
        return 0.0, 0
    return sum(degrees) / len(degrees), max(degrees)


# -- all-pairs distance matrices ------------------------------------------


def _apsp(graph: Graph, weight: Optional[Callable[[int, int], float]]) -> "list[list[float]]":
    """All-pairs shortest distances; ``weight=None`` means hop counts."""
    n = graph.node_count
    if _HAVE_SCIPY and n > 0:
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for u, v in graph.edges():
            w = 1.0 if weight is None else weight(u, v)
            rows.extend((u, v))
            cols.extend((v, u))
            data.extend((w, w))
        matrix = _csr_matrix((data, (rows, cols)), shape=(n, n))
        dist = _sp_dijkstra(matrix, directed=False, unweighted=weight is None)
        return dist  # ndarray, row-indexable like list[list[float]]
    if weight is None:
        return [
            [(h if h >= 0 else math.inf) for h in bfs_hops(graph, s)]
            for s in range(n)
        ]
    return [dijkstra_lengths(graph, s, weight) for s in range(n)]


def _stretch(
    graph: Graph,
    udg: UnitDiskGraph,
    weight: Optional[Callable[[int, int], float]],
    *,
    skip_udg_adjacent: bool,
) -> StretchStats:
    """Stretch of ``graph`` against ``udg`` under a common weight."""
    if graph.node_count != udg.node_count:
        raise ValueError("graph and UDG must share the node set")
    n = graph.node_count
    d_graph = _apsp(graph, weight)
    d_udg = _apsp(udg, weight)
    total = 0.0
    worst = 0.0
    pairs = 0
    for u in range(n):
        row_g = d_graph[u]
        row_u = d_udg[u]
        for v in range(u + 1, n):
            base = row_u[v]
            if not (0.0 < base < math.inf):
                continue  # same node or UDG-disconnected pair
            if skip_udg_adjacent and udg.has_edge(u, v):
                continue
            ratio = row_g[v] / base
            total += ratio
            if ratio > worst:
                worst = ratio
            pairs += 1
    if pairs == 0:
        return StretchStats.empty()
    return StretchStats(avg=total / pairs, max=worst, pairs=pairs)


def length_stretch(
    graph: Graph, udg: UnitDiskGraph, *, skip_udg_adjacent: bool = False
) -> StretchStats:
    """Length stretch factor of ``graph`` relative to ``udg``."""
    return _stretch(
        graph, udg, graph.edge_length, skip_udg_adjacent=skip_udg_adjacent
    )


def hop_stretch(
    graph: Graph, udg: UnitDiskGraph, *, skip_udg_adjacent: bool = False
) -> StretchStats:
    """Hop stretch factor of ``graph`` relative to ``udg``."""
    return _stretch(graph, udg, None, skip_udg_adjacent=skip_udg_adjacent)


def power_stretch(
    graph: Graph,
    udg: UnitDiskGraph,
    *,
    alpha: float = 2.0,
    skip_udg_adjacent: bool = False,
) -> StretchStats:
    """Power stretch factor: path cost is the sum of ``length**alpha``.

    ``alpha`` is the path-loss exponent, between 2 and 5 in the
    paper's power-attenuation model.
    """
    if alpha < 1.0:
        raise ValueError("alpha below 1 is not a power-attenuation model")

    def power_weight(u: int, v: int) -> float:
        return graph.edge_length(u, v) ** alpha

    return _stretch(graph, udg, power_weight, skip_udg_adjacent=skip_udg_adjacent)


def measure_topology(
    graph: Graph,
    udg: UnitDiskGraph,
    *,
    stretch: bool = True,
    skip_udg_adjacent: bool = False,
    power_alpha: Optional[float] = None,
) -> TopologyMetrics:
    """Measure one topology the way the paper's Table I does.

    Set ``stretch=False`` for non-spanning graphs like the bare CDS
    (the paper's table leaves those cells empty).
    """
    avg_deg, max_deg = degree_stats(graph)
    length = hops = power = None
    if stretch:
        length = length_stretch(graph, udg, skip_udg_adjacent=skip_udg_adjacent)
        hops = hop_stretch(graph, udg, skip_udg_adjacent=skip_udg_adjacent)
        if power_alpha is not None:
            power = power_stretch(
                graph, udg, alpha=power_alpha, skip_udg_adjacent=skip_udg_adjacent
            )
    return TopologyMetrics(
        name=graph.name,
        node_count=graph.node_count,
        edge_count=graph.edge_count,
        degree_avg=avg_deg,
        degree_max=max_deg,
        length=length,
        hops=hops,
        power=power,
    )
