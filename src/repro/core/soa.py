"""Structure-of-arrays snapshot shared across the whole pipeline.

The object layer (:class:`~repro.graphs.graph.Graph` and friends) is
the semantic reference, but before this module every consumer that
wanted flat data built its own conversion: the UDG construction walked
grid buckets point by point, the oracle re-sorted every adjacency list
into CSR, and the sharded/incremental paths re-derived grid cells per
tile.  :class:`SoaSnapshot` is the one conversion all of them share —
positions, CSR adjacency, bulk edge arrays and per-node grid cells,
produced once per deployment and cached on the graph.

Snapshot format contract (see ``docs/performance.md``):

* ``xs`` / ``ys`` — ``(n,)`` float64 node coordinates, index = node id;
* ``indptr`` / ``indices`` — CSR adjacency over **sorted** neighbor
  lists (``indices[indptr[u]:indptr[u+1]]`` ascending), int64;
* ``edge_u`` / ``edge_v`` — the undirected edge list with
  ``edge_u < edge_v``, lexicographically sorted, int64;
* ``cell_x`` / ``cell_y`` — the node's uniform-grid cell at cell size
  ``radius`` (``floor(x / radius)``), matching
  :meth:`repro.graphs.udg.GridIndex._cell_of` bit for bit; ``None``
  when the snapshot has no radius (plain graphs).

Everything here degrades to ``None`` without numpy — callers keep the
pure-Python reference path; :func:`repro.core.compat.get_numpy` is the
single switch.

The ragged-array helpers (:func:`gather_csr_rows`,
:func:`segment_any`) are shared by the vectorized Gabriel / LDel /
planarization kernels in :mod:`repro.topology`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.core.compat import get_numpy

if TYPE_CHECKING:  # pragma: no cover - annotation-only dependency
    from repro.graphs.graph import Graph


# -- ragged helpers -----------------------------------------------------------


def gather_csr_rows(np: Any, indptr: Any, indices: Any, rows: Any) -> tuple[Any, Any]:
    """Concatenate the CSR rows ``rows``; returns ``(owner, values)``.

    ``owner[i]`` is the position *within ``rows``* that ``values[i]``
    came from, so per-row reductions are one ``bincount`` away.
    """
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    owner = np.repeat(np.arange(rows.shape[0]), counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return owner, indices[starts[owner] + offsets]


def segment_any(np: Any, owner: Any, flags: Any, segments: int) -> Any:
    """Per-segment logical OR of ``flags`` grouped by ``owner``."""
    return np.bincount(owner[flags], minlength=segments) > 0


def sorted_unique(np: Any, keys: Any) -> Any:
    """Sorted distinct values of an integer key array.

    Equivalent to ``np.unique(keys)`` but pinned to the sort-and-diff
    strategy — numpy's hash-based unique kernel costs noticeably more
    than an int64 sort on the key volumes the construction core emits.
    """
    if keys.shape[0] == 0:
        return keys
    k = np.sort(keys)
    keep = np.empty(k.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(k[1:], k[:-1], out=keep[1:])
    return k[keep]


def _cross_join(
    np: Any, a_start: Any, a_count: Any, b_start: Any, b_count: Any
) -> tuple[Any, Any]:
    """All (a, b) index pairs of matched ragged segments.

    For each matched segment pair k, emits ``a_count[k] * b_count[k]``
    rows ``(a_start[k] + i, b_start[k] + j)``.
    """
    pair_counts = a_count * b_count
    total = int(pair_counts.sum())
    seg = np.repeat(np.arange(pair_counts.shape[0]), pair_counts)
    local = np.arange(total) - np.repeat(
        np.cumsum(pair_counts) - pair_counts, pair_counts
    )
    bc = b_count[seg]
    ai = local // bc
    bi = local - ai * bc
    return a_start[seg] + ai, b_start[seg] + bi


def bbox_grid_pairs(
    np: Any, x0: Any, y0: Any, x1: Any, y1: Any, cell: float
) -> tuple[Any, Any]:
    """Unique index pairs ``(i, j)``, ``i < j``, of boxes sharing a grid cell.

    The array analogue of the bounding-box bucket grids in
    :mod:`repro.graphs.planarity` and the triangle-pair prefilter of
    Algorithm 3: each box ``[x0, x1] x [y0, y1]`` covers the integer
    cell range ``floor(lo/cell)..floor(hi/cell)``; two boxes pair up
    when any cell coincides.  Like the scalar grids, this is a
    *superset* filter — the cell size affects only how many pairs come
    out, never which pairs survive the exact tests downstream.
    """
    count = x0.shape[0]
    empty = np.zeros(0, dtype=np.int64)
    if count < 2:
        return empty, empty
    cx_lo = np.floor(x0 / cell).astype(np.int64)
    cx_hi = np.floor(x1 / cell).astype(np.int64)
    cy_lo = np.floor(y0 / cell).astype(np.int64)
    cy_hi = np.floor(y1 / cell).astype(np.int64)
    sx = cx_hi - cx_lo + 1
    sy = cy_hi - cy_lo + 1
    cnt = sx * sy
    total = int(cnt.sum())
    seg = np.repeat(np.arange(count), cnt)
    local = np.arange(total) - np.repeat(np.cumsum(cnt) - cnt, cnt)
    sy_seg = sy[seg]
    lx = local // sy_seg
    ly = local - lx * sy_seg
    cxs = cx_lo[seg] + lx
    cys = cy_lo[seg] + ly
    ky = cys - cys.min()
    key = (cxs - cxs.min()) * (int(ky.max()) + 1) + ky
    order = np.argsort(key, kind="stable")
    skey = key[order]
    sid = seg[order]
    run_start = np.empty(total, dtype=bool)
    run_start[0] = True
    np.not_equal(skey[1:], skey[:-1], out=run_start[1:])
    starts = np.nonzero(run_start)[0]
    counts = np.diff(np.append(starts, total))
    left, right = _cross_join(np, starts, counts, starts, counts)
    keep = left < right
    a = sid[left[keep]]
    b = sid[right[keep]]
    pk = sorted_unique(np, np.minimum(a, b) * count + np.maximum(a, b))
    return pk // count, pk % count


def udg_edge_arrays(np: Any, xs: Any, ys: Any, radius: float) -> tuple[Any, Any]:
    """Bulk UDG edge enumeration: all pairs within ``radius``.

    The array analogue of :meth:`repro.graphs.udg.GridIndex.pairs_within`
    — same cell size, same inclusive ``dist_sq <= r**2`` test (the
    elementwise float arithmetic is IEEE-identical to the scalar
    reference, so the edge *set* is bit-identical).  Returns the
    lexicographically sorted ``(edge_u, edge_v)`` arrays, ``u < v``.
    """
    n = xs.shape[0]
    empty = np.zeros(0, dtype=np.int64)
    if n < 2:
        return empty, empty
    cell_x = np.floor(xs / radius).astype(np.int64)
    cell_y = np.floor(ys / radius).astype(np.int64)
    # Pack (cx, cy) into one collision-free key; the +1 shift keeps the
    # dy = -1 neighbor offsets inside the padded row range.
    sx = cell_x - cell_x.min() + 1
    sy = cell_y - cell_y.min() + 1
    span_y = int(sy.max()) + 2
    key = sx * span_y + sy
    order = np.argsort(key, kind="stable")
    sorted_keys = key[order]
    run_start = np.empty(n, dtype=bool)
    run_start[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=run_start[1:])
    starts = np.nonzero(run_start)[0]
    uniq = sorted_keys[starts]
    counts = np.diff(np.append(starts, n))

    # Forward half-window over cells, mirroring pairs_within: the cell
    # with itself, then the four lexicographically positive offsets.
    left_parts = []
    right_parts = []
    for dx, dy in ((0, 0), (0, 1), (1, -1), (1, 0), (1, 1)):
        target = uniq + dx * span_y + dy
        pos = np.searchsorted(uniq, target)
        pos_safe = np.minimum(pos, uniq.shape[0] - 1)
        valid = uniq[pos_safe] == target
        a_idx = np.nonzero(valid)[0]
        if a_idx.shape[0] == 0:
            continue
        b_idx = pos_safe[a_idx]
        left, right = _cross_join(
            np, starts[a_idx], counts[a_idx], starts[b_idx], counts[b_idx]
        )
        if dx == 0 and dy == 0:
            keep = left < right
            left, right = left[keep], right[keep]
        left_parts.append(left)
        right_parts.append(right)
    if not left_parts:
        return empty, empty
    i = order[np.concatenate(left_parts)]
    j = order[np.concatenate(right_parts)]
    dxs = xs[i] - xs[j]
    dys = ys[i] - ys[j]
    close = dxs * dxs + dys * dys <= radius * radius
    i, j = i[close], j[close]
    edge_u = np.minimum(i, j)
    edge_v = np.maximum(i, j)
    final = np.lexsort((edge_v, edge_u))
    return edge_u[final], edge_v[final]


def _csr_from_edges(np: Any, n: int, edge_u: Any, edge_v: Any) -> tuple[Any, Any]:
    """Sorted CSR adjacency from an undirected edge list."""
    sym_u = np.concatenate([edge_u, edge_v])
    sym_v = np.concatenate([edge_v, edge_u])
    degrees = np.bincount(sym_u, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    order = np.lexsort((sym_v, sym_u))
    return indptr, sym_v[order].astype(np.int64, copy=False)


# -- the snapshot -------------------------------------------------------------


@dataclass
class SoaSnapshot:
    """Flat arrays for one embedded graph (see module docstring)."""

    n: int
    radius: Optional[float]
    xs: Any
    ys: Any
    indptr: Any
    indices: Any
    edge_u: Any
    edge_v: Any
    cell_x: Any = None
    cell_y: Any = None

    @property
    def edge_count(self) -> int:
        return int(self.edge_u.shape[0])

    def neighbors_of(self, u: int) -> Any:
        """The sorted neighbor ids of ``u`` (array view)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def degrees(self) -> Any:
        return self.indptr[1:] - self.indptr[:-1]

    @classmethod
    def from_points(
        cls, positions: Sequence, radius: float
    ) -> Optional["SoaSnapshot"]:
        """Build a snapshot (including the UDG edge set) from raw points.

        Returns ``None`` when numpy is unavailable or masked out.
        """
        np = get_numpy()
        if np is None:
            return None
        n = len(positions)
        xs = np.fromiter((p[0] for p in positions), dtype=np.float64, count=n)
        ys = np.fromiter((p[1] for p in positions), dtype=np.float64, count=n)
        edge_u, edge_v = udg_edge_arrays(np, xs, ys, radius)
        indptr, indices = _csr_from_edges(np, n, edge_u, edge_v)
        return cls(
            n=n,
            radius=radius,
            xs=xs,
            ys=ys,
            indptr=indptr,
            indices=indices,
            edge_u=edge_u,
            edge_v=edge_v,
            cell_x=np.floor(xs / radius).astype(np.int64) if radius else None,
            cell_y=np.floor(ys / radius).astype(np.int64) if radius else None,
        )

    @classmethod
    def from_graph(cls, graph: "Graph", radius: Optional[float] = None) -> Optional["SoaSnapshot"]:
        """Snapshot an already-built graph (adopts its edge set)."""
        np = get_numpy()
        if np is None:
            return None
        n = graph.node_count
        positions = graph.positions
        xs = np.fromiter((p[0] for p in positions), dtype=np.float64, count=n)
        ys = np.fromiter((p[1] for p in positions), dtype=np.float64, count=n)
        edges = graph.edge_set()
        if edges:
            pairs = np.array(sorted(edges), dtype=np.int64)
            edge_u, edge_v = pairs[:, 0], pairs[:, 1]
        else:
            edge_u = edge_v = np.zeros(0, dtype=np.int64)
        indptr, indices = _csr_from_edges(np, n, edge_u, edge_v)
        has_r = radius is not None and radius > 0.0
        return cls(
            n=n,
            radius=radius,
            xs=xs,
            ys=ys,
            indptr=indptr,
            indices=indices,
            edge_u=edge_u,
            edge_v=edge_v,
            cell_x=np.floor(xs / radius).astype(np.int64) if has_r else None,
            cell_y=np.floor(ys / radius).astype(np.int64) if has_r else None,
        )


def snapshot_for(graph: "Graph") -> Optional[SoaSnapshot]:
    """The graph's cached :class:`SoaSnapshot`, built on first use.

    The cache rides on the instance (``graph._soa_snapshot``) so every
    consumer — construction kernels, sharded tiles, the distance
    oracle, routing experiments — shares one conversion.  Mutating a
    graph invalidates nothing automatically; mutation sites
    (:mod:`repro.incremental`) drop the attribute explicitly.
    """
    if not numpy_ready():
        return None
    snap = getattr(graph, "_soa_snapshot", None)
    if snap is not None and snap.n == graph.node_count and snap.edge_count == graph.edge_count:
        return snap
    snap = SoaSnapshot.from_graph(graph, radius=getattr(graph, "radius", None))
    if snap is not None:
        graph._soa_snapshot = snap
    return snap


def numpy_ready() -> bool:
    """Shorthand for :func:`repro.core.compat.numpy_active`."""
    return get_numpy() is not None
