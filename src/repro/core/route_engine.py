"""Batched vectorized routing over shared CSR snapshots.

The scalar routers in :mod:`repro.routing` walk :class:`Graph` objects
one hop at a time — the semantic reference, but three orders of
magnitude too slow for the millions of (source, target) queries the
serving tier answers.  This module advances *all* active queries in
lockstep: per-query state lives in flat arrays, and every hop is one
round of vectorized kernels over the :class:`~repro.core.soa.SoaSnapshot`
CSR adjacency (greedy and compass steps, right-hand-rule face recovery
over a precomputed per-directed-edge angle table, exact-predicate
segment crossings for face changes).

Tie-break contract (pinned; the scalar reference and the batch kernels
implement it exactly, and the bench tripwire compares them path for
path):

* **greedy** — among neighbors strictly closer to the target (squared
  Euclidean distance), take the minimum; ties break to the lowest node
  id (the scalar scan iterates ids ascending with a strict ``<``).
* **compass** — a neighbor that *is* the target wins immediately;
  otherwise minimize the angular deviation at the current node between
  the target direction and the neighbor direction, compared as the
  negated cosine ``-(dot / sqrt(na2 * nb2))`` (sqrt and division are
  correctly rounded, so scalar and batch compute the identical key;
  ``acos`` implementations round apart and flip mathematical ties);
  zero-length arms (coincident points) are skipped; ties break to the
  lowest id.
* **right-hand rule** (face recovery) — minimize the counterclockwise
  sweep ``(theta - reference) mod 2*pi`` in ``(0, 2*pi]`` (sweeps
  ``<= 1e-12`` snap to a full turn), excluding the arrival edge and
  coincident neighbors; ties break to the lowest id; if nothing
  remains, bounce back along the arrival edge.  Every ``theta`` —
  the per-edge table and the face-entry reference — is computed with
  ``math.atan2`` exactly as the scalar walker does (``np.arctan2``
  rounds some inputs a ulp apart), and GPSR's resume test compares
  squared distances built from the same op sequence on both sides.

Parity contract: paths, hop counts, and terminal reasons are
hop-for-hop identical to the scalar reference.  Engine path lengths
accumulate per hop in the same order the scalar ``RouteResult.length``
folds them, but each hop is ``np.hypot`` where the scalar fold uses
``math.hypot`` — CPython's implementation and libm's may round a given
hop differently by one ulp, so lengths agree to ~1e-15 relative, not
bit for bit.  *Stitched* backbone lengths (:class:`BackboneRouter`)
additionally regroup the float summation at the entry/core/exit
seams.

Budget-boundary asymmetry (inherited from the scalar code, replicated
deliberately): greedy and compass check delivery *before* the hop
budget — a packet arriving on its last allowed hop is delivered — while
face recovery checks the budget first, so the same arrival reports
``hop-limit``.

Without numpy every entry point falls back to looping the scalar
routers, so results are identical across environments.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.compat import HAVE_SCIPY, get_numpy
from repro.core.soa import SoaSnapshot, gather_csr_rows, snapshot_for
from repro.graphs.graph import Graph
from repro.routing.compass import compass_route
from repro.routing.gpsr import gpsr_route
from repro.routing.greedy import RouteResult, greedy_route

__all__ = [
    "METHODS",
    "REASON_STRINGS",
    "BatchRouteResult",
    "RouteEngine",
    "BackboneRouter",
    "component_labels_for",
    "replay_failures",
]

#: Terminal reason codes shared by every kernel (indices into
#: :data:`REASON_STRINGS`, matching the scalar reason strings).
DELIVERED, STUCK, LOOP, HOP_LIMIT = 0, 1, 2, 3
REASON_STRINGS = ("delivered", "stuck", "loop", "hop-limit")
_REASON_CODES = {s: i for i, s in enumerate(REASON_STRINGS)}

#: Batch methods answered by :meth:`RouteEngine.route_pairs`.
METHODS = ("greedy", "compass", "gpsr")

#: Queries advanced per kernel invocation (bounds peak memory).
DEFAULT_CHUNK = 1 << 18

#: Budget for the compass departure bitset per chunk (bytes); the
#: chunk shrinks so ``chunk * ceil(n / 8)`` stays under this.
_COMPASS_BITSET_BYTES = 48 << 20

#: Straggler bailout: when at most ``max(_BAIL_ACTIVE, k / 256)``
#: queries are still active after ``_BAIL_ROUNDS`` frontier rounds,
#: the kernel stops and the stragglers re-route through the scalar
#: reference (identical paths, by the parity contract).  A handful of
#: pathological walks — GPSR burning its whole budget on a non-planar
#: graph — would otherwise pin thousands of near-empty vectorized
#: rounds on fixed per-round overhead.
_BAIL_ACTIVE = 32
_BAIL_ROUNDS = 192

_TWO_PI = 2.0 * math.pi


def _atan2_exact(np: Any, ys: Any, xs: Any) -> Any:
    """Elementwise ``math.atan2`` over arrays.

    ``np.arctan2`` (numpy's SIMD routine) and ``math.atan2`` (libm) can
    round the same input a ulp apart, which flips right-hand-rule
    winners on mathematically tied sweeps — e.g. two neighbors in the
    exact same direction at different ranges.  The parity contract pins
    angle tables to the scalar walker's ``math.atan2``; the loop runs
    once per snapshot (and on the small face-entry frontier), not per
    hop.
    """
    out = np.empty(ys.shape[0], dtype=np.float64)
    atan2 = math.atan2
    for i in range(out.shape[0]):
        out[i] = atan2(ys[i], xs[i])
    return out


def _hypot_exact(np: Any, xs: Any, ys: Any) -> Any:
    """Elementwise ``math.hypot`` over arrays (see :func:`_atan2_exact`).

    Used where the result feeds an *ordering* (GPSR's resume distance);
    plain length accumulation stays on ``np.hypot``.
    """
    out = np.empty(xs.shape[0], dtype=np.float64)
    hypot = math.hypot
    for i in range(out.shape[0]):
        out[i] = hypot(xs[i], ys[i])
    return out


# -- shared array helpers -----------------------------------------------------


def _segment_argmin(np: Any, key: Any, counts: Any) -> Tuple[Any, Any]:
    """First index of the minimum per ragged segment.

    ``counts`` must be all-positive (callers pre-filter empty rows —
    ``reduceat`` misbehaves on empty segments).  Returns ``(sel,
    seg_min)``; when a segment's minimum is ``inf`` its ``sel`` entry
    is out of range and must be masked via ``isfinite(seg_min)``.
    First-occurrence-of-min over ascending-sorted CSR rows *is* the
    lowest-id tie-break the scalar scans implement.
    """
    total = key.shape[0]
    segs = counts.shape[0]
    starts = np.zeros(segs, dtype=np.int64)
    if segs > 1:
        np.cumsum(counts[:-1], out=starts[1:])
    seg_min = np.minimum.reduceat(key, starts)
    owner = np.repeat(np.arange(segs), counts)
    firsts = np.where(key == seg_min[owner], np.arange(total), total)
    sel = np.minimum.reduceat(firsts, starts)
    return sel, seg_min


def _gather_entries(np: Any, indptr: Any, rows: Any) -> Tuple[Any, Any, Any]:
    """Like :func:`gather_csr_rows` but yielding flat CSR entry indices.

    Returns ``(owner, entry, counts)`` where ``entry`` indexes into the
    flat ``indices`` array — so per-directed-edge side tables (angles,
    coincidence flags) can be gathered alongside the neighbor ids.
    """
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    owner = np.repeat(np.arange(rows.shape[0]), counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return owner, starts[owner] + offsets, counts


def _on_segment_batch(
    np: Any, px: Any, py: Any, qx: Any, qy: Any, rx: Any, ry: Any
) -> Any:
    """Elementwise :func:`repro.geometry.predicates.on_segment`."""
    return (
        (np.minimum(px, qx) - 1e-12 <= rx)
        & (rx <= np.maximum(px, qx) + 1e-12)
        & (np.minimum(py, qy) - 1e-12 <= ry)
        & (ry <= np.maximum(py, qy) + 1e-12)
    )


def _crossing_points_batch(
    np: Any, ax: Any, ay: Any, bx: Any, by: Any, cx: Any, cy: Any, dx: Any, dy: Any
) -> Tuple[Any, Any, Any]:
    """Elementwise ``face._segment_crossing_point`` over coordinate arrays.

    Replicates the hardened scalar function branch for branch — the
    collinear/degenerate contacts go through the same snapped
    orientation predicate and return endpoint coordinates exactly, the
    general-position rows take the identical parametric formula — so
    face-change decisions agree with the scalar walker bit for bit.
    Returns ``(has_crossing, px, py)``.
    """
    from repro.geometry.predicates import orientation_codes_batch

    o1 = orientation_codes_batch(ax, ay, bx, by, cx, cy)
    o2 = orientation_codes_batch(ax, ay, bx, by, dx, dy)
    o3 = orientation_codes_batch(cx, cy, dx, dy, ax, ay)
    o4 = orientation_codes_batch(cx, cy, dx, dy, bx, by)
    m = ax.shape[0]
    has = np.zeros(m, dtype=bool)
    px = np.zeros(m, dtype=np.float64)
    py = np.zeros(m, dtype=np.float64)
    # ab collinear with the cd line: no single crossing (scalar returns
    # None before any endpoint branch).
    decided = (o3 == 0) & (o4 == 0)
    # Endpoint-contact branches in scalar priority order; a collinear
    # code whose endpoint misses the segment does NOT decide the row.
    for oc, ex, ey, sx1, sy1, sx2, sy2 in (
        (o3, ax, ay, cx, cy, dx, dy),
        (o4, bx, by, cx, cy, dx, dy),
        (o1, cx, cy, ax, ay, bx, by),
        (o2, dx, dy, ax, ay, bx, by),
    ):
        hit = (
            ~decided
            & (oc == 0)
            & _on_segment_batch(np, sx1, sy1, sx2, sy2, ex, ey)
        )
        if hit.any():
            px[hit] = ex[hit]
            py[hit] = ey[hit]
            has[hit] = True
            decided |= hit
    gen = ~decided & (o1 != o2) & (o3 != o4)
    if gen.any():
        rx = bx - ax
        ry = by - ay
        sx = dx - cx
        sy = dy - cy
        denom = rx * sy - ry * sx
        ok = gen & (np.abs(denom) >= 1e-15)
        with np.errstate(divide="ignore", invalid="ignore"):
            t = ((cx - ax) * sy - (cy - ay) * sx) / denom
        px[ok] = ax[ok] + t[ok] * rx[ok]
        py[ok] = ay[ok] + t[ok] * ry[ok]
        has[ok] = True
    return has, px, py


def _assemble_paths(
    np: Any, sources: Any, hops: Any, steps_q: List[Any], steps_v: List[Any]
) -> Tuple[Any, Any]:
    """Flat CSR path arrays from per-iteration (query, next-node) records.

    ``steps_q``/``steps_v`` hold, for every kernel iteration, the
    queries that moved and the node each moved to; a stable sort by
    query id preserves the per-query chronological order, after which
    the nodes scatter into one flat array at offsets derived from the
    per-query hop counts.
    """
    k = sources.shape[0]
    counts = hops
    indptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(counts + 1, out=indptr[1:])
    nodes = np.empty(int(indptr[-1]), dtype=np.int64)
    nodes[indptr[:-1]] = sources
    if steps_q:
        qs = np.concatenate(steps_q)
        vs = np.concatenate(steps_v)
        order = np.argsort(qs, kind="stable")
        total = qs.shape[0]
        within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        nodes[np.repeat(indptr[:-1] + 1, counts) + within] = vs[order]
    return indptr, nodes


def component_labels_for(graph: Graph) -> Sequence[int]:
    """Connected-component label per node (scipy when present).

    Used for the ``unreachable_pairs`` accounting that mirrors
    ``StretchStats`` semantics: a pair whose endpoints sit in different
    UDG components can never be delivered and is reported separately
    from routing failures.
    """
    np = get_numpy()
    snap = snapshot_for(graph) if np is not None else None
    if np is not None and snap is not None and HAVE_SCIPY:
        try:
            from scipy.sparse import csr_matrix as _csr
            from scipy.sparse.csgraph import connected_components as _cc

            mat = _csr(
                (
                    np.ones(snap.indices.shape[0], dtype=np.int8),
                    snap.indices,
                    snap.indptr,
                ),
                shape=(snap.n, snap.n),
            )
            _, labels = _cc(mat, directed=False)
            return labels.astype(np.int64)
        except Exception:  # pragma: no cover - scipy edge cases
            pass
    n = graph.node_count
    parent = list(range(n))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for u, v in graph.edges():
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    labels = [find(v) for v in range(n)]
    if np is not None:
        return np.asarray(labels, dtype=np.int64)
    return labels


# -- batch result -------------------------------------------------------------


@dataclass
class BatchRouteResult:
    """Outcome arrays for one batch of routing queries.

    ``reasons`` holds per-pair codes indexing :data:`REASON_STRINGS`;
    ``hops``/``lengths`` are per-pair totals.  ``path_indptr`` /
    ``path_nodes`` form a flat CSR over the per-pair paths and are
    ``None`` when the batch ran with ``keep_paths=False`` (the
    million-pair regime).  ``unreachable`` marks pairs whose endpoints
    lie in different components of the routed graph — the same
    semantics as ``StretchStats.unreachable_pairs``.  All fields are
    numpy arrays on the vectorized path and plain lists on the
    no-numpy fallback.
    """

    method: str
    sources: Any
    targets: Any
    reasons: Any
    hops: Any
    lengths: Any
    path_indptr: Any = None
    path_nodes: Any = None
    unreachable: Any = None

    @property
    def pairs(self) -> int:
        return len(self.sources)

    @property
    def delivered_count(self) -> int:
        if hasattr(self.reasons, "dtype"):
            return int((self.reasons == DELIVERED).sum())
        return sum(1 for r in self.reasons if r == DELIVERED)

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction over *all* pairs (unreachable included)."""
        return self.delivered_count / self.pairs if self.pairs else 0.0

    @property
    def unreachable_pairs(self) -> int:
        if self.unreachable is None:
            return 0
        if hasattr(self.unreachable, "dtype"):
            return int(self.unreachable.sum())
        return sum(1 for u in self.unreachable if u)

    @property
    def reachable_delivery_rate(self) -> float:
        """Delivered fraction over the pairs that *can* be delivered."""
        reachable = self.pairs - self.unreachable_pairs
        return self.delivered_count / reachable if reachable else 0.0

    def reason(self, i: int) -> str:
        return REASON_STRINGS[int(self.reasons[i])]

    def reason_counts(self) -> Dict[str, int]:
        out = {name: 0 for name in REASON_STRINGS}
        for r in self.reasons:
            out[REASON_STRINGS[int(r)]] += 1
        return out

    def path(self, i: int) -> Tuple[int, ...]:
        if self.path_indptr is None:
            raise ValueError("batch ran with keep_paths=False; no paths kept")
        lo, hi = int(self.path_indptr[i]), int(self.path_indptr[i + 1])
        return tuple(int(v) for v in self.path_nodes[lo:hi])

    def result(self, i: int) -> RouteResult:
        """The i-th query as a scalar-compatible :class:`RouteResult`."""
        return RouteResult(
            self.path(i), int(self.reasons[i]) == DELIVERED, self.reason(i)
        )

    def results(self) -> Iterator[RouteResult]:
        for i in range(self.pairs):
            yield self.result(i)

    def hops_avg(self) -> float:
        """Mean hop count over delivered pairs (0.0 when none)."""
        delivered = self.delivered_count
        if not delivered:
            return 0.0
        if hasattr(self.reasons, "dtype"):
            total = int(self.hops[self.reasons == DELIVERED].sum())
        else:
            total = sum(
                h for h, r in zip(self.hops, self.reasons) if r == DELIVERED
            )
        return total / delivered

    def length_avg(self) -> float:
        """Mean Euclidean path length over delivered pairs."""
        delivered = self.delivered_count
        if not delivered:
            return 0.0
        if hasattr(self.reasons, "dtype"):
            total = float(self.lengths[self.reasons == DELIVERED].sum())
        else:
            total = sum(
                ln for ln, r in zip(self.lengths, self.reasons) if r == DELIVERED
            )
        return total / delivered

    def summary(self) -> Dict[str, Any]:
        """JSON-ready aggregate view (what the service returns)."""
        out: Dict[str, Any] = {
            "method": self.method,
            "pairs": self.pairs,
            "delivered": self.delivered_count,
            "delivery_rate": self.delivery_rate,
            "hops_avg": self.hops_avg(),
            "length_avg": self.length_avg(),
            "reasons": self.reason_counts(),
        }
        if self.unreachable is not None:
            out["unreachable_pairs"] = self.unreachable_pairs
            out["reachable_delivery_rate"] = self.reachable_delivery_rate
        return out


# -- the engine ---------------------------------------------------------------


class RouteEngine:
    """Frontier-synchronous batch router over one graph's CSR snapshot.

    Construct once per graph and reuse: the snapshot, the
    per-directed-edge angle tables (face recovery), and the component
    labels (unreachable accounting) are all built lazily and cached on
    the engine.  Thread-compatible for reads after the first call.
    """

    def __init__(self, graph: Graph, *, snapshot: Optional[SoaSnapshot] = None):
        self.graph = graph
        self._snapshot = snapshot
        self._tables: Optional[Tuple[Any, Tuple[Any, Any, Any]]] = None
        self._labels: Optional[Sequence[int]] = None

    # -- cached derived state -------------------------------------------

    def _snap(self) -> Optional[SoaSnapshot]:
        if self._snapshot is not None:
            return self._snapshot
        return snapshot_for(self.graph)

    def _tables_for(self, np: Any, snap: SoaSnapshot) -> Tuple[Any, Any, Any]:
        """Per-directed-edge ``(theta, dir_keys, coincident)`` tables.

        ``theta[e]`` is ``atan2`` of CSR entry ``e``'s direction,
        ``dir_keys[e] = u * n + v`` (globally strictly ascending, so
        ``searchsorted`` resolves any directed edge in O(log E)), and
        ``coincident[e]`` flags zero-length directions (skipped by the
        right-hand rule, mirroring the hardened scalar walker).
        """
        cached = self._tables
        if cached is not None and cached[0] is snap:
            return cached[1]
        rep_u = np.repeat(np.arange(snap.n, dtype=np.int64), snap.degrees())
        dxs = snap.xs[snap.indices] - snap.xs[rep_u]
        dys = snap.ys[snap.indices] - snap.ys[rep_u]
        theta = _atan2_exact(np, dys, dxs)
        coincident = (dxs == 0.0) & (dys == 0.0)
        dir_keys = rep_u * snap.n + snap.indices
        tables = (theta, dir_keys, coincident)
        self._tables = (snap, tables)
        return tables

    def component_labels(self) -> Sequence[int]:
        """Component label per node of the routed graph (cached)."""
        if self._labels is None:
            self._labels = component_labels_for(self.graph)
        return self._labels

    # -- public API ------------------------------------------------------

    def route_pairs(
        self,
        pairs: Any,
        *,
        method: str = "gpsr",
        max_hops: Optional[int] = None,
        keep_paths: bool = True,
        chunk: Optional[int] = None,
        count_unreachable: bool = True,
    ) -> BatchRouteResult:
        """Route every ``(source, target)`` pair; returns batch arrays.

        ``method`` is one of :data:`METHODS`.  ``keep_paths=False``
        skips path materialization (hops/lengths/reasons only) — the
        mode for million-pair batches.  ``chunk`` bounds how many
        queries advance per kernel round (default
        :data:`DEFAULT_CHUNK`; compass shrinks it further so its
        departure bitset stays small).
        """
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; known: {METHODS}")
        np = get_numpy()
        snap = self._snap() if np is not None else None
        if np is None or snap is None:
            return self._route_pairs_scalar(
                pairs,
                method=method,
                max_hops=max_hops,
                keep_paths=keep_paths,
                count_unreachable=count_unreachable,
            )
        q = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        k = q.shape[0]
        n = snap.n
        if k and (int(q.min()) < 0 or int(q.max()) >= n):
            raise ValueError("pair endpoint out of range")
        if max_hops is None:
            max_hops = (8 * n + 64) if method == "gpsr" else (4 * n + 16)
        if chunk is None:
            chunk = DEFAULT_CHUNK
        chunk = max(1, int(chunk))
        if method == "compass":
            row_bytes = max(1, (n + 7) >> 3)
            chunk = min(chunk, max(1024, _COMPASS_BITSET_BYTES // row_bytes))
        src = np.ascontiguousarray(q[:, 0])
        tgt = np.ascontiguousarray(q[:, 1])
        reasons = np.zeros(k, dtype=np.int8)
        hops = np.zeros(k, dtype=np.int64)
        lengths = np.zeros(k, dtype=np.float64)
        chunk_paths: List[Tuple[Any, Any]] = []
        for lo in range(0, k, chunk):
            hi = min(k, lo + chunk)
            cs, ct = src[lo:hi], tgt[lo:hi]
            if method == "greedy":
                r, h, ln, sq, sv, left = _greedy_kernel(
                    np, snap, cs, ct, max_hops, keep_paths
                )
            elif method == "compass":
                r, h, ln, sq, sv, left = _compass_kernel(
                    np, snap, cs, ct, max_hops, keep_paths
                )
            else:
                tables = self._tables_for(np, snap)
                r, h, ln, sq, sv, left = _gpsr_kernel(
                    np, snap, tables, cs, ct, max_hops, keep_paths
                )
            if left.shape[0]:
                _drain_stragglers(
                    np, self.graph, method, cs, ct, max_hops,
                    keep_paths, left, r, h, ln, sq, sv,
                )
            reasons[lo:hi] = r
            hops[lo:hi] = h
            lengths[lo:hi] = ln
            if keep_paths:
                chunk_paths.append(_assemble_paths(np, cs, h, sq, sv))
        path_indptr = path_nodes = None
        if keep_paths:
            path_indptr, path_nodes = _merge_paths(np, k, chunk_paths)
        unreachable = None
        if count_unreachable:
            labels = self.component_labels()
            unreachable = labels[src] != labels[tgt]
        return BatchRouteResult(
            method=method,
            sources=src,
            targets=tgt,
            reasons=reasons,
            hops=hops,
            lengths=lengths,
            path_indptr=path_indptr,
            path_nodes=path_nodes,
            unreachable=unreachable,
        )

    # -- no-numpy fallback ----------------------------------------------

    def _route_pairs_scalar(
        self,
        pairs: Any,
        *,
        method: str,
        max_hops: Optional[int],
        keep_paths: bool,
        count_unreachable: bool,
    ) -> BatchRouteResult:
        """Loop the scalar routers; identical results, list-backed."""
        router = {
            "greedy": greedy_route,
            "compass": compass_route,
            "gpsr": gpsr_route,
        }[method]
        n = self.graph.node_count
        norm = [(int(s), int(t)) for s, t in pairs]
        for s, t in norm:
            if not (0 <= s < n and 0 <= t < n):
                raise ValueError("pair endpoint out of range")
        reasons: List[int] = []
        hops: List[int] = []
        lengths: List[float] = []
        indptr: List[int] = [0]
        nodes: List[int] = []
        for s, t in norm:
            res = router(self.graph, s, t, max_hops=max_hops)
            reasons.append(_REASON_CODES[res.reason])
            hops.append(res.hops)
            lengths.append(res.length(self.graph))
            if keep_paths:
                nodes.extend(res.path)
                indptr.append(len(nodes))
        unreachable: Optional[List[bool]] = None
        if count_unreachable:
            labels = self.component_labels()
            unreachable = [labels[s] != labels[t] for s, t in norm]
        return BatchRouteResult(
            method=method,
            sources=[s for s, _ in norm],
            targets=[t for _, t in norm],
            reasons=reasons,
            hops=hops,
            lengths=lengths,
            path_indptr=indptr if keep_paths else None,
            path_nodes=nodes if keep_paths else None,
            unreachable=unreachable,
        )


def _merge_paths(
    np: Any, k: int, chunk_paths: List[Tuple[Any, Any]]
) -> Tuple[Any, Any]:
    """Concatenate per-chunk CSR path arrays into one flat pair."""
    if not chunk_paths:
        return np.zeros(k + 1, dtype=np.int64), np.zeros(0, dtype=np.int64)
    if len(chunk_paths) == 1:
        return chunk_paths[0]
    parts = []
    offset = 0
    for ip, _ in chunk_paths:
        parts.append(ip[:-1] + offset)
        offset += int(ip[-1])
    parts.append(np.asarray([offset], dtype=np.int64))
    indptr = np.concatenate(parts)
    nodes = np.concatenate([nd for _, nd in chunk_paths])
    return indptr, nodes


# -- frontier kernels ---------------------------------------------------------


def _greedy_step(np: Any, snap: SoaSnapshot, cur: Any, tx: Any, ty: Any) -> Any:
    """Greedy next hop per query (-1 = local minimum).

    Exactly the scalar scan: minimum squared distance among neighbors
    strictly closer than the current node, ties to the lowest id.
    """
    xs, ys = snap.xs, snap.ys
    indptr, indices = snap.indptr, snap.indices
    nxt = np.full(cur.shape[0], -1, dtype=np.int64)
    deg = indptr[cur + 1] - indptr[cur]
    nz = np.nonzero(deg > 0)[0]
    if not nz.shape[0]:
        return nxt
    rows = cur[nz]
    txr, tyr = tx[nz], ty[nz]
    owner, nbr = gather_csr_rows(np, indptr, indices, rows)
    dxc = xs[rows] - txr
    dyc = ys[rows] - tyr
    cur_d = dxc * dxc + dyc * dyc
    dxn = xs[nbr] - txr[owner]
    dyn = ys[nbr] - tyr[owner]
    d = dxn * dxn + dyn * dyn
    key = np.where(d < cur_d[owner], d, np.inf)
    sel, seg_min = _segment_argmin(np, key, deg[nz])
    hit = np.nonzero(np.isfinite(seg_min))[0]
    nxt[nz[hit]] = nbr[sel[hit]]
    return nxt


def _greedy_kernel(
    np: Any,
    snap: SoaSnapshot,
    src: Any,
    tgt: Any,
    max_hops: int,
    record: bool,
) -> Tuple[Any, Any, Any, List[Any], List[Any]]:
    """All queries advance one greedy hop per round until settled."""
    xs, ys = snap.xs, snap.ys
    k = src.shape[0]
    cur = src.copy()
    reasons = np.zeros(k, dtype=np.int8)
    hops = np.zeros(k, dtype=np.int64)
    lengths = np.zeros(k, dtype=np.float64)
    tx, ty = xs[tgt], ys[tgt]
    active = np.arange(k)
    leftover = np.zeros(0, dtype=np.int64)
    rounds = 0
    steps_q: List[Any] = []
    steps_v: List[Any] = []
    while active.shape[0]:
        if rounds >= _BAIL_ROUNDS and active.shape[0] <= max(
            _BAIL_ACTIVE, k >> 8
        ):
            leftover = active
            break
        rounds += 1
        done = cur[active] == tgt[active]
        if done.any():
            reasons[active[done]] = DELIVERED
            active = active[~done]
            if not active.shape[0]:
                break
        over = hops[active] >= max_hops
        if over.any():
            reasons[active[over]] = HOP_LIMIT
            active = active[~over]
            if not active.shape[0]:
                break
        nxt = _greedy_step(np, snap, cur[active], tx[active], ty[active])
        stuck = nxt < 0
        if stuck.any():
            reasons[active[stuck]] = STUCK
            active = active[~stuck]
            nxt = nxt[~stuck]
            if not active.shape[0]:
                break
        mc = cur[active]
        lengths[active] += np.hypot(xs[mc] - xs[nxt], ys[mc] - ys[nxt])
        hops[active] += 1
        cur[active] = nxt
        if record:
            steps_q.append(active.copy())
            steps_v.append(nxt)
    return reasons, hops, lengths, steps_q, steps_v, leftover


def _compass_step(
    np: Any, snap: SoaSnapshot, cur: Any, tgt: Any, tx: Any, ty: Any
) -> Any:
    """Compass next hop per query (-1 = no usable neighbor).

    The scalar scan exactly: a neighbor equal to the target wins
    outright, zero-length arms are skipped, otherwise the minimum
    angular deviation at the current node wins with ties to the lowest
    id.  The key is the scalar's negated cosine
    ``-(dot / sqrt(na2 * nb2))`` — sqrt and division are correctly
    rounded, so the key is bit-identical to the scalar's (``arccos``
    would not be: numpy's and libm's round a ulp apart and flip
    mathematically tied neighbors).
    """
    xs, ys = snap.xs, snap.ys
    indptr, indices = snap.indptr, snap.indices
    nxt = np.full(cur.shape[0], -1, dtype=np.int64)
    deg = indptr[cur + 1] - indptr[cur]
    nz = np.nonzero(deg > 0)[0]
    if not nz.shape[0]:
        return nxt
    rows = cur[nz]
    owner, nbr = gather_csr_rows(np, indptr, indices, rows)
    hx, hy = xs[rows], ys[rows]
    axv = tx[nz] - hx
    ayv = ty[nz] - hy
    na2 = axv * axv + ayv * ayv
    bxv = xs[nbr] - hx[owner]
    byv = ys[nbr] - hy[owner]
    nb2 = bxv * bxv + byv * byv
    denom = np.sqrt(na2[owner] * nb2)
    ok = denom > 0.0
    dot = axv[owner] * bxv + ayv[owner] * byv
    key = np.full(denom.shape[0], np.inf, dtype=np.float64)
    np.divide(-dot, denom, out=key, where=ok)
    key = np.where(nbr == tgt[nz][owner], -2.0, key)
    sel, seg_min = _segment_argmin(np, key, deg[nz])
    hit = np.nonzero(np.isfinite(seg_min))[0]
    nxt[nz[hit]] = nbr[sel[hit]]
    return nxt


def _compass_kernel(
    np: Any,
    snap: SoaSnapshot,
    src: Any,
    tgt: Any,
    max_hops: int,
    record: bool,
) -> Tuple[Any, Any, Any, List[Any], List[Any]]:
    """Compass rounds with per-query departure bitsets for loop checks.

    The scalar router detects loops by revisiting a *directed edge*;
    since the compass next hop is a deterministic function of
    (current, target), an edge revisit happens exactly when a query
    departs the same node twice — so one bit per (query, node) is the
    whole loop state.
    """
    xs, ys = snap.xs, snap.ys
    k = src.shape[0]
    n = snap.n
    cur = src.copy()
    reasons = np.zeros(k, dtype=np.int8)
    hops = np.zeros(k, dtype=np.int64)
    lengths = np.zeros(k, dtype=np.float64)
    visited = np.zeros((k, max(1, (n + 7) >> 3)), dtype=np.uint8)
    tx, ty = xs[tgt], ys[tgt]
    active = np.arange(k)
    leftover = np.zeros(0, dtype=np.int64)
    rounds = 0
    steps_q: List[Any] = []
    steps_v: List[Any] = []
    while active.shape[0]:
        if rounds >= _BAIL_ROUNDS and active.shape[0] <= max(
            _BAIL_ACTIVE, k >> 8
        ):
            leftover = active
            break
        rounds += 1
        done = cur[active] == tgt[active]
        if done.any():
            reasons[active[done]] = DELIVERED
            active = active[~done]
            if not active.shape[0]:
                break
        over = hops[active] >= max_hops
        if over.any():
            reasons[active[over]] = HOP_LIMIT
            active = active[~over]
            if not active.shape[0]:
                break
        nxt = _compass_step(
            np, snap, cur[active], tgt[active], tx[active], ty[active]
        )
        stuck = nxt < 0
        if stuck.any():
            reasons[active[stuck]] = STUCK
            active = active[~stuck]
            nxt = nxt[~stuck]
            if not active.shape[0]:
                break
        mc = cur[active]
        bidx = mc >> 3
        bit = (1 << (mc & 7)).astype(np.uint8)
        seen = (visited[active, bidx] & bit) != 0
        if seen.any():
            reasons[active[seen]] = LOOP
            active = active[~seen]
            nxt = nxt[~seen]
            if not active.shape[0]:
                break
            mc = cur[active]
            bidx = mc >> 3
            bit = (1 << (mc & 7)).astype(np.uint8)
        visited[active, bidx] |= bit
        lengths[active] += np.hypot(xs[mc] - xs[nxt], ys[mc] - ys[nxt])
        hops[active] += 1
        cur[active] = nxt
        if record:
            steps_q.append(active.copy())
            steps_v.append(nxt)
    return reasons, hops, lengths, steps_q, steps_v, leftover


def _rhr_step(
    np: Any,
    snap: SoaSnapshot,
    tables: Tuple[Any, Any, Any],
    cur: Any,
    came: Any,
    tx: Any,
    ty: Any,
) -> Any:
    """Right-hand-rule next hop per query (-1 = stuck).

    Reference direction is toward the target on face entry
    (``came < 0``) and toward the arrival node otherwise; the minimum
    counterclockwise sweep in ``(0, 2*pi]`` wins (sweeps <= 1e-12
    snap to a full turn), excluding the arrival edge and coincident
    neighbors, ties to the lowest id; an emptied row bounces back
    along the arrival edge when there is one.
    """
    theta, dir_keys, coincident = tables
    xs, ys = snap.xs, snap.ys
    indptr, indices = snap.indptr, snap.indices
    n = snap.n
    nxt = np.full(cur.shape[0], -1, dtype=np.int64)
    deg = indptr[cur + 1] - indptr[cur]
    nz = np.nonzero(deg > 0)[0]
    if not nz.shape[0]:
        return nxt
    rows = cur[nz]
    came_nz = came[nz]
    ref = np.empty(nz.shape[0], dtype=np.float64)
    entry_mode = came_nz < 0
    if entry_mode.any():
        em = np.nonzero(entry_mode)[0]
        ref[em] = _atan2_exact(
            np, ty[nz[em]] - ys[rows[em]], tx[nz[em]] - xs[rows[em]]
        )
    back_mode = ~entry_mode
    if back_mode.any():
        bm = np.nonzero(back_mode)[0]
        # theta[cur -> came] via the globally ascending directed keys.
        pos = np.searchsorted(dir_keys, rows[bm] * n + came_nz[bm])
        ref[bm] = theta[pos]
    owner, entry, counts = _gather_entries(np, indptr, rows)
    nbr = indices[entry]
    sweep = np.mod(theta[entry] - ref[owner], _TWO_PI)
    sweep = np.where(sweep <= 1e-12, _TWO_PI, sweep)
    key = np.where(
        (nbr == came_nz[owner]) | coincident[entry], np.inf, sweep
    )
    sel, seg_min = _segment_argmin(np, key, counts)
    found = np.isfinite(seg_min)
    hit = np.nonzero(found)[0]
    nxt[nz[hit]] = nbr[sel[hit]]
    # Dead-end bounce: nothing selectable but we arrived over an edge.
    bounce = np.nonzero(~found & (came_nz >= 0))[0]
    nxt[nz[bounce]] = came_nz[bounce]
    return nxt


def _gpsr_kernel(
    np: Any,
    snap: SoaSnapshot,
    tables: Tuple[Any, Any, Any],
    src: Any,
    tgt: Any,
    max_hops: int,
    record: bool,
) -> Tuple[Any, Any, Any, List[Any], List[Any]]:
    """GPSR as a two-mode state machine advanced in lockstep.

    Per query: greedy until a local minimum, then face recovery
    (right-hand rule with face changes at crossings of the
    face-entry -> target segment) until a node strictly closer than
    the stuck point, then greedy again — exactly the scalar
    ``gpsr_route``/``face_route`` pair, including its check ordering
    and budget-boundary asymmetry (see module docstring).  Mode
    transitions consume no hop; the per-leg face state (face entry
    point, arrival edge, first walked edge, switch count, switch cap,
    resume distance) lives in flat arrays.
    """
    xs, ys = snap.xs, snap.ys
    k = src.shape[0]
    cur = src.copy()
    settled = np.zeros(k, dtype=bool)
    reasons = np.zeros(k, dtype=np.int8)
    hops = np.zeros(k, dtype=np.int64)
    lengths = np.zeros(k, dtype=np.float64)
    budget = np.full(k, max_hops, dtype=np.int64)
    mode = np.zeros(k, dtype=np.int8)  # 0 = greedy, 1 = face
    came = np.full(k, -1, dtype=np.int64)
    fe_x = np.zeros(k, dtype=np.float64)
    fe_y = np.zeros(k, dtype=np.float64)
    first_u = np.full(k, -1, dtype=np.int64)
    first_v = np.full(k, -1, dtype=np.int64)
    switches = np.zeros(k, dtype=np.int64)
    leg_cap = np.zeros(k, dtype=np.int64)
    leg_src = np.full(k, -1, dtype=np.int64)
    resume_d = np.zeros(k, dtype=np.float64)
    tx, ty = xs[tgt], ys[tgt]
    leftover = np.zeros(0, dtype=np.int64)
    rounds = 0
    steps_q: List[Any] = []
    steps_v: List[Any] = []

    def finish(idx: Any, code: int) -> None:
        reasons[idx] = code
        settled[idx] = True

    while True:
        live = np.nonzero(~settled)[0]
        if not live.shape[0]:
            break
        if rounds >= _BAIL_ROUNDS and live.shape[0] <= max(
            _BAIL_ACTIVE, k >> 8
        ):
            leftover = live
            break
        rounds += 1
        g = live[mode[live] == 0]
        f = live[mode[live] == 1]

        # ---- greedy legs (delivery checked before the budget) ----
        if g.shape[0]:
            done = cur[g] == tgt[g]
            if done.any():
                finish(g[done], DELIVERED)
                g = g[~done]
        if g.shape[0]:
            over = budget[g] <= 0
            if over.any():
                finish(g[over], HOP_LIMIT)
                g = g[~over]
        if g.shape[0]:
            nxt = _greedy_step(np, snap, cur[g], tx[g], ty[g])
            stuck = nxt < 0
            if stuck.any():
                # Local minimum: enter perimeter mode (no hop).
                sidx = g[stuck]
                sc = cur[sidx]
                mode[sidx] = 1
                leg_src[sidx] = sc
                fe_x[sidx] = xs[sc]
                fe_y[sidx] = ys[sc]
                came[sidx] = -1
                first_u[sidx] = -1
                first_v[sidx] = -1
                switches[sidx] = 0
                leg_cap[sidx] = budget[sidx]
                resume_d[sidx] = _hypot_exact(
                    np, xs[sc] - tx[sidx], ys[sc] - ty[sidx]
                )
                g = g[~stuck]
                nxt = nxt[~stuck]
            if g.shape[0]:
                mc = cur[g]
                lengths[g] += np.hypot(xs[mc] - xs[nxt], ys[mc] - ys[nxt])
                hops[g] += 1
                budget[g] -= 1
                cur[g] = nxt
                if record:
                    steps_q.append(g.copy())
                    steps_v.append(nxt)

        # ---- face legs (budget checked before delivery) ----
        if f.shape[0]:
            over = budget[f] <= 0
            if over.any():
                finish(f[over], HOP_LIMIT)
                f = f[~over]
        if f.shape[0]:
            done = cur[f] == tgt[f]
            if done.any():
                finish(f[done], DELIVERED)
                f = f[~done]
        if f.shape[0]:
            dxr = xs[cur[f]] - tx[f]
            dyr = ys[cur[f]] - ty[f]
            resume = (cur[f] != leg_src[f]) & (
                dxr * dxr + dyr * dyr < resume_d[f] * resume_d[f]
            )
            if resume.any():
                mode[f[resume]] = 0  # greedy resumes next round, no hop
                f = f[~resume]
        if f.shape[0]:
            nxt = _rhr_step(np, snap, tables, cur[f], came[f], tx[f], ty[f])
            stuck = nxt < 0
            if stuck.any():
                finish(f[stuck], STUCK)
                f = f[~stuck]
                nxt = nxt[~stuck]
        if f.shape[0]:
            fc = cur[f]
            has, px, py = _crossing_points_batch(
                np,
                xs[fc], ys[fc], xs[nxt], ys[nxt],
                fe_x[f], fe_y[f], tx[f], ty[f],
            )
            dxp = px - tx[f]
            dyp = py - ty[f]
            dxe = fe_x[f] - tx[f]
            dye = fe_y[f] - ty[f]
            change = has & (
                dxp * dxp + dyp * dyp < dxe * dxe + dye * dye - 1e-12
            )
            if change.any():
                cidx = f[change]
                fe_x[cidx] = px[change]
                fe_y[cidx] = py[change]
                came[cidx] = -1
                first_u[cidx] = -1
                first_v[cidx] = -1
                switches[cidx] += 1
                loops = switches[cidx] > leg_cap[cidx]
                if loops.any():
                    finish(cidx[loops], LOOP)
                f = f[~change]  # face change consumes no hop
                nxt = nxt[~change]
            if f.shape[0]:
                fresh = first_u[f] < 0
                if fresh.any():
                    first_u[f[fresh]] = cur[f[fresh]]
                    first_v[f[fresh]] = nxt[fresh]
                repeat = ~fresh & (first_u[f] == cur[f]) & (first_v[f] == nxt)
                if repeat.any():
                    # Full face tour without a change: unreachable.
                    finish(f[repeat], LOOP)
                    f = f[~repeat]
                    nxt = nxt[~repeat]
            if f.shape[0]:
                mc = cur[f]
                lengths[f] += np.hypot(xs[mc] - xs[nxt], ys[mc] - ys[nxt])
                hops[f] += 1
                budget[f] -= 1
                came[f] = mc
                cur[f] = nxt
                if record:
                    steps_q.append(f.copy())
                    steps_v.append(nxt)
    return reasons, hops, lengths, steps_q, steps_v, leftover


def _drain_stragglers(
    np: Any,
    graph: Graph,
    method: str,
    src: Any,
    tgt: Any,
    max_hops: int,
    record: bool,
    leftover: Any,
    reasons: Any,
    hops: Any,
    lengths: Any,
    steps_q: List[Any],
    steps_v: List[Any],
) -> None:
    """Finish bailed-out queries through the scalar reference router.

    The kernels hand over once a handful of stragglers would pin
    near-empty vectorized rounds; re-routing each from its original
    source through the scalar router yields the identical path by the
    parity contract.  Their partial step records are stripped so the
    reassembled paths contain exactly the scalar walk.
    """
    router = {
        "greedy": greedy_route,
        "compass": compass_route,
        "gpsr": gpsr_route,
    }[method]
    if record and steps_q:
        for i in range(len(steps_q)):
            keep = ~np.isin(steps_q[i], leftover)
            if not keep.all():
                steps_q[i] = steps_q[i][keep]
                steps_v[i] = steps_v[i][keep]
    for qi in leftover.tolist():
        res = router(graph, int(src[qi]), int(tgt[qi]), max_hops=max_hops)
        reasons[qi] = _REASON_CODES[res.reason]
        hops[qi] = res.hops
        lengths[qi] = res.length(graph)
        if record and res.hops:
            steps_q.append(np.full(res.hops, qi, dtype=np.int64))
            steps_v.append(np.asarray(res.path[1:], dtype=np.int64))


# -- backbone routing ---------------------------------------------------------


def _extract_backbone_parts(
    result: Any,
) -> Tuple[Graph, Graph, frozenset, Dict[int, frozenset]]:
    """Duck-typed extraction of (udg, backbone, nodes, dominator map).

    Accepts both backbone result shapes in the codebase — the
    construction-facing ``core.spanner.BackboneResult`` (``pipeline``
    attribute) and the protocol-facing ``BackbonePipelineResult``
    (``family`` attribute) — without importing either, so the engine
    stays below both layers.
    """
    udg = result.udg
    backbone = result.ldel_icds
    backbone_nodes = frozenset(result.backbone_nodes)
    fam = getattr(result, "family", None)
    if fam is None:
        fam = getattr(getattr(result, "pipeline", None), "family", None)
    if fam is not None:
        dom_map = {
            int(node): frozenset(doms)
            for node, doms in fam.clustering.dominators_of.items()
        }
    else:  # pragma: no cover - exotic result shapes
        dom_map = {
            v: frozenset(result.dominators_of(v)) for v in range(udg.node_count)
        }
    return udg, backbone, backbone_nodes, dom_map


class BackboneRouter:
    """Batch version of the paper's dominating-set routing procedure.

    Per pair: deliver in place (``s == t``), in one hop over a UDG
    edge, or via entry dominator -> backbone traversal -> exit
    dominator, exactly as ``backbone_route`` does it — but the
    backbone cores are deduplicated across the batch (many pairs share
    an (entry, exit)), answered by a :class:`RouteEngine` over the
    backbone CSR, and memoized per traversal mode, so repeat batches
    are near-free.  ``mode="shortest"`` answers cores with true
    shortest paths (Dijkstra over the backbone, reusing the
    :class:`~repro.core.oracle.DistanceOracle` snapshot when one is
    supplied) — the stretch-bounded reference the ``route-stretch``
    invariant measures the paper's Lemma 5/6 bounds against.

    Construct from a backbone build result, or from explicit parts
    (the failure-replay path, which feeds degraded graphs).
    """

    MODES = ("gpsr", "greedy", "shortest")

    def __init__(
        self,
        result: Any = None,
        *,
        udg: Optional[Graph] = None,
        backbone: Optional[Graph] = None,
        backbone_nodes: Any = None,
        dominators_of: Optional[Dict[int, Any]] = None,
        oracle: Any = None,
        cache_entries: int = 1_000_000,
    ) -> None:
        if result is not None:
            r_udg, r_bb, r_nodes, r_doms = _extract_backbone_parts(result)
            udg = udg if udg is not None else r_udg
            backbone = backbone if backbone is not None else r_bb
            backbone_nodes = (
                backbone_nodes if backbone_nodes is not None else r_nodes
            )
            dominators_of = (
                dominators_of if dominators_of is not None else r_doms
            )
        if udg is None or backbone is None or backbone_nodes is None:
            raise ValueError(
                "BackboneRouter needs a backbone result or explicit parts"
            )
        self.udg = udg
        self.backbone = backbone
        self.backbone_nodes = frozenset(backbone_nodes)
        self.dominators = dict(dominators_of or {})
        self.oracle = oracle
        self.engine = RouteEngine(backbone)
        # Entry map, the scalar `_entry_point` for every node at once:
        # itself for backbone nodes, else the lowest dominator, -1 none.
        entry: List[int] = []
        for v in range(udg.node_count):
            if v in self.backbone_nodes:
                entry.append(v)
            else:
                doms = self.dominators.get(v)
                entry.append(min(doms) if doms else -1)
        self._entry = entry
        self._entry_arr: Any = None
        self._udg_keys: Any = None
        self._labels: Optional[Sequence[int]] = None
        self._bb_snap: Any = None
        self._cache: Dict[str, Dict[Tuple[int, int], Any]] = {}
        self._cache_entries = cache_entries

    # -- cached derived state -------------------------------------------

    def _entry_array(self, np: Any) -> Any:
        if self._entry_arr is None:
            self._entry_arr = np.asarray(self._entry, dtype=np.int64)
        return self._entry_arr

    def _udg_dir_keys(self, np: Any, usnap: SoaSnapshot) -> Any:
        """Globally ascending ``u * n + v`` directed UDG edge keys."""
        if self._udg_keys is None:
            rep_u = np.repeat(
                np.arange(usnap.n, dtype=np.int64), usnap.degrees()
            )
            self._udg_keys = rep_u * usnap.n + usnap.indices
        return self._udg_keys

    def component_labels(self) -> Sequence[int]:
        """UDG component label per node (unreachable accounting)."""
        if self._labels is None:
            self._labels = component_labels_for(self.udg)
        return self._labels

    def _backbone_snapshot(self) -> Any:
        if self._bb_snap is None:
            from repro.core.oracle import GraphSnapshot

            if self.oracle is not None:
                self._bb_snap = self.oracle.snapshot_of(self.backbone)
            else:
                self._bb_snap = GraphSnapshot.from_graph(self.backbone)
        return self._bb_snap

    # -- public API ------------------------------------------------------

    def route_pairs(
        self,
        pairs: Any,
        *,
        mode: str = "gpsr",
        max_hops: Optional[int] = None,
        keep_paths: bool = True,
        use_cache: bool = True,
        count_unreachable: bool = True,
    ) -> BatchRouteResult:
        """Batch backbone routing; scalar-identical paths for gpsr/greedy.

        Stitched lengths can differ from the scalar left-to-right fold
        by float summation order only (paths, hops and reasons are
        exact).  ``use_cache=False`` bypasses the per-mode core route
        memo (the bench uses it for honest cold timings).
        """
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; known: {self.MODES}")
        np = get_numpy()
        usnap = snapshot_for(self.udg) if np is not None else None
        if np is None or usnap is None:
            return self._route_pairs_scalar(
                pairs,
                mode=mode,
                max_hops=max_hops,
                keep_paths=keep_paths,
                count_unreachable=count_unreachable,
            )
        q = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        k = q.shape[0]
        n = usnap.n
        if k and (int(q.min()) < 0 or int(q.max()) >= n):
            raise ValueError("pair endpoint out of range")
        s = np.ascontiguousarray(q[:, 0])
        t = np.ascontiguousarray(q[:, 1])
        xs, ys = usnap.xs, usnap.ys
        reasons = np.zeros(k, dtype=np.int8)
        hops = np.zeros(k, dtype=np.int64)
        lengths = np.zeros(k, dtype=np.float64)
        same = s == t
        keys = self._udg_dir_keys(np, usnap)
        if keys.shape[0]:
            probe = s * n + t
            pos = np.minimum(np.searchsorted(keys, probe), keys.shape[0] - 1)
            direct = ~same & (keys[pos] == probe)
        else:
            direct = np.zeros(k, dtype=bool)
        hops[direct] = 1
        lengths[direct] = np.hypot(
            xs[s[direct]] - xs[t[direct]], ys[s[direct]] - ys[t[direct]]
        )
        entry_arr = self._entry_array(np)
        es = entry_arr[s]
        et = entry_arr[t]
        routed = ~same & ~direct
        noent = routed & ((es < 0) | (et < 0))
        reasons[noent] = STUCK
        corey = routed & ~noent
        triv = corey & (es == et)
        core_hops = np.zeros(k, dtype=np.int64)
        core_len = np.zeros(k, dtype=np.float64)
        core_reason = np.zeros(k, dtype=np.int8)
        core_delivered = np.zeros(k, dtype=bool)
        core_delivered[triv] = True
        u_idx = np.nonzero(corey & ~triv)[0]
        core_path_of: Dict[int, Tuple[int, ...]] = {}
        if u_idx.shape[0]:
            ukeys = es[u_idx] * n + et[u_idx]
            uniq, inv = np.unique(ukeys, return_inverse=True)
            ur, uh, ul, up = self._resolve_cores(
                np,
                uniq // n,
                uniq % n,
                mode=mode,
                max_hops=max_hops,
                keep_paths=keep_paths,
                use_cache=use_cache,
            )
            core_reason[u_idx] = ur[inv]
            core_hops[u_idx] = uh[inv]
            core_len[u_idx] = ul[inv]
            core_delivered[u_idx] = ur[inv] == DELIVERED
            if keep_paths:
                for j, qi in enumerate(u_idx.tolist()):
                    core_path_of[qi] = up[int(inv[j])]
        head = corey & (s != es)
        tail = corey & core_delivered & (t != et)
        hops[corey] = core_hops[corey] + head[corey] + tail[corey]
        lengths[head] += np.hypot(
            xs[s[head]] - xs[es[head]], ys[s[head]] - ys[es[head]]
        )
        lengths[corey] += core_len[corey]
        lengths[tail] += np.hypot(
            xs[et[tail]] - xs[t[tail]], ys[et[tail]] - ys[t[tail]]
        )
        reasons[corey] = core_reason[corey]
        path_indptr = path_nodes = None
        if keep_paths:
            path_indptr, path_nodes = self._stitch_paths(
                np, s, t, es, same, direct, noent, triv, reasons, core_path_of
            )
        unreachable = None
        if count_unreachable:
            labels = self.component_labels()
            unreachable = labels[s] != labels[t]
        return BatchRouteResult(
            method=f"backbone-{mode}",
            sources=s,
            targets=t,
            reasons=reasons,
            hops=hops,
            lengths=lengths,
            path_indptr=path_indptr,
            path_nodes=path_nodes,
            unreachable=unreachable,
        )

    def _stitch_paths(
        self,
        np: Any,
        s: Any,
        t: Any,
        es: Any,
        same: Any,
        direct: Any,
        noent: Any,
        triv: Any,
        reasons: Any,
        core_path_of: Dict[int, Tuple[int, ...]],
    ) -> Tuple[Any, Any]:
        """Materialize stitched paths, replicating scalar ``_stitch``."""
        k = s.shape[0]
        sl, tl, esl = s.tolist(), t.tolist(), es.tolist()
        same_l, direct_l = same.tolist(), direct.tolist()
        noent_l, triv_l = noent.tolist(), triv.tolist()
        deliv_l = (reasons == DELIVERED).tolist()
        nodes: List[int] = []
        indptr: List[int] = [0]
        for i in range(k):
            if same_l[i] or noent_l[i]:
                nodes.append(sl[i])
            elif direct_l[i]:
                nodes.extend((sl[i], tl[i]))
            else:
                core = (esl[i],) if triv_l[i] else core_path_of[i]
                path = [sl[i]]
                for v in core:
                    if v != path[-1]:
                        path.append(int(v))
                if deliv_l[i] and path[-1] != tl[i]:
                    path.append(tl[i])
                nodes.extend(path)
            indptr.append(len(nodes))
        return (
            np.asarray(indptr, dtype=np.int64),
            np.asarray(nodes, dtype=np.int64),
        )

    def _resolve_cores(
        self,
        np: Any,
        usrc: Any,
        udst: Any,
        *,
        mode: str,
        max_hops: Optional[int],
        keep_paths: bool,
        use_cache: bool,
    ) -> Tuple[Any, Any, Any, List[Any]]:
        """Route the deduplicated (entry, exit) cores, memoized per mode."""
        m = usrc.shape[0]
        ur = np.zeros(m, dtype=np.int8)
        uh = np.zeros(m, dtype=np.int64)
        ul = np.zeros(m, dtype=np.float64)
        up: List[Any] = [None] * m
        cache = self._cache.setdefault(mode, {}) if use_cache else None
        miss: List[int] = []
        if cache is not None:
            for j in range(m):
                rec = cache.get((int(usrc[j]), int(udst[j])))
                if rec is None or (keep_paths and rec[3] is None):
                    miss.append(j)
                else:
                    ur[j], uh[j], ul[j] = rec[0], rec[1], rec[2]
                    up[j] = rec[3]
        else:
            miss = list(range(m))
        if miss:
            mi = np.asarray(miss, dtype=np.int64)
            if mode == "shortest":
                rr, rh, rl, rp = self._shortest_cores(np, usrc[mi], udst[mi])
            else:
                res = self.engine.route_pairs(
                    np.stack([usrc[mi], udst[mi]], axis=1),
                    method=mode,
                    max_hops=max_hops,
                    keep_paths=keep_paths,
                    count_unreachable=False,
                )
                rr, rh, rl = res.reasons, res.hops, res.lengths
                rp = (
                    [res.path(j) for j in range(len(miss))]
                    if keep_paths
                    else [None] * len(miss)
                )
            for jj, j in enumerate(miss):
                ur[j] = rr[jj]
                uh[j] = rh[jj]
                ul[j] = rl[jj]
                up[j] = rp[jj]
                if cache is not None:
                    if len(cache) >= self._cache_entries:
                        cache.clear()
                    cache[(int(usrc[j]), int(udst[j]))] = (
                        int(rr[jj]),
                        int(rh[jj]),
                        float(rl[jj]),
                        rp[jj],
                    )
        return ur, uh, ul, up

    def _shortest_cores(
        self, np: Any, usrc: Any, udst: Any
    ) -> Tuple[Any, Any, Any, List[Any]]:
        """True shortest-path cores over the backbone (Dijkstra)."""
        m = usrc.shape[0]
        rr = np.full(m, STUCK, dtype=np.int8)
        rh = np.zeros(m, dtype=np.int64)
        rl = np.zeros(m, dtype=np.float64)
        rp: List[Any] = [None] * m
        snap = self._backbone_snapshot()
        srcs = np.unique(usrc)
        if HAVE_SCIPY:
            from repro.core.compat import scipy_dijkstra

            dmat, pred = scipy_dijkstra(
                snap.csgraph("length"),
                directed=False,
                indices=srcs,
                return_predecessors=True,
            )
            row_of = {int(v): i for i, v in enumerate(srcs.tolist())}
            for j in range(m):
                si = row_of[int(usrc[j])]
                dn = int(udst[j])
                dval = float(dmat[si, dn])
                if not math.isfinite(dval):
                    continue
                path = [dn]
                while path[-1] != int(usrc[j]):
                    p = int(pred[si, path[-1]])
                    if p < 0:  # pragma: no cover - defensive
                        break
                    path.append(p)
                path.reverse()
                rr[j] = DELIVERED
                rh[j] = len(path) - 1
                rl[j] = dval
                rp[j] = tuple(path)
            return rr, rh, rl, rp
        # scipy-less fallback: heap Dijkstra per unique source over the
        # snapshot CSR (deterministic: lowest-id tie-break via the heap).
        import heapq

        indptr, indices, lens = snap.indptr, snap.indices, snap.lengths
        nn = snap.node_count
        for sv in srcs.tolist():
            sv = int(sv)
            distv = [math.inf] * nn
            parent = [-1] * nn
            distv[sv] = 0.0
            heap: List[Tuple[float, int]] = [(0.0, sv)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > distv[u]:
                    continue
                for ei in range(indptr[u], indptr[u + 1]):
                    v = indices[ei]
                    nd = d + lens[ei]
                    if nd < distv[v]:
                        distv[v] = nd
                        parent[v] = u
                        heapq.heappush(heap, (nd, v))
            for j in range(m):
                if int(usrc[j]) != sv:
                    continue
                dn = int(udst[j])
                if not math.isfinite(distv[dn]):
                    continue
                path = [dn]
                while path[-1] != sv:
                    path.append(parent[path[-1]])
                path.reverse()
                rr[j] = DELIVERED
                rh[j] = len(path) - 1
                rl[j] = distv[dn]
                rp[j] = tuple(path)
        return rr, rh, rl, rp

    # -- no-numpy fallback ----------------------------------------------

    def _route_pairs_scalar(
        self,
        pairs: Any,
        *,
        mode: str,
        max_hops: Optional[int],
        keep_paths: bool,
        count_unreachable: bool,
    ) -> BatchRouteResult:
        """Scalar per-pair backbone routing (identical semantics)."""
        from repro.graphs.paths import shortest_path
        from repro.routing.backbone_routing import _stitch

        n = self.udg.node_count
        norm = [(int(s), int(t)) for s, t in pairs]
        for s, t in norm:
            if not (0 <= s < n and 0 <= t < n):
                raise ValueError("pair endpoint out of range")
        reasons: List[int] = []
        hops: List[int] = []
        lengths: List[float] = []
        indptr: List[int] = [0]
        nodes: List[int] = []
        for s, t in norm:
            res = self._route_one_scalar(
                s, t, mode=mode, max_hops=max_hops, shortest=shortest_path,
                stitch=_stitch,
            )
            reasons.append(_REASON_CODES[res.reason])
            hops.append(res.hops)
            lengths.append(res.length(self.udg))
            if keep_paths:
                nodes.extend(res.path)
                indptr.append(len(nodes))
        unreachable: Optional[List[bool]] = None
        if count_unreachable:
            labels = self.component_labels()
            unreachable = [labels[s] != labels[t] for s, t in norm]
        return BatchRouteResult(
            method=f"backbone-{mode}",
            sources=[s for s, _ in norm],
            targets=[t for _, t in norm],
            reasons=reasons,
            hops=hops,
            lengths=lengths,
            path_indptr=indptr if keep_paths else None,
            path_nodes=nodes if keep_paths else None,
            unreachable=unreachable,
        )

    def _route_one_scalar(
        self,
        s: int,
        t: int,
        *,
        mode: str,
        max_hops: Optional[int],
        shortest: Any,
        stitch: Any,
    ) -> RouteResult:
        if s == t:
            return RouteResult((s,), True, "delivered")
        if self.udg.has_edge(s, t):
            return RouteResult((s, t), True, "delivered")
        entry, exit_ = self._entry[s], self._entry[t]
        if entry < 0 or exit_ < 0:
            return RouteResult((s,), False, "stuck")
        if entry == exit_:
            core = RouteResult((entry,), True, "delivered")
        elif mode == "gpsr":
            core = gpsr_route(self.backbone, entry, exit_, max_hops=max_hops)
        elif mode == "greedy":
            core = greedy_route(self.backbone, entry, exit_, max_hops=max_hops)
        else:
            found = shortest(self.backbone, entry, exit_)
            if found.found:
                core = RouteResult(found.nodes, True, "delivered")
            else:
                core = RouteResult((entry,), False, "stuck")
        if not core.delivered:
            return RouteResult(
                stitch(s, core.path, t, include_target=False),
                False,
                core.reason,
            )
        return RouteResult(
            stitch(s, core.path, t, include_target=True), True, "delivered"
        )


# -- failure replay -----------------------------------------------------------


def _as_list(values: Any) -> List[Any]:
    return values.tolist() if hasattr(values, "tolist") else list(values)


def replay_failures(
    result: Any,
    pairs: Any,
    *,
    node_loss: float = 0.0,
    link_loss: float = 0.0,
    seed: int = 0,
    mode: str = "gpsr",
    max_hops: Optional[int] = None,
    with_stretch: bool = True,
    oracle: Any = None,
) -> Dict[str, Any]:
    """Replay a failure scenario against a live backbone build.

    ``node_loss`` removes each node independently with that
    probability (the failed set is a deterministic function of
    ``seed``): failed nodes drop out of the UDG, the backbone, and the
    dominator sets — a node whose lowest dominator died enters the
    backbone at its lowest *surviving* dominator, modelling the
    protocol's local re-affiliation without a full re-election.  Pairs
    with a failed endpoint are tallied as ``endpoint_failed`` and not
    routed.  ``link_loss`` is a per-hop Bernoulli packet-loss
    probability applied to each delivered route as one draw with
    success probability ``(1 - p) ** hops`` (statistically identical
    to independent per-hop draws).

    Delivered-and-surviving routes are compared against shortest paths
    on the *intact* UDG, so the reported stretch shows what the
    degradation costs end to end.  Returns a JSON-ready summary:
    delivery rates (overall / among routed), failure tallies, and the
    stretch distribution of surviving routes.
    """
    udg, backbone, backbone_nodes, dom_map = _extract_backbone_parts(result)
    n = udg.node_count
    rng = random.Random(seed)
    failed = (
        frozenset(v for v in range(n) if rng.random() < node_loss)
        if node_loss > 0.0
        else frozenset()
    )
    if failed:
        alive_udg = Graph(
            udg.positions,
            (
                (u, v)
                for u, v in udg.edges()
                if u not in failed and v not in failed
            ),
            name=f"{udg.name}[degraded]",
        )
        alive_backbone = Graph(
            backbone.positions,
            (
                (u, v)
                for u, v in backbone.edges()
                if u not in failed and v not in failed
            ),
            name=f"{backbone.name}[degraded]",
        )
        alive_nodes = frozenset(backbone_nodes - failed)
        alive_doms = {
            node: frozenset(d for d in doms if d not in failed)
            for node, doms in dom_map.items()
            if node not in failed
        }
    else:
        alive_udg, alive_backbone = udg, backbone
        alive_nodes, alive_doms = backbone_nodes, dom_map

    norm = [(int(s), int(t)) for s, t in pairs]
    endpoint_failed = sum(1 for s, t in norm if s in failed or t in failed)
    routed_pairs = [(s, t) for s, t in norm if s not in failed and t not in failed]

    router = BackboneRouter(
        udg=alive_udg,
        backbone=alive_backbone,
        backbone_nodes=alive_nodes,
        dominators_of=alive_doms,
    )
    batch = router.route_pairs(
        routed_pairs,
        mode=mode,
        max_hops=max_hops,
        keep_paths=False,
        count_unreachable=True,
    )
    reasons = _as_list(batch.reasons)
    hops = _as_list(batch.hops)
    lengths = _as_list(batch.lengths)

    # Per-link loss: one Bernoulli draw per delivered route.
    link_rng = random.Random(seed + 1)
    survive = 1.0 - link_loss
    survived: List[int] = []
    dropped = 0
    for i, code in enumerate(reasons):
        if code != DELIVERED:
            continue
        if link_loss > 0.0 and link_rng.random() >= survive ** hops[i]:
            dropped += 1
        else:
            survived.append(i)

    stretch_vals: List[float] = []
    if with_stretch and survived:
        base = _intact_shortest_lengths(
            udg, [routed_pairs[i] for i in survived], oracle=oracle
        )
        for i, d_udg in zip(survived, base):
            if math.isfinite(d_udg) and d_udg > 0.0:
                stretch_vals.append(lengths[i] / d_udg)

    total = len(norm)
    delivered = batch.delivered_count
    return {
        "pairs": total,
        "mode": mode,
        "seed": seed,
        "node_loss": node_loss,
        "link_loss": link_loss,
        "failed_nodes": len(failed),
        "endpoint_failed": endpoint_failed,
        "routed": len(routed_pairs),
        "delivered": delivered,
        "link_dropped": dropped,
        "survived": len(survived),
        "unreachable_pairs": batch.unreachable_pairs,
        "delivery_rate": len(survived) / total if total else 0.0,
        "routed_delivery_rate": (
            delivered / len(routed_pairs) if routed_pairs else 0.0
        ),
        "stretch_samples": len(stretch_vals),
        "stretch_avg": (
            sum(stretch_vals) / len(stretch_vals) if stretch_vals else 0.0
        ),
        "stretch_max": max(stretch_vals) if stretch_vals else 0.0,
    }


def _intact_shortest_lengths(
    udg: Graph, pairs: Sequence[Tuple[int, int]], *, oracle: Any = None
) -> List[float]:
    """Shortest-path length on the intact UDG for each pair.

    Grouped by unique source; scipy Dijkstra over the oracle snapshot
    when available, the pure-Python Dijkstra otherwise.
    """
    sources = sorted({s for s, _ in pairs})
    rows: Dict[int, Any] = {}
    np = get_numpy()
    if np is not None and HAVE_SCIPY:
        from repro.core.compat import scipy_dijkstra
        from repro.core.oracle import GraphSnapshot

        if oracle is not None and oracle.matches(udg):
            snap = oracle.snapshot_of(udg)
        else:
            snap = GraphSnapshot.from_graph(udg)
        dmat = scipy_dijkstra(
            snap.csgraph("length"),
            directed=False,
            indices=np.asarray(sources, dtype=np.int64),
        )
        for i, s in enumerate(sources):
            rows[s] = dmat[i]
    else:
        from repro.graphs.paths import dijkstra_lengths

        for s in sources:
            rows[s] = dijkstra_lengths(udg, s)
    return [float(rows[s][t]) for s, t in pairs]
