"""The paper's power-attenuation model, as topology-level energy metrics.

Section I: "the power required to support a link between two nodes
separated by distance d is d^alpha, where alpha is a real constant
between 2 and 5."  A topology assigns each node the transmission
power of its longest incident link; these functions compute the
resulting per-node and network-wide energy figures so topologies can
be compared on the axis the sparseness is ultimately *for*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph

#: The paper's admissible path-loss exponent range.
MIN_ALPHA = 2.0
MAX_ALPHA = 5.0


@dataclass(frozen=True)
class PowerProfile:
    """Energy summary of one topology under the d^alpha model."""

    alpha: float
    #: Transmission power per node (longest incident link ^ alpha).
    node_power: tuple[float, ...]
    #: Sum of link costs (each undirected link charged once).
    total_link_energy: float

    @property
    def total_assigned_power(self) -> float:
        """Sum of per-node transmission powers (the radio's knob)."""
        return sum(self.node_power)

    @property
    def max_node_power(self) -> float:
        return max(self.node_power, default=0.0)

    @property
    def avg_node_power(self) -> float:
        if not self.node_power:
            return 0.0
        return sum(self.node_power) / len(self.node_power)


def _validate_alpha(alpha: float) -> None:
    if not MIN_ALPHA <= alpha <= MAX_ALPHA:
        raise ValueError(
            f"alpha={alpha} outside the paper's model range "
            f"[{MIN_ALPHA}, {MAX_ALPHA}]"
        )


def link_energy(graph: Graph, u: int, v: int, *, alpha: float = 2.0) -> float:
    """Energy to drive one link: ``|uv| ** alpha``."""
    _validate_alpha(alpha)
    return graph.edge_length(u, v) ** alpha


def power_profile(graph: Graph, *, alpha: float = 2.0) -> PowerProfile:
    """Energy summary of ``graph`` under exponent ``alpha``.

    A node with no incident links is assigned zero power (it listens
    only) — dominatees in the bare backbone graphs are the common
    case.
    """
    _validate_alpha(alpha)
    node_power = []
    for u in graph.nodes():
        longest = max(
            (graph.edge_length(u, v) for v in graph.neighbors(u)), default=0.0
        )
        node_power.append(longest**alpha)
    total = sum(
        graph.edge_length(u, v) ** alpha for u, v in graph.edges()
    )
    return PowerProfile(
        alpha=alpha,
        node_power=tuple(node_power),
        total_link_energy=total,
    )


def power_saving_ratio(
    sparse: Graph, dense: Graph, *, alpha: float = 2.0
) -> float:
    """Assigned-power ratio dense/sparse: how much the topology saves.

    Both graphs must share a node set.  A ratio above 1 means the
    sparse topology lets radios run at lower power.
    """
    if sparse.node_count != dense.node_count:
        raise ValueError("graphs must share the node set")
    sparse_total = power_profile(sparse, alpha=alpha).total_assigned_power
    dense_total = power_profile(dense, alpha=alpha).total_assigned_power
    if sparse_total == 0.0:
        return float("inf") if dense_total > 0.0 else 1.0
    return dense_total / sparse_total
