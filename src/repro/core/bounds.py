"""The paper's theoretical constants, as checkable functions.

Every lemma in the paper bounds some quantity by a constant or a
simple function; this module writes those bounds down so the test
suite can assert that *measured* values never exceed them, and so
users can see how loose the worst-case analysis is compared to the
simulation numbers (the paper's closing remark: "lower the constant
bounds ... using a tighter analysis").
"""

from __future__ import annotations

import math


def lemma1_max_dominators_per_dominatee() -> int:
    """Lemma 1: a dominatee has at most 5 adjacent dominators.

    Six dominator neighbors would force two of them within 60 degrees
    of each other, hence within one unit — contradicting independence.
    """
    return 5


def lemma2_dominators_within(k: float) -> int:
    """Lemma 2: dominators within distance ``k`` of any node.

    Dominators are pairwise more than one unit apart, so half-unit
    disks centered at them are disjoint and fit inside the radius
    ``k + 1/2`` disk: at most ((k + 1/2)^2) / (1/2)^2 = (2k + 1)^2.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    return int(math.floor((2.0 * k + 1.0) ** 2))


def connectors_per_2hop_pair() -> int:
    """At most 2 connectors serve a dominator pair two hops apart.

    Candidates live in the lune of the pair; any two candidates that
    can hear each other resolve by smallest ID, and at most two
    points of the lune are mutually out of range.
    """
    return 2


def connectors_per_3hop_pair() -> int:
    """At most 25 connectors serve a dominator pair three hops apart.

    At most five first-hop connectors claim (paper Section III-A.2),
    and each claim triggers at most five second-hop claims.
    """
    return 25


def lemma5_hop_bound(udg_hops: int) -> int:
    """Lemma 5: the CDS' path uses at most ``3h + 2`` hops.

    Each UDG hop expands to at most three backbone hops (dominator to
    dominator via at most two connectors), plus one hop into and one
    hop out of the backbone.
    """
    if udg_hops < 0:
        raise ValueError("hop count must be non-negative")
    return 3 * udg_hops + 2


def lemma6_length_bound(udg_length: float) -> float:
    """Lemma 6: the CDS' path length is at most ``6 * len + 5``.

    Every link is at most one unit, so path length is at most its hop
    count (Lemma 5's ``3h + 2``); and because any two adjacent links
    of a shortest path sum to more than one unit, ``h <= 2 * len + 1``.
    Composing: ``3 (2 len + 1) + 2``.
    """
    if udg_length < 0:
        raise ValueError("length must be non-negative")
    return 6.0 * udg_length + 5.0


def keil_gutwin_delaunay_stretch() -> float:
    """Keil & Gutwin: Del(V) is a spanner with stretch 4*sqrt(3)*pi/9."""
    return 4.0 * math.sqrt(3.0) * math.pi / 9.0


def ldel_length_stretch_bound() -> float:
    """Li et al.: LDel of a UDG inherits the Delaunay stretch constant.

    The paper's Lemma 7 proof uses ~2.5 as the working constant for
    the LDel path-length bound; the underlying constant is the
    Keil-Gutwin ratio (~2.42), which we round up the way the paper
    does.
    """
    return 2.5


def yao_stretch(k: int) -> float:
    """Yao graph length stretch: 1 / (1 - 2 sin(pi/k)), for k > 6."""
    if k <= 6:
        raise ValueError("the Yao stretch formula requires k > 6 cones")
    return 1.0 / (1.0 - 2.0 * math.sin(math.pi / k))


def lemma8_icds_degree_bound() -> int:
    """Lemma 8: ICDS node degree is at most 5 * c2 + 25 (loose form).

    A dominator connects only to connectors introduced by dominators
    within 3 units (at most ``lemma2_dominators_within(3)``), each
    introducing a bounded number of connectors; a connector adds at
    most 5 dominator links.  The paper's own constant is "very large";
    this returns the same style of generous bound for the tests.
    """
    return 5 * lemma2_dominators_within(2) + 25


def ldel_icds_hop_bound_per_link() -> int:
    """Lemma 7: backbone hops replacing one ICDS link are bounded.

    The LDel(ICDS) detour for one ICDS link stays inside the disk of
    radius 2.5 around an endpoint, which holds a bounded number of
    dominators and connectors; the paper's constant is c_2.5 + 25 *
    c_3.5-ish.  We expose the paper's area-argument form.
    """
    return lemma2_dominators_within(2.5) + 25 * lemma2_dominators_within(3.5)
