"""The one-call public API: :func:`build_backbone`.

Wraps the full distributed pipeline (clustering -> connectors -> ICDS
-> localized Delaunay planarization) and returns every structure the
paper studies, plus the message ledgers behind the communication-cost
figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.backbone import BackbonePipelineResult, run_backbone_pipeline
from repro.protocols.clustering import PriorityFn
from repro.sim.stats import MessageStats


@dataclass(frozen=True)
class BackboneResult:
    """All topologies of the paper for one deployment.

    Attributes mirror the paper's names: ``cds``, ``cds_prime`` (CDS'),
    ``icds``, ``icds_prime`` (ICDS'), ``ldel_icds`` (LDel(ICDS), the
    planar backbone), ``ldel_icds_prime`` (LDel(ICDS'), the spanning
    version every node participates in).
    """

    udg: UnitDiskGraph
    dominators: frozenset[int]
    connectors: frozenset[int]
    dominatees: frozenset[int]
    cds: Graph
    cds_prime: Graph
    icds: Graph
    icds_prime: Graph
    ldel_icds: Graph
    ldel_icds_prime: Graph
    stats_cds: MessageStats
    stats_icds: MessageStats
    stats_ldel: MessageStats
    pipeline: BackbonePipelineResult

    @property
    def backbone_nodes(self) -> frozenset[int]:
        return self.dominators | self.connectors

    def role_of(self, node: int) -> str:
        """'dominator', 'connector' or 'dominatee' for ``node``."""
        if node in self.dominators:
            return "dominator"
        if node in self.connectors:
            return "connector"
        return "dominatee"

    def dominators_of(self, node: int) -> frozenset[int]:
        """The adjacent dominators of a dominatee (empty for others)."""
        return self.pipeline.family.clustering.dominators_of.get(node, frozenset())


def build_backbone(
    points: Sequence[Point | tuple[float, float]],
    radius: float,
    *,
    priority: Optional[PriorityFn] = None,
    election: str = "smallest-id",
    mode: str = "protocol",
) -> BackboneResult:
    """Build the planar spanner backbone of the paper over ``points``.

    ``points`` are node positions (any (x, y) pairs); ``radius`` is the
    common transmission range.  Optional knobs select the clusterhead
    ``priority`` (default lowest ID) and the connector ``election``
    rule (default smallest ID) for the ablation studies, and ``mode``
    picks the protocol replay (default, the reference) or the
    bit-identical direct computation (``"fast"``).

    The UDG need not be connected; the structures are then built per
    component (the spanner guarantees apply within components).
    """
    pts = [Point(float(p[0]), float(p[1])) for p in points]
    udg = UnitDiskGraph(pts, radius)
    pipeline = run_backbone_pipeline(
        udg, priority=priority, election=election, mode=mode
    )
    family = pipeline.family
    return BackboneResult(
        udg=udg,
        dominators=family.dominators,
        connectors=family.connectors,
        dominatees=family.dominatees,
        cds=family.cds,
        cds_prime=family.cds_prime,
        icds=family.icds,
        icds_prime=family.icds_prime,
        ldel_icds=pipeline.ldel_icds,
        ldel_icds_prime=pipeline.ldel_icds_prime,
        stats_cds=pipeline.stats_cds,
        stats_icds=pipeline.stats_icds,
        stats_ldel=pipeline.stats_ldel,
        pipeline=pipeline,
    )
