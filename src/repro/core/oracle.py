"""Per-deployment distance oracle: cached APSP + vectorized stretch kernels.

The paper's measurement side — average/maximum length, hop, and power
stretch for Table I and Figures 8–12 — needs all-pairs shortest
distances on the UDG *and* on every measured topology, once per weight
kind.  Recomputing the UDG matrices for every stretch call (as the
straightforward implementation does) costs ~21 redundant APSPs per
deployment across the full topology family; reducing all n² pairs in a
pure-Python loop then dwarfs even that.

:class:`DistanceOracle` fixes both ends:

* each graph is **snapshotted once** into CSR-style flat adjacency +
  positions arrays (:class:`GraphSnapshot`);
* APSP matrices are **memoized** per (graph fingerprint, weight kind:
  hops / length / power-α) with hit/miss/seconds counters, so the UDG
  baseline matrices are shared across all three stretch kinds and
  every topology family row;
* the n²-pair reduction is a **vectorized kernel** (numpy masked
  divide, with the skip-UDG-adjacent mask built from the adjacency
  snapshot) that matches the reference implementation
  (:func:`repro.core.metrics.stretch_reference`) to within
  ``PARITY_RTOL``; the pure-Python fallback (no numpy) is *exact* —
  bit-identical accumulation order.

APSP uses :mod:`scipy.sparse.csgraph` when available; the pure-Python
fallback fans per-source searches over the batch executor
(:mod:`repro.service.executor`) in chunks.

The oracle's :meth:`~DistanceOracle.snapshot` (counters + stage
seconds) travels in ``/build`` extras and is folded into
``GET /metrics`` under the ``oracle.*`` prefix by the serving layer.
"""

from __future__ import annotations

import functools
import math
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.core.metrics import StretchStats, TopologyMetrics, measure_topology
from repro.geometry.primitives import dist
from repro.graphs.graph import Graph
from repro.graphs.paths import bfs_hops, dijkstra_lengths

# Optional-dependency guards live in repro.core.compat; the module
# attributes below stay because tests (and downstream users) patch
# them to force the pure-Python paths.
from repro.core.compat import HAVE_NUMPY as _HAVE_NUMPY
from repro.core.compat import HAVE_SCIPY as _HAVE_SCIPY
from repro.core.compat import csr_matrix as _csr_matrix
from repro.core.compat import np as _np
from repro.core.compat import scipy_dijkstra as _sp_dijkstra

#: The weight kinds the oracle understands (power is parameterized by
#: the path-loss exponent alpha).
WEIGHT_KINDS = ("hops", "length", "power")

#: Documented agreement between the vectorized kernel and the
#: pure-Python reference: relative on ``avg`` (summation order differs
#: between numpy's pairwise mean and the sequential loop), exact on
#: ``max`` / ``pairs`` / ``unreachable_pairs``.  The no-numpy fallback
#: path is exact on every field.
PARITY_RTOL = 1e-9

#: Node count below which the pure-Python APSP fallback stays serial
#: (executor fan-out overhead beats the win on small graphs).
PARALLEL_THRESHOLD = 512

_CHUNK = 64


def weight_key(kind: str, alpha: float = 2.0) -> str:
    """Canonical memoization key for a weight kind (``power`` carries α)."""
    if kind not in WEIGHT_KINDS:
        raise ValueError(f"unknown weight kind {kind!r}; known: {WEIGHT_KINDS}")
    if kind == "power":
        return f"power-{alpha:g}"
    return kind


@dataclass
class GraphSnapshot:
    """CSR-style flat adjacency + positions snapshot of one graph.

    ``indptr``/``indices`` are the usual compressed-sparse-row layout
    over sorted adjacency lists; ``lengths`` carries the Euclidean
    length of each adjacency entry (computed once, with the same
    :func:`~repro.geometry.primitives.dist` the graphs use, so weights
    agree bit-for-bit with the reference path).  ``xs``/``ys`` are the
    flat position arrays.
    """

    node_count: int
    edge_count: int
    indptr: List[int]
    indices: List[int]
    lengths: List[float]
    xs: List[float]
    ys: List[float]

    @classmethod
    def from_graph(cls, graph: Graph) -> "GraphSnapshot":
        """Snapshot ``graph`` (O(V + E log E), done once per graph).

        When the graph carries a shared SoA snapshot (see
        :mod:`repro.core.soa`) its CSR arrays are adopted directly;
        edge lengths still go through scalar :func:`dist` either way,
        so weights agree bit-for-bit with the reference path.
        """
        from repro.core.soa import snapshot_for

        n = graph.node_count
        positions = graph.positions
        soa = snapshot_for(graph)
        if soa is not None:
            indptr = soa.indptr.tolist()
            indices = soa.indices.tolist()
            lengths = [
                dist(positions[u], positions[v])
                for u in range(n)
                for v in indices[indptr[u] : indptr[u + 1]]
            ]
        else:
            indptr = [0]
            indices = []
            lengths = []
            for u in range(n):
                pu = positions[u]
                for v in sorted(graph.neighbors(u)):
                    indices.append(v)
                    lengths.append(dist(pu, positions[v]))
                indptr.append(len(indices))
        return cls(
            node_count=n,
            edge_count=graph.edge_count,
            indptr=indptr,
            indices=indices,
            lengths=lengths,
            xs=[p[0] for p in positions],
            ys=[p[1] for p in positions],
        )

    def weights(self, kind: str, alpha: float = 2.0) -> List[float]:
        """Edge data array for one weight kind, aligned with ``indices``.

        Power weights are computed with scalar Python ``**`` so they
        are bit-identical to the reference path's weight callable.
        """
        if kind == "hops":
            return [1.0] * len(self.indices)
        if kind == "length":
            return self.lengths
        return [length ** alpha for length in self.lengths]

    def csgraph(self, kind: str, alpha: float = 2.0) -> Any:
        """The scipy CSR matrix for one weight kind (requires scipy)."""
        return _csr_matrix(
            (self.weights(kind, alpha), self.indices, self.indptr),
            shape=(self.node_count, self.node_count),
        )


def _hop_rows(graph: Graph, sources: Sequence[int]) -> List[List[float]]:
    """BFS hop rows for a chunk of sources (executor fan-out worker)."""
    return [
        [(h if h >= 0 else math.inf) for h in bfs_hops(graph, s)]
        for s in sources
    ]


def _weighted_rows(
    graph: Graph, kind: str, alpha: float, sources: Sequence[int]
) -> List[List[float]]:
    """Dijkstra rows for a chunk of sources (executor fan-out worker)."""
    if kind == "power":
        def weight(u: int, v: int) -> float:
            return graph.edge_length(u, v) ** alpha

        return [dijkstra_lengths(graph, s, weight) for s in sources]
    return [dijkstra_lengths(graph, s, graph.edge_length) for s in sources]


class DistanceOracle:
    """Memoized all-pairs distances + stretch kernels for one deployment.

    Construct one per deployment with the UDG (or any baseline graph)
    and reuse it for every stretch query on that deployment: the
    baseline matrices are computed once per weight kind and shared
    across all measured topologies, and each measured topology's
    matrices are memoized by graph fingerprint.

    ``max_entries`` bounds the number of *non-baseline* matrices kept
    (LRU); baseline matrices are pinned.  ``use_numpy``/``use_scipy``
    force the pure-Python paths off their defaults — the no-numpy
    kernel is exact against :func:`repro.core.metrics.stretch_reference`,
    which is what the benchmark tripwires assert.
    """

    def __init__(
        self,
        baseline: Graph,
        *,
        max_entries: int = 6,
        executor_mode: str = "thread",
        max_workers: Optional[int] = None,
        parallel_threshold: int = PARALLEL_THRESHOLD,
        use_numpy: Optional[bool] = None,
        use_scipy: Optional[bool] = None,
    ) -> None:
        self.baseline = baseline
        self.max_entries = max_entries
        self.executor_mode = executor_mode
        self.max_workers = max_workers
        self.parallel_threshold = parallel_threshold
        self._use_numpy = _HAVE_NUMPY if use_numpy is None else (use_numpy and _HAVE_NUMPY)
        self._use_scipy = _HAVE_SCIPY if use_scipy is None else (use_scipy and _HAVE_SCIPY)
        self._matrices: "OrderedDict[tuple, Any]" = OrderedDict()
        self._snapshots: dict[tuple, GraphSnapshot] = {}
        self._adj_mask: Any = None
        self.counters: dict[str, int] = {
            "apsp_hits": 0,
            "apsp_misses": 0,
            "snapshot_hits": 0,
            "snapshot_misses": 0,
            "stretch_calls": 0,
            "evictions": 0,
        }
        self.seconds: dict[str, float] = {"snapshot": 0.0, "apsp": 0.0, "kernel": 0.0}
        self._baseline_fp = self.fingerprint(baseline)

    # -- keying ----------------------------------------------------------

    @staticmethod
    def fingerprint(graph: Graph) -> tuple:
        """Cheap content key: (nodes, edges, hash of the edge set).

        O(E) per call — negligible next to the O(n² log n) APSP it
        guards — and content-addressed, so a rebuilt-but-identical
        graph hits the same cache entries.
        """
        return (graph.node_count, graph.edge_count, hash(graph.edge_set()))

    def matches(self, baseline: Graph) -> bool:
        """Whether ``baseline`` is this oracle's baseline graph."""
        return baseline is self.baseline or (
            baseline.node_count == self.baseline.node_count
            and self.fingerprint(baseline) == self._baseline_fp
        )

    # -- snapshots -------------------------------------------------------

    def snapshot_of(self, graph: Graph) -> GraphSnapshot:
        """The (memoized) CSR snapshot of ``graph``."""
        key = self.fingerprint(graph)
        snap = self._snapshots.get(key)
        if snap is not None:
            self.counters["snapshot_hits"] += 1
            return snap
        self.counters["snapshot_misses"] += 1
        t0 = time.perf_counter()
        snap = GraphSnapshot.from_graph(graph)
        self.seconds["snapshot"] += time.perf_counter() - t0
        self._snapshots[key] = snap
        return snap

    # -- all-pairs matrices ----------------------------------------------

    def apsp(self, graph: Graph, kind: str, *, alpha: float = 2.0) -> Any:
        """The (memoized) all-pairs distance matrix of ``graph``.

        Returns a numpy ndarray on the scipy path, a list of row lists
        on the pure-Python fallback; both index as ``matrix[u][v]``
        with ``math.inf`` for unreachable pairs.
        """
        key = (self.fingerprint(graph), weight_key(kind, alpha))
        cached = self._matrices.get(key)
        if cached is not None:
            self.counters["apsp_hits"] += 1
            self._matrices.move_to_end(key)
            return cached
        self.counters["apsp_misses"] += 1
        t0 = time.perf_counter()
        matrix = self._compute_apsp(graph, kind, alpha)
        self.seconds["apsp"] += time.perf_counter() - t0
        self._matrices[key] = matrix
        self._evict()
        return matrix

    def _compute_apsp(self, graph: Graph, kind: str, alpha: float) -> Any:
        n = graph.node_count
        if self._use_scipy and n > 0:
            snap = self.snapshot_of(graph)
            return _sp_dijkstra(
                snap.csgraph(kind, alpha), directed=False,
                unweighted=kind == "hops",
            )
        return self._python_apsp(graph, kind, alpha)

    def _python_apsp(self, graph: Graph, kind: str, alpha: float) -> List[List[float]]:
        """Per-source fallback, fanned over the executor on big graphs.

        Per-source rows are independent, so the parallel fan-out is
        value-identical to the serial loop by construction.
        """
        n = graph.node_count
        worker = (
            functools.partial(_hop_rows, graph)
            if kind == "hops"
            else functools.partial(_weighted_rows, graph, kind, alpha)
        )
        if n < self.parallel_threshold or self.executor_mode == "serial":
            return worker(range(n))
        from repro.service.executor import run_batch

        chunks = [range(lo, min(lo + _CHUNK, n)) for lo in range(0, n, _CHUNK)]
        outcome = run_batch(
            chunks, worker, mode=self.executor_mode,
            max_workers=self.max_workers, metric_name="oracle.apsp_chunk",
        )
        if outcome.failed:  # pragma: no cover - defensive
            return worker(range(n))
        rows: List[List[float]] = []
        for task in outcome.outcomes:
            rows.extend(task.value)
        return rows

    def _evict(self) -> None:
        """Drop least-recently-used non-baseline matrices over the cap."""
        def over() -> bool:
            return (
                sum(1 for fp, _ in self._matrices if fp != self._baseline_fp)
                > self.max_entries
            )

        while over():
            for key in self._matrices:
                if key[0] != self._baseline_fp:
                    del self._matrices[key]
                    self.counters["evictions"] += 1
                    break

    # -- stretch ---------------------------------------------------------

    def stretch(
        self,
        graph: Graph,
        kind: str,
        *,
        skip_udg_adjacent: bool = False,
        alpha: float = 2.0,
    ) -> StretchStats:
        """Stretch of ``graph`` against the baseline under one weight kind.

        Pairs unreachable *in the baseline* are out of scope (as in the
        reference); pairs reachable in the baseline but not in
        ``graph`` are excluded from ``avg``/``max`` and counted in
        ``unreachable_pairs`` instead of poisoning the average with
        ``inf``.
        """
        if graph.node_count != self.baseline.node_count:
            raise ValueError("graph and baseline must share the node set")
        if kind == "power" and alpha < 1.0:
            raise ValueError("alpha below 1 is not a power-attenuation model")
        self.counters["stretch_calls"] += 1
        d_graph = self.apsp(graph, kind, alpha=alpha)
        d_base = self.apsp(self.baseline, kind, alpha=alpha)
        t0 = time.perf_counter()
        if self._use_numpy:
            stats = self._kernel_numpy(d_graph, d_base, skip_udg_adjacent)
        else:
            stats = _kernel_python(d_graph, d_base, self.baseline, skip_udg_adjacent)
        self.seconds["kernel"] += time.perf_counter() - t0
        return stats

    def _adjacency_mask(self) -> Any:
        """Dense boolean baseline-adjacency matrix (numpy path only)."""
        if self._adj_mask is None:
            snap = self.snapshot_of(self.baseline)
            n = snap.node_count
            mask = _np.zeros((n, n), dtype=bool)
            if snap.indices:
                rows = _np.repeat(
                    _np.arange(n), _np.diff(_np.asarray(snap.indptr))
                )
                mask[rows, _np.asarray(snap.indices)] = True
            self._adj_mask = mask
        return self._adj_mask

    def _kernel_numpy(
        self, d_graph: Any, d_base: Any, skip_udg_adjacent: bool
    ) -> StretchStats:
        """Vectorized reduction: masked divide over the upper triangle."""
        d_g = _np.asarray(d_graph, dtype=float)
        d_b = _np.asarray(d_base, dtype=float)
        valid = _np.triu(_np.isfinite(d_b) & (d_b > 0.0), k=1)
        if skip_udg_adjacent:
            valid &= ~self._adjacency_mask()
        measured = valid & _np.isfinite(d_g)
        unreachable = int(_np.count_nonzero(valid)) - int(_np.count_nonzero(measured))
        ratios = d_g[measured] / d_b[measured]
        pairs = int(ratios.size)
        if pairs == 0:
            return StretchStats(0.0, 0.0, 0, unreachable_pairs=unreachable)
        return StretchStats(
            avg=float(ratios.mean()),
            max=float(ratios.max()),
            pairs=pairs,
            unreachable_pairs=unreachable,
        )

    # -- convenience and accounting --------------------------------------

    def measure(self, graph: Graph, **kwargs: Any) -> TopologyMetrics:
        """Shorthand for :func:`~repro.core.metrics.measure_topology`."""
        return measure_topology(graph, self.baseline, oracle=self, **kwargs)

    def snapshot(self) -> dict:
        """JSON-ready counters, stage seconds, and cache occupancy.

        This is what the serving layer folds into ``GET /metrics``
        under the ``oracle.*`` prefix and ships in ``/build`` extras.
        """
        return {
            "counters": dict(self.counters),
            "seconds": {k: round(v, 6) for k, v in self.seconds.items()},
            "entries": len(self._matrices),
        }


def _kernel_python(
    d_graph: Any, d_base: Any, baseline: Graph, skip_udg_adjacent: bool
) -> StretchStats:
    """Pure-Python reduction, bit-identical to ``stretch_reference``.

    Same iteration and accumulation order as the reference loop, so the
    no-numpy fallback is *exact*, not merely within tolerance.
    """
    n = baseline.node_count
    total = 0.0
    worst = 0.0
    pairs = 0
    unreachable = 0
    for u in range(n):
        row_g = d_graph[u]
        row_b = d_base[u]
        for v in range(u + 1, n):
            base = row_b[v]
            if not (0.0 < base < math.inf):
                continue  # same node or baseline-disconnected pair
            if skip_udg_adjacent and baseline.has_edge(u, v):
                continue
            value = row_g[v]
            if value == math.inf:
                unreachable += 1
                continue
            ratio = value / base
            total += ratio
            if ratio > worst:
                worst = ratio
            pairs += 1
    if pairs == 0:
        return StretchStats(0.0, 0.0, 0, unreachable_pairs=unreachable)
    return StretchStats(
        avg=float(total / pairs), max=float(worst), pairs=pairs,
        unreachable_pairs=unreachable,
    )
