"""Link interference — the other axis topology control optimizes.

Coverage-based interference (Burkhart et al., MobiHoc 2004, the
standard formulation for exactly the structures this paper builds):
the interference of a link ``uv`` is the number of *other* nodes
inside the union of the two disks of radius ``|uv|`` centered at ``u``
and ``v`` — the nodes whose own communication a transmission on that
link disturbs.  A topology's interference is the maximum (and mean)
over its links.

Sparse spanners were sold partly on this promise; the interference
benchmark checks it holds for the paper's structures, and the metric
is exposed so users can weigh it against stretch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.primitives import dist_sq
from repro.graphs.graph import Graph
from repro.graphs.udg import GridIndex


@dataclass(frozen=True)
class InterferenceStats:
    """Interference summary of one topology."""

    max: int
    avg: float
    #: Per-link interference, keyed by the (u, v) edge.
    per_link: dict

    @property
    def links(self) -> int:
        return len(self.per_link)


def link_interference(graph: Graph, u: int, v: int) -> int:
    """Nodes covered by the two |uv|-disks around ``u`` and ``v``.

    ``u`` and ``v`` themselves are not counted.
    """
    pos = graph.positions
    pu, pv = pos[u], pos[v]
    reach_sq = dist_sq(pu, pv)
    covered = 0
    for w, pw in enumerate(pos):
        if w == u or w == v:
            continue
        if dist_sq(pu, pw) <= reach_sq or dist_sq(pv, pw) <= reach_sq:
            covered += 1
    return covered


def interference(graph: Graph) -> InterferenceStats:
    """Coverage-based interference of every link of ``graph``.

    Uses a grid index sized to the longest link so dense instances
    stay near-linear.
    """
    edges = list(graph.edges())
    if not edges:
        return InterferenceStats(max=0, avg=0.0, per_link={})
    pos = graph.positions
    longest = max(graph.edge_length(u, v) for u, v in edges)
    index = GridIndex(pos, max(longest, 1e-9))

    per_link: dict = {}
    for u, v in edges:
        pu, pv = pos[u], pos[v]
        reach_sq = dist_sq(pu, pv)
        reach = reach_sq**0.5
        candidates = set(index.candidates_near(pu, reach)) | set(
            index.candidates_near(pv, reach)
        )
        covered = sum(
            1
            for w in candidates
            if w not in (u, v)
            and (
                dist_sq(pu, pos[w]) <= reach_sq
                or dist_sq(pv, pos[w]) <= reach_sq
            )
        )
        per_link[(u, v)] = covered
    values = per_link.values()
    return InterferenceStats(
        max=max(values), avg=sum(values) / len(per_link), per_link=per_link
    )
