"""Public API: the backbone builder and the topology metrics."""

from repro.core.metrics import (
    StretchStats,
    TopologyMetrics,
    degree_stats,
    hop_stretch,
    length_stretch,
    measure_topology,
    power_stretch,
    stretch_reference,
    summarize_family,
)
from repro.core.oracle import DistanceOracle, GraphSnapshot
from repro.core.spanner import BackboneResult, build_backbone
from repro.core.interference import InterferenceStats, interference, link_interference
from repro.core.power import PowerProfile, power_profile, power_saving_ratio
from repro.core.verify import SpannerVerdict, StretchViolation, verify_spanner

__all__ = [
    "InterferenceStats",
    "interference",
    "link_interference",
    "PowerProfile",
    "power_profile",
    "power_saving_ratio",
    "SpannerVerdict",
    "StretchViolation",
    "verify_spanner",
    "StretchStats",
    "TopologyMetrics",
    "degree_stats",
    "DistanceOracle",
    "GraphSnapshot",
    "hop_stretch",
    "length_stretch",
    "measure_topology",
    "power_stretch",
    "stretch_reference",
    "summarize_family",
    "BackboneResult",
    "build_backbone",
]
