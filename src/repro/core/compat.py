"""Single import site for the optional acceleration dependencies.

Every module that can use :mod:`numpy` or :mod:`scipy` gets them from
here instead of re-implementing the ``try: import`` dance (which had
drifted into three slightly different variants across the oracle, the
metrics engine and the benchmark driver).  The guard is also the one
switch the test suite and the benchmark need to *mask numpy out*: the
no-numpy fallback paths promise to reuse the pure-Python reference
code exactly, and that promise is only testable when numpy can be
turned off at runtime on a machine that has it installed.

Usage::

    from repro.core.compat import get_numpy

    np = get_numpy()
    if np is None:
        ...  # pure-Python reference path
    else:
        ...  # vectorized path

``get_numpy`` consults, in order: the programmatic override installed
by :func:`set_numpy_enabled` / :func:`numpy_disabled`, the
``REPRO_NO_NUMPY`` environment variable (any value other than empty or
``0`` disables), and finally whether the import succeeded at all.
Scipy has no override — its consumers (the APSP engines) already take
explicit ``use_scipy`` flags — but its guard lives here for the same
single-site reason.

Layering note: this module imports nothing from :mod:`repro`, so any
layer (geometry, graphs, topology) may import it lazily inside a
function without creating a cycle through ``repro.core.__init__``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator, Optional

try:  # pragma: no cover - exercised implicitly everywhere
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

try:  # pragma: no cover - exercised implicitly everywhere
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as scipy_dijkstra

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    csr_matrix = None  # type: ignore[assignment]
    scipy_dijkstra = None  # type: ignore[assignment]
    HAVE_SCIPY = False

#: Programmatic override: ``None`` defers to the environment variable.
_numpy_override: Optional[bool] = None


def numpy_active() -> bool:
    """Whether the vectorized paths should run right now."""
    if not HAVE_NUMPY:
        return False
    if _numpy_override is not None:
        return _numpy_override
    return os.environ.get("REPRO_NO_NUMPY", "") in ("", "0")


def get_numpy() -> Any:
    """The numpy module, or ``None`` when absent or masked out."""
    return np if numpy_active() else None


def set_numpy_enabled(enabled: Optional[bool]) -> None:
    """Install (or with ``None`` clear) the programmatic numpy switch."""
    global _numpy_override
    _numpy_override = enabled


@contextmanager
def numpy_disabled() -> Iterator[None]:
    """Context manager masking numpy out, restoring the prior override."""
    global _numpy_override
    previous = _numpy_override
    _numpy_override = False
    try:
        yield
    finally:
        _numpy_override = previous
