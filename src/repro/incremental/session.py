"""Long-lived incremental sessions: a mobility trace as an event stream.

Bridges :class:`~repro.mobility.waypoint.RandomWaypointModel` and
:class:`~repro.incremental.engine.IncrementalMaintainer`: each step
moves a (seeded, reproducible) subset of nodes, converts the new
positions into ``move`` events, applies them incrementally, and
optionally asserts the rebuild-equivalence tripwire.  The same loop
backs the CLI runner (``python -m repro mobility --policy
incremental``), the benchmark trace stage, and the CI smoke job; the
HTTP session endpoints (:mod:`repro.service.server`) drive the
session object directly with client-supplied event batches instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.incremental.engine import IncrementalMaintainer, StepReport
from repro.incremental.events import Event
from repro.mobility.waypoint import RandomWaypointModel
from repro.workloads.generators import Deployment


@dataclass
class IncrementalSession:
    """One live maintained deployment plus its cumulative counters."""

    maintainer: IncrementalMaintainer
    reports: list[StepReport] = field(default_factory=list)
    verifications: int = 0
    verification_failures: list[dict] = field(default_factory=list)

    def step(self, events: Sequence[Event], *, verify: bool = False) -> StepReport:
        """Apply one event batch; optionally assert rebuild equivalence."""
        report = self.maintainer.apply(events)
        self.reports.append(report)
        if verify:
            self.verifications += 1
            outcome = self.maintainer.verify()
            if not outcome["identical"]:
                self.verification_failures.append(
                    {"step": len(self.reports), **outcome}
                )
        return report

    def counters(self) -> dict:
        """Cumulative ``incremental.*`` counters over the session."""
        totals = {
            "steps": len(self.reports),
            "events": sum(r.events for r in self.reports),
            "appeared_links": sum(r.appeared_links for r in self.reports),
            "vanished_links": sum(r.vanished_links for r in self.reports),
            "role_changes": sum(r.role_changes for r in self.reports),
            "repairs_certified": sum(r.repairs_certified for r in self.reports),
            "repairs_fallback": sum(r.repairs_fallback for r in self.reports),
            "dirty_tiles": sum(r.dirty_tiles for r in self.reports),
            "dirty_nodes": sum(r.dirty_nodes for r in self.reports),
            "verifications": self.verifications,
            "verification_failures": len(self.verification_failures),
        }
        if self.reports:
            totals["mean_dirty_fraction"] = sum(
                r.dirty_fraction for r in self.reports
            ) / len(self.reports)
        return totals


@dataclass(frozen=True)
class IncrementalSessionResult:
    """Outcome of a scripted waypoint-driven incremental session."""

    reports: tuple[StepReport, ...]
    counters: dict
    node_count: int

    @property
    def all_verified(self) -> bool:
        return self.counters.get("verification_failures", 0) == 0

    @property
    def mean_dirty_fraction(self) -> float:
        return float(self.counters.get("mean_dirty_fraction", 0.0))


def run_incremental_session(
    deployment: Deployment,
    *,
    steps: int,
    dt: float = 1.0,
    speed: float = 2.0,
    pause: float = 1.0,
    move_fraction: float = 0.05,
    seed: int = 0,
    verify_every: int = 0,
    tile_cells: int = 2,
    probe_pairs: Optional[Sequence[tuple[int, int]]] = None,
) -> IncrementalSessionResult:
    """Drive a seeded waypoint trace through the incremental maintainer.

    Per step, a ``move_fraction`` share of the nodes (at least one,
    chosen by the seeded RNG) advances by ``dt`` and the resulting
    relocations are applied as one ``move``-event batch.
    ``verify_every=k`` asserts the from-scratch-rebuild tripwire every
    ``k``-th step (0 disables; 1 checks every step, as the CI smoke
    job does).  The trace is a pure function of the arguments.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if not 0.0 < move_fraction <= 1.0:
        raise ValueError("move_fraction must be in (0, 1]")
    del probe_pairs  # accepted for signature parity with run_mobility_session
    n = len(deployment.points)
    model = RandomWaypointModel(
        list(deployment.points),
        deployment.side,
        seed,
        speed_range=(0.5 * speed, 1.5 * speed),
        pause_range=(0.0, max(pause, 0.0)),
    )
    session = IncrementalSession(
        IncrementalMaintainer(
            list(deployment.points), deployment.radius, tile_cells=tile_cells
        )
    )
    movers_per_step = max(1, round(move_fraction * n))
    # A separate stream picks the movers so the waypoint trajectories
    # stay a function of the seed alone, whatever the fraction.
    picker = random.Random(seed + 1)
    for index in range(steps):
        movers = sorted(picker.sample(range(n), movers_per_step))
        positions = model.step(dt, nodes=movers)
        events = [
            Event("move", node=u, x=positions[u][0], y=positions[u][1])
            for u in movers
        ]
        verify = verify_every > 0 and (index + 1) % verify_every == 0
        session.step(events, verify=verify)
    return IncrementalSessionResult(
        reports=tuple(session.reports),
        counters=session.counters(),
        node_count=n,
    )
