"""Incremental Algorithm 1 connector election.

:func:`repro.protocols.cds_fast.fast_connectors` resolves the
connector protocol as a deterministic fixed point: every dominatee
proposes into ``(u, v, slot)`` arenas (slot 0 — common dominatee of
two adjacent-in-2-hops dominators; slot 1 — first node toward a 2-hop
dominator; slot 2 — second node completing a slot-1 path), and the
``smallest-id`` winners are the local minima of each arena's proposer
conflict graph.  Every one of those rules is *order-independent* and
*local*: a node's proposals are a function of its own role, its
dominator set, its adjacency, and its neighbors' dominator sets; an
arena's winners are a function of its proposer set and the adjacency
among the proposers; a slot-2 arena is a function of the slot-1
winners and their neighborhoods.

:class:`IncrementalConnectors` exploits that locality.  It caches the
per-node proposals, the arena proposer sets, the per-arena winners,
and the slot-2 resolutions, plus reference counters for the winning
nodes and certified CDS edges.  An update receives the nodes whose
adjacency or role changed and the nodes whose dominator sets changed,
recomputes exactly the proposals/arenas/cascades those can reach, and
folds the diffs into the counters — leaving ``connectors`` and
``cds_edges`` bit-identical to a from-scratch ``fast_connectors`` run
(the maintainer's rebuild-equivalence tripwire checks both).

Id churn (join/leave renames) invalidates arena keys wholesale, so
structural batches take :meth:`rebuild` — the same code path run from
an empty cache.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.protocols.connectors import SLOT_COMMON, SLOT_FIRST, _edge

if TYPE_CHECKING:
    from repro.incremental.udg import DynamicUdg

Pair = tuple[int, int]
ArenaKey = tuple[int, int, int]
_EMPTY: frozenset = frozenset()


class IncrementalConnectors:
    """Algorithm 1's fixed point under incremental invalidation."""

    def __init__(self, udg: "DynamicUdg") -> None:
        self.udg = udg
        self._clear()

    def _clear(self) -> None:
        #: cached per-node proposals (absent = no proposals).
        self._p0: dict[int, frozenset[Pair]] = {}
        self._p1: dict[int, frozenset[Pair]] = {}
        #: arena -> live proposer set / winner set.
        self._arena: dict[ArenaKey, set[int]] = {}
        self._arena_win: dict[ArenaKey, frozenset[int]] = {}
        #: node -> slot-1 arenas it currently wins.
        self._w1_of: dict[int, set[Pair]] = {}
        #: slot-2 arena -> (proposers, winners, certified edges).
        self._a2: dict[Pair, tuple[frozenset[int], frozenset[int], tuple[Pair, ...]]]
        self._a2 = {}
        #: node -> slot-2 arenas it proposes in.
        self._sup2: dict[int, set[Pair]] = {}
        #: how many arenas each node wins / each edge is certified by.
        self._conn_count: Counter = Counter()
        self._edge_count: Counter = Counter()

    @property
    def connectors(self) -> frozenset[int]:
        return frozenset(self._conn_count)

    @property
    def cds_edges(self) -> frozenset[Pair]:
        return frozenset(self._edge_count)

    def rebuild(
        self, status: Sequence[bool], doms_of: Mapping[int, frozenset[int]]
    ) -> None:
        """Full recompute — initialization and id-churn batches."""
        self._clear()
        self.update(status, doms_of, set(range(self.udg.node_count)), set())

    # -- the incremental step ---------------------------------------------

    def update(
        self,
        status: Sequence[bool],
        doms_of: Mapping[int, frozenset[int]],
        changed: Iterable[int],
        doms_changed: Iterable[int],
    ) -> None:
        """Repair the election after a batch.

        ``changed`` must contain every node whose adjacency or
        dominator/dominatee role changed; ``doms_changed`` every node
        whose dominator *set* changed.  Supersets are sound.
        """
        adjacency = self.udg.adjacency
        n = self.udg.node_count
        changed = {x for x in changed if x < n}
        doms_changed = {x for x in doms_changed if x < n}
        # A node's proposals read its role, its dominator set, its
        # adjacency, and its neighbors' dominator sets.
        affected = changed | doms_changed
        for d in doms_changed:
            affected.update(adjacency[d])

        dirty: set[ArenaKey] = set()
        for x in sorted(affected):
            old0 = self._p0.get(x, _EMPTY)
            old1 = self._p1.get(x, _EMPTY)
            new0, new1 = self._proposals(x, status, doms_of)
            self._shift_proposer(x, old0, new0, SLOT_COMMON)
            self._shift_proposer(x, old1, new1, SLOT_FIRST)
            if new0:
                self._p0[x] = new0
            else:
                self._p0.pop(x, None)
            if new1:
                self._p1[x] = new1
            else:
                self._p1.pop(x, None)
            # Every arena x proposes in before or after is dirty: even
            # with identical proposals, x's adjacency (a winner input)
            # may have changed.
            dirty.update((u, v, SLOT_COMMON) for u, v in old0 | new0)
            dirty.update((u, v, SLOT_FIRST) for u, v in old1 | new1)

        w1_dirty: set[Pair] = set()
        for key in sorted(dirty):
            self._resolve_arena(key, w1_dirty)

        # Slot-2 cascades to re-run: arenas whose slot-1 winner set
        # moved, plus every arena a changed node supports, wins slot 1
        # of, or could newly reach (it borders a slot-1 winner).
        dirty2: set[Pair] = set(w1_dirty)
        for c in changed | doms_changed:
            support = self._sup2.get(c)
            if support:
                dirty2 |= support
            wins = self._w1_of.get(c)
            if wins:
                dirty2 |= wins
            for nb in adjacency[c]:
                wins = self._w1_of.get(nb)
                if wins:
                    dirty2 |= wins
        for pair in sorted(dirty2):
            self._solve_slot2(pair, status, doms_of)

    # -- pieces of the fixed point ----------------------------------------

    def _proposals(
        self,
        x: int,
        status: Sequence[bool],
        doms_of: Mapping[int, frozenset[int]],
    ) -> tuple[frozenset[Pair], frozenset[Pair]]:
        """Slot-0 and slot-1 arena keys ``x`` proposes into."""
        if status[x]:
            return _EMPTY, _EMPTY
        doms = sorted(doms_of.get(x, ()))
        adjacent = self.udg.adjacency[x]
        two_hop: set[int] = set()
        for w in adjacent:
            for d in doms_of.get(w, ()):
                if d != x and d not in adjacent:
                    two_hop.add(d)
        p0 = frozenset(
            (u, v) for i, u in enumerate(doms) for v in doms[i + 1 :]
        )
        dom_set = set(doms)
        p1 = frozenset(
            (u, v) for u in doms for v in two_hop if v != u and v not in dom_set
        )
        return p0, p1

    def _shift_proposer(
        self, x: int, old: frozenset[Pair], new: frozenset[Pair], slot: int
    ) -> None:
        for u, v in old - new:
            members = self._arena.get((u, v, slot))
            if members is not None:
                members.discard(x)
        for u, v in new - old:
            self._arena.setdefault((u, v, slot), set()).add(x)

    def _winners(self, proposers: Iterable[int]) -> frozenset[int]:
        """Local minima of the proposer conflict graph (smallest-id)."""
        adjacency = self.udg.adjacency
        pool = set(proposers)
        return frozenset(
            x
            for x in pool
            if not any(q < x and q in adjacency[x] for q in pool)
        )

    def _resolve_arena(self, key: ArenaKey, w1_dirty: set[Pair]) -> None:
        proposers = self._arena.get(key)
        new_win = self._winners(proposers) if proposers else _EMPTY
        if not proposers:
            self._arena.pop(key, None)
        old_win = self._arena_win.get(key, _EMPTY)
        if new_win == old_win:
            return
        u, v, slot = key
        for x in old_win - new_win:
            self._bump(self._conn_count, x, -1)
            self._bump(self._edge_count, _edge(u, x), -1)
            if slot == SLOT_COMMON:
                self._bump(self._edge_count, _edge(x, v), -1)
        for x in new_win - old_win:
            self._bump(self._conn_count, x, 1)
            self._bump(self._edge_count, _edge(u, x), 1)
            if slot == SLOT_COMMON:
                self._bump(self._edge_count, _edge(x, v), 1)
        if new_win:
            self._arena_win[key] = new_win
        else:
            self._arena_win.pop(key, None)
        if slot == SLOT_FIRST:
            w1_dirty.add((u, v))
            for x in old_win - new_win:
                wins = self._w1_of.get(x)
                if wins is not None:
                    wins.discard((u, v))
                    if not wins:
                        del self._w1_of[x]
            for x in new_win - old_win:
                self._w1_of.setdefault(x, set()).add((u, v))

    def _solve_slot2(
        self,
        pair: Pair,
        status: Sequence[bool],
        doms_of: Mapping[int, frozenset[int]],
    ) -> None:
        """Re-run one slot-2 cascade from the current slot-1 winners."""
        u, v = pair
        adjacency = self.udg.adjacency
        firsts = self._arena_win.get((u, v, SLOT_FIRST), _EMPTY)
        proposers: list[int] = []
        if firsts:
            candidates: set[int] = set()
            for w in firsts:
                candidates |= adjacency[w]
            for x in candidates:
                if status[x]:
                    continue
                dom_set = doms_of.get(x, _EMPTY)
                if v not in dom_set or u in dom_set:
                    continue
                proposers.append(x)
        if proposers:
            pool = set(proposers)
            winners = frozenset(
                x
                for x in pool
                if not any(q < x and q in adjacency[x] for q in pool)
            )
            edges: list[Pair] = []
            for x in sorted(winners):
                first = min(w for w in firsts if w in adjacency[x])
                edges.append(_edge(first, x))
                edges.append(_edge(x, v))
            new = (frozenset(pool), winners, tuple(edges))
        else:
            new = (_EMPTY, _EMPTY, ())
        old = self._a2.get(pair, (_EMPTY, _EMPTY, ()))
        if new == old:
            return
        for x in old[1] - new[1]:
            self._bump(self._conn_count, x, -1)
        for x in new[1] - old[1]:
            self._bump(self._conn_count, x, 1)
        delta: Counter = Counter(new[2])
        delta.subtract(old[2])
        for e, d in delta.items():
            if d:
                self._bump(self._edge_count, e, d)
        for x in old[0] - new[0]:
            support = self._sup2.get(x)
            if support is not None:
                support.discard(pair)
                if not support:
                    del self._sup2[x]
        for x in new[0] - old[0]:
            self._sup2.setdefault(x, set()).add(pair)
        if new[0]:
            self._a2[pair] = new
        else:
            self._a2.pop(pair, None)

    @staticmethod
    def _bump(counter: Counter, key, delta: int) -> None:
        total = counter[key] + delta
        if total:
            counter[key] = total
        else:
            del counter[key]
