"""The event model: join / leave / move, batched per maintenance step.

Events address nodes by their *current* id.  Ids are dense
(``0..n-1``) at all times: a join allocates the next id, a leave
recycles the vacated id by renaming the last node into it (the
swap-remove convention of :class:`repro.incremental.udg.DynamicUdg`).
Within one batch, events apply in list order, so an event may
legitimately refer to an id introduced or recycled earlier in the same
batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.geometry.primitives import Point

KINDS = ("move", "join", "leave")


@dataclass(frozen=True)
class Event:
    """One topology event.

    * ``move`` — node ``node`` relocates to ``(x, y)``;
    * ``join`` — a new node appears at ``(x, y)`` (id assigned on apply);
    * ``leave`` — node ``node`` disappears (the last id is renamed into
      its slot).
    """

    kind: str
    node: int | None = None
    x: float | None = None
    y: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; known: {KINDS}")
        if self.kind in ("move", "leave") and self.node is None:
            raise ValueError(f"{self.kind} event needs a node id")
        if self.kind in ("move", "join") and (self.x is None or self.y is None):
            raise ValueError(f"{self.kind} event needs x and y coordinates")

    @property
    def point(self) -> Point:
        if self.x is None or self.y is None:
            raise ValueError(f"{self.kind} event carries no position")
        return Point(float(self.x), float(self.y))

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind}
        if self.node is not None:
            out["node"] = self.node
        if self.x is not None:
            out["x"] = self.x
            out["y"] = self.y
        return out


def parse_event(spec: Mapping[str, Any]) -> Event:
    """Build an :class:`Event` from a JSON-shaped mapping, validating it."""
    kind = spec.get("kind")
    if not isinstance(kind, str):
        raise ValueError("event needs a string 'kind'")
    node = spec.get("node")
    if node is not None and (isinstance(node, bool) or not isinstance(node, int)):
        raise ValueError("event 'node' must be an integer id")
    for axis in ("x", "y"):
        value = spec.get(axis)
        if value is not None and not isinstance(value, (int, float)):
            raise ValueError(f"event {axis!r} must be a number")
    return Event(
        kind=kind,
        node=node,
        x=None if spec.get("x") is None else float(spec["x"]),
        y=None if spec.get("y") is None else float(spec["y"]),
    )


def parse_events(specs: Sequence[Mapping[str, Any]]) -> list[Event]:
    """Parse a batch of event mappings (one maintenance step's input)."""
    return [parse_event(spec) for spec in specs]
