"""Incremental spanner maintenance under join/leave/move event streams.

The paper's structures are *localized*: every Gabriel test, LDel
acceptance, planarization contest, and clusterhead decision depends
only on a bounded neighborhood of its anchor.  The sharded build
(:mod:`repro.sharding`) exploits that spatially — per-tile builds with
per-stage halos stitch into the exact serial output.  This package
exploits it *temporally*: when a batch of nodes joins, leaves, or
moves, only the tiles whose stage halo contains a changed point can
produce different outputs, so the maintainer recomputes exactly those
tiles and splices the results into the retained structures.

The correctness tripwire is non-negotiable and cheap to state: after
every event batch, the maintained UDG, roles, and backbone graphs are
**bit-identical** to a from-scratch rebuild at the new positions
(:meth:`IncrementalMaintainer.verify` asserts it; the equivalence
tests and the bench stage hold it under long waypoint traces).
"""

from repro.incremental.engine import IncrementalMaintainer, StepReport
from repro.incremental.events import Event, parse_events
from repro.incremental.session import IncrementalSession, run_incremental_session

__all__ = [
    "Event",
    "IncrementalMaintainer",
    "IncrementalSession",
    "StepReport",
    "parse_events",
    "run_incremental_session",
]
