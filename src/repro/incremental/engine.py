"""The incremental maintainer: event batches in, exact structures out.

One :class:`IncrementalMaintainer` owns a live deployment and keeps
every structure of the paper's pipeline — UDG adjacency, clusterhead
roles, connectors, CDS/ICDS, and the planarized LDel backbone graphs —
continuously equal to what a from-scratch build would produce at the
current positions.  Each :meth:`apply` call maps an event batch to its
invalidation footprint and repairs only that:

* **UDG** — :class:`~repro.incremental.udg.DynamicUdg` computes the
  appearing/vanishing links per event from its bucket grid.
* **Election** — the greedy smallest-id MIS is repaired by an exact
  ascending-id cascade seeded at the nodes whose blocker sets changed.
  The heap pops in non-decreasing id order and every push targets a
  larger id, so when a node is recomputed all smaller ids are final —
  the cascade reproduces the global fixed point.  A repair whose
  cascade stays within the election stage halo (``3r``) of the event
  sites is counted *certified*; one that escapes is counted as a
  *fallback* to wider recomputation (the cascade performs it either
  way, exactly).
* **Connectors** — Algorithm 1's fixed point is a cheap set pass over
  the adjacency (:func:`repro.protocols.cds_fast.fast_connectors`),
  recomputed through a thin adapter over the dynamic adjacency — but
  only when one of its inputs (node set, adjacency, dominator roles,
  dominator sets) actually changed; a pure-geometry batch skips it.
* **PLDel backbone** — :class:`~repro.incremental.pldel.IncrementalPLDel`
  repairs the planarizer tile-by-tile.  Its dirty points are *member
  relevant* only: the old/new positions of moved backbone members, the
  positions of nodes whose membership or id changed — PLDel is built
  over the backbone subset, so an event that never touches a member
  costs the planarizer nothing.

The tripwire: :meth:`verify` rebuilds from scratch and asserts
bit-identical UDG edges, roles, and all four compared backbone graphs.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Sequence, cast

from repro.geometry.primitives import Point, dist_sq
from repro.incremental.connectors import IncrementalConnectors
from repro.incremental.events import Event
from repro.incremental.pldel import IncrementalPLDel
from repro.incremental.udg import DynamicUdg
from repro.protocols.clustering import ClusteringOutcome
from repro.sharding.tiles import stage_halo
from repro.sim.stats import MessageStats


@dataclass(frozen=True)
class StepReport:
    """What one event batch cost and changed (JSON-ready)."""

    events: int
    node_count: int
    appeared_links: int
    vanished_links: int
    role_changes: int
    repairs_certified: int
    repairs_fallback: int
    dirty_tiles: int
    contest_tiles: int
    dirty_nodes: int
    dirty_fraction: float
    edges_added: tuple[tuple[int, int], ...]
    edges_removed: tuple[tuple[int, int], ...]
    phase_seconds: dict[str, float]

    def as_dict(self) -> dict:
        return {
            "events": self.events,
            "node_count": self.node_count,
            "appeared_links": self.appeared_links,
            "vanished_links": self.vanished_links,
            "role_changes": self.role_changes,
            "repairs_certified": self.repairs_certified,
            "repairs_fallback": self.repairs_fallback,
            "dirty_tiles": self.dirty_tiles,
            "contest_tiles": self.contest_tiles,
            "dirty_nodes": self.dirty_nodes,
            "dirty_fraction": round(self.dirty_fraction, 6),
            "edges_added": [list(e) for e in self.edges_added],
            "edges_removed": [list(e) for e in self.edges_removed],
            "phase_seconds": {k: round(v, 6) for k, v in self.phase_seconds.items()},
        }


@dataclass(frozen=True)
class Snapshot:
    """The maintained structures, frozen for comparison/serving."""

    positions: tuple[Point, ...]
    udg_edges: frozenset[tuple[int, int]]
    dominators: frozenset[int]
    connectors: frozenset[int]
    cds_edges: frozenset[tuple[int, int]]
    icds_edges: frozenset[tuple[int, int]]
    ldel_icds_edges: frozenset[tuple[int, int]]
    ldel_icds_prime_edges: frozenset[tuple[int, int]]

    @property
    def backbone_nodes(self) -> frozenset[int]:
        return self.dominators | self.connectors


@dataclass
class IncrementalMaintainer:
    """Maintains the full pipeline output under an event stream."""

    points: Sequence[Point | tuple[float, float]]
    radius: float
    tile_cells: int = 2
    steps: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.udg = DynamicUdg(
            [Point(float(p[0]), float(p[1])) for p in self.points], self.radius
        )
        self.pldel = IncrementalPLDel(self.udg, tile_cells=self.tile_cells)
        #: status[u] is True iff u is a dominator (greedy smallest-id MIS).
        self._status: list[bool] = []
        for u in range(self.udg.node_count):
            self._status.append(
                not any(self._status[w] for w in self.udg.adjacency[u] if w < u)
            )
        self._doms_of: dict[int, frozenset[int]] = {
            w: frozenset(v for v in self.udg.adjacency[w] if self._status[v])
            for w in range(self.udg.node_count)
            if not self._status[w]
        }
        self._iconn = IncrementalConnectors(self.udg)
        self._refresh_connectors(None, None)
        backbone = self._backbone_nodes()
        membership = self._membership(backbone)
        ldel_edges, _ = self.pldel.step(
            membership, [self.udg.positions[u] for u in sorted(backbone)]
        )
        self._finish_assembly(backbone, ldel_edges, icds_unchanged=False)

    # -- derived structures ----------------------------------------------

    def _refresh_connectors(
        self, changed: set[int] | None, doms_changed: set[int] | None
    ) -> None:
        """Re-elect connectors; ``None`` change sets force a rebuild.

        Rebuilds happen at initialization and on id-churn batches
        (join/leave renames invalidate the cached arena keys); every
        other batch repairs the election incrementally.
        """
        if changed is None or doms_changed is None:
            self._iconn.rebuild(self._status, self._doms_of)
        else:
            self._iconn.update(
                self._status, self._doms_of, changed, doms_changed
            )
        self._clustering = ClusteringOutcome(
            dominators=frozenset(
                u for u, is_dom in enumerate(self._status) if is_dom
            ),
            dominators_of=dict(self._doms_of),
            rounds=0,
            stats=MessageStats(),
        )
        self._connectors = self._iconn.connectors
        self._cds_edges = self._iconn.cds_edges

    def _backbone_nodes(self) -> frozenset[int]:
        return self._clustering.dominators | self._connectors

    def _membership(self, backbone: frozenset[int]) -> list[bool]:
        flags = [False] * self.udg.node_count
        for u in backbone:
            flags[u] = True
        return flags

    def _finish_assembly(
        self,
        backbone: frozenset[int],
        ldel_edges: frozenset[tuple[int, int]],
        *,
        icds_unchanged: bool,
    ) -> None:
        if not icds_unchanged:
            adjacency = self.udg.adjacency
            icds = set()
            for b in backbone:
                for w in adjacency[b]:
                    if w > b and w in backbone:
                        icds.add((b, w))
            self._icds_edges = frozenset(icds)
        prime = set(ldel_edges)
        for w, doms in self._doms_of.items():
            for d in doms:
                prime.add((w, d) if w < d else (d, w))
        self._backbone = backbone
        self._ldel_icds_edges = ldel_edges
        self._ldel_icds_prime_edges = frozenset(prime)

    # -- the maintenance step --------------------------------------------

    def apply(self, events: Sequence[Event]) -> StepReport:
        """Apply one event batch; repair the dirty region; report."""
        self.steps += 1
        phase_seconds: dict[str, float] = {}
        t0 = time.perf_counter()
        appeared: list[tuple[int, int]] = []
        vanished: list[tuple[int, int]] = []
        event_points: list[Point] = []
        #: pre-batch positions of backbone members an event displaced,
        #: renamed, or removed — the pre-state side of the PLDel dirt.
        member_points: list[Point] = []
        seeds: set[int] = set()
        structural = False
        backbone_prev = set(self._backbone)
        for event in events:
            if event.kind == "move":
                mover = cast(int, event.node)
                if mover in backbone_prev:
                    member_points.append(self.udg.positions[mover])
                    member_points.append(event.point)
                delta = self.udg.move(mover, event.point)
            elif event.kind == "join":
                structural = True
                delta = self.udg.join(event.point)
                self._status.append(False)
            else:
                structural = True
                node = cast(int, event.node)
                last = self.udg.node_count - 1
                if node in backbone_prev:
                    member_points.append(self.udg.positions[node])
                if node != last and last in backbone_prev:
                    member_points.append(self.udg.positions[last])
                delta = self.udg.leave(node)
                seeds.discard(node)
                backbone_prev.discard(node)
                if delta.renamed is not None:
                    old_id, new_id = delta.renamed
                    self._status[new_id] = self._status[old_id]
                    seeds = {new_id if s == old_id else s for s in seeds}
                    if old_id in backbone_prev:
                        backbone_prev.discard(old_id)
                        backbone_prev.add(new_id)
                self._status.pop()
                self._doms_of.pop(last, None)
                self._doms_of.pop(node, None)
            appeared.extend(delta.appeared)
            vanished.extend(delta.vanished)
            event_points.extend(delta.dirty_points)
            seeds.update(delta.touched)
            for u, v in delta.appeared:
                seeds.update((u, v))
            for u, v in delta.vanished:
                seeds.update((u, v))
        n = self.udg.node_count
        seeds = {s for s in seeds if s < n}
        phase_seconds["udg"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        flipped = self._cascade(seeds)
        certified, fallback = self._classify_repairs(flipped, event_points)
        phase_seconds["election"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        affected = set(seeds) | flipped
        for u in flipped:
            affected.update(self.udg.adjacency[u])
        doms_changed: set[int] = set()
        for w in affected:
            if self._status[w]:
                if self._doms_of.pop(w, None) is not None:
                    doms_changed.add(w)
            else:
                new_doms = frozenset(
                    v for v in self.udg.adjacency[w] if self._status[v]
                )
                if self._doms_of.get(w) != new_doms:
                    self._doms_of[w] = new_doms
                    doms_changed.add(w)
        # The connector fixed point reads (node set, adjacency,
        # dominators, dominator sets) and nothing geometric; when none
        # of those changed this batch, the previous outcome stands.
        quiet = not (
            structural or appeared or vanished or flipped or doms_changed
        )
        if quiet:
            backbone = self._backbone
        elif structural:
            self._refresh_connectors(None, None)
            backbone = self._backbone_nodes()
        else:
            self._refresh_connectors(seeds | flipped, doms_changed)
            backbone = self._backbone_nodes()
        phase_seconds["roles"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        membership_diff = backbone.symmetric_difference(backbone_prev)
        # PLDel is built over the backbone members alone, so its dirty
        # ids are the event-touched nodes that are members on either
        # side of the batch, plus every node whose membership flipped.
        dirty_ids = {
            s for s in seeds if s in backbone or s in backbone_prev
        } | membership_diff
        pldel_points = list(member_points)
        for s in sorted(dirty_ids):
            pldel_points.append(self.udg.positions[s])
        prev_prime = self._ldel_icds_prime_edges
        ldel_edges, pldel_stats = self.pldel.step(
            self._membership(backbone), pldel_points, dirty_ids
        )
        phase_seconds["pldel"] = time.perf_counter() - t0
        phase_seconds.update(
            ("pldel_" + k, v) for k, v in pldel_stats.seconds.items()
        )

        t0 = time.perf_counter()
        if not quiet or ldel_edges != self._ldel_icds_edges:
            # Quiet batches cannot change the ICDS (same members, same
            # adjacency); they can still move LDel edges via geometry.
            self._finish_assembly(backbone, ldel_edges, icds_unchanged=quiet)
        phase_seconds["assemble"] = time.perf_counter() - t0

        role_changes = len(flipped) + len(membership_diff)
        return StepReport(
            events=len(events),
            node_count=n,
            appeared_links=len(appeared),
            vanished_links=len(vanished),
            role_changes=role_changes,
            repairs_certified=certified,
            repairs_fallback=fallback,
            dirty_tiles=pldel_stats.dirty_tiles,
            contest_tiles=pldel_stats.contest_tiles,
            dirty_nodes=pldel_stats.dirty_members,
            dirty_fraction=pldel_stats.dirty_members / n if n else 0.0,
            edges_added=tuple(sorted(self._ldel_icds_prime_edges - prev_prime)),
            edges_removed=tuple(sorted(prev_prime - self._ldel_icds_prime_edges)),
            phase_seconds=phase_seconds,
        )

    def _cascade(self, seeds: set[int]) -> set[int]:
        """Exact repair of the greedy smallest-id MIS from ``seeds``.

        Pops ascend (every push targets a larger id than the pop that
        caused it), so each recomputation sees final smaller-id
        statuses — the result equals the global ascending pass.
        """
        status = self._status
        adjacency = self.udg.adjacency
        heap = sorted(seeds)
        flipped: set[int] = set()
        while heap:
            u = heapq.heappop(heap)
            new = not any(status[w] for w in adjacency[u] if w < u)
            if new == status[u]:
                continue
            status[u] = new
            flipped.symmetric_difference_update({u})
            for w in adjacency[u]:
                if w > u:
                    heapq.heappush(heap, w)
        return flipped

    def _classify_repairs(
        self, flipped: set[int], dirty_points: Sequence[Point]
    ) -> tuple[int, int]:
        """Count role flips inside vs outside the election halo."""
        if not flipped:
            return 0, 0
        halo = stage_halo("election") * self.radius
        halo_sq = halo * halo
        certified = fallback = 0
        for u in flipped:
            p = self.udg.positions[u]
            if any(dist_sq(p, q) <= halo_sq for q in dirty_points):
                certified += 1
            else:
                fallback += 1
        return certified, fallback

    # -- inspection and verification -------------------------------------

    def snapshot(self) -> Snapshot:
        return Snapshot(
            positions=tuple(self.udg.positions),
            udg_edges=self.udg.edge_set(),
            dominators=self._clustering.dominators,
            connectors=self._connectors,
            cds_edges=self._cds_edges,
            icds_edges=self._icds_edges,
            ldel_icds_edges=self._ldel_icds_edges,
            ldel_icds_prime_edges=self._ldel_icds_prime_edges,
        )

    def verify(self) -> dict:
        """Rebuild from scratch; report field-by-field bit-identity."""
        from repro.core.spanner import build_backbone

        reference = build_backbone(
            list(self.udg.positions), self.radius, mode="fast"
        )
        snap = self.snapshot()
        mismatches = [
            name
            for name, mine, theirs in (
                ("udg_edges", snap.udg_edges, reference.udg.edge_set()),
                ("dominators", snap.dominators, reference.dominators),
                ("connectors", snap.connectors, reference.connectors),
                ("cds_edges", snap.cds_edges, reference.cds.edge_set()),
                ("icds_edges", snap.icds_edges, reference.icds.edge_set()),
                (
                    "ldel_icds_edges",
                    snap.ldel_icds_edges,
                    reference.ldel_icds.edge_set(),
                ),
                (
                    "ldel_icds_prime_edges",
                    snap.ldel_icds_prime_edges,
                    reference.ldel_icds_prime.edge_set(),
                ),
            )
            if mine != theirs
        ]
        return {"identical": not mismatches, "mismatches": mismatches}
