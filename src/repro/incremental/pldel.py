"""Cavity-local PLDel maintenance over a dynamic tile grid.

The retained state is the sharded planarizer's per-tile outputs —
:func:`repro.sharding.build._phase_a`-equivalent Gabriel edges and
accepted LDel^1 triangles, and the Algorithm 3 contest survivors —
keyed by :class:`~repro.sharding.tiles.DynamicTileGrid` tiles.  A
maintenance step receives the *dirty points* of an event batch (old
and new positions of every moved, re-roled, or renamed backbone
member) plus the *dirty ids* (members whose position or identity
changed), and recomputes exactly the invalidation footprint:

* **phase A** (Gabriel + LDel acceptance) is a function of the members
  within ``stage_halo('ldel', 1) = 2r`` of the tile box, so a tile is
  phase-A dirty iff some dirty point lies within ``2r`` of it;
* **contests** consume accepted triangles whose anchors lie within
  ``stage_halo('pldel') = 3r`` of the tile box, so the contest-dirty
  set is the set of tiles whose accepted output actually changed —
  different triangle ids, or a dirty id among their vertices — dilated
  by ``3r`` of box-to-box distance;
* **stitching** keeps a multiset of edge contributions (Gabriel edges
  plus surviving-triangle edges, per tile), a bucket index over the
  live edges, and the set of properly-crossing edge pairs, all updated
  from the per-tile output diffs; the degenerate-crossing resolution
  then replays :func:`repro.topology.ldel.resolve_degenerate_crossings`
  over just that crossing set (deterministic in the edge set, so the
  replay is bit-identical to the global sweep).

Clean tiles keep their cached outputs verbatim.  That retention is
exact: a tile's owned outputs mention only nodes within its halo, so
any output that could name a changed node lies in a tile the dirty
points mark.  The per-step output is therefore bit-identical to a
from-scratch build — the maintainer's tripwire asserts exactly that.

Ids are *original* node ids throughout.  The serial pipeline builds
PLDel over the backbone subset re-indexed ``0..|B|-1``; since the
re-indexing preserves id order, every id comparison the construction
makes (triangle anchors, min-endpoint edge ownership, crossing
tie-breaks) gives the same answer in either id space, so maintaining
in original ids avoids re-indexing churn without breaking bit-identity.

The geometry cached per accepted triangle (circumcircle, edge
descriptors, bounding box, bucket cells) is computed once at tile
recompute time and reused by every contest that consumes the triangle
as context — the dominant cost of the sharded contest phase.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.geometry.circle import circumcircle
from repro.geometry.predicates import segments_cross
from repro.geometry.primitives import Point, dist
from repro.sharding.build import _phase_a
from repro.sharding.tiles import DynamicTileGrid, stage_halo
from repro.topology.ldel import Triangle, _triangle_edges, _triangles_intersect

if TYPE_CHECKING:
    from repro.incremental.udg import DynamicUdg

TileKey = tuple[int, int]
Edge = tuple[int, int]


@dataclass
class PldelStepStats:
    """Accounting for one planarizer maintenance step."""

    dirty_tiles: int = 0
    changed_tiles: int = 0
    contest_tiles: int = 0
    dirty_members: int = 0
    contests: int = 0
    straddle_contests: int = 0
    surviving_triangles: int = 0
    edges_added: int = 0
    edges_removed: int = 0
    seconds: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class _TriRecord:
    """An accepted triangle plus its cached contest geometry."""

    tri: Triangle
    bbox: tuple[float, float, float, float]
    cells: tuple[tuple[int, int], ...]
    circle: object
    edges: tuple


class IncrementalPLDel:
    """Per-tile PLDel outputs maintained under dirty-point invalidation."""

    def __init__(self, udg: "DynamicUdg", *, tile_cells: int = 2) -> None:
        self.udg = udg
        self.grid = DynamicTileGrid(udg.radius, tile_cells=tile_cells)
        #: tile -> owned Gabriel edges (normalized id pairs).
        self._gabriel: dict[TileKey, list[Edge]] = {}
        #: tile -> owned accepted triangles with cached geometry.
        self._accepted: dict[TileKey, list[_TriRecord]] = {}
        #: tile -> owned triangles surviving the contests.
        self._survivors: dict[TileKey, list[Triangle]] = {}
        #: tile -> its current edge contributions (with multiplicity).
        self._contrib: dict[TileKey, list[Edge]] = {}
        #: live union: edge -> number of tile contributions.
        self._counts: dict[Edge, int] = {}
        #: bucket index of live edges (cell side = radius).
        self._edge_cells: dict[Edge, tuple[tuple[int, int], ...]] = {}
        self._cell_edges: dict[tuple[int, int], set[Edge]] = {}
        #: properly-crossing live pairs, normalized and orderable.
        self._crossings: set[tuple[Edge, Edge]] = set()
        self._edges: frozenset[Edge] = frozenset()
        self._survivor_total = 0

    # -- the maintenance step --------------------------------------------

    def step(
        self,
        membership: Sequence[bool],
        dirty_points: Iterable[Point],
        dirty_ids: Iterable[int] = (),
    ) -> tuple[frozenset[Edge], PldelStepStats]:
        """Recompute the dirty region; return the full PLDel edge set."""
        stats = PldelStepStats()
        dirty_points = list(dirty_points)
        dirty_ids = set(dirty_ids)
        if not dirty_points and not dirty_ids:
            # No member position, role, or id changed: every cached
            # output is a function of unchanged inputs.
            stats.surviving_triangles = self._survivor_total
            return self._edges, stats
        radius = self.udg.radius
        acceptance_halo = stage_halo("ldel", 1) * radius
        contest_halo = stage_halo("pldel") * radius

        t0 = time.perf_counter()
        dirty_a: set[TileKey] = set()
        for p in dirty_points:
            dirty_a.update(self.grid.keys_within(p, acceptance_halo))
        dirty_members: set[int] = set()
        changed = self._recompute_phase_a(
            dirty_a, acceptance_halo, membership, dirty_ids, dirty_members
        )
        stats.seconds["phase_a"] = time.perf_counter() - t0
        stats.dirty_tiles = len(dirty_a)
        stats.changed_tiles = len(changed)
        stats.dirty_members = len(dirty_members)

        t0 = time.perf_counter()
        dirty_b: set[TileKey] = set()
        for key in changed:
            dirty_b.update(self.grid.keys_near_key(key, contest_halo))
        for key in sorted(dirty_b):
            self._recompute_contest(key, contest_halo, stats)
        stats.seconds["contest"] = time.perf_counter() - t0
        stats.contest_tiles = len(dirty_b)

        t0 = time.perf_counter()
        self._restitch(dirty_a | dirty_b, dirty_ids, stats)
        stats.seconds["stitch"] = time.perf_counter() - t0
        stats.surviving_triangles = self._survivor_total
        return self._edges, stats

    # -- phase A ----------------------------------------------------------

    def _recompute_phase_a(
        self,
        dirty_a: set[TileKey],
        halo_r: float,
        membership: Sequence[bool],
        dirty_ids: set[int],
        dirty_members: set[int],
    ) -> set[TileKey]:
        """Rebuild the dirty tiles' Gabriel/accepted outputs.

        Tiles whose ``2r`` halos overlap are grouped into clusters and
        each cluster is built by *one* :func:`_phase_a` call over the
        cluster's merged core — ownership filtering is per node
        (min-endpoint / anchor in core), so the merged run returns the
        concatenation of the per-tile runs without rebuilding the same
        overlapping halo once per tile.  Returns the tiles whose
        contest-relevant output changed: a different accepted triangle
        set, or a dirty id among the old or new triangle vertices
        (same ids, moved geometry).
        """
        pos = self.udg.positions
        tile_gabriel: dict[TileKey, list[Edge]] = {}
        tile_tris: dict[TileKey, list[Triangle]] = {}
        for cluster in self._clusters(dirty_a):
            boxes = [self.grid.box(k) for k in cluster]
            bbox = (
                min(b[0] for b in boxes),
                min(b[1] for b in boxes),
                max(b[2] for b in boxes),
                max(b[3] for b in boxes),
            )
            gids = self.udg.members_within_box(bbox, halo_r, membership)
            core = [g for g in gids if self.grid.key_of(pos[g]) in cluster]
            if not core:
                continue
            dirty_members.update(gids)
            coords = [(pos[g][0], pos[g][1]) for g in gids]
            result = _phase_a(
                (None, bbox, gids, coords, core, self.udg.radius, 1,
                 ("gabriel", "ldel"))
            )
            for u, v in result["gabriel_edges"]:
                edge = (u, v) if u < v else (v, u)
                tile_gabriel.setdefault(self.grid.key_of(pos[edge[0]]), []).append(
                    edge
                )
            for t in result["accepted"]:
                tri = tuple(t)
                tile_tris.setdefault(self.grid.key_of(pos[tri[0]]), []).append(tri)

        changed: set[TileKey] = set()
        for key in dirty_a:
            old_tris = [rec.tri for rec in self._accepted.get(key, ())]
            new_tris = tile_tris.get(key, [])
            gabriel = sorted(tile_gabriel.get(key, []))
            if gabriel:
                self._gabriel[key] = gabriel
            else:
                self._gabriel.pop(key, None)
            if new_tris:
                self._accepted[key] = [self._record(t) for t in new_tris]
            else:
                self._accepted.pop(key, None)
            if old_tris != new_tris or any(
                g in dirty_ids for tri in old_tris for g in tri
            ):
                changed.add(key)
        return changed

    def _clusters(self, keys: set[TileKey]) -> list[set[TileKey]]:
        """Group tile keys whose acceptance halos overlap.

        A pure performance partition — any grouping is exact — joining
        tiles within two tile sides of each other, the reach at which
        their ``2r`` halos share members worth building only once.
        """
        reach = max(1, math.ceil(2.0 / self.grid.tile_cells) + 1)
        remaining = set(keys)
        clusters: list[set[TileKey]] = []
        while remaining:
            seed = remaining.pop()
            cluster = {seed}
            frontier = [seed]
            while frontier:
                kx, ky = frontier.pop()
                near = [
                    k
                    for k in remaining
                    if abs(k[0] - kx) <= reach and abs(k[1] - ky) <= reach
                ]
                for k in near:
                    remaining.discard(k)
                    cluster.add(k)
                    frontier.append(k)
            clusters.append(cluster)
        return clusters

    def _record(self, tri: Triangle) -> _TriRecord:
        pos = self.udg.positions
        (x1, y1), (x2, y2), (x3, y3) = pos[tri[0]], pos[tri[1]], pos[tri[2]]
        bbox = (min(x1, x2, x3), min(y1, y2, y3), max(x1, x2, x3), max(y1, y2, y3))
        cell = self.udg.radius
        cells = tuple(
            (cx, cy)
            for cx in range(math.floor(bbox[0] / cell), math.floor(bbox[2] / cell) + 1)
            for cy in range(math.floor(bbox[1] / cell), math.floor(bbox[3] / cell) + 1)
        )
        return _TriRecord(
            tri=tri,
            bbox=bbox,
            cells=cells,
            circle=circumcircle(pos[tri[0]], pos[tri[1]], pos[tri[2]]),
            edges=_triangle_edges(pos, tri),
        )

    # -- phase B ----------------------------------------------------------

    def _recompute_contest(
        self, key: TileKey, halo_r: float, stats: PldelStepStats
    ) -> None:
        """Replay Algorithm 3's contests for one tile from cached geometry.

        Same rule as :func:`repro.sharding.build._contest_worker` —
        an owned triangle is removed exactly when some intersecting
        accepted triangle has a vertex strictly inside its circumcircle
        — evaluated over the reference's context (every accepted
        triangle whose anchor is within ``3r`` of the tile box) with
        the per-triangle geometry computed once in phase A.
        """
        owned_count = len(self._accepted.get(key, ()))
        if not owned_count:
            self._survivors.pop(key, None)
            return
        pos = self.udg.positions
        records: list[_TriRecord] = []
        owned_flags: list[bool] = []
        for src in sorted(self.grid.keys_near_key(key, halo_r)):
            for rec in self._accepted.get(src, ()):
                if self.grid.box_distance(key, pos[rec.tri[0]]) > halo_r:
                    continue
                records.append(rec)
                owned_flags.append(src == key)

        buckets: dict[tuple[int, int], list[int]] = {}
        for idx, rec in enumerate(records):
            for cell in rec.cells:
                buckets.setdefault(cell, []).append(idx)
        # Only the owned triangles' removal flags reach the output, and
        # the rule is per-pair independent, so pairs of two context
        # triangles need not be contested at all.
        pairs: set[tuple[int, int]] = set()
        for members in buckets.values():
            owned_members = [i for i in members if owned_flags[i]]
            if not owned_members:
                continue
            for i in owned_members:
                for j in members:
                    if i != j:
                        pairs.add((i, j) if i < j else (j, i))

        removed = [False] * len(records)
        for i, j in pairs:
            bi, bj = records[i].bbox, records[j].bbox
            if bi[2] < bj[0] or bj[2] < bi[0] or bi[3] < bj[1] or bj[3] < bi[1]:
                continue
            if not _triangles_intersect(records[i].edges, records[j].edges):
                continue
            stats.contests += 1
            if owned_flags[i] != owned_flags[j]:
                stats.straddle_contests += 1
            ci, cj = records[i].circle, records[j].circle
            if ci is not None and any(
                ci.contains(pos[x]) for x in records[j].tri  # type: ignore[attr-defined]
            ):
                removed[i] = True
            if cj is not None and any(
                cj.contains(pos[x]) for x in records[i].tri  # type: ignore[attr-defined]
            ):
                removed[j] = True
        self._survivors[key] = [
            records[idx].tri
            for idx in range(len(records))
            if owned_flags[idx] and not removed[idx]
        ]

    # -- stitching ---------------------------------------------------------

    def _restitch(
        self, touched_tiles: set[TileKey], dirty_ids: set[int], stats: PldelStepStats
    ) -> None:
        """Fold the recomputed tiles into the live union and re-resolve."""
        affected: dict[Edge, bool] = {}
        for key in touched_tiles:
            new_contrib: list[Edge] = list(self._gabriel.get(key, ()))
            for u, v, w in self._survivors.get(key, ()):
                new_contrib.append((u, v))
                new_contrib.append((v, w))
                new_contrib.append((u, w))
            delta = Counter(new_contrib)
            delta.subtract(self._contrib.get(key, ()))
            if new_contrib:
                self._contrib[key] = new_contrib
            else:
                self._contrib.pop(key, None)
            for edge, change in delta.items():
                if not change:
                    continue
                if edge not in affected:
                    affected[edge] = edge in self._counts
                total = self._counts.get(edge, 0) + change
                if total:
                    self._counts[edge] = total
                else:
                    self._counts.pop(edge, None)

        removed = [
            e for e, was_live in affected.items()
            if was_live and e not in self._counts
        ]
        added = [
            e for e, was_live in affected.items()
            if not was_live and e in self._counts
        ]
        stats.edges_added = len(added)
        stats.edges_removed = len(removed)
        for edge in removed:
            self._index_remove(edge)
        refresh = []
        if dirty_ids:
            refresh = [
                e
                for e in self._edge_cells
                if e[0] in dirty_ids or e[1] in dirty_ids
            ]
            for edge in refresh:
                self._index_remove(edge)
        for edge in sorted(set(added) | set(refresh)):
            if edge in self._counts:
                self._index_insert(edge)

        self._survivor_total = sum(len(t) for t in self._survivors.values())
        self._edges = self._resolve()

    def _index_remove(self, edge: Edge) -> None:
        for cell in self._edge_cells.pop(edge, ()):
            members = self._cell_edges.get(cell)
            if members is not None:
                members.discard(edge)
                if not members:
                    del self._cell_edges[cell]
        if self._crossings:
            self._crossings = {
                pair for pair in self._crossings if edge not in pair
            }

    def _index_insert(self, edge: Edge) -> None:
        pos = self.udg.positions
        u, v = edge
        pu, pv = pos[u], pos[v]
        cell = self.udg.radius
        x_lo = math.floor(min(pu[0], pv[0]) / cell)
        x_hi = math.floor(max(pu[0], pv[0]) / cell)
        y_lo = math.floor(min(pu[1], pv[1]) / cell)
        y_hi = math.floor(max(pu[1], pv[1]) / cell)
        cells = tuple(
            (cx, cy)
            for cx in range(x_lo, x_hi + 1)
            for cy in range(y_lo, y_hi + 1)
        )
        rivals: set[Edge] = set()
        for c in cells:
            rivals.update(self._cell_edges.get(c, ()))
        for other in rivals:
            a, b = other
            if a == u or a == v or b == u or b == v:
                continue
            if segments_cross(pu, pv, pos[a], pos[b]):
                pair = (edge, other) if edge <= other else (other, edge)
                self._crossings.add(pair)
        self._edge_cells[edge] = cells
        for c in cells:
            self._cell_edges.setdefault(c, set()).add(edge)

    def _resolve(self) -> frozenset[Edge]:
        """Replay the degenerate-crossing sweep over the live pairs.

        Identical to running
        :func:`repro.topology.ldel.resolve_degenerate_crossings` on the
        stitched graph: that sweep is a function of the edge set alone
        (pairs processed in sorted order, loser = lexicographically
        larger ``(length, ids)``), and ``self._crossings`` *is* its
        crossing-pair set.
        """
        live = frozenset(self._counts)
        if not self._crossings:
            return live
        pos = self.udg.positions
        dead: set[Edge] = set()
        for e1, e2 in sorted(self._crossings):
            if e1 in dead or e2 in dead:
                continue
            dead.add(max((e1, e2), key=lambda e: (dist(pos[e[0]], pos[e[1]]), e)))
        return live - dead
