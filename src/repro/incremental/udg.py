"""Incrementally maintained unit disk graph with appearing/vanishing deltas.

The same bucket grid as :class:`repro.graphs.udg.GridIndex` (cell side
``r``, so a neighbor query touches the 3x3 surrounding cells), but
mutable: moves, joins, and leaves update the adjacency in place and
report exactly which UDG links appeared and vanished.  The edge rule
is the library's, verbatim — ``dist_sq(p, q) <= r*r`` with the same
float arithmetic — so the maintained edge set is bit-identical to a
fresh :class:`~repro.graphs.udg.UnitDiskGraph` at the same positions
(asserted by the maintainer's rebuild-equivalence tripwire).

Ids stay dense under churn via *swap-remove*: a leave removes the
node, renames the current last id into the vacated slot, and reports
the rename so structures keyed by id can follow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.geometry.primitives import Point, dist_sq


@dataclass(frozen=True)
class UdgDelta:
    """Edge/id changes produced by applying one event."""

    appeared: tuple[tuple[int, int], ...] = ()
    vanished: tuple[tuple[int, int], ...] = ()
    #: ``(old_id, new_id)`` when a leave renamed the last node.
    renamed: tuple[int, int] | None = None
    #: Positions whose surroundings changed (old and/or new locations).
    dirty_points: tuple[Point, ...] = ()
    #: Ids whose adjacency or identity changed (post-event id space).
    touched: tuple[int, ...] = ()


@dataclass
class DynamicUdg:
    """A unit disk graph under join/leave/move mutation."""

    positions: list[Point]
    radius: float
    adjacency: list[set[int]] = field(init=False)
    _cells: dict[tuple[int, int], set[int]] = field(init=False)

    def __post_init__(self) -> None:
        if self.radius <= 0.0:
            raise ValueError("transmission radius must be positive")
        self.positions = [Point(float(p[0]), float(p[1])) for p in self.positions]
        n = len(self.positions)
        self.adjacency = [set() for _ in range(n)]
        self._cells = {}
        for i, p in enumerate(self.positions):
            self._cells.setdefault(self._cell_of(p), set()).add(i)
        r_sq = self.radius * self.radius
        for u in range(n):
            pu = self.positions[u]
            for v in self._candidates(pu):
                if v > u and dist_sq(pu, self.positions[v]) <= r_sq:
                    self.adjacency[u].add(v)
                    self.adjacency[v].add(u)

    # -- queries ---------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.positions)

    def neighbors(self, u: int) -> frozenset[int]:
        return frozenset(self.adjacency[u])

    def edge_set(self) -> frozenset[tuple[int, int]]:
        return frozenset(
            (u, v) for u, nbrs in enumerate(self.adjacency) for v in nbrs if u < v
        )

    def _cell_of(self, p: Point) -> tuple[int, int]:
        return (math.floor(p[0] / self.radius), math.floor(p[1] / self.radius))

    def _candidates(self, p: Point) -> Iterable[int]:
        """Ids in the 3x3 cell window around ``p`` (superset of links)."""
        cx, cy = self._cell_of(p)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                members = self._cells.get((cx + dx, cy + dy))
                if members:
                    yield from members

    def nodes_within(self, p: Point, reach: float) -> list[int]:
        """Sorted ids at distance <= ``reach`` from ``p``."""
        r_sq = reach * reach
        window = max(1, math.ceil(reach / self.radius))
        cx, cy = self._cell_of(p)
        out = []
        for dx in range(-window, window + 1):
            for dy in range(-window, window + 1):
                for i in self._cells.get((cx + dx, cy + dy), ()):
                    if dist_sq(p, self.positions[i]) <= r_sq:
                        out.append(i)
        out.sort()
        return out

    def members_within_box(
        self,
        box: tuple[float, float, float, float],
        reach: float,
        membership: Sequence[bool] | None = None,
    ) -> list[int]:
        """Sorted ids within ``reach`` of ``box`` (optionally filtered).

        The per-tile halo query of the incremental planarizer: all
        (backbone) nodes a tile's stage halo can see.
        """
        x0, y0, x1, y1 = box
        cx0 = math.floor((x0 - reach) / self.radius)
        cx1 = math.floor((x1 + reach) / self.radius)
        cy0 = math.floor((y0 - reach) / self.radius)
        cy1 = math.floor((y1 + reach) / self.radius)
        out = []
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                for i in self._cells.get((cx, cy), ()):
                    if membership is not None and not membership[i]:
                        continue
                    p = self.positions[i]
                    dx = max(x0 - p[0], 0.0, p[0] - x1)
                    dy = max(y0 - p[1], 0.0, p[1] - y1)
                    if math.hypot(dx, dy) <= reach:
                        out.append(i)
        out.sort()
        return out

    # -- mutation --------------------------------------------------------

    def _links_at(self, p: Point, exclude: int) -> set[int]:
        r_sq = self.radius * self.radius
        return {
            v
            for v in self._candidates(p)
            if v != exclude and dist_sq(p, self.positions[v]) <= r_sq
        }

    def move(self, u: int, p: Point) -> UdgDelta:
        """Relocate ``u`` to ``p``; report appearing/vanishing links."""
        if not 0 <= u < len(self.positions):
            raise ValueError(f"move of unknown node {u}")
        p = Point(float(p[0]), float(p[1]))
        old = self.positions[u]
        old_links = self.adjacency[u]
        new_links = self._links_at(p, u)
        appeared = tuple(sorted((min(u, v), max(u, v)) for v in new_links - old_links))
        vanished = tuple(sorted((min(u, v), max(u, v)) for v in old_links - new_links))
        for v in old_links - new_links:
            self.adjacency[v].discard(u)
        for v in new_links - old_links:
            self.adjacency[v].add(u)
        self.adjacency[u] = new_links
        old_cell, new_cell = self._cell_of(old), self._cell_of(p)
        if old_cell != new_cell:
            self._cells[old_cell].discard(u)
            if not self._cells[old_cell]:
                del self._cells[old_cell]
            self._cells.setdefault(new_cell, set()).add(u)
        self.positions[u] = p
        return UdgDelta(
            appeared=appeared,
            vanished=vanished,
            dirty_points=(old, p),
            touched=(u,),
        )

    def join(self, p: Point) -> UdgDelta:
        """Add a node at ``p`` with the next id; report its new links."""
        p = Point(float(p[0]), float(p[1]))
        u = len(self.positions)
        links = self._links_at(p, u)
        self.positions.append(p)
        self.adjacency.append(links)
        for v in links:
            self.adjacency[v].add(u)
        self._cells.setdefault(self._cell_of(p), set()).add(u)
        appeared = tuple(sorted((min(u, v), max(u, v)) for v in links))
        return UdgDelta(appeared=appeared, dirty_points=(p,), touched=(u,))

    def leave(self, u: int) -> UdgDelta:
        """Remove ``u``; rename the last id into its slot (swap-remove)."""
        n = len(self.positions)
        if not 0 <= u < n:
            raise ValueError(f"leave of unknown node {u}")
        last = n - 1
        old_pos = self.positions[u]
        old_links = self.adjacency[u]
        for v in old_links:
            self.adjacency[v].discard(u)
        cell = self._cell_of(old_pos)
        self._cells[cell].discard(u)
        if not self._cells[cell]:
            del self._cells[cell]
        touched: set[int] = set(old_links - {last})
        renamed = None
        if u != last:
            # Rename last -> u: same node, same links, new id.
            last_pos = self.positions[last]
            last_links = self.adjacency[last]
            self.positions[u] = last_pos
            self.adjacency[u] = last_links
            for v in last_links:
                self.adjacency[v].discard(last)
                self.adjacency[v].add(u)
            last_cell = self._cell_of(last_pos)
            self._cells[last_cell].discard(last)
            if not self._cells[last_cell]:
                del self._cells[last_cell]
            self._cells.setdefault(last_cell, set()).add(u)
            renamed = (last, u)
            touched |= last_links | {u}
            dirty = (old_pos, last_pos)
        else:
            dirty = (old_pos,)
        self.positions.pop()
        self.adjacency.pop()
        # No vanished edges are reported: they would name a dead id;
        # touched ids and dirty points carry the survivors' effects.
        return UdgDelta(
            vanished=(),
            renamed=renamed,
            dirty_points=dirty,
            touched=tuple(sorted(t for t in touched if t < len(self.positions))),
        )
