"""ASCII line charts for the experiment figures.

The harness prints figure data as tables; with ``--chart`` it also
renders each series as a terminal plot, which is how the paper's
figure *shapes* (flat degree curves, gently rising stretch) become
visible without a plotting stack in an offline environment.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import SeriesPoint

#: Glyphs cycled across series.
_MARKS = "ox+*#@%&"


def render_chart(
    points: Sequence[SeriesPoint],
    series: Sequence[str],
    *,
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
) -> str:
    """Render the named ``series`` of ``points`` as an ASCII chart.

    All series share one y-axis; the legend maps glyphs to names.
    """
    if not points or not series:
        return "(no data)"
    missing = [s for s in series if s not in points[0].values]
    if missing:
        raise KeyError(f"unknown series: {missing}")

    xs = [p.x for p in points]
    values = {s: [p.values[s] for p in points] for s in series}
    y_min = min(min(v) for v in values.values())
    y_max = max(max(v) for v in values.values())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, mark: str) -> None:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        grid[height - 1 - row][col] = mark

    for idx, name in enumerate(series):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in zip(xs, values[name]):
            plot(x, y, mark)

    lines = []
    for i, row in enumerate(grid):
        y_here = y_max - i * (y_max - y_min) / (height - 1)
        prefix = f"{y_here:>9.2f} |" if i % 4 == 0 or i == height - 1 else f"{'':>9} |"
        lines.append(prefix + "".join(row))
    lines.append(f"{'':>9} +" + "-" * width)
    lines.append(
        f"{'':>10}{x_min:<10g}{x_label:^{max(width - 20, 4)}}{x_max:>10g}"
    )
    for idx, name in enumerate(series):
        lines.append(f"{'':>10}{_MARKS[idx % len(_MARKS)]} = {name}")
    return "\n".join(lines)


def default_series(points: Sequence[SeriesPoint], *, limit: int = 4) -> list[str]:
    """A readable default: up to ``limit`` series, avg before max."""
    if not points:
        return []
    keys = sorted(points[0].values)
    avg_keys = [k for k in keys if k.endswith("avg")]
    other = [k for k in keys if not k.endswith("avg")]
    return (avg_keys + other)[:limit]
