"""The paper's experiment suite (Table I, Figures 8-12, ablations).

:mod:`~repro.experiments.runner` holds the reusable sweeps; the
benchmark files under ``benchmarks/`` and the CLI
(``python -m repro.experiments.harness``) are thin wrappers over it.
"""

from repro.experiments.runner import (
    DEFAULT_SIDE,
    ExperimentConfig,
    SweepCache,
    SweepInstance,
    TopologyRow,
    build_all_topologies,
    fig8_degree_vs_density,
    fig9_stretch_vs_density,
    fig10_comm_vs_density,
    fig11_stretch_vs_radius,
    fig12_comm_vs_radius,
    format_rows,
    format_series,
    table1,
)

__all__ = [
    "DEFAULT_SIDE",
    "ExperimentConfig",
    "SweepCache",
    "SweepInstance",
    "TopologyRow",
    "build_all_topologies",
    "fig8_degree_vs_density",
    "fig9_stretch_vs_density",
    "fig10_comm_vs_density",
    "fig11_stretch_vs_radius",
    "fig12_comm_vs_radius",
    "format_rows",
    "format_series",
    "table1",
]
