"""CLI for regenerating every table and figure of the paper.

Usage::

    python -m repro.experiments.harness table1
    python -m repro.experiments.harness fig8 fig9 fig10
    python -m repro.experiments.harness all --instances 10
    python -m repro.experiments.harness table1 --quick   # smoke-scale

Each experiment prints the same rows/series the paper reports (values
differ — this substrate is a simulator — but the shapes are the
reproduction target; see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments.runner import (
    ExperimentConfig,
    deployment_sensitivity,
    fig8_degree_vs_density,
    fig9_stretch_vs_density,
    fig10_comm_vs_density,
    fig11_stretch_vs_radius,
    fig12_comm_vs_radius,
    format_rows,
    format_series,
    message_breakdown,
    table1,
)

EXPERIMENTS = (
    "table1", "fig8", "fig9", "fig10", "fig11", "fig12",
    "breakdown", "sensitivity", "hotpath",
)


def _maybe_chart(points, x_label: str, chart: bool) -> str:
    if not chart:
        return ""
    from repro.experiments.ascii_chart import default_series, render_chart

    return "\n\n" + render_chart(
        points, default_series(points), x_label=x_label
    )


def _run_one(name: str, config: ExperimentConfig, quick: bool, chart: bool = False) -> str:
    ns: Sequence[int] = (20, 40, 60, 80, 100) if quick else (
        20, 30, 40, 50, 60, 70, 80, 90, 100
    )
    radii: Sequence[float] = (30, 45, 60) if quick else (
        20, 25, 30, 35, 40, 45, 50, 55, 60
    )
    n_large = 150 if quick else 500
    if name == "table1":
        rows = table1(n=30 if quick else 100, radius=60.0, config=config)
        return format_rows(rows, with_std=not quick)
    if name == "fig8":
        points = fig8_degree_vs_density(ns=ns, config=config)
        return format_series(points, x_label="nodes") + _maybe_chart(
            points, "nodes", chart
        )
    if name == "fig9":
        points = fig9_stretch_vs_density(ns=ns, config=config)
        return format_series(points, x_label="nodes") + _maybe_chart(
            points, "nodes", chart
        )
    if name == "fig10":
        points = fig10_comm_vs_density(ns=ns, config=config)
        return format_series(points, x_label="nodes") + _maybe_chart(
            points, "nodes", chart
        )
    if name == "fig11":
        points = fig11_stretch_vs_radius(radii=radii, n=n_large, config=config)
        return format_series(points, x_label="radius") + _maybe_chart(
            points, "radius", chart
        )
    if name == "fig12":
        points = fig12_comm_vs_radius(radii=radii, n=n_large, config=config)
        return format_series(points, x_label="radius") + _maybe_chart(
            points, "radius", chart
        )
    if name == "breakdown":
        kinds = message_breakdown(n=30 if quick else 100, config=config)
        lines = [f"{'message kind':<16}{'sends/node':>12}"]
        lines += [f"{kind:<16}{value:>12.3f}" for kind, value in kinds.items()]
        lines.append(f"{'TOTAL':<16}{sum(kinds.values()):>12.3f}")
        return "\n".join(lines)
    if name == "hotpath":
        import json as _json

        from repro.experiments.hotpath_bench import (
            DEFAULT_SIZES,
            METRICS_SIZES,
            default_baseline_path,
            format_report,
            load_baseline,
            run_benchmark,
            run_metrics_benchmark,
        )

        baseline_path = default_baseline_path()
        report = run_benchmark(
            (200,) if quick else DEFAULT_SIZES,
            seed=config.seed,
            baseline=load_baseline(baseline_path),
            baseline_path=str(baseline_path),
        )
        report["metrics"] = run_metrics_benchmark(
            (200,) if quick else METRICS_SIZES, seed=config.seed
        )
        out = "BENCH_hotpath.json"
        with open(out, "w") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return format_report(report) + f"\nreport written: {out}"
    if name == "sensitivity":
        results = deployment_sensitivity(
            n=30 if quick else 80, config=config
        )
        metrics = list(next(iter(results.values())))
        lines = [f"{'generator':<12}" + "".join(f"{m:>20}" for m in metrics)]
        for generator, values in results.items():
            lines.append(
                f"{generator:<12}"
                + "".join(f"{values[m]:>20.3f}" for m in metrics)
            )
        return "\n".join(lines)
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.harness", description=__doc__
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=(*EXPERIMENTS, "all"),
        help="which tables/figures to regenerate",
    )
    parser.add_argument(
        "--instances", type=int, default=None, help="instances per data point"
    )
    parser.add_argument("--seed", type=int, default=2002)
    parser.add_argument(
        "--quick", action="store_true", help="smoke-scale parameters"
    )
    parser.add_argument(
        "--chart", action="store_true", help="render figure series as ASCII charts"
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    instances = args.instances
    for name in names:
        default_instances = 3 if name in ("fig11", "fig12") else 10
        if args.quick:
            default_instances = 2
        config = ExperimentConfig(
            instances=instances or default_instances, seed=args.seed
        )
        started = time.time()
        output = _run_one(name, config, args.quick, chart=args.chart)
        elapsed = time.time() - started
        print(f"=== {name} (instances={config.instances}, {elapsed:.1f}s) ===")
        print(output)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
