"""Hot-path benchmark: stage timings for the construction pipeline.

Times the stages the spanner construction actually spends its cycles
in — UDG build, Gabriel graph, LDel^1, Algorithm 3 planarization (the
two together reported as ``pldel``), and the full ICDS backbone — on
the deployment recipe the paper's experiments use (uniform points in a
``10 sqrt(n)`` square, radius 25), and compares against a recorded
baseline so regressions show up as a number, not a feeling.

The ``backbone_fast`` section times the message-passing backbone
protocol against the direct-computation fast path and the sharded
build, with a bit-identical tripwire on the dominator/connector/edge
sets (any divergence is a hard failure, not a statistic).

Shared by ``benchmarks/bench_hotpath.py`` (standalone CLI), the
``hotpath`` mode of :mod:`repro.experiments.harness`, and the CI
bench-smoke job.  Output is machine-readable JSON
(``hotpath-bench/v1``); baselines use the sibling
``hotpath-baseline/v1`` schema with the same per-size layout.
"""

from __future__ import annotations

import json
import math
import random
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.spanner import build_backbone
from repro.graphs.udg import UnitDiskGraph
from repro.topology.construction_cache import ConstructionCache
from repro.topology.gabriel import gabriel_graph
from repro.topology.ldel import local_delaunay_graph, planarize_ldel1
from repro.workloads.generators import connected_udg_instance

#: Deployment sizes the regression harness tracks.
DEFAULT_SIZES = (200, 500, 1000, 2000)
#: Sizes the sharded-vs-serial comparison runs at (ISSUE 3).
SHARDED_SIZES = (1000, 2000, 5000)
#: Sizes the fast-vs-protocol backbone comparison runs at (ISSUE 4).
BACKBONE_FAST_SIZES = (1000, 2000, 5000)
DEFAULT_RADIUS = 25.0
DEFAULT_SEED = 2002
DEFAULT_SHARDS = 4

#: Stage keys in reporting order.
STAGES = ("udg", "gabriel", "ldel1", "planarize", "pldel", "backbone")

BENCH_SCHEMA = "hotpath-bench/v1"
BASELINE_SCHEMA = "hotpath-baseline/v1"


def default_baseline_path() -> Path:
    """The checked-in baseline next to the benchmarks CLI."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "baseline_hotpath.json"


def measure_size(
    n: int,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    reps: int = 1,
) -> dict:
    """Stage timings, edge counts, and cache counters for one size.

    The deployment is sampled once (``connected_udg_instance`` with a
    size-derived side, so density stays constant across ``n``); each
    stage is timed ``reps`` times and the minimum kept — the usual
    guard against scheduler noise.  Edge counts are recorded so a
    baseline comparison can assert the optimized pipeline still builds
    the *same* graphs, and the construction-cache counters quantify how
    much work the cache absorbed.
    """
    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, radius, random.Random(seed))
    seconds: dict[str, float] = {}
    edges: dict[str, int] = {}
    counters: dict[str, int] = {}

    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        udg = UnitDiskGraph(list(dep.points), dep.radius)
        t_udg = time.perf_counter() - t0

        t0 = time.perf_counter()
        gg = gabriel_graph(udg)
        t_gg = time.perf_counter() - t0

        cache = ConstructionCache(udg)
        t0 = time.perf_counter()
        ldel1 = local_delaunay_graph(udg, k=1, cache=cache)
        t_ldel1 = time.perf_counter() - t0

        t0 = time.perf_counter()
        pldel = planarize_ldel1(udg, ldel1, cache=cache)
        t_plan = time.perf_counter() - t0

        t0 = time.perf_counter()
        backbone = build_backbone(dep.points, dep.radius)
        t_bb = time.perf_counter() - t0

        rep_seconds = {
            "udg": t_udg,
            "gabriel": t_gg,
            "ldel1": t_ldel1,
            "planarize": t_plan,
            "pldel": t_ldel1 + t_plan,
            "backbone": t_bb,
        }
        for key, value in rep_seconds.items():
            seconds[key] = min(seconds.get(key, value), value)
        edges = {
            "udg": udg.edge_count,
            "gabriel": gg.edge_count,
            "ldel1": ldel1.graph.edge_count,
            "pldel": pldel.graph.edge_count,
            "backbone": backbone.ldel_icds.edge_count,
        }
        counters = cache.snapshot()

    return {
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "edges": edges,
        "counters": counters,
    }


def run_benchmark(
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    reps: int = 1,
    baseline: Optional[dict] = None,
    baseline_path: Optional[str] = None,
) -> dict:
    """Benchmark every size and fold in the baseline comparison."""
    results = {str(n): measure_size(n, radius=radius, seed=seed, reps=reps) for n in sizes}
    report: dict = {
        "schema": BENCH_SCHEMA,
        "params": {
            "generator": "uniform",
            "side": "10*sqrt(n)",
            "radius": radius,
            "seed": seed,
            "reps": reps,
        },
        "sizes": list(sizes),
        "results": results,
    }
    if baseline is not None:
        report["baseline"] = {
            "path": baseline_path,
            "commit": baseline.get("commit"),
            "schema": baseline.get("schema"),
        }
        report["speedup"] = compare_to_baseline(results, baseline)
    return report


def compare_to_baseline(results: dict, baseline: dict) -> dict:
    """Per-size, per-stage speedup factors plus edge-count agreement.

    ``speedup > 1`` means the current code is faster than the recorded
    baseline; ``edges_match`` is the regression tripwire — a speedup
    bought by building a different graph is a bug, not an optimization.
    """
    out: dict = {}
    base_results = baseline.get("results", {})
    for key, current in results.items():
        base = base_results.get(key)
        if base is None:
            continue
        stage_speedup = {}
        for stage in STAGES:
            now = current["seconds"].get(stage)
            then = base["seconds"].get(stage)
            if now and then:
                stage_speedup[stage] = round(then / now, 3)
        out[key] = {
            "speedup": stage_speedup,
            "edges_match": current["edges"] == base["edges"],
        }
    return out


class BaselineError(RuntimeError):
    """The baseline file is missing, unreadable, or the wrong schema.

    Raised by :func:`load_baseline_strict` so CI entry points can turn
    a broken baseline into a one-line diagnosis instead of a traceback
    (or, worse, a silent run with no regression comparison at all).
    """


def load_baseline(path: str | Path) -> Optional[dict]:
    """Parse a baseline file; ``None`` when absent or unreadable."""
    try:
        return load_baseline_strict(path)
    except BaselineError:
        return None


def load_baseline_strict(path: str | Path) -> dict:
    """Parse a baseline file or raise :class:`BaselineError` saying why."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except FileNotFoundError:
        raise BaselineError(
            f"baseline file not found: {path} — run with --write-baseline "
            "on a known-good commit to create it"
        ) from None
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from None
    except ValueError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from None
    schema = data.get("schema") if isinstance(data, dict) else None
    if schema != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path} has schema {schema!r}, expected "
            f"{BASELINE_SCHEMA!r} — stale baseline; re-pin it with "
            "--write-baseline"
        )
    return data


def baseline_from_report(report: dict, commit: str = "unknown") -> dict:
    """Re-pin a baseline file from a fresh benchmark report."""
    return {
        "schema": BASELINE_SCHEMA,
        "commit": commit,
        "params": report["params"],
        "sizes": report["sizes"],
        "results": {
            key: {"seconds": value["seconds"], "edges": value["edges"]}
            for key, value in report["results"].items()
        },
    }


def measure_sharded(
    n: int,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    shards: int = DEFAULT_SHARDS,
    max_workers: Optional[int] = None,
    reps: int = 1,
) -> dict:
    """Serial vs sharded PLDel at one size: timings and bit-identity.

    ``serial`` is the single-process pipeline
    (:func:`~repro.topology.ldel.planar_local_delaunay_graph` with
    ``parallel=False``); ``sharded`` is the tiled build from
    :mod:`repro.sharding` on the same deployment.  ``edges_match`` is
    the tripwire: the stitch must reproduce the serial edge set
    bit-for-bit, or the speedup is meaningless.
    """
    from repro.sharding.build import sharded_pldel
    from repro.topology.ldel import planar_local_delaunay_graph

    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, radius, random.Random(seed))
    points = list(dep.points)

    serial_s = sharded_s = math.inf
    serial_result = sharded_result = None
    stats = None
    for _ in range(max(1, reps)):
        udg = UnitDiskGraph(points, dep.radius)
        t0 = time.perf_counter()
        serial_result = planar_local_delaunay_graph(udg, parallel=False)
        serial_s = min(serial_s, time.perf_counter() - t0)

        t0 = time.perf_counter()
        sharded_result, stats = sharded_pldel(
            points, dep.radius, shards=shards, max_workers=max_workers
        )
        sharded_s = min(sharded_s, time.perf_counter() - t0)

    assert serial_result is not None and sharded_result is not None
    assert stats is not None
    edges_match = (
        sharded_result.graph.edge_set() == serial_result.graph.edge_set()
        and sharded_result.triangles == serial_result.triangles
    )
    return {
        "seconds": {
            "serial_pldel": round(serial_s, 6),
            "sharded_pldel": round(sharded_s, 6),
        },
        "speedup": round(serial_s / sharded_s, 3) if sharded_s else None,
        "edges": sharded_result.graph.edge_count,
        "edges_match": edges_match,
        "shards": shards,
        "tiles": stats.tiles,
        "grid": list(stats.grid),
        "mode": stats.mode,
        "workers": stats.workers,
        "straddle_contests": stats.counters.get("straddle_contests", 0),
    }


def run_sharded_benchmark(
    sizes: Sequence[int] = SHARDED_SIZES,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    shards: int = DEFAULT_SHARDS,
    max_workers: Optional[int] = None,
    reps: int = 1,
) -> dict:
    """The sharded-vs-serial section of the benchmark report."""
    return {
        "shards": shards,
        "sizes": list(sizes),
        "results": {
            str(n): measure_sharded(
                n, radius=radius, seed=seed, shards=shards,
                max_workers=max_workers, reps=reps,
            )
            for n in sizes
        },
    }


def _same_backbone(result, reference) -> bool:
    """Bit-identity of the structures two backbone builds produced."""
    return (
        result.dominators == reference.dominators
        and result.connectors == reference.connectors
        and result.cds.edge_set() == reference.cds.edge_set()
        and result.icds.edge_set() == reference.icds.edge_set()
        and result.ldel_icds.edge_set() == reference.ldel_icds.edge_set()
        and result.ldel_icds_prime.edge_set() == reference.ldel_icds_prime.edge_set()
    )


def measure_backbone_fast(
    n: int,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    shards: int = DEFAULT_SHARDS,
    max_workers: Optional[int] = None,
    reps: int = 1,
) -> dict:
    """Protocol vs fast vs sharded-fast backbone at one size.

    The message-passing protocol path is timed once (it is the slow
    reference being replaced); the direct-computation path and the
    sharded build take the min over ``reps``.  ``identical`` and
    ``sharded_identical`` are the tripwires: dominator set, connector
    set, and all four certified edge sets must match the protocol path
    bit-for-bit, or the speedup is a bug.
    """
    from repro.sharding.build import sharded_backbone

    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, radius, random.Random(seed))
    points = list(dep.points)

    t0 = time.perf_counter()
    protocol = build_backbone(points, dep.radius, mode="protocol")
    protocol_s = time.perf_counter() - t0

    fast_s = sharded_s = math.inf
    fast = sharded = stats = None
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        fast = build_backbone(points, dep.radius, mode="fast")
        fast_s = min(fast_s, time.perf_counter() - t0)

        t0 = time.perf_counter()
        sharded, stats = sharded_backbone(
            points, dep.radius, shards=shards, max_workers=max_workers
        )
        sharded_s = min(sharded_s, time.perf_counter() - t0)

    assert fast is not None and sharded is not None and stats is not None
    return {
        "seconds": {
            "protocol": round(protocol_s, 6),
            "fast": round(fast_s, 6),
            "sharded_fast": round(sharded_s, 6),
        },
        "speedup": round(protocol_s / fast_s, 3) if fast_s else None,
        "sharded_speedup": round(protocol_s / sharded_s, 3) if sharded_s else None,
        "identical": _same_backbone(fast, protocol),
        "sharded_identical": _same_backbone(sharded, protocol),
        "edges": fast.ldel_icds.edge_count,
        "shards": shards,
        "election_certified": stats.counters.get("election_certified", 0),
        "election_unresolved": stats.counters.get("election_unresolved", 0),
    }


def run_backbone_fast_benchmark(
    sizes: Sequence[int] = BACKBONE_FAST_SIZES,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    shards: int = DEFAULT_SHARDS,
    max_workers: Optional[int] = None,
    reps: int = 1,
) -> dict:
    """The fast-vs-protocol backbone section of the benchmark report."""
    return {
        "shards": shards,
        "sizes": list(sizes),
        "results": {
            str(n): measure_backbone_fast(
                n, radius=radius, seed=seed, shards=shards,
                max_workers=max_workers, reps=reps,
            )
            for n in sizes
        },
    }


def format_report(report: dict) -> str:
    """Human-readable table of the per-size stage timings and speedups."""
    lines = [
        f"{'n':>6} {'stage':<10} {'seconds':>10} {'speedup':>9} {'edges':>8}"
    ]
    speedups = report.get("speedup", {})
    for n in report["sizes"]:
        key = str(n)
        entry = report["results"][key]
        stage_speedup = speedups.get(key, {}).get("speedup", {})
        for stage in STAGES:
            sec = entry["seconds"].get(stage)
            if sec is None:
                continue
            factor = stage_speedup.get(stage)
            factor_s = f"{factor:.2f}x" if factor else "-"
            edge_s = str(entry["edges"].get(stage, "-"))
            lines.append(
                f"{n:>6} {stage:<10} {sec:>10.4f} {factor_s:>9} {edge_s:>8}"
            )
        if key in speedups:
            match = "yes" if speedups[key]["edges_match"] else "NO (REGRESSION)"
            lines.append(f"{'':>6} edges identical to baseline: {match}")
    sharded = report.get("sharded")
    if sharded:
        lines.append("")
        lines.append(
            f"{'n':>6} {'serial s':>10} {'sharded s':>10} {'speedup':>9} "
            f"{'workers':>8} {'identical':>10}"
        )
        for n in sharded["sizes"]:
            entry = sharded["results"][str(n)]
            match = "yes" if entry["edges_match"] else "NO (BUG)"
            lines.append(
                f"{n:>6} {entry['seconds']['serial_pldel']:>10.4f} "
                f"{entry['seconds']['sharded_pldel']:>10.4f} "
                f"{entry['speedup']:>8.2f}x {entry['workers']:>8} {match:>10}"
            )
    backbone = report.get("backbone_fast")
    if backbone:
        lines.append("")
        lines.append(
            f"{'n':>6} {'protocol s':>11} {'fast s':>9} {'speedup':>9} "
            f"{'sharded s':>10} {'speedup':>9} {'identical':>10}"
        )
        for n in backbone["sizes"]:
            entry = backbone["results"][str(n)]
            ok = entry["identical"] and entry["sharded_identical"]
            match = "yes" if ok else "NO (BUG)"
            lines.append(
                f"{n:>6} {entry['seconds']['protocol']:>11.4f} "
                f"{entry['seconds']['fast']:>9.4f} {entry['speedup']:>8.2f}x "
                f"{entry['seconds']['sharded_fast']:>10.4f} "
                f"{entry['sharded_speedup']:>8.2f}x {match:>10}"
            )
    return "\n".join(lines)


def format_markdown(report: dict) -> str:
    """GitHub-flavored markdown summary (for ``$GITHUB_STEP_SUMMARY``)."""
    lines = ["## Hot-path benchmark", ""]
    speedups = report.get("speedup", {})
    if speedups:
        lines += [
            "| n | " + " | ".join(STAGES) + " | edges identical |",
            "|---|" + "---|" * (len(STAGES) + 1),
        ]
        for n in report["sizes"]:
            key = str(n)
            entry = speedups.get(key)
            if entry is None:
                continue
            cells = [
                f"{entry['speedup'][s]:.2f}x" if s in entry["speedup"] else "-"
                for s in STAGES
            ]
            tripwire = "yes" if entry["edges_match"] else "**NO — REGRESSION**"
            lines.append(f"| {n} | " + " | ".join(cells) + f" | {tripwire} |")
        lines.append("")
        lines.append("Speedup vs recorded baseline (`>1` = faster).")
    else:
        lines.append("_No baseline comparison (baseline missing or freshly pinned)._")
    sharded = report.get("sharded")
    if sharded:
        lines += [
            "",
            f"### Sharded vs serial PLDel (shards={sharded['shards']})",
            "",
            "| n | serial s | sharded s | speedup | mode | workers | bit-identical |",
            "|---|---|---|---|---|---|---|",
        ]
        for n in sharded["sizes"]:
            entry = sharded["results"][str(n)]
            tripwire = "yes" if entry["edges_match"] else "**NO — BUG**"
            lines.append(
                f"| {n} | {entry['seconds']['serial_pldel']:.4f} "
                f"| {entry['seconds']['sharded_pldel']:.4f} "
                f"| {entry['speedup']:.2f}x | {entry['mode']} "
                f"| {entry['workers']} | {tripwire} |"
            )
    backbone = report.get("backbone_fast")
    if backbone:
        lines += [
            "",
            f"### Backbone fast path vs protocol (shards={backbone['shards']})",
            "",
            "| n | protocol s | fast s | speedup | sharded s | sharded speedup "
            "| unresolved | bit-identical |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for n in backbone["sizes"]:
            entry = backbone["results"][str(n)]
            ok = entry["identical"] and entry["sharded_identical"]
            tripwire = "yes" if ok else "**NO — BUG**"
            lines.append(
                f"| {n} | {entry['seconds']['protocol']:.4f} "
                f"| {entry['seconds']['fast']:.4f} | {entry['speedup']:.2f}x "
                f"| {entry['seconds']['sharded_fast']:.4f} "
                f"| {entry['sharded_speedup']:.2f}x "
                f"| {entry['election_unresolved']} | {tripwire} |"
            )
    lines.append("")
    return "\n".join(lines)
