"""Hot-path benchmark: stage timings for the construction pipeline.

Times the stages the spanner construction actually spends its cycles
in — UDG build, Gabriel graph, LDel^1, Algorithm 3 planarization (the
two together reported as ``pldel``), and the full ICDS backbone — on
the deployment recipe the paper's experiments use (uniform points in a
``10 sqrt(n)`` square, radius 25), and compares against a recorded
baseline so regressions show up as a number, not a feeling.

The ``backbone_fast`` section times the message-passing backbone
protocol against the direct-computation fast path and the sharded
build, with a bit-identical tripwire on the dominator/connector/edge
sets (any divergence is a hard failure, not a statistic).

The ``metrics`` section times the *measurement* side: summarizing the
full Table I topology family (all three stretch kinds, the paper's
pair filters) through the reference implementation — fresh all-pairs
matrices per call plus the pure-Python pair reduction, the pre-oracle
code path — against a per-deployment
:class:`~repro.core.oracle.DistanceOracle` (memoized matrices +
vectorized kernels), cold and warm.  Tripwires: every oracle result
must match the reference within ``PARITY_RTOL`` (bit-exactly for
``max``/``pairs``/``unreachable_pairs``), and the no-numpy/no-scipy
fallback must match the pure-Python reference *exactly*.

The ``incremental`` section times the maintenance side: per-step cost
of the :mod:`repro.incremental` engine under single-node waypoint
moves against the from-scratch fast rebuild it replaces, with the
rebuild-equivalence tripwire after the trace, plus the long-trace
acceptance run (bit-identity asserted after every batch).

Shared by ``benchmarks/bench_hotpath.py`` (standalone CLI), the
``hotpath`` mode of :mod:`repro.experiments.harness`, and the CI
bench-smoke job.  Output is machine-readable JSON
(``hotpath-bench/v1``); baselines use the sibling
``hotpath-baseline/v1`` schema with the same per-size layout.
"""

from __future__ import annotations

import json
import math
import random
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.spanner import build_backbone
from repro.graphs.udg import UnitDiskGraph
from repro.topology.construction_cache import ConstructionCache
from repro.topology.gabriel import gabriel_graph
from repro.topology.ldel import local_delaunay_graph, planarize_ldel1
from repro.workloads.generators import connected_udg_instance

#: Deployment sizes the regression harness tracks.
DEFAULT_SIZES = (200, 500, 1000, 2000)
#: Sizes the sharded-vs-serial comparison runs at (ISSUE 3).
SHARDED_SIZES = (1000, 2000, 5000)
#: Sizes the SoA-vs-reference construction-core comparison runs at.
SOA_SIZES = (1000, 2000, 5000)
#: Sizes the fast-vs-protocol backbone comparison runs at (ISSUE 4).
BACKBONE_FAST_SIZES = (1000, 2000, 5000)
#: Sizes the metrics-engine comparison runs at (ISSUE 5).
METRICS_SIZES = (200, 1000)
#: Sizes the incremental-vs-rebuild maintenance comparison runs at.
INCREMENTAL_SIZES = (1000, 2000)
#: Timed single-move maintenance steps per size in the incremental stage.
INCREMENTAL_STEPS = 30
#: Sizes the batch-vs-scalar routing comparison runs at (ISSUE 9).
ROUTING_SIZES = (2000,)
#: (s, t) pairs routed per size in the routing stage.
ROUTING_PAIRS = 10_000
#: Scalar-loop subset the per-pair scalar cost is measured on (the
#: full scalar sweep would dominate the stage; the extrapolation is
#: conservative — it excludes the pathological long face walks that
#: cost the scalar side the most).
ROUTING_SCALAR_PAIRS = 300
#: Pairs in the hop-for-hop path-identity tripwire subset.
ROUTING_IDENTITY_PAIRS = 200
#: Scalar subset for the per-pair-Dijkstra shortest-mode comparison.
ROUTING_SHORTEST_SCALAR_PAIRS = 100
#: The long-trace acceptance run: deployment size and batch count.
INCREMENTAL_TRACE_SIZE = 1000
INCREMENTAL_TRACE_STEPS = 200
#: Summarize passes per deployment in the metrics stage — the sweep
#: protocol's per-point repetition count (``bench_table1`` runs three
#: rounds; the fig sweeps replay points under pytest-benchmark
#: calibration the same way).
METRICS_REPS = 3
#: Size of the pure-Python fallback exactness tripwire (kept small:
#: the fallback APSP is the slow path being replaced).
METRICS_FALLBACK_SIZE = 120
DEFAULT_RADIUS = 25.0
DEFAULT_SEED = 2002
DEFAULT_SHARDS = 4

#: Stage keys in reporting order.
STAGES = ("udg", "gabriel", "ldel1", "planarize", "pldel", "backbone")

BENCH_SCHEMA = "hotpath-bench/v1"
BASELINE_SCHEMA = "hotpath-baseline/v1"


def default_baseline_path() -> Path:
    """The checked-in baseline next to the benchmarks CLI."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "baseline_hotpath.json"


def remediation_command(path: str | Path) -> str:
    """The exact command that re-pins the baseline at ``path``.

    Printed whenever a strict baseline load fails, so the fix is a
    copy-paste (run on a known-good commit) rather than a doc hunt.
    """
    return (
        "PYTHONPATH=src python benchmarks/bench_hotpath.py "
        f"--write-baseline --baseline {path}"
    )


def measure_size(
    n: int,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    reps: int = 1,
) -> dict:
    """Stage timings, edge counts, and cache counters for one size.

    The deployment is sampled once (``connected_udg_instance`` with a
    size-derived side, so density stays constant across ``n``); each
    stage is timed ``reps`` times and the minimum kept — the usual
    guard against scheduler noise.  Edge counts are recorded so a
    baseline comparison can assert the optimized pipeline still builds
    the *same* graphs, and the construction-cache counters quantify how
    much work the cache absorbed.
    """
    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, radius, random.Random(seed))
    seconds: dict[str, float] = {}
    edges: dict[str, int] = {}
    counters: dict[str, int] = {}

    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        udg = UnitDiskGraph(list(dep.points), dep.radius)
        t_udg = time.perf_counter() - t0

        t0 = time.perf_counter()
        gg = gabriel_graph(udg)
        t_gg = time.perf_counter() - t0

        cache = ConstructionCache(udg)
        t0 = time.perf_counter()
        ldel1 = local_delaunay_graph(udg, k=1, cache=cache)
        t_ldel1 = time.perf_counter() - t0

        t0 = time.perf_counter()
        pldel = planarize_ldel1(udg, ldel1, cache=cache)
        t_plan = time.perf_counter() - t0

        t0 = time.perf_counter()
        backbone = build_backbone(dep.points, dep.radius)
        t_bb = time.perf_counter() - t0

        rep_seconds = {
            "udg": t_udg,
            "gabriel": t_gg,
            "ldel1": t_ldel1,
            "planarize": t_plan,
            "pldel": t_ldel1 + t_plan,
            "backbone": t_bb,
        }
        for key, value in rep_seconds.items():
            seconds[key] = min(seconds.get(key, value), value)
        edges = {
            "udg": udg.edge_count,
            "gabriel": gg.edge_count,
            "ldel1": ldel1.graph.edge_count,
            "pldel": pldel.graph.edge_count,
            "backbone": backbone.ldel_icds.edge_count,
        }
        counters = cache.snapshot()

    return {
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "edges": edges,
        "counters": counters,
    }


def run_benchmark(
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    reps: int = 1,
    baseline: Optional[dict] = None,
    baseline_path: Optional[str] = None,
) -> dict:
    """Benchmark every size and fold in the baseline comparison."""
    results = {str(n): measure_size(n, radius=radius, seed=seed, reps=reps) for n in sizes}
    report: dict = {
        "schema": BENCH_SCHEMA,
        "params": {
            "generator": "uniform",
            "side": "10*sqrt(n)",
            "radius": radius,
            "seed": seed,
            "reps": reps,
        },
        "sizes": list(sizes),
        "results": results,
    }
    if baseline is not None:
        report["baseline"] = {
            "path": baseline_path,
            "commit": baseline.get("commit"),
            "schema": baseline.get("schema"),
        }
        report["speedup"] = compare_to_baseline(results, baseline)
    return report


def compare_to_baseline(results: dict, baseline: dict) -> dict:
    """Per-size, per-stage speedup factors plus edge-count agreement.

    ``speedup > 1`` means the current code is faster than the recorded
    baseline; ``edges_match`` is the regression tripwire — a speedup
    bought by building a different graph is a bug, not an optimization.
    """
    out: dict = {}
    base_results = baseline.get("results", {})
    for key, current in results.items():
        base = base_results.get(key)
        if base is None:
            continue
        stage_speedup = {}
        for stage in STAGES:
            now = current["seconds"].get(stage)
            then = base["seconds"].get(stage)
            if now and then:
                stage_speedup[stage] = round(then / now, 3)
        out[key] = {
            "speedup": stage_speedup,
            "edges_match": current["edges"] == base["edges"],
        }
    return out


class BaselineError(RuntimeError):
    """The baseline file is missing, unreadable, or the wrong schema.

    Raised by :func:`load_baseline_strict` so CI entry points can turn
    a broken baseline into a one-line diagnosis instead of a traceback
    (or, worse, a silent run with no regression comparison at all).
    """


def load_baseline(path: str | Path) -> Optional[dict]:
    """Parse a baseline file; ``None`` when absent or unreadable."""
    try:
        return load_baseline_strict(path)
    except BaselineError:
        return None


def load_baseline_strict(path: str | Path) -> dict:
    """Parse a baseline file or raise :class:`BaselineError` saying why."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except FileNotFoundError:
        raise BaselineError(
            f"baseline file not found: {path} — run with --write-baseline "
            "on a known-good commit to create it"
        ) from None
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from None
    except ValueError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from None
    schema = data.get("schema") if isinstance(data, dict) else None
    if schema != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path} has schema {schema!r}, expected "
            f"{BASELINE_SCHEMA!r} — stale baseline; re-pin it with "
            "--write-baseline"
        )
    return data


def baseline_from_report(report: dict, commit: str = "unknown") -> dict:
    """Re-pin a baseline file from a fresh benchmark report.

    The ``metrics`` section is optional in both directions: it is only
    recorded when the report ran the metrics stage, and baselines
    pinned before the stage existed stay valid (the comparison just
    skips the missing section).
    """
    baseline = {
        "schema": BASELINE_SCHEMA,
        "commit": commit,
        "params": report["params"],
        "sizes": report["sizes"],
        "results": {
            key: {"seconds": value["seconds"], "edges": value["edges"]}
            for key, value in report["results"].items()
        },
    }
    metrics = report.get("metrics")
    if metrics:
        baseline["metrics"] = {
            "sizes": metrics["sizes"],
            "results": {
                key: {"seconds": value["seconds"]}
                for key, value in metrics["results"].items()
            },
        }
    routing = report.get("routing")
    if routing:
        baseline["routing"] = {
            "sizes": routing["sizes"],
            "pairs": routing["pairs"],
            "results": {
                key: {"seconds": value["seconds"]}
                for key, value in routing["results"].items()
            },
        }
    return baseline


def measure_sharded(
    n: int,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    shards: int = DEFAULT_SHARDS,
    max_workers: Optional[int] = None,
    reps: int = 1,
) -> dict:
    """Serial vs sharded PLDel at one size: timings and bit-identity.

    ``serial`` is the single-process pipeline
    (:func:`~repro.topology.ldel.planar_local_delaunay_graph` with
    ``parallel=False``); ``sharded`` is the tiled build from
    :mod:`repro.sharding` on the same deployment.  ``edges_match`` is
    the tripwire: the stitch must reproduce the serial edge set
    bit-for-bit, or the speedup is meaningless.
    """
    from repro.sharding.build import sharded_pldel
    from repro.topology.ldel import planar_local_delaunay_graph

    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, radius, random.Random(seed))
    points = list(dep.points)

    serial_s = sharded_s = math.inf
    serial_result = sharded_result = None
    stats = None
    for _ in range(max(1, reps)):
        udg = UnitDiskGraph(points, dep.radius)
        t0 = time.perf_counter()
        serial_result = planar_local_delaunay_graph(udg, parallel=False)
        serial_s = min(serial_s, time.perf_counter() - t0)

        t0 = time.perf_counter()
        sharded_result, stats = sharded_pldel(
            points, dep.radius, shards=shards, max_workers=max_workers
        )
        sharded_s = min(sharded_s, time.perf_counter() - t0)

    assert serial_result is not None and sharded_result is not None
    assert stats is not None
    edges_match = (
        sharded_result.graph.edge_set() == serial_result.graph.edge_set()
        and sharded_result.triangles == serial_result.triangles
    )
    return {
        "seconds": {
            "serial_pldel": round(serial_s, 6),
            "sharded_pldel": round(sharded_s, 6),
        },
        "speedup": round(serial_s / sharded_s, 3) if sharded_s else None,
        "edges": sharded_result.graph.edge_count,
        "edges_match": edges_match,
        "shards": shards,
        "tiles": stats.tiles,
        "grid": list(stats.grid),
        "mode": stats.mode,
        "workers": stats.workers,
        "straddle_contests": stats.counters.get("straddle_contests", 0),
    }


def run_sharded_benchmark(
    sizes: Sequence[int] = SHARDED_SIZES,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    shards: int = DEFAULT_SHARDS,
    max_workers: Optional[int] = None,
    reps: int = 1,
) -> dict:
    """The sharded-vs-serial section of the benchmark report."""
    return {
        "shards": shards,
        "sizes": list(sizes),
        "results": {
            str(n): measure_sharded(
                n, radius=radius, seed=seed, shards=shards,
                max_workers=max_workers, reps=reps,
            )
            for n in sizes
        },
    }


def measure_soa(
    n: int,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    reps: int = 2,
) -> dict:
    """Array-native pipeline vs pure-Python reference at one size.

    Runs the full construction pipeline (UDG build, Gabriel, LDel^1,
    planarization) twice: with the SoA kernels active and with numpy
    masked out via :func:`repro.core.compat.numpy_disabled` (the exact
    reference path the kernels promise bit-identity to).  An untimed
    warmup pass precedes the SoA measurements — the very first batch
    kernel invocation pays one-time allocator costs (first-touch page
    faults on the large temporaries) that would otherwise charge
    construction for a process-lifetime event.  ``identical`` is the
    tripwire: every stage's edge set (and both triangle lists) must
    match the reference bit for bit, or any speedup is meaningless.
    """
    from repro.core import compat

    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, radius, random.Random(seed))
    points = list(dep.points)

    def pipeline():
        seconds: dict[str, float] = {}
        t0 = time.perf_counter()
        udg = UnitDiskGraph(points, dep.radius)
        seconds["udg"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        gg = gabriel_graph(udg)
        seconds["gabriel"] = time.perf_counter() - t0
        cache = ConstructionCache(udg)
        t0 = time.perf_counter()
        ldel1 = local_delaunay_graph(udg, k=1, cache=cache)
        seconds["ldel1"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        pldel = planarize_ldel1(udg, ldel1, cache=cache)
        seconds["planarize"] = time.perf_counter() - t0
        seconds["pldel"] = seconds["ldel1"] + seconds["planarize"]
        seconds["end_to_end"] = seconds["udg"] + seconds["pldel"]
        return seconds, udg, gg, ldel1, pldel

    numpy_active = compat.numpy_active()
    if numpy_active:
        pipeline()  # warmup (see docstring)
    soa_seconds: dict[str, float] = {}
    artifacts = None
    for _ in range(max(1, reps)):
        rep_seconds, *artifacts = pipeline()
        for key, value in rep_seconds.items():
            soa_seconds[key] = min(soa_seconds.get(key, value), value)
    assert artifacts is not None
    with compat.numpy_disabled():
        ref_seconds, *reference = pipeline()

    s_udg, s_gg, s_ldel1, s_pldel = artifacts
    r_udg, r_gg, r_ldel1, r_pldel = reference
    identical = (
        s_udg.edge_set() == r_udg.edge_set()
        and s_gg.edge_set() == r_gg.edge_set()
        and s_ldel1.graph.edge_set() == r_ldel1.graph.edge_set()
        and s_ldel1.triangles == r_ldel1.triangles
        and s_pldel.graph.edge_set() == r_pldel.graph.edge_set()
        and s_pldel.triangles == r_pldel.triangles
    )
    return {
        "seconds": {k: round(v, 6) for k, v in soa_seconds.items()},
        "reference_seconds": {k: round(v, 6) for k, v in ref_seconds.items()},
        "speedup": {
            k: round(ref_seconds[k] / v, 3)
            for k, v in soa_seconds.items()
            if v > 0.0
        },
        "edges": {
            "udg": s_udg.edge_count,
            "gabriel": s_gg.edge_count,
            "ldel1": s_ldel1.graph.edge_count,
            "pldel": s_pldel.graph.edge_count,
        },
        "numpy_active": numpy_active,
        "identical": identical,
    }


def measure_soa_scale(
    n: int,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
) -> dict:
    """One large-``n`` SoA construction; no reference pass.

    The scale probe behind the "n = 10^5 on one box" target: times the
    pipeline once with the kernels active and records sizes, without
    the (hours-long at this scale) pure-Python comparison run.
    """
    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, radius, random.Random(seed))
    points = list(dep.points)
    t0 = time.perf_counter()
    udg = UnitDiskGraph(points, dep.radius)
    t_udg = time.perf_counter() - t0
    cache = ConstructionCache(udg)
    t0 = time.perf_counter()
    ldel1 = local_delaunay_graph(udg, k=1, cache=cache)
    t_ldel1 = time.perf_counter() - t0
    t0 = time.perf_counter()
    pldel = planarize_ldel1(udg, ldel1, cache=cache)
    t_plan = time.perf_counter() - t0
    return {
        "n": n,
        "seconds": {
            "udg": round(t_udg, 6),
            "ldel1": round(t_ldel1, 6),
            "planarize": round(t_plan, 6),
            "end_to_end": round(t_udg + t_ldel1 + t_plan, 6),
        },
        "edges": {
            "udg": udg.edge_count,
            "ldel1": ldel1.graph.edge_count,
            "pldel": pldel.graph.edge_count,
        },
        "triangles": len(pldel.triangles),
    }


def run_soa_benchmark(
    sizes: Sequence[int] = SOA_SIZES,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    reps: int = 2,
    scale: Optional[int] = None,
) -> dict:
    """The SoA-vs-reference section of the benchmark report."""
    section: dict = {
        "sizes": list(sizes),
        "results": {
            str(n): measure_soa(n, radius=radius, seed=seed, reps=reps)
            for n in sizes
        },
    }
    if scale:
        section["scale"] = measure_soa_scale(scale, radius=radius, seed=seed)
    return section


def _same_backbone(result, reference) -> bool:
    """Bit-identity of the structures two backbone builds produced."""
    return (
        result.dominators == reference.dominators
        and result.connectors == reference.connectors
        and result.cds.edge_set() == reference.cds.edge_set()
        and result.icds.edge_set() == reference.icds.edge_set()
        and result.ldel_icds.edge_set() == reference.ldel_icds.edge_set()
        and result.ldel_icds_prime.edge_set() == reference.ldel_icds_prime.edge_set()
    )


def measure_backbone_fast(
    n: int,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    shards: int = DEFAULT_SHARDS,
    max_workers: Optional[int] = None,
    reps: int = 1,
) -> dict:
    """Protocol vs fast vs sharded-fast backbone at one size.

    The message-passing protocol path is timed once (it is the slow
    reference being replaced); the direct-computation path and the
    sharded build take the min over ``reps``.  ``identical`` and
    ``sharded_identical`` are the tripwires: dominator set, connector
    set, and all four certified edge sets must match the protocol path
    bit-for-bit, or the speedup is a bug.
    """
    from repro.sharding.build import sharded_backbone

    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, radius, random.Random(seed))
    points = list(dep.points)

    t0 = time.perf_counter()
    protocol = build_backbone(points, dep.radius, mode="protocol")
    protocol_s = time.perf_counter() - t0

    fast_s = sharded_s = math.inf
    fast = sharded = stats = None
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        fast = build_backbone(points, dep.radius, mode="fast")
        fast_s = min(fast_s, time.perf_counter() - t0)

        t0 = time.perf_counter()
        sharded, stats = sharded_backbone(
            points, dep.radius, shards=shards, max_workers=max_workers
        )
        sharded_s = min(sharded_s, time.perf_counter() - t0)

    assert fast is not None and sharded is not None and stats is not None
    return {
        "seconds": {
            "protocol": round(protocol_s, 6),
            "fast": round(fast_s, 6),
            "sharded_fast": round(sharded_s, 6),
        },
        "speedup": round(protocol_s / fast_s, 3) if fast_s else None,
        "sharded_speedup": round(protocol_s / sharded_s, 3) if sharded_s else None,
        "identical": _same_backbone(fast, protocol),
        "sharded_identical": _same_backbone(sharded, protocol),
        "edges": fast.ldel_icds.edge_count,
        "shards": shards,
        "election_certified": stats.counters.get("election_certified", 0),
        "election_unresolved": stats.counters.get("election_unresolved", 0),
    }


def run_backbone_fast_benchmark(
    sizes: Sequence[int] = BACKBONE_FAST_SIZES,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    shards: int = DEFAULT_SHARDS,
    max_workers: Optional[int] = None,
    reps: int = 1,
) -> dict:
    """The fast-vs-protocol backbone section of the benchmark report."""
    return {
        "shards": shards,
        "sizes": list(sizes),
        "results": {
            str(n): measure_backbone_fast(
                n, radius=radius, seed=seed, shards=shards,
                max_workers=max_workers, reps=reps,
            )
            for n in sizes
        },
    }


def measure_incremental(
    n: int,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    steps: int = INCREMENTAL_STEPS,
    reps: int = 1,
) -> dict:
    """Per-step incremental maintenance vs from-scratch rebuild at one size.

    ``rebuild`` is the fast-path ``build_backbone`` (min over
    ``reps``) — what a maintenance step would cost without the
    incremental engine.  ``incremental_step`` is the mean wall time of
    ``steps`` single-node-move maintenance steps on a seeded waypoint
    trace.  ``identical`` is the tripwire: after the whole trace the
    maintained structures must still match a from-scratch rebuild
    bit-for-bit, or the speedup is a bug.
    """
    from repro.incremental.engine import IncrementalMaintainer
    from repro.incremental.events import Event
    from repro.mobility.waypoint import RandomWaypointModel

    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, radius, random.Random(seed))

    rebuild_s = math.inf
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        build_backbone(dep.points, dep.radius, mode="fast")
        rebuild_s = min(rebuild_s, time.perf_counter() - t0)

    maintainer = IncrementalMaintainer(list(dep.points), dep.radius)
    model = RandomWaypointModel(
        list(dep.points), dep.side, seed,
        speed_range=(1.0, 3.0), pause_range=(0.0, 0.0),
    )
    picker = random.Random(seed + 1)
    phase_totals: dict[str, float] = {}
    total_s = 0.0
    dirty_fractions: list[float] = []
    for _ in range(steps):
        mover = picker.randrange(n)
        positions = model.step(1.0, nodes=[mover])
        event = Event(
            "move", node=mover, x=positions[mover][0], y=positions[mover][1]
        )
        t0 = time.perf_counter()
        report = maintainer.apply([event])
        total_s += time.perf_counter() - t0
        dirty_fractions.append(report.dirty_fraction)
        for key, value in report.phase_seconds.items():
            phase_totals[key] = phase_totals.get(key, 0.0) + value
    step_s = total_s / steps if steps else 0.0
    outcome = maintainer.verify()
    return {
        "steps": steps,
        "seconds": {
            "rebuild": round(rebuild_s, 6),
            "incremental_step": round(step_s, 6),
        },
        "phase_seconds": {
            key: round(value / steps, 6) for key, value in phase_totals.items()
        },
        "speedup": round(rebuild_s / step_s, 3) if step_s else None,
        "mean_dirty_fraction": (
            round(sum(dirty_fractions) / len(dirty_fractions), 6)
            if dirty_fractions
            else 0.0
        ),
        "identical": outcome["identical"],
        "mismatches": outcome["mismatches"],
    }


def measure_incremental_trace(
    n: int = INCREMENTAL_TRACE_SIZE,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    steps: int = INCREMENTAL_TRACE_STEPS,
    move_fraction: float = 0.02,
    verify_every: int = 1,
) -> dict:
    """The long-trace acceptance run: bit-identity after every batch.

    Drives a ``steps``-batch waypoint trace through
    :func:`~repro.incremental.session.run_incremental_session` with
    the rebuild-equivalence tripwire asserted every ``verify_every``
    batches (1 = after every batch, the acceptance setting; the
    verification rebuilds dominate the wall time, which is the point —
    the trace certifies correctness, the per-step stage above measures
    speed).
    """
    from repro.incremental.session import run_incremental_session

    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, radius, random.Random(seed))
    t0 = time.perf_counter()
    result = run_incremental_session(
        dep,
        steps=steps,
        move_fraction=move_fraction,
        seed=seed,
        verify_every=verify_every,
    )
    total_s = time.perf_counter() - t0
    counters = result.counters
    return {
        "n": n,
        "steps": steps,
        "move_fraction": move_fraction,
        "verify_every": verify_every,
        "seconds": {"total": round(total_s, 6)},
        "events": counters["events"],
        "verified_steps": counters["verifications"],
        "verification_failures": counters["verification_failures"],
        "all_verified": result.all_verified,
        "mean_dirty_fraction": round(result.mean_dirty_fraction, 6),
    }


def run_incremental_benchmark(
    sizes: Sequence[int] = INCREMENTAL_SIZES,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    steps: int = INCREMENTAL_STEPS,
    reps: int = 1,
    trace_size: int = INCREMENTAL_TRACE_SIZE,
    trace_steps: int = INCREMENTAL_TRACE_STEPS,
    trace_verify_every: int = 1,
) -> dict:
    """The incremental-maintenance section of the benchmark report."""
    report: dict = {
        "sizes": list(sizes),
        "results": {
            str(n): measure_incremental(
                n, radius=radius, seed=seed, steps=steps, reps=reps
            )
            for n in sizes
        },
    }
    if trace_steps > 0:
        report["trace"] = measure_incremental_trace(
            trace_size,
            radius=radius,
            seed=seed,
            steps=trace_steps,
            verify_every=trace_verify_every,
        )
    return report


def measure_routing(
    n: int,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    pairs: int = ROUTING_PAIRS,
    scalar_pairs: int = ROUTING_SCALAR_PAIRS,
    identity_pairs: int = ROUTING_IDENTITY_PAIRS,
    shortest_scalar_pairs: int = ROUTING_SHORTEST_SCALAR_PAIRS,
) -> dict:
    """Batch route engine vs the scalar routers at one size.

    Routes the same ``pairs`` random (s, t) pairs through the
    :class:`~repro.core.route_engine.RouteEngine` kernels (greedy /
    compass / GPSR over the UDG) and through the
    :class:`~repro.core.route_engine.BackboneRouter` (the paper's
    dominator-entry procedure over the planar backbone, GPSR and
    oracle-backed shortest-path cores), against the scalar ``routing/``
    reference timed on a ``scalar_pairs`` subset and extrapolated.
    The headline ``sweep`` speedup covers the paper's evaluation
    workload — the UDG greedy baseline plus both backbone traversals.

    Tripwires: ``identity`` re-routes an ``identity_pairs`` subset
    with paths kept and requires hop-for-hop equality (path, reason,
    hops) against the scalar routers for every method and for the
    backbone GPSR procedure; ``shortest_parity`` requires the
    oracle-backed shortest mode to agree with the per-pair Dijkstra
    reference on delivery and on path length within 1e-9 (equal-length
    tie paths may legitimately differ).
    """
    from repro.core.route_engine import BackboneRouter, RouteEngine
    from repro.routing.backbone_routing import backbone_route
    from repro.routing.compass import compass_route
    from repro.routing.gpsr import gpsr_route
    from repro.routing.greedy import greedy_route

    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, radius, random.Random(seed))
    udg = UnitDiskGraph(list(dep.points), dep.radius)
    backbone = build_backbone(dep.points, dep.radius, mode="fast")
    rng = random.Random(seed + 9)
    sampled = [(rng.randrange(n), rng.randrange(n)) for _ in range(pairs)]
    sub = sampled[: max(1, min(scalar_pairs, pairs))]
    short_sub = sampled[: max(1, min(shortest_scalar_pairs, pairs))]
    scalar_of = {
        "greedy": greedy_route,
        "compass": compass_route,
        "gpsr": gpsr_route,
    }

    engine = RouteEngine(udg)
    router = BackboneRouter(backbone)
    seconds: dict[str, float] = {}
    speedup: dict[str, float] = {}
    delivery: dict[str, float] = {}

    for method in ("greedy", "compass", "gpsr"):
        t0 = time.perf_counter()
        batch = engine.route_pairs(sampled, method=method, keep_paths=False)
        batch_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for s, t in sub:
            scalar_of[method](udg, s, t)
        scalar_est = (time.perf_counter() - t0) / len(sub) * pairs
        seconds[f"{method}_batch"] = round(batch_s, 6)
        seconds[f"{method}_scalar_est"] = round(scalar_est, 6)
        speedup[method] = round(scalar_est / batch_s, 3) if batch_s else 0.0
        delivery[method] = round(batch.delivery_rate, 6)

    t0 = time.perf_counter()
    bb_batch = router.route_pairs(sampled, mode="gpsr", keep_paths=False)
    bb_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    router.route_pairs(sampled, mode="gpsr", keep_paths=False)
    bb_warm_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for s, t in sub:
        backbone_route(backbone, s, t, mode="gpsr")
    bb_scalar_est = (time.perf_counter() - t0) / len(sub) * pairs
    seconds["backbone_gpsr_batch"] = round(bb_s, 6)
    seconds["backbone_gpsr_warm"] = round(bb_warm_s, 6)
    seconds["backbone_gpsr_scalar_est"] = round(bb_scalar_est, 6)
    speedup["backbone_gpsr"] = round(bb_scalar_est / bb_s, 3) if bb_s else 0.0
    speedup["backbone_gpsr_warm"] = (
        round(bb_scalar_est / bb_warm_s, 3) if bb_warm_s else 0.0
    )
    delivery["backbone_gpsr"] = round(bb_batch.delivery_rate, 6)

    t0 = time.perf_counter()
    sp_batch = router.route_pairs(sampled, mode="shortest", keep_paths=False)
    sp_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    router._route_pairs_scalar(
        short_sub, mode="shortest", max_hops=None,
        keep_paths=False, count_unreachable=False,
    )
    sp_scalar_est = (time.perf_counter() - t0) / len(short_sub) * pairs
    seconds["backbone_shortest_batch"] = round(sp_s, 6)
    seconds["backbone_shortest_scalar_est"] = round(sp_scalar_est, 6)
    speedup["backbone_shortest"] = round(sp_scalar_est / sp_s, 3) if sp_s else 0.0
    delivery["backbone_shortest"] = round(sp_batch.delivery_rate, 6)

    sweep_batch = (
        seconds["greedy_batch"]
        + seconds["backbone_gpsr_batch"]
        + seconds["backbone_shortest_batch"]
    )
    sweep_scalar = (
        seconds["greedy_scalar_est"]
        + seconds["backbone_gpsr_scalar_est"]
        + seconds["backbone_shortest_scalar_est"]
    )
    seconds["sweep_batch"] = round(sweep_batch, 6)
    seconds["sweep_scalar_est"] = round(sweep_scalar, 6)
    speedup["sweep"] = round(sweep_scalar / sweep_batch, 3) if sweep_batch else 0.0

    # -- path-identity tripwire (hop-for-hop against the scalar loop) --
    ident = sampled[: max(1, min(identity_pairs, pairs))]
    modes_ok: dict[str, bool] = {}
    mismatches = 0
    for method in ("greedy", "compass", "gpsr"):
        batch = engine.route_pairs(ident, method=method)
        bad = 0
        for i, (s, t) in enumerate(ident):
            res = scalar_of[method](udg, s, t)
            if (
                batch.path(i) != res.path
                or batch.reason(i) != res.reason
                or int(batch.hops[i]) != res.hops
            ):
                bad += 1
        modes_ok[method] = bad == 0
        mismatches += bad
    bb_ident = router.route_pairs(ident, mode="gpsr")
    bad = 0
    for i, (s, t) in enumerate(ident):
        res = backbone_route(backbone, s, t, mode="gpsr")
        if (
            bb_ident.path(i) != res.path
            or bb_ident.reason(i) != res.reason
            or int(bb_ident.hops[i]) != res.hops
        ):
            bad += 1
    modes_ok["backbone_gpsr"] = bad == 0
    mismatches += bad
    identity = {
        "ok": mismatches == 0,
        "pairs": len(ident),
        "mismatches": mismatches,
        "modes": modes_ok,
    }

    # -- shortest-mode parity (delivery + length, not path choice) --
    sp_ref = router._route_pairs_scalar(
        short_sub, mode="shortest", max_hops=None,
        keep_paths=False, count_unreachable=False,
    )
    sp_got = router.route_pairs(short_sub, mode="shortest", keep_paths=False)
    worst = 0.0
    sp_ok = True
    for i in range(len(short_sub)):
        ref_delivered = sp_ref.reasons[i] == 0
        got_delivered = int(sp_got.reasons[i]) == 0
        if ref_delivered != got_delivered:
            sp_ok = False
            continue
        if ref_delivered and sp_ref.lengths[i]:
            err = abs(float(sp_got.lengths[i]) - sp_ref.lengths[i]) / sp_ref.lengths[i]
            worst = max(worst, err)
    sp_ok = sp_ok and worst <= 1e-9
    shortest_parity = {"ok": sp_ok, "pairs": len(short_sub), "max_rel_err": worst}

    return {
        "pairs": pairs,
        "scalar_pairs": len(sub),
        "seconds": seconds,
        "speedup": speedup,
        "delivery": delivery,
        "identity": identity,
        "shortest_parity": shortest_parity,
    }


def run_routing_benchmark(
    sizes: Sequence[int] = ROUTING_SIZES,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    pairs: int = ROUTING_PAIRS,
    scalar_pairs: int = ROUTING_SCALAR_PAIRS,
    identity_pairs: int = ROUTING_IDENTITY_PAIRS,
) -> dict:
    """The batch-vs-scalar routing section of the benchmark report."""
    return {
        "sizes": list(sizes),
        "pairs": pairs,
        "results": {
            str(n): measure_routing(
                n, radius=radius, seed=seed, pairs=pairs,
                scalar_pairs=scalar_pairs, identity_pairs=identity_pairs,
            )
            for n in sizes
        },
    }


def compare_routing_to_baseline(routing: dict, baseline: dict) -> dict:
    """Per-size batch wall-time factors vs a recorded routing baseline.

    Baselines recorded before the routing stage existed have no
    ``routing`` section; the comparison then reports nothing, so old
    baselines stay valid.
    """
    base_results = baseline.get("routing", {}).get("results", {})
    out: dict = {}
    for key, current in routing.get("results", {}).items():
        base = base_results.get(key)
        if not base:
            continue
        factors = {}
        for stage in (
            "greedy_batch", "compass_batch", "gpsr_batch",
            "backbone_gpsr_batch", "backbone_shortest_batch", "sweep_batch",
        ):
            now = current["seconds"].get(stage)
            then = base.get("seconds", {}).get(stage)
            if now and then:
                factors[stage] = round(then / now, 3)
        out[key] = factors
    return out


def _metrics_family(n: int, radius: float, seed: int):
    """The Table I topology family on the bench deployment recipe."""
    from repro.experiments.runner import build_all_topologies

    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, radius, random.Random(seed))
    udg = UnitDiskGraph(list(dep.points), dep.radius)
    # The fast backbone path is bit-identical to the protocol run and
    # this stage measures *metrics*, not construction.
    backbone = build_backbone(dep.points, dep.radius, mode="fast")
    graphs, _ = build_all_topologies(udg, backbone=backbone)
    return udg, graphs


def _reference_family_pass(
    udg, graphs: dict, *, power_alpha: float, use_scipy: Optional[bool] = None
) -> dict:
    """Full-family stretch via the reference path (the pre-oracle code).

    Every call builds fresh all-pairs matrices for both the topology
    and the UDG and reduces the n² pairs in pure Python — exactly what
    ``core.metrics`` did before the oracle existed.
    """
    from repro.core.metrics import stretch_reference
    from repro.experiments.runner import STRETCH_TOPOLOGIES

    out = {}
    for name, skip in STRETCH_TOPOLOGIES.items():
        graph = graphs[name]

        def power_weight(u: int, v: int, g=graph) -> float:
            return g.edge_length(u, v) ** power_alpha

        out[name] = {
            "length": stretch_reference(
                graph, udg, graph.edge_length, skip_udg_adjacent=skip,
                use_scipy=use_scipy,
            ),
            "hops": stretch_reference(
                graph, udg, None, skip_udg_adjacent=skip, use_scipy=use_scipy
            ),
            "power": stretch_reference(
                graph, udg, power_weight, skip_udg_adjacent=skip,
                use_scipy=use_scipy,
            ),
        }
    return out


def _oracle_family_pass(udg, graphs: dict, oracle, *, power_alpha: float) -> dict:
    """Full-family summarize through one shared distance oracle."""
    from repro.core.metrics import summarize_family
    from repro.experiments.runner import STRETCH_TOPOLOGIES

    summary = summarize_family(
        udg, graphs, stretch_policy=STRETCH_TOPOLOGIES,
        power_alpha=power_alpha, oracle=oracle,
    )
    return {
        name: {
            "length": summary[name].length,
            "hops": summary[name].hops,
            "power": summary[name].power,
        }
        for name in STRETCH_TOPOLOGIES
    }


def _family_parity(got: dict, ref: dict, rtol: float) -> dict:
    """Worst-case disagreement between two family passes."""
    worst_avg = worst_max = 0.0
    exact_fields = True
    for name, kinds in ref.items():
        for kind, ref_stats in kinds.items():
            got_stats = got[name][kind]
            if (
                got_stats.pairs != ref_stats.pairs
                or got_stats.unreachable_pairs != ref_stats.unreachable_pairs
            ):
                exact_fields = False
            if ref_stats.avg:
                worst_avg = max(
                    worst_avg, abs(got_stats.avg - ref_stats.avg) / ref_stats.avg
                )
            if ref_stats.max:
                worst_max = max(
                    worst_max, abs(got_stats.max - ref_stats.max) / ref_stats.max
                )
    ok = exact_fields and worst_avg <= rtol and worst_max <= rtol
    return {
        "ok": ok,
        "pair_counts_exact": exact_fields,
        "avg_rel_err": worst_avg,
        "max_rel_err": worst_max,
        "rtol": rtol,
    }


def measure_metrics(
    n: int,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    reps: int = METRICS_REPS,
    power_alpha: float = 2.0,
) -> dict:
    """Reference vs oracle full-family summarize at one size.

    ``reference`` is the pre-oracle path timed once — it rebuilds every
    all-pairs matrix from scratch on each call, so it is stateless and
    a sweep of ``reps`` passes costs exactly ``reps`` times the
    measured pass.  ``oracle_cold`` is a fresh oracle's first
    full-family pass (what a pipeline pays once per deployment);
    ``oracle_warm`` takes the min over the ``reps - 1`` replay passes
    on the same oracle (what benchmark rounds and repeated sweep
    points pay once the oracle is shared).  The headline ``speedup``
    compares the two at the sweep level — ``reps`` reference passes
    against one cold pass plus ``reps - 1`` warm replays, the unit the
    Table I / fig8–12 benchmarks actually repeat — with the per-pass
    ``cold_speedup``/``warm_speedup`` alongside.  ``parity`` is the
    tripwire: any disagreement beyond the documented tolerance fails
    the run.
    """
    from repro.core.oracle import PARITY_RTOL, DistanceOracle

    reps = max(2, reps)
    udg, graphs = _metrics_family(n, radius, seed)

    t0 = time.perf_counter()
    reference = _reference_family_pass(udg, graphs, power_alpha=power_alpha)
    reference_s = time.perf_counter() - t0

    # max_entries sized so warm passes replay entirely from cache (the
    # family holds 6 stretch rows x 3 kinds of non-baseline matrices).
    oracle = DistanceOracle(udg, max_entries=64)
    t0 = time.perf_counter()
    vectorized = _oracle_family_pass(udg, graphs, oracle, power_alpha=power_alpha)
    cold_s = time.perf_counter() - t0

    warm_s = math.inf
    for _ in range(reps - 1):
        t0 = time.perf_counter()
        vectorized = _oracle_family_pass(
            udg, graphs, oracle, power_alpha=power_alpha
        )
        warm_s = min(warm_s, time.perf_counter() - t0)

    sweep_reference_s = reps * reference_s
    sweep_oracle_s = cold_s + (reps - 1) * warm_s
    parity = _family_parity(vectorized, reference, PARITY_RTOL)
    pairs = sum(
        kinds["length"].pairs + kinds["length"].unreachable_pairs
        for kinds in reference.values()
    )
    return {
        "reps": reps,
        "seconds": {
            "reference": round(reference_s, 6),
            "oracle_cold": round(cold_s, 6),
            "oracle_warm": round(warm_s, 6),
            "sweep_reference": round(sweep_reference_s, 6),
            "sweep_oracle": round(sweep_oracle_s, 6),
        },
        "speedup": (
            round(sweep_reference_s / sweep_oracle_s, 3) if sweep_oracle_s else None
        ),
        "cold_speedup": round(reference_s / cold_s, 3) if cold_s else None,
        "warm_speedup": round(reference_s / warm_s, 3) if warm_s else None,
        "rows": len(vectorized),
        "pairs": pairs,
        "parity": parity,
        "oracle": oracle.snapshot(),
    }


def measure_metrics_fallback(
    n: int = METRICS_FALLBACK_SIZE,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    power_alpha: float = 2.0,
) -> dict:
    """Exactness tripwire for the no-numpy/no-scipy oracle fallback.

    Both sides are forced onto the pure-Python all-pairs routines; the
    oracle's fallback kernel must then reproduce the reference loop
    **bit-for-bit** on every field — equality, not tolerance.
    """
    from repro.core.oracle import DistanceOracle
    from repro.experiments.runner import STRETCH_TOPOLOGIES

    udg, graphs = _metrics_family(n, radius, seed)
    reference = _reference_family_pass(
        udg, graphs, power_alpha=power_alpha, use_scipy=False
    )
    oracle = DistanceOracle(
        udg, max_entries=64, use_scipy=False, use_numpy=False
    )
    fallback = _oracle_family_pass(udg, graphs, oracle, power_alpha=power_alpha)
    exact = all(
        fallback[name][kind] == reference[name][kind]
        for name in STRETCH_TOPOLOGIES
        for kind in ("length", "hops", "power")
    )
    return {"n": n, "exact": exact, "rows": len(reference)}


def run_metrics_benchmark(
    sizes: Sequence[int] = METRICS_SIZES,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    reps: int = METRICS_REPS,
    fallback_size: int = METRICS_FALLBACK_SIZE,
) -> dict:
    """The metrics-engine section of the benchmark report."""
    return {
        "sizes": list(sizes),
        "results": {
            str(n): measure_metrics(n, radius=radius, seed=seed, reps=reps)
            for n in sizes
        },
        "fallback": measure_metrics_fallback(
            fallback_size, radius=radius, seed=seed
        ),
    }


def compare_metrics_to_baseline(metrics: dict, baseline: dict) -> dict:
    """Per-size wall-time factors vs a recorded metrics baseline.

    Baselines recorded before the metrics stage existed simply have no
    ``metrics`` section; the comparison then reports nothing rather
    than failing, so old baselines stay valid.
    """
    base_results = baseline.get("metrics", {}).get("results", {})
    out: dict = {}
    for key, current in metrics.get("results", {}).items():
        base = base_results.get(key)
        if not base:
            continue
        factors = {}
        for stage in ("reference", "oracle_cold", "oracle_warm", "sweep_oracle"):
            now = current["seconds"].get(stage)
            then = base.get("seconds", {}).get(stage)
            if now and then:
                factors[stage] = round(then / now, 3)
        out[key] = factors
    return out


def format_report(report: dict) -> str:
    """Human-readable table of the per-size stage timings and speedups."""
    lines = [
        f"{'n':>6} {'stage':<10} {'seconds':>10} {'speedup':>9} {'edges':>8}"
    ]
    speedups = report.get("speedup", {})
    for n in report["sizes"]:
        key = str(n)
        entry = report["results"][key]
        stage_speedup = speedups.get(key, {}).get("speedup", {})
        for stage in STAGES:
            sec = entry["seconds"].get(stage)
            if sec is None:
                continue
            factor = stage_speedup.get(stage)
            factor_s = f"{factor:.2f}x" if factor else "-"
            edge_s = str(entry["edges"].get(stage, "-"))
            lines.append(
                f"{n:>6} {stage:<10} {sec:>10.4f} {factor_s:>9} {edge_s:>8}"
            )
        if key in speedups:
            match = "yes" if speedups[key]["edges_match"] else "NO (REGRESSION)"
            lines.append(f"{'':>6} edges identical to baseline: {match}")
    sharded = report.get("sharded")
    if sharded:
        lines.append("")
        lines.append(
            f"{'n':>6} {'serial s':>10} {'sharded s':>10} {'speedup':>9} "
            f"{'workers':>8} {'identical':>10}"
        )
        for n in sharded["sizes"]:
            entry = sharded["results"][str(n)]
            match = "yes" if entry["edges_match"] else "NO (BUG)"
            lines.append(
                f"{n:>6} {entry['seconds']['serial_pldel']:>10.4f} "
                f"{entry['seconds']['sharded_pldel']:>10.4f} "
                f"{entry['speedup']:>8.2f}x {entry['workers']:>8} {match:>10}"
            )
    soa = report.get("soa")
    if soa:
        lines.append("")
        lines.append(
            f"{'n':>6} {'ref s':>10} {'soa s':>10} {'end-to-end':>11} "
            f"{'pldel':>8} {'identical':>10}"
        )
        for n in soa["sizes"]:
            entry = soa["results"][str(n)]
            match = "yes" if entry["identical"] else "NO (BUG)"
            lines.append(
                f"{n:>6} {entry['reference_seconds']['end_to_end']:>10.4f} "
                f"{entry['seconds']['end_to_end']:>10.4f} "
                f"{entry['speedup'].get('end_to_end', 0.0):>10.2f}x "
                f"{entry['speedup'].get('pldel', 0.0):>7.2f}x {match:>10}"
            )
        scale = soa.get("scale")
        if scale:
            lines.append(
                f"{'':>6} scale probe n={scale['n']}: "
                f"{scale['seconds']['end_to_end']:.2f}s end-to-end "
                f"({scale['edges']['pldel']} PLDel edges)"
            )
    backbone = report.get("backbone_fast")
    if backbone:
        lines.append("")
        lines.append(
            f"{'n':>6} {'protocol s':>11} {'fast s':>9} {'speedup':>9} "
            f"{'sharded s':>10} {'speedup':>9} {'identical':>10}"
        )
        for n in backbone["sizes"]:
            entry = backbone["results"][str(n)]
            ok = entry["identical"] and entry["sharded_identical"]
            match = "yes" if ok else "NO (BUG)"
            lines.append(
                f"{n:>6} {entry['seconds']['protocol']:>11.4f} "
                f"{entry['seconds']['fast']:>9.4f} {entry['speedup']:>8.2f}x "
                f"{entry['seconds']['sharded_fast']:>10.4f} "
                f"{entry['sharded_speedup']:>8.2f}x {match:>10}"
            )
    metrics = report.get("metrics")
    if metrics:
        lines.append("")
        lines.append(
            f"{'n':>6} {'reference s':>12} {'cold s':>9} {'warm s':>9} "
            f"{'sweep':>9} {'cold':>8} {'warm':>9} {'parity':>8}"
        )
        for n in metrics["sizes"]:
            entry = metrics["results"][str(n)]
            match = "yes" if entry["parity"]["ok"] else "NO (BUG)"
            lines.append(
                f"{n:>6} {entry['seconds']['reference']:>12.4f} "
                f"{entry['seconds']['oracle_cold']:>9.4f} "
                f"{entry['seconds']['oracle_warm']:>9.4f} "
                f"{entry['speedup']:>8.2f}x "
                f"{entry['cold_speedup']:>7.2f}x "
                f"{entry['warm_speedup']:>8.2f}x {match:>8}"
            )
        fallback = metrics.get("fallback")
        if fallback:
            word = "exact" if fallback["exact"] else "NO (BUG)"
            lines.append(
                f"{'':>6} pure-Python fallback at n={fallback['n']}: {word}"
            )
    routing = report.get("routing")
    if routing:
        lines.append("")
        lines.append(
            f"{'n':>6} {'mode':<18} {'batch s':>9} {'scalar s':>9} "
            f"{'speedup':>9} {'delivery':>9}"
        )
        for n in routing["sizes"]:
            entry = routing["results"][str(n)]
            sec = entry["seconds"]
            for mode, batch_key, scalar_key in (
                ("greedy", "greedy_batch", "greedy_scalar_est"),
                ("compass", "compass_batch", "compass_scalar_est"),
                ("gpsr", "gpsr_batch", "gpsr_scalar_est"),
                ("backbone_gpsr", "backbone_gpsr_batch",
                 "backbone_gpsr_scalar_est"),
                ("backbone_shortest", "backbone_shortest_batch",
                 "backbone_shortest_scalar_est"),
            ):
                rate = entry["delivery"].get(mode)
                rate_s = f"{rate:.4f}" if rate is not None else "-"
                lines.append(
                    f"{n:>6} {mode:<18} {sec[batch_key]:>9.4f} "
                    f"{sec[scalar_key]:>9.4f} "
                    f"{entry['speedup'][mode]:>8.2f}x {rate_s:>9}"
                )
            lines.append(
                f"{'':>6} sweep (greedy + backbone gpsr + shortest): "
                f"{entry['speedup']['sweep']:.2f}x; warm backbone cache: "
                f"{entry['speedup']['backbone_gpsr_warm']:.2f}x"
            )
            ident = entry["identity"]
            word = (
                "yes"
                if ident["ok"]
                else f"NO ({ident['mismatches']} MISMATCHES)"
            )
            sp = entry["shortest_parity"]
            sp_word = "yes" if sp["ok"] else "NO (BUG)"
            lines.append(
                f"{'':>6} paths identical to scalar on {ident['pairs']} "
                f"pairs: {word}; shortest-mode parity: {sp_word}"
            )
    incremental = report.get("incremental")
    if incremental:
        lines.append("")
        lines.append(
            f"{'n':>6} {'rebuild s':>10} {'step s':>10} {'speedup':>9} "
            f"{'dirty frac':>11} {'identical':>10}"
        )
        for n in incremental["sizes"]:
            entry = incremental["results"][str(n)]
            match = "yes" if entry["identical"] else "NO (BUG)"
            lines.append(
                f"{n:>6} {entry['seconds']['rebuild']:>10.4f} "
                f"{entry['seconds']['incremental_step']:>10.4f} "
                f"{entry['speedup']:>8.2f}x "
                f"{entry['mean_dirty_fraction']:>11.4f} {match:>10}"
            )
        trace = incremental.get("trace")
        if trace:
            word = (
                "all identical"
                if trace["all_verified"]
                else f"{trace['verification_failures']} MISMATCHES"
            )
            lines.append(
                f"{'':>6} trace n={trace['n']}, {trace['steps']} batches, "
                f"verified every {trace['verify_every']}: {word} "
                f"(mean dirty fraction {trace['mean_dirty_fraction']:.4f})"
            )
    return "\n".join(lines)


def format_markdown(report: dict) -> str:
    """GitHub-flavored markdown summary (for ``$GITHUB_STEP_SUMMARY``)."""
    lines = ["## Hot-path benchmark", ""]
    speedups = report.get("speedup", {})
    if speedups:
        lines += [
            "| n | " + " | ".join(STAGES) + " | edges identical |",
            "|---|" + "---|" * (len(STAGES) + 1),
        ]
        for n in report["sizes"]:
            key = str(n)
            entry = speedups.get(key)
            if entry is None:
                continue
            cells = [
                f"{entry['speedup'][s]:.2f}x" if s in entry["speedup"] else "-"
                for s in STAGES
            ]
            tripwire = "yes" if entry["edges_match"] else "**NO — REGRESSION**"
            lines.append(f"| {n} | " + " | ".join(cells) + f" | {tripwire} |")
        lines.append("")
        lines.append("Speedup vs recorded baseline (`>1` = faster).")
    else:
        lines.append("_No baseline comparison (baseline missing or freshly pinned)._")
    sharded = report.get("sharded")
    if sharded:
        lines += [
            "",
            f"### Sharded vs serial PLDel (shards={sharded['shards']})",
            "",
            "| n | serial s | sharded s | speedup | mode | workers | bit-identical |",
            "|---|---|---|---|---|---|---|",
        ]
        for n in sharded["sizes"]:
            entry = sharded["results"][str(n)]
            tripwire = "yes" if entry["edges_match"] else "**NO — BUG**"
            lines.append(
                f"| {n} | {entry['seconds']['serial_pldel']:.4f} "
                f"| {entry['seconds']['sharded_pldel']:.4f} "
                f"| {entry['speedup']:.2f}x | {entry['mode']} "
                f"| {entry['workers']} | {tripwire} |"
            )
    soa = report.get("soa")
    if soa:
        lines += [
            "",
            "### Construction core: SoA kernels vs pure-Python reference",
            "",
            "| n | reference s | soa s | end-to-end | udg | pldel "
            "| bit-identical |",
            "|---|---|---|---|---|---|---|",
        ]
        for n in soa["sizes"]:
            entry = soa["results"][str(n)]
            tripwire = "yes" if entry["identical"] else "**NO — BUG**"
            lines.append(
                f"| {n} | {entry['reference_seconds']['end_to_end']:.4f} "
                f"| {entry['seconds']['end_to_end']:.4f} "
                f"| {entry['speedup'].get('end_to_end', 0.0):.2f}x "
                f"| {entry['speedup'].get('udg', 0.0):.2f}x "
                f"| {entry['speedup'].get('pldel', 0.0):.2f}x "
                f"| {tripwire} |"
            )
        scale = soa.get("scale")
        if scale:
            lines.append("")
            lines.append(
                f"Scale probe: n={scale['n']} built end-to-end in "
                f"{scale['seconds']['end_to_end']:.2f}s "
                f"({scale['edges']['udg']} UDG edges, "
                f"{scale['edges']['pldel']} PLDel edges, "
                f"{scale['triangles']} triangles)."
            )
    backbone = report.get("backbone_fast")
    if backbone:
        lines += [
            "",
            f"### Backbone fast path vs protocol (shards={backbone['shards']})",
            "",
            "| n | protocol s | fast s | speedup | sharded s | sharded speedup "
            "| unresolved | bit-identical |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for n in backbone["sizes"]:
            entry = backbone["results"][str(n)]
            ok = entry["identical"] and entry["sharded_identical"]
            tripwire = "yes" if ok else "**NO — BUG**"
            lines.append(
                f"| {n} | {entry['seconds']['protocol']:.4f} "
                f"| {entry['seconds']['fast']:.4f} | {entry['speedup']:.2f}x "
                f"| {entry['seconds']['sharded_fast']:.4f} "
                f"| {entry['sharded_speedup']:.2f}x "
                f"| {entry['election_unresolved']} | {tripwire} |"
            )
    metrics = report.get("metrics")
    if metrics:
        lines += [
            "",
            "### Metrics engine: oracle vs reference (full Table I family)",
            "",
            "| n | reference s | cold s | warm s | sweep speedup "
            "| cold speedup | warm speedup | pairs | parity |",
            "|---|---|---|---|---|---|---|---|---|",
        ]
        for n in metrics["sizes"]:
            entry = metrics["results"][str(n)]
            tripwire = "yes" if entry["parity"]["ok"] else "**NO — BUG**"
            lines.append(
                f"| {n} | {entry['seconds']['reference']:.4f} "
                f"| {entry['seconds']['oracle_cold']:.4f} "
                f"| {entry['seconds']['oracle_warm']:.4f} "
                f"| {entry['speedup']:.2f}x "
                f"| {entry['cold_speedup']:.2f}x "
                f"| {entry['warm_speedup']:.2f}x "
                f"| {entry['pairs']} | {tripwire} |"
            )
        fallback = metrics.get("fallback")
        if fallback:
            word = "exact" if fallback["exact"] else "**NO — BUG**"
            lines.append("")
            lines.append(
                f"Sweep speedup: {metrics['results'][str(metrics['sizes'][0])]['reps']} "
                "summarize passes per deployment (the benchmark-round protocol), "
                "reference re-paid per pass vs oracle cold-then-cached. "
                f"Pure-Python fallback parity at n={fallback['n']}: {word}."
            )
    routing = report.get("routing")
    if routing:
        lines += [
            "",
            f"### Route engine vs scalar routers ({routing['pairs']} pairs)",
            "",
            "| n | greedy | compass | gpsr | backbone gpsr | warm cache "
            "| shortest | sweep | paths identical | shortest parity |",
            "|---|---|---|---|---|---|---|---|---|---|",
        ]
        for n in routing["sizes"]:
            entry = routing["results"][str(n)]
            sp = entry["speedup"]
            ident = entry["identity"]
            tripwire = (
                "yes"
                if ident["ok"]
                else f"**NO — {ident['mismatches']} MISMATCHES**"
            )
            sp_word = (
                "yes" if entry["shortest_parity"]["ok"] else "**NO — BUG**"
            )
            lines.append(
                f"| {n} | {sp['greedy']:.2f}x | {sp['compass']:.2f}x "
                f"| {sp['gpsr']:.2f}x | {sp['backbone_gpsr']:.2f}x "
                f"| {sp['backbone_gpsr_warm']:.2f}x "
                f"| {sp['backbone_shortest']:.2f}x | {sp['sweep']:.2f}x "
                f"| {tripwire} | {sp_word} |"
            )
        lines.append("")
        lines.append(
            "Sweep = UDG greedy baseline + backbone GPSR + oracle-backed "
            "shortest cores, batch vs scalar-loop extrapolation."
        )
    incremental = report.get("incremental")
    if incremental:
        lines += [
            "",
            "### Incremental maintenance vs from-scratch rebuild",
            "",
            "| n | rebuild s | step s | speedup | mean dirty fraction "
            "| bit-identical |",
            "|---|---|---|---|---|---|",
        ]
        for n in incremental["sizes"]:
            entry = incremental["results"][str(n)]
            tripwire = "yes" if entry["identical"] else "**NO — BUG**"
            lines.append(
                f"| {n} | {entry['seconds']['rebuild']:.4f} "
                f"| {entry['seconds']['incremental_step']:.4f} "
                f"| {entry['speedup']:.2f}x "
                f"| {entry['mean_dirty_fraction']:.4f} | {tripwire} |"
            )
        trace = incremental.get("trace")
        if trace:
            word = (
                "all identical"
                if trace["all_verified"]
                else f"**{trace['verification_failures']} MISMATCHES**"
            )
            lines.append("")
            lines.append(
                f"Trace: n={trace['n']}, {trace['steps']} move batches, "
                f"rebuild-equivalence checked every {trace['verify_every']} "
                f"batch(es): {word}."
            )
    lines.append("")
    return "\n".join(lines)
