"""Hot-path benchmark: stage timings for the construction pipeline.

Times the stages the spanner construction actually spends its cycles
in — UDG build, Gabriel graph, LDel^1, Algorithm 3 planarization (the
two together reported as ``pldel``), and the full ICDS backbone — on
the deployment recipe the paper's experiments use (uniform points in a
``10 sqrt(n)`` square, radius 25), and compares against a recorded
baseline so regressions show up as a number, not a feeling.

Shared by ``benchmarks/bench_hotpath.py`` (standalone CLI), the
``hotpath`` mode of :mod:`repro.experiments.harness`, and the CI
bench-smoke job.  Output is machine-readable JSON
(``hotpath-bench/v1``); baselines use the sibling
``hotpath-baseline/v1`` schema with the same per-size layout.
"""

from __future__ import annotations

import json
import math
import random
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.spanner import build_backbone
from repro.graphs.udg import UnitDiskGraph
from repro.topology.construction_cache import ConstructionCache
from repro.topology.gabriel import gabriel_graph
from repro.topology.ldel import local_delaunay_graph, planarize_ldel1
from repro.workloads.generators import connected_udg_instance

#: Deployment sizes the regression harness tracks.
DEFAULT_SIZES = (200, 500, 1000, 2000)
DEFAULT_RADIUS = 25.0
DEFAULT_SEED = 2002

#: Stage keys in reporting order.
STAGES = ("udg", "gabriel", "ldel1", "planarize", "pldel", "backbone")

BENCH_SCHEMA = "hotpath-bench/v1"
BASELINE_SCHEMA = "hotpath-baseline/v1"


def default_baseline_path() -> Path:
    """The checked-in baseline next to the benchmarks CLI."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "baseline_hotpath.json"


def measure_size(
    n: int,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    reps: int = 1,
) -> dict:
    """Stage timings, edge counts, and cache counters for one size.

    The deployment is sampled once (``connected_udg_instance`` with a
    size-derived side, so density stays constant across ``n``); each
    stage is timed ``reps`` times and the minimum kept — the usual
    guard against scheduler noise.  Edge counts are recorded so a
    baseline comparison can assert the optimized pipeline still builds
    the *same* graphs, and the construction-cache counters quantify how
    much work the cache absorbed.
    """
    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, radius, random.Random(seed))
    seconds: dict[str, float] = {}
    edges: dict[str, int] = {}
    counters: dict[str, int] = {}

    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        udg = UnitDiskGraph(list(dep.points), dep.radius)
        t_udg = time.perf_counter() - t0

        t0 = time.perf_counter()
        gg = gabriel_graph(udg)
        t_gg = time.perf_counter() - t0

        cache = ConstructionCache(udg)
        t0 = time.perf_counter()
        ldel1 = local_delaunay_graph(udg, k=1, cache=cache)
        t_ldel1 = time.perf_counter() - t0

        t0 = time.perf_counter()
        pldel = planarize_ldel1(udg, ldel1, cache=cache)
        t_plan = time.perf_counter() - t0

        t0 = time.perf_counter()
        backbone = build_backbone(dep.points, dep.radius)
        t_bb = time.perf_counter() - t0

        rep_seconds = {
            "udg": t_udg,
            "gabriel": t_gg,
            "ldel1": t_ldel1,
            "planarize": t_plan,
            "pldel": t_ldel1 + t_plan,
            "backbone": t_bb,
        }
        for key, value in rep_seconds.items():
            seconds[key] = min(seconds.get(key, value), value)
        edges = {
            "udg": udg.edge_count,
            "gabriel": gg.edge_count,
            "ldel1": ldel1.graph.edge_count,
            "pldel": pldel.graph.edge_count,
            "backbone": backbone.ldel_icds.edge_count,
        }
        counters = cache.snapshot()

    return {
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "edges": edges,
        "counters": counters,
    }


def run_benchmark(
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    radius: float = DEFAULT_RADIUS,
    seed: int = DEFAULT_SEED,
    reps: int = 1,
    baseline: Optional[dict] = None,
    baseline_path: Optional[str] = None,
) -> dict:
    """Benchmark every size and fold in the baseline comparison."""
    results = {str(n): measure_size(n, radius=radius, seed=seed, reps=reps) for n in sizes}
    report: dict = {
        "schema": BENCH_SCHEMA,
        "params": {
            "generator": "uniform",
            "side": "10*sqrt(n)",
            "radius": radius,
            "seed": seed,
            "reps": reps,
        },
        "sizes": list(sizes),
        "results": results,
    }
    if baseline is not None:
        report["baseline"] = {
            "path": baseline_path,
            "commit": baseline.get("commit"),
            "schema": baseline.get("schema"),
        }
        report["speedup"] = compare_to_baseline(results, baseline)
    return report


def compare_to_baseline(results: dict, baseline: dict) -> dict:
    """Per-size, per-stage speedup factors plus edge-count agreement.

    ``speedup > 1`` means the current code is faster than the recorded
    baseline; ``edges_match`` is the regression tripwire — a speedup
    bought by building a different graph is a bug, not an optimization.
    """
    out: dict = {}
    base_results = baseline.get("results", {})
    for key, current in results.items():
        base = base_results.get(key)
        if base is None:
            continue
        stage_speedup = {}
        for stage in STAGES:
            now = current["seconds"].get(stage)
            then = base["seconds"].get(stage)
            if now and then:
                stage_speedup[stage] = round(then / now, 3)
        out[key] = {
            "speedup": stage_speedup,
            "edges_match": current["edges"] == base["edges"],
        }
    return out


def load_baseline(path: str | Path) -> Optional[dict]:
    """Parse a baseline file; ``None`` when absent or unreadable."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    if data.get("schema") != BASELINE_SCHEMA:
        return None
    return data


def baseline_from_report(report: dict, commit: str = "unknown") -> dict:
    """Re-pin a baseline file from a fresh benchmark report."""
    return {
        "schema": BASELINE_SCHEMA,
        "commit": commit,
        "params": report["params"],
        "sizes": report["sizes"],
        "results": {
            key: {"seconds": value["seconds"], "edges": value["edges"]}
            for key, value in report["results"].items()
        },
    }


def format_report(report: dict) -> str:
    """Human-readable table of the per-size stage timings and speedups."""
    lines = [
        f"{'n':>6} {'stage':<10} {'seconds':>10} {'speedup':>9} {'edges':>8}"
    ]
    speedups = report.get("speedup", {})
    for n in report["sizes"]:
        key = str(n)
        entry = report["results"][key]
        stage_speedup = speedups.get(key, {}).get("speedup", {})
        for stage in STAGES:
            sec = entry["seconds"].get(stage)
            if sec is None:
                continue
            factor = stage_speedup.get(stage)
            factor_s = f"{factor:.2f}x" if factor else "-"
            edge_s = str(entry["edges"].get(stage, "-"))
            lines.append(
                f"{n:>6} {stage:<10} {sec:>10.4f} {factor_s:>9} {edge_s:>8}"
            )
        if key in speedups:
            match = "yes" if speedups[key]["edges_match"] else "NO (REGRESSION)"
            lines.append(f"{'':>6} edges identical to baseline: {match}")
    return "\n".join(lines)
