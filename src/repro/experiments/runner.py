"""Reusable experiment sweeps reproducing the paper's evaluation.

Calibrated setup (see DESIGN.md): nodes uniform in a 200 x 200 square.
Table I: n = 100, R = 60 (reproduces the published UDG row: ~21 average
degree, ~1069 edges).  Figures 8-10: n in {20..100}, R = 60.  Figures
11-12: n = 500, R in {20..60}.  Only connected UDG instances are kept,
exactly as in the paper; averages and maxima are taken over the
sampled instances ("the average and the maximum are computed over all
these vertex sets").

Stretch-factor accounting: CDS', ICDS' and LDel(ICDS') are measured
over UDG-non-adjacent pairs (the routing rule sends directly within
range and Lemma 6 restricts to ``|uv| > 1``); the flat graphs (RNG,
GG, LDel) are measured over all pairs.

Every sweep accepts a :class:`SweepCache`: instances at the same
(n, radius, config) point are materialized once and each carries a
lazily-built backbone and a per-deployment
:class:`~repro.core.oracle.DistanceOracle`, so the UDG all-pairs
matrices are computed exactly once per deployment no matter how many
topology rows and stretch kinds are measured against it — and repeated
sweeps over the same point (benchmark reps, fig12's two passes) reuse
both the deployments and their backbones.
"""

from __future__ import annotations

import functools
import math
import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.core.metrics import (
    StretchStats,
    degree_stats,
    hop_stretch,
    length_stretch,
)
from repro.core.oracle import DistanceOracle
from repro.core.spanner import BackboneResult, build_backbone
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.routing.backbone_routing import backbone_route
from repro.routing.greedy import RouteResult
from repro.service.executor import BatchOutcome, run_batch
from repro.sim.stats import MessageStats
from repro.topology.gabriel import gabriel_graph
from repro.topology.ldel import planar_local_delaunay_graph
from repro.topology.rng import relative_neighborhood_graph
from repro.workloads.generators import connected_udg_instance

DEFAULT_SIDE = 200.0

#: Table I topology order, as printed by the paper.
TABLE1_ORDER = (
    "UDG",
    "RNG",
    "GG",
    "LDel",
    "CDS",
    "CDS'",
    "ICDS",
    "ICDS'",
    "LDel(ICDS)",
    "LDel(ICDS')",
)

#: Topologies whose stretch the paper reports, with the pair filter
#: used for each (True = skip UDG-adjacent pairs, the backbone rule).
STRETCH_TOPOLOGIES: Mapping[str, bool] = {
    "RNG": False,
    "GG": False,
    "LDel": False,
    "CDS'": True,
    "ICDS'": True,
    "LDel(ICDS')": True,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every sweep."""

    side: float = DEFAULT_SIDE
    instances: int = 10
    seed: int = 2002  # the venue year; any fixed seed works
    generator: str = "uniform"


@dataclass
class TopologyRow:
    """Aggregated measurements for one topology over many instances.

    Means are tracked incrementally; per-instance samples of the
    headline quantities are retained so :meth:`stddev` can report the
    spread across instances (the paper prints means and maxima only,
    but the spread is what tells a reader whether a reproduction
    difference is signal or sampling noise).
    """

    name: str
    deg_avg: float = 0.0
    deg_max: int = 0
    len_avg: float = 0.0
    len_max: float = 0.0
    hop_avg: float = 0.0
    hop_max: float = 0.0
    edges: float = 0.0
    has_stretch: bool = False
    _samples: int = field(default=0, repr=False)
    _series: dict = field(default_factory=dict, repr=False)

    def absorb(
        self,
        graph: Graph,
        length: Optional[StretchStats],
        hops: Optional[StretchStats],
    ) -> None:
        """Fold one instance's measurements into the aggregate."""
        avg_deg, max_deg = degree_stats(graph)
        k = self._samples
        self.deg_avg = (self.deg_avg * k + avg_deg) / (k + 1)
        self.deg_max = max(self.deg_max, max_deg)
        self.edges = (self.edges * k + graph.edge_count) / (k + 1)
        self._series.setdefault("deg_avg", []).append(avg_deg)
        self._series.setdefault("edges", []).append(float(graph.edge_count))
        if length is not None and hops is not None:
            self.has_stretch = True
            self.len_avg = (self.len_avg * k + length.avg) / (k + 1)
            self.len_max = max(self.len_max, length.max)
            self.hop_avg = (self.hop_avg * k + hops.avg) / (k + 1)
            self.hop_max = max(self.hop_max, hops.max)
            self._series.setdefault("len_avg", []).append(length.avg)
            self._series.setdefault("hop_avg", []).append(hops.avg)
        self._samples = k + 1

    @property
    def samples(self) -> int:
        return self._samples

    def stddev(self, quantity: str) -> float:
        """Sample standard deviation of a tracked quantity.

        ``quantity`` is one of ``deg_avg``, ``edges``, ``len_avg``,
        ``hop_avg``.  Zero with fewer than two samples.
        """
        values = self._series.get(quantity, [])
        n = len(values)
        if n < 2:
            return 0.0
        mean = sum(values) / n
        return math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))


def build_all_topologies(
    udg: UnitDiskGraph,
    *,
    backbone: Optional[BackboneResult] = None,
) -> tuple[dict[str, Graph], BackboneResult]:
    """Every Table I topology for one UDG instance.

    Pass ``backbone`` (a previously built :class:`BackboneResult` for
    this UDG) to skip rebuilding the CDS family.
    """
    if backbone is None:
        backbone = build_backbone(udg.positions, udg.radius)
    graphs: dict[str, Graph] = {
        "UDG": udg,
        "RNG": relative_neighborhood_graph(udg),
        "GG": gabriel_graph(udg),
        "LDel": planar_local_delaunay_graph(udg).graph,
        "CDS": backbone.cds,
        "CDS'": backbone.cds_prime,
        "ICDS": backbone.icds,
        "ICDS'": backbone.icds_prime,
        "LDel(ICDS)": backbone.ldel_icds,
        "LDel(ICDS')": backbone.ldel_icds_prime,
    }
    return graphs, backbone


class SweepInstance:
    """One deployment of a sweep point, with lazy derived artifacts.

    The UDG is materialized eagerly; the backbone (the expensive
    protocol run) and the per-deployment distance oracle are built on
    first access and then reused by every measurement that touches
    this instance.
    """

    def __init__(self, udg: UnitDiskGraph) -> None:
        self.udg = udg
        self._backbone: Optional[BackboneResult] = None
        self._oracle: Optional[DistanceOracle] = None

    @property
    def backbone(self) -> BackboneResult:
        """The CDS-family pipeline result (built once, lazily)."""
        if self._backbone is None:
            self._backbone = build_backbone(self.udg.positions, self.udg.radius)
        return self._backbone

    @property
    def oracle(self) -> DistanceOracle:
        """The deployment's distance oracle (built once, lazily)."""
        if self._oracle is None:
            self._oracle = DistanceOracle(self.udg)
        return self._oracle


class SweepCache:
    """LRU of materialized sweep points keyed by (n, radius, config).

    Benchmark reps and multi-pass figures (fig12 measures both
    communication and degree at every radius) regenerate identical
    instance streams; caching the :class:`SweepInstance` lists lets
    them share deployments, backbones, and oracles.  ``max_points``
    bounds memory: a point at n=500 holds full APSP matrices, so only
    the most recent points are kept.
    """

    def __init__(self, max_points: int = 2) -> None:
        self.max_points = max_points
        self._points: "OrderedDict[tuple, list[SweepInstance]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def instances(
        self, n: int, radius: float, config: ExperimentConfig
    ) -> "list[SweepInstance]":
        """The materialized instance list for one sweep point."""
        key = (
            n, float(radius), config.side, config.instances, config.seed,
            config.generator,
        )
        cached = self._points.get(key)
        if cached is not None:
            self.hits += 1
            self._points.move_to_end(key)
            return cached
        self.misses += 1
        rng = random.Random(config.seed)
        instances = []
        for _ in range(config.instances):
            deployment = connected_udg_instance(
                n, config.side, radius, rng, generator=config.generator
            )
            instances.append(SweepInstance(deployment.udg()))
        self._points[key] = instances
        while len(self._points) > self.max_points:
            self._points.popitem(last=False)
        return instances


def _instances(
    n: int, radius: float, config: ExperimentConfig, cache: Optional[SweepCache]
) -> "list[SweepInstance]":
    """Sweep-point instances, through ``cache`` when one is supplied."""
    if cache is not None:
        return cache.instances(n, radius, config)
    return SweepCache(max_points=1).instances(n, radius, config)


def _instance_stream(
    n: int, radius: float, config: ExperimentConfig
) -> Iterable[UnitDiskGraph]:
    """Back-compat UDG stream (prefer :func:`_instances` internally)."""
    for entry in _instances(n, radius, config, None):
        yield entry.udg


def table1(
    *,
    n: int = 100,
    radius: float = 60.0,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[SweepCache] = None,
) -> list[TopologyRow]:
    """Reproduce Table I: topology quality measurements."""
    rows = {name: TopologyRow(name) for name in TABLE1_ORDER}
    for entry in _instances(n, radius, config, cache):
        udg = entry.udg
        oracle = entry.oracle
        graphs, _backbone = build_all_topologies(udg, backbone=entry.backbone)
        for name in TABLE1_ORDER:
            graph = graphs[name]
            if name in STRETCH_TOPOLOGIES:
                skip = STRETCH_TOPOLOGIES[name]
                length = length_stretch(
                    graph, udg, skip_udg_adjacent=skip, oracle=oracle
                )
                hops = hop_stretch(
                    graph, udg, skip_udg_adjacent=skip, oracle=oracle
                )
            else:
                length = hops = None
            rows[name].absorb(graph, length, hops)
    return [rows[name] for name in TABLE1_ORDER]


# -- density sweeps (Figures 8, 9, 10) --------------------------------------


@dataclass(frozen=True)
class SeriesPoint:
    """One x-axis point of a figure: metric name -> value."""

    x: float
    values: Mapping[str, float]


def _sweep(
    xs: Sequence[float],
    make_point: Callable[[float], Mapping[str, float]],
) -> list[SeriesPoint]:
    return [SeriesPoint(x=x, values=make_point(x)) for x in xs]


def _degree_point(
    n: int,
    radius: float,
    config: ExperimentConfig,
    cache: Optional[SweepCache] = None,
) -> Mapping[str, float]:
    """Max and avg degree of the six backbone graphs (Fig. 8)."""
    names = ("CDS", "CDS'", "ICDS", "ICDS'", "LDel(ICDS)", "LDel(ICDS')")
    acc = {f"{name} deg {kind}": 0.0 for name in names for kind in ("max", "avg")}
    count = 0
    for entry in _instances(n, radius, config, cache):
        backbone = entry.backbone
        graphs = {
            "CDS": backbone.cds,
            "CDS'": backbone.cds_prime,
            "ICDS": backbone.icds,
            "ICDS'": backbone.icds_prime,
            "LDel(ICDS)": backbone.ldel_icds,
            "LDel(ICDS')": backbone.ldel_icds_prime,
        }
        for name, graph in graphs.items():
            avg_deg, max_deg = degree_stats(graph)
            acc[f"{name} deg max"] = max(acc[f"{name} deg max"], float(max_deg))
            acc[f"{name} deg avg"] += avg_deg
        count += 1
    for name in names:
        acc[f"{name} deg avg"] /= max(count, 1)
    return acc


def _stretch_point(
    n: int,
    radius: float,
    config: ExperimentConfig,
    cache: Optional[SweepCache] = None,
) -> Mapping[str, float]:
    """Max and avg spanning ratios of the primed graphs (Figs. 9, 11)."""
    names = ("CDS'", "ICDS'", "LDel(ICDS')")
    acc: dict[str, float] = {}
    for name in names:
        for metric in ("length", "hop"):
            acc[f"{name} {metric} max"] = 0.0
            acc[f"{name} {metric} avg"] = 0.0
    count = 0
    for entry in _instances(n, radius, config, cache):
        udg = entry.udg
        oracle = entry.oracle
        backbone = entry.backbone
        graphs = {
            "CDS'": backbone.cds_prime,
            "ICDS'": backbone.icds_prime,
            "LDel(ICDS')": backbone.ldel_icds_prime,
        }
        for name, graph in graphs.items():
            length = length_stretch(
                graph, udg, skip_udg_adjacent=True, oracle=oracle
            )
            hops = hop_stretch(
                graph, udg, skip_udg_adjacent=True, oracle=oracle
            )
            acc[f"{name} length max"] = max(acc[f"{name} length max"], length.max)
            acc[f"{name} length avg"] += length.avg
            acc[f"{name} hop max"] = max(acc[f"{name} hop max"], hops.max)
            acc[f"{name} hop avg"] += hops.avg
        count += 1
    for name in names:
        acc[f"{name} length avg"] /= max(count, 1)
        acc[f"{name} hop avg"] /= max(count, 1)
    return acc


def _comm_point(
    n: int,
    radius: float,
    config: ExperimentConfig,
    cache: Optional[SweepCache] = None,
) -> Mapping[str, float]:
    """Per-node communication cost of CDS / ICDS / LDel(ICDS) (Figs. 10, 12)."""
    acc = {
        f"{name} comm {kind}": 0.0
        for name in ("CDS", "ICDS", "LDelICDS")
        for kind in ("max", "avg")
    }
    count = 0
    for entry in _instances(n, radius, config, cache):
        udg = entry.udg
        backbone = entry.backbone
        ledgers: Mapping[str, MessageStats] = {
            "CDS": backbone.stats_cds,
            "ICDS": backbone.stats_icds,
            "LDelICDS": backbone.stats_ldel,
        }
        for name, stats in ledgers.items():
            acc[f"{name} comm max"] = max(
                acc[f"{name} comm max"], float(stats.max_per_node())
            )
            acc[f"{name} comm avg"] += stats.avg_per_node(udg.node_count)
        count += 1
    for name in ("CDS", "ICDS", "LDelICDS"):
        acc[f"{name} comm avg"] /= max(count, 1)
    return acc


def fig8_degree_vs_density(
    *,
    ns: Sequence[int] = (20, 30, 40, 50, 60, 70, 80, 90, 100),
    radius: float = 60.0,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[SweepCache] = None,
) -> list[SeriesPoint]:
    """Figure 8: node degree vs number of nodes at R = 60."""
    return _sweep(ns, lambda n: _degree_point(int(n), radius, config, cache))


def fig9_stretch_vs_density(
    *,
    ns: Sequence[int] = (20, 30, 40, 50, 60, 70, 80, 90, 100),
    radius: float = 60.0,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[SweepCache] = None,
) -> list[SeriesPoint]:
    """Figure 9: spanning ratios vs number of nodes at R = 60."""
    return _sweep(ns, lambda n: _stretch_point(int(n), radius, config, cache))


def fig10_comm_vs_density(
    *,
    ns: Sequence[int] = (20, 30, 40, 50, 60, 70, 80, 90, 100),
    radius: float = 60.0,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[SweepCache] = None,
) -> list[SeriesPoint]:
    """Figure 10: per-node communication cost vs number of nodes."""
    return _sweep(ns, lambda n: _comm_point(int(n), radius, config, cache))


def fig11_stretch_vs_radius(
    *,
    radii: Sequence[float] = (20, 25, 30, 35, 40, 45, 50, 55, 60),
    n: int = 500,
    config: ExperimentConfig = ExperimentConfig(instances=3),
    cache: Optional[SweepCache] = None,
) -> list[SeriesPoint]:
    """Figure 11: spanning ratios vs transmission radius at N = 500."""
    return _sweep(radii, lambda r: _stretch_point(n, float(r), config, cache))


def fig12_comm_vs_radius(
    *,
    radii: Sequence[float] = (20, 25, 30, 35, 40, 45, 50, 55, 60),
    n: int = 500,
    config: ExperimentConfig = ExperimentConfig(instances=3),
    cache: Optional[SweepCache] = None,
) -> list[SeriesPoint]:
    """Figure 12: communication cost and degree vs transmission radius.

    The communication and degree passes at each radius share one cache
    point, so deployments and backbones are built once, not twice.
    """
    shared = cache if cache is not None else SweepCache()

    def point(r: float) -> Mapping[str, float]:
        values = dict(_comm_point(n, float(r), config, shared))
        degree = _degree_point(n, float(r), config, shared)
        for key in ("CDS", "ICDS", "LDel(ICDS)"):
            values[f"{key} deg max"] = degree[f"{key} deg max"]
            values[f"{key} deg avg"] = degree[f"{key} deg avg"]
        return values

    return _sweep(radii, point)


def deployment_sensitivity(
    *,
    n: int = 80,
    radius: float = 60.0,
    generators: Sequence[str] = ("uniform", "clustered", "grid", "corridor"),
    config: ExperimentConfig = ExperimentConfig(instances=3),
) -> dict[str, Mapping[str, float]]:
    """The backbone's properties across deployment *shapes*.

    The paper evaluates uniform deployments only; real sensor fields
    are clustered, gridded, or corridor-shaped.  For each generator,
    build LDel(ICDS') and report the quantities the paper's claims are
    about — they should hold regardless of deployment shape, which is
    what this sweep demonstrates.
    """
    results: dict[str, Mapping[str, float]] = {}
    for generator in generators:
        rng = random.Random(config.seed)
        deg_max = 0.0
        len_avg = 0.0
        hop_avg = 0.0
        comm_max = 0.0
        backbone_frac = 0.0
        count = 0
        for _ in range(config.instances):
            deployment = connected_udg_instance(
                n, config.side, radius, rng, generator=generator
            )
            udg = deployment.udg()
            backbone = build_backbone(udg.positions, udg.radius)
            oracle = DistanceOracle(udg)
            length = length_stretch(
                backbone.ldel_icds_prime, udg, skip_udg_adjacent=True,
                oracle=oracle,
            )
            hops = hop_stretch(
                backbone.ldel_icds_prime, udg, skip_udg_adjacent=True,
                oracle=oracle,
            )
            deg_max = max(
                deg_max, float(max(backbone.ldel_icds.degrees(), default=0))
            )
            len_avg += length.avg
            hop_avg += hops.avg
            comm_max = max(comm_max, float(backbone.stats_ldel.max_per_node()))
            backbone_frac += len(backbone.backbone_nodes) / udg.node_count
            count += 1
        results[generator] = {
            "backbone deg max": deg_max,
            "length avg": len_avg / count,
            "hop avg": hop_avg / count,
            "comm max": comm_max,
            "backbone fraction": backbone_frac / count,
        }
    return results


def message_breakdown(
    *,
    n: int = 100,
    radius: float = 60.0,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[SweepCache] = None,
) -> dict[str, float]:
    """Where the per-node constant goes: mean sends per message kind.

    Not a table from the paper — a diagnostic the reproduction adds:
    for each protocol message kind, the mean number of broadcasts per
    node over the full pipeline.  This is what grounds statements like
    "the LDel increment over CDS is the Proposal/Accept traffic".
    """
    totals: dict[str, float] = {}
    count = 0
    for entry in _instances(n, radius, config, cache):
        backbone = entry.backbone
        for kind, sent in backbone.stats_ldel.by_kind().items():
            totals[kind] = totals.get(kind, 0.0) + sent / entry.udg.node_count
        count += 1
    return {kind: value / max(count, 1) for kind, value in sorted(totals.items())}


# -- batched routing ----------------------------------------------------------


def _route_pair(
    result: BackboneResult, mode: str, pair: tuple[int, int]
) -> RouteResult:
    source, target = pair
    return backbone_route(result, source, target, mode=mode)


def route_batch(
    result: BackboneResult,
    pairs: Iterable[tuple[int, int]],
    *,
    mode: str = "gpsr",
    executor: str = "thread",
    max_workers: Optional[int] = None,
    timeout: Optional[float] = None,
) -> BatchOutcome:
    """Route many source/target pairs through the batch executor.

    Results come back in pair order with per-pair latencies and error
    capture (see :mod:`repro.service.executor`).  Threads are the
    default: routing shares the in-memory backbone, which a process
    pool would re-pickle per task.
    """
    worker = functools.partial(_route_pair, result, mode)
    return run_batch(
        list(pairs),
        worker,
        mode=executor,
        max_workers=max_workers,
        timeout=timeout,
        metric_name="route.pair",
    )


def routing_quality(
    *,
    n: int = 100,
    radius: float = 60.0,
    pairs: int = 200,
    mode: str = "gpsr",
    config: ExperimentConfig = ExperimentConfig(instances=3),
    executor: str = "thread",
    cache: Optional[SweepCache] = None,
) -> dict[str, float]:
    """Delivery rate and mean hop count of the paper's routing procedure.

    Samples ``pairs`` random source/target pairs per instance and
    routes them through the batch
    :class:`~repro.core.route_engine.BackboneRouter` (scalar-parity
    kernels over the backbone CSR; ``executor`` is kept for signature
    compatibility but no longer consulted — the engine advances all
    pairs in lockstep instead of fanning out per-pair tasks).
    """
    from repro.core.route_engine import BackboneRouter

    del executor  # batch kernels replaced the per-pair executor fan-out
    rng = random.Random(config.seed)
    delivered = 0
    total = 0
    hop_sum = 0.0
    for entry in _instances(n, radius, config, cache):
        udg = entry.udg
        result = entry.backbone
        sampled = [
            (rng.randrange(udg.node_count), rng.randrange(udg.node_count))
            for _ in range(pairs)
        ]
        batch = BackboneRouter(result).route_pairs(
            sampled, mode=mode, keep_paths=False
        )
        total += batch.pairs
        delivered += batch.delivered_count
        hop_sum += batch.hops_avg() * batch.delivered_count
    return {
        "pairs": float(total),
        "delivery_rate": delivered / total if total else 0.0,
        "hops_avg": hop_sum / delivered if delivered else 0.0,
    }


# -- plain-text rendering -----------------------------------------------------


def format_rows(rows: Sequence[TopologyRow], *, with_std: bool = False) -> str:
    """Render Table I the way the paper prints it.

    ``with_std=True`` appends the across-instance standard deviations
    of the mean quantities, so readers can judge sampling noise.
    """
    header = (
        f"{'':<12}{'deg_a':>7}{'deg_m':>7}{'len_a':>7}{'len_m':>7}"
        f"{'hop_a':>7}{'hop_m':>7}{'edges':>9}"
    )
    if with_std:
        header += f"{'±deg':>7}{'±len':>7}{'±hop':>7}{'±edges':>9}"
    lines = [header]
    for row in rows:
        if row.has_stretch:
            stretch = (
                f"{row.len_avg:>7.2f}{row.len_max:>7.2f}"
                f"{row.hop_avg:>7.2f}{row.hop_max:>7.2f}"
            )
        else:
            stretch = f"{'-':>7}{'-':>7}{'-':>7}{'-':>7}"
        line = (
            f"{row.name:<12}{row.deg_avg:>7.2f}{row.deg_max:>7d}"
            f"{stretch}{row.edges:>9.1f}"
        )
        if with_std:
            if row.has_stretch:
                spread = (
                    f"{row.stddev('deg_avg'):>7.2f}{row.stddev('len_avg'):>7.2f}"
                    f"{row.stddev('hop_avg'):>7.2f}{row.stddev('edges'):>9.1f}"
                )
            else:
                spread = (
                    f"{row.stddev('deg_avg'):>7.2f}{'-':>7}{'-':>7}"
                    f"{row.stddev('edges'):>9.1f}"
                )
            line += spread
        lines.append(line)
    return "\n".join(lines)


def format_series(points: Sequence[SeriesPoint], *, x_label: str = "x") -> str:
    """Render a figure's series as an aligned text table."""
    if not points:
        return "(no data)"
    keys = sorted(points[0].values)
    header = f"{x_label:>8}" + "".join(f"{k:>26}" for k in keys)
    lines = [header]
    for point in points:
        lines.append(
            f"{point.x:>8g}"
            + "".join(f"{point.values[k]:>26.3f}" for k in keys)
        )
    return "\n".join(lines)
