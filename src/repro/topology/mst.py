"""Euclidean minimum spanning tree over the unit disk graph.

Not part of the paper's comparison table, but the natural lower bound
on total edge length: the sparsest connected topology, with unbounded
stretch.  Used by the ablation benchmarks to anchor the
sparseness/stretch trade-off.
"""

from __future__ import annotations

import heapq

from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph


def euclidean_mst(udg: UnitDiskGraph) -> Graph:
    """Prim's algorithm on the UDG edge set.

    When the UDG is disconnected the result is the spanning forest of
    its components.
    """
    mst = Graph(udg.positions, name="MST")
    n = udg.node_count
    if n == 0:
        return mst
    in_tree = [False] * n
    for root in range(n):
        if in_tree[root]:
            continue
        in_tree[root] = True
        heap: list[tuple[float, int, int]] = [
            (udg.edge_length(root, v), root, v) for v in udg.neighbors(root)
        ]
        heapq.heapify(heap)
        while heap:
            d, u, v = heapq.heappop(heap)
            if in_tree[v]:
                continue
            in_tree[v] = True
            mst.add_edge(u, v)
            for w in udg.neighbors(v):
                if not in_tree[w]:
                    heapq.heappush(heap, (udg.edge_length(v, w), v, w))
    return mst
