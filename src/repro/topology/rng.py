"""Relative neighborhood graph restricted to the unit disk graph.

An edge ``uv`` of the UDG survives when no third node ``w`` lies
strictly inside the *lune* of ``u`` and ``v`` (both ``|uw| < |uv|`` and
``|vw| < |uv|``).  RNG is planar and connected but a poor spanner:
Bose et al. showed its length stretch factor is Theta(n) — which is
exactly what the paper's Table I row demonstrates and our benchmarks
reproduce.
"""

from __future__ import annotations

from repro.geometry.circle import lune_contains
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph


def relative_neighborhood_graph(udg: UnitDiskGraph) -> Graph:
    """RNG(V) ∩ UDG(V): the relative neighborhood graph on UDG edges.

    Only UDG neighbors of ``u`` or ``v`` can blockade an edge ``uv``
    (a blocker must be closer to both endpoints than ``|uv| <= r``),
    so the test stays local to 1-hop neighborhoods.
    """
    rng = Graph(udg.positions, name="RNG")
    pos = udg.positions
    for u, v in udg.edges():
        pu, pv = pos[u], pos[v]
        witnesses = (udg.neighbors(u) | udg.neighbors(v)) - {u, v}
        if not any(lune_contains(pu, pv, pos[w]) for w in witnesses):
            rng.add_edge(u, v)
    return rng
