"""Yao-Yao graph (YY_k): the in-degree-pruned Yao graph.

The other classical fix for the Yao graph's unbounded in-degree
(discussed alongside Yao+Sink in the Li–Wan–Wang line of work the
paper builds on): after the usual Yao selection of outgoing edges,
every node applies a *reverse* Yao step to its incoming edges, keeping
only the shortest incoming edge per cone.  Total degree is at most
``2k``; the structure is connected and empirically a good length
spanner, though — unlike Yao+Sink — no constant stretch proof is
known, which is exactly why it makes an interesting ablation point.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.topology.yao import yao_cone_of, yao_edges_out


def yao_yao_graph(udg: UnitDiskGraph, k: int = 6) -> Graph:
    """Undirected Yao-Yao graph YY_k on the UDG."""
    if k < 3:
        raise ValueError("Yao graph needs at least 3 cones")
    pos = udg.positions
    # Phase 1: standard directed Yao choices.
    incoming: dict[int, list[int]] = {u: [] for u in udg.nodes()}
    for u in udg.nodes():
        for v in yao_edges_out(udg, u, k):
            incoming[v].append(u)
    # Phase 2: reverse Yao — keep the shortest incoming edge per cone.
    result = Graph(udg.positions, name=f"YaoYao{k}")
    for v in udg.nodes():
        pv = pos[v]
        best: dict[int, tuple[float, int]] = {}
        for u in incoming[v]:
            pu = pos[u]
            cone = yao_cone_of(pu[0] - pv[0], pu[1] - pv[1], k)
            key = (udg.edge_length(u, v), u)
            if cone not in best or key < best[cone]:
                best[cone] = key
        for _d, u in best.values():
            result.add_edge(u, v)
    return result
