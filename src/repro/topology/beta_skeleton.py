"""Lune-based beta-skeletons restricted to the unit disk graph.

The family behind the paper's reference [13] (Bose, Devroye, Evans,
Kirkpatrick, "On the spanning ratio of Gabriel graphs and
beta-skeletons"): an edge ``uv`` survives when its beta-*forbidden
region* is empty of other nodes.

* ``beta = 1`` — the forbidden region is the disk with diameter
  ``uv``: exactly the **Gabriel graph**;
* ``beta = 2`` — the region is the lune of the two radius-``|uv|``
  disks centered at ``u`` and ``v``: exactly the **RNG**;
* ``beta`` between 1 and 2 interpolates (lune-based definition: the
  intersection of the two disks of radius ``beta * |uv| / 2`` centered
  at the points ``(1 - beta/2) u + (beta/2) v`` and symmetric).

Larger beta means a larger forbidden region, so fewer edges:
``beta-skeleton(b2) ⊆ beta-skeleton(b1)`` for ``b1 <= b2`` — the knob
that trades sparseness against spanning ratio, which Bose et al.
quantify and our ablation benchmark sweeps.
"""

from __future__ import annotations

from repro.geometry.primitives import Point, dist_sq
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph


def _in_forbidden_region(u: Point, v: Point, w: Point, beta: float) -> bool:
    """Whether ``w`` lies strictly inside the lune-based beta region of ``uv``.

    For ``beta >= 1`` the region is the intersection of two disks of
    radius ``beta * |uv| / 2`` whose centers sit on the line ``uv`` at
    distance ``beta * |uv| / 2`` from each endpoint (toward the other).
    """
    half_beta = beta / 2.0
    c1 = Point(
        (1.0 - half_beta) * u[0] + half_beta * v[0],
        (1.0 - half_beta) * u[1] + half_beta * v[1],
    )
    c2 = Point(
        (1.0 - half_beta) * v[0] + half_beta * u[0],
        (1.0 - half_beta) * v[1] + half_beta * u[1],
    )
    radius_sq = (half_beta * half_beta) * dist_sq(u, v)
    threshold = radius_sq - 1e-12
    return dist_sq(c1, w) < threshold and dist_sq(c2, w) < threshold


def beta_skeleton(udg: UnitDiskGraph, beta: float) -> Graph:
    """The lune-based beta-skeleton on UDG edges (``beta >= 1``).

    Witnesses are restricted to UDG neighbors of the endpoints, which
    is exact for ``beta <= 2``: any point of the forbidden region is
    within ``|uv| <= radius`` of both endpoints.  For ``beta > 2``
    the region grows beyond the radio range and a *local* construction
    is no longer faithful, so we refuse it.
    """
    if not 1.0 <= beta <= 2.0:
        raise ValueError("locally constructible beta-skeletons need 1 <= beta <= 2")
    skeleton = Graph(udg.positions, name=f"BetaSkeleton({beta:g})")
    pos = udg.positions
    for u, v in udg.edges():
        witnesses = (udg.neighbors(u) | udg.neighbors(v)) - {u, v}
        pu, pv = pos[u], pos[v]
        if not any(
            _in_forbidden_region(pu, pv, pos[w], beta) for w in witnesses
        ):
            skeleton.add_edge(u, v)
    return skeleton
