"""Yao and Sink structure (YG*) — bounded-degree length spanner baseline.

Li, Wan and Wang's fix for the Yao graph's unbounded in-degree: each
node ``u`` replaces the star of incoming Yao edges by a *sink tree*
built with the reverse Yao construction — in each cone around ``u``
the nearest in-neighbor links directly to ``u`` and becomes the local
sink for the remaining in-neighbors of that cone, recursively.  The
result keeps a constant length stretch factor and gains a constant
degree bound, but is still neither planar nor a hop spanner (the
paper's motivating comparison for the hybrid backbone).
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.topology.yao import yao_cone_of, yao_edges_out


def _sink_tree_edges(
    udg: UnitDiskGraph, root: int, members: list[int], k: int
) -> list[tuple[int, int]]:
    """Edges of the reverse-Yao sink tree connecting ``members`` to ``root``."""
    edges: list[tuple[int, int]] = []
    stack: list[tuple[int, list[int]]] = [(root, members)]
    pos = udg.positions
    while stack:
        sink, group = stack.pop()
        if not group:
            continue
        ps = pos[sink]
        cones: dict[int, list[int]] = {}
        for v in group:
            pv = pos[v]
            cone = yao_cone_of(pv[0] - ps[0], pv[1] - ps[1], k)
            cones.setdefault(cone, []).append(v)
        for group_in_cone in cones.values():
            nearest = min(
                group_in_cone, key=lambda v: (udg.edge_length(sink, v), v)
            )
            edges.append((nearest, sink))
            rest = [v for v in group_in_cone if v != nearest]
            if rest:
                stack.append((nearest, rest))
    return edges


def yao_sink_graph(udg: UnitDiskGraph, k: int = 6) -> Graph:
    """Undirected Yao-and-Sink graph YG*_k on the UDG.

    Built from the directed Yao graph: out-edges are kept as chosen,
    and each node's incoming star is rewired through its sink tree.
    """
    if k < 3:
        raise ValueError("Yao graph needs at least 3 cones")
    incoming: dict[int, list[int]] = {u: [] for u in udg.nodes()}
    for u in udg.nodes():
        for v in yao_edges_out(udg, u, k):
            incoming[v].append(u)

    result = Graph(udg.positions, name=f"YaoSink{k}")
    for u in udg.nodes():
        for a, b in _sink_tree_edges(udg, u, incoming[u], k):
            result.add_edge(a, b)
    return result
