"""Gabriel graph restricted to the unit disk graph.

An edge ``uv`` of the UDG survives when the disk with diameter ``uv``
contains no third node.  GG is planar, contains the RNG, and has
length stretch factor Theta(sqrt(n)) — better than RNG but still not a
constant-factor spanner, which the Table I benchmark shows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.geometry.circle import gabriel_disk_empty
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph

if TYPE_CHECKING:  # avoid a runtime import cycle with construction_cache
    from repro.topology.construction_cache import ConstructionCache


def gabriel_graph(
    udg: UnitDiskGraph, *, cache: Optional["ConstructionCache"] = None
) -> Graph:
    """GG(V) ∩ UDG(V): the Gabriel graph on UDG edges.

    A blocker inside the diameter disk of ``uv`` is within ``|uv|`` of
    both endpoints, hence a UDG neighbor of both; the emptiness test is
    local to 1-hop neighborhoods.  A shared ``cache`` (from the LDel
    pipeline) serves those neighborhoods memoized — the candidate
    generation already computed every one of them.
    """
    gg = Graph(udg.positions, name="GG")
    pos = udg.positions
    if cache is not None and cache.udg is udg:
        hood = lambda u: cache.k_hop(u, 1)  # noqa: E731 - tiny dispatch shim
    else:
        hood = udg.neighbors
    for u, v in udg.edges():
        witnesses = (hood(u) | hood(v)) - {u, v}
        if gabriel_disk_empty(pos[u], pos[v], (pos[w] for w in witnesses)):
            gg.add_edge(u, v)
    return gg
