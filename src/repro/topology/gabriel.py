"""Gabriel graph restricted to the unit disk graph.

An edge ``uv`` of the UDG survives when the disk with diameter ``uv``
contains no third node.  GG is planar, contains the RNG, and has
length stretch factor Theta(sqrt(n)) — better than RNG but still not a
constant-factor spanner, which the Table I benchmark shows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.geometry.circle import gabriel_disk_empty
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph

if TYPE_CHECKING:  # avoid a runtime import cycle with construction_cache
    from repro.topology.construction_cache import ConstructionCache


def _soa_gabriel_pairs(udg: UnitDiskGraph):
    """Vectorized Gabriel test over the snapshot's edge arrays.

    Replicates :func:`~repro.geometry.circle.gabriel_disk_empty`
    elementwise — midpoint center, ``dist_sq/4 - tol`` threshold,
    witnesses skipped on id *or* coordinate equality with an endpoint —
    so the surviving edge set is bit-identical to the scalar loop.
    Returns ``None`` when numpy is masked out.
    """
    from repro.core.soa import gather_csr_rows, snapshot_for
    from repro.core.compat import get_numpy

    np = get_numpy()
    if np is None:
        return None
    snap = snapshot_for(udg)
    if snap is None:
        return None
    eu, ev = snap.edge_u, snap.edge_v
    if eu.shape[0] == 0:
        return []
    xs, ys = snap.xs, snap.ys
    ux, uy = xs[eu], ys[eu]
    vx, vy = xs[ev], ys[ev]
    mx = (ux + vx) / 2.0
    my = (uy + vy) / 2.0
    duv = (ux - vx) ** 2 + (uy - vy) ** 2
    threshold = duv / 4.0 - 1e-9

    # A blocker inside the diameter disk of ``uv`` is within ``|uv|``
    # of *both* endpoints (Thales), and ``|uv| <= radius``, so under
    # the pure disk rule every witness the scalar loop can find inside
    # the disk already sits in N(u): scanning only u's CSR rows yields
    # the identical blocked set at half the memory traffic of scanning
    # N(u) ∪ N(v).  Quasi-style models break that implication (the
    # blocker's link to u may be a dropped gray-zone link while its
    # link to v survives), so they scan both endpoints' rows.
    owner, wit = gather_csr_rows(np, snap.indptr, snap.indices, eu)
    if not udg.adjacency_is_disk_rule:
        owner_v, wit_v = gather_csr_rows(np, snap.indptr, snap.indices, ev)
        owner = np.concatenate([owner, owner_v])
        wit = np.concatenate([wit, wit_v])
    wx, wy = xs[wit], ys[wit]
    ux_o, uy_o = ux[owner], uy[owner]
    vx_o, vy_o = vx[owner], vy[owner]
    skip = (
        (wit == eu[owner])
        | (wit == ev[owner])
        | ((wx == ux_o) & (wy == uy_o))
        | ((wx == vx_o) & (wy == vy_o))
    )
    dxw = mx[owner] - wx
    dyw = my[owner] - wy
    inside = ~skip & (dxw * dxw + dyw * dyw < threshold[owner])
    blocked = np.bincount(owner[inside], minlength=eu.shape[0]) > 0
    survive = (threshold <= 0.0) | ~blocked
    return list(zip(eu[survive].tolist(), ev[survive].tolist()))


def gabriel_graph(
    udg: UnitDiskGraph, *, cache: Optional["ConstructionCache"] = None
) -> Graph:
    """GG(V) ∩ UDG(V): the Gabriel graph on UDG edges.

    A blocker inside the diameter disk of ``uv`` is within ``|uv|`` of
    both endpoints, hence a UDG neighbor of both; the emptiness test is
    local to 1-hop neighborhoods.  With numpy available the whole test
    runs as one ragged-array kernel over the shared SoA snapshot
    (bit-identical edge set); otherwise a shared ``cache`` (from the
    LDel pipeline) serves the neighborhoods memoized.
    """
    gg = Graph(udg.positions, name="GG")
    pos = udg.positions
    pairs = _soa_gabriel_pairs(udg)
    if pairs is not None:
        gg.add_edges_bulk(pairs)
        return gg
    if cache is not None and cache.udg is udg:
        hood = lambda u: cache.k_hop(u, 1)  # noqa: E731 - tiny dispatch shim
    else:
        hood = udg.neighbors
    for u, v in udg.edges():
        witnesses = (hood(u) | hood(v)) - {u, v}
        if gabriel_disk_empty(pos[u], pos[v], (pos[w] for w in witnesses)):
            gg.add_edge(u, v)
    return gg
