"""k-nearest-neighbor graph restricted to the unit disk graph.

The simplest degree-bounded topology and the classic connectivity
baseline (Xue & Kumar: k on the order of log n neighbors are needed
for asymptotic connectivity).  Not a spanner of any kind — included
as the "what the naive fix buys you" reference point next to the
paper's constructions.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph


def knn_graph(udg: UnitDiskGraph, k: int) -> Graph:
    """Symmetrized k-NN graph: edge ``uv`` when either chooses the other.

    Only UDG links are candidates (radio range still binds).  Ties in
    distance break by node id, so the construction is deterministic.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    graph = Graph(udg.positions, name=f"KNN{k}")
    for u in udg.nodes():
        nearest = sorted(
            udg.neighbors(u), key=lambda v: (udg.edge_length(u, v), v)
        )[:k]
        for v in nearest:
            graph.add_edge(u, v)
    return graph
