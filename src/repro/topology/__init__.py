"""Centralized topology constructions: baselines and reference builders.

Every construction here is a pure function from a
:class:`~repro.graphs.udg.UnitDiskGraph` (or point set) to a
:class:`~repro.graphs.graph.Graph`.  The distributed versions of the
paper's own structures live in :mod:`repro.protocols`; tests assert
that both produce the same graphs.
"""

from repro.topology.rng import relative_neighborhood_graph
from repro.topology.gabriel import gabriel_graph
from repro.topology.yao import yao_graph
from repro.topology.yao_sink import yao_sink_graph
from repro.topology.delaunay_udg import delaunay_graph, unit_delaunay_graph
from repro.topology.ldel import (
    LDelResult,
    local_delaunay_graph,
    planar_local_delaunay_graph,
    planarize_ldel1,
)
from repro.topology.rdg import restricted_delaunay_graph
from repro.topology.mst import euclidean_mst
from repro.topology.beta_skeleton import beta_skeleton
from repro.topology.yao_yao import yao_yao_graph
from repro.topology.greedy_spanner import greedy_spanner
from repro.topology.knn import knn_graph

__all__ = [
    "relative_neighborhood_graph",
    "gabriel_graph",
    "yao_graph",
    "yao_sink_graph",
    "delaunay_graph",
    "unit_delaunay_graph",
    "LDelResult",
    "local_delaunay_graph",
    "planar_local_delaunay_graph",
    "planarize_ldel1",
    "restricted_delaunay_graph",
    "euclidean_mst",
    "beta_skeleton",
    "yao_yao_graph",
    "greedy_spanner",
    "knn_graph",
]
