"""Yao graph (theta-graph) on the unit disk graph.

Each node partitions the plane into ``k`` equal cones and keeps the
shortest UDG edge in each cone.  The Yao graph is a length spanner
with bounded *out*-degree, but (as the paper stresses) its in-degree
is unbounded, it is not planar, and it is not a hop spanner — the
properties the hybrid backbone is designed to fix.
"""

from __future__ import annotations

import math

from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph


def yao_cone_of(dx: float, dy: float, k: int) -> int:
    """Index of the cone (0..k-1) that the direction ``(dx, dy)`` falls in."""
    angle = math.atan2(dy, dx) % (2.0 * math.pi)
    cone = int(angle * k / (2.0 * math.pi))
    return min(cone, k - 1)


def yao_edges_out(udg: UnitDiskGraph, u: int, k: int) -> list[int]:
    """Chosen outgoing Yao neighbors of ``u`` (shortest per non-empty cone)."""
    pos = udg.positions
    pu = pos[u]
    best: dict[int, tuple[float, int]] = {}
    for v in udg.neighbors(u):
        pv = pos[v]
        cone = yao_cone_of(pv[0] - pu[0], pv[1] - pu[1], k)
        d = udg.edge_length(u, v)
        # Break distance ties by node id for determinism.
        key = (d, v)
        if cone not in best or key < best[cone]:
            best[cone] = key
    return [v for _d, v in best.values()]


def yao_graph(udg: UnitDiskGraph, k: int = 6) -> Graph:
    """Undirected Yao graph YG_k on the UDG (union of directed choices).

    ``k >= 6`` gives length stretch factor ``1 / (1 - 2 sin(pi/k))``.
    """
    if k < 3:
        raise ValueError("Yao graph needs at least 3 cones")
    yao = Graph(udg.positions, name=f"Yao{k}")
    for u in udg.nodes():
        for v in yao_edges_out(udg, u, k):
            yao.add_edge(u, v)
    return yao
