"""Global Delaunay triangulation and the unit Delaunay graph UDel.

``UDel(V) = Del(V) ∩ UDG(V)`` — the Delaunay edges no longer than the
transmission radius.  Keil & Gutwin showed Del(V) is a planar length
spanner (stretch <= 4*sqrt(3)*pi/9 ≈ 2.42); Li, Calinescu & Wan showed
UDel(V) is a planar spanner of the UDG.  Neither is *locally*
constructible, which is why the paper builds LDel instead; UDel is the
yardstick the localized structures are measured against.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.primitives import Point
from repro.geometry.triangulation import delaunay
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph


def delaunay_graph(points: Sequence[Point]) -> Graph:
    """The (global) Delaunay triangulation of ``points`` as a graph."""
    tri = delaunay(points)
    return Graph(tri.points, tri.edges, name="Del")


def unit_delaunay_graph(udg: UnitDiskGraph) -> Graph:
    """UDel(V): Delaunay edges of length at most the UDG radius."""
    tri = delaunay(udg.positions)
    udel = Graph(udg.positions, name="UDel")
    for u, v in tri.edges:
        if udg.edge_length(u, v) <= udg.radius:
            udel.add_edge(u, v)
    return udel
