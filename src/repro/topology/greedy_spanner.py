"""The path-greedy t-spanner — the quality yardstick.

Althöfer et al.'s classic: scan candidate edges by increasing length;
add an edge only when the current graph's shortest path between its
endpoints exceeds ``t`` times its length.  The output is a
t-spanner *by construction* with asymptotically optimal sparseness —
but the construction is inherently **global** (it needs shortest-path
queries over the whole evolving graph), so no wireless node could run
it.  That contrast is its role here: the greedy spanner shows the best
stretch/sparseness trade-off money can buy, and the localized
structures are judged by how close they get to it.
"""

from __future__ import annotations

import heapq
import math

from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph


def greedy_spanner(udg: UnitDiskGraph, t: float) -> Graph:
    """Path-greedy ``t``-spanner of the UDG's edge set.

    Runs Dijkstra bounded by ``t * |uv|`` per candidate edge:
    O(m * (n log n + m)) worst case, fine at experiment scale.
    """
    if t < 1.0:
        raise ValueError("stretch t must be at least 1")
    spanner = Graph(udg.positions, name=f"Greedy({t:g})")
    edges = sorted(udg.edges(), key=lambda e: udg.edge_length(*e))
    for u, v in edges:
        limit = t * udg.edge_length(u, v)
        if _bounded_distance(spanner, u, v, limit) > limit:
            spanner.add_edge(u, v)
    return spanner


def _bounded_distance(graph: Graph, source: int, target: int, limit: float) -> float:
    """Shortest-path length from ``source`` to ``target``, pruned at ``limit``.

    Returns infinity when no path within ``limit`` exists — the only
    fact the greedy construction needs.
    """
    slack = limit * (1.0 + 1e-12)
    dist = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node == target:
            return d
        if d > dist.get(node, math.inf):
            continue
        for w in graph.neighbors(node):
            nd = d + graph.edge_length(node, w)
            if nd <= slack and nd < dist.get(w, math.inf):
                dist[w] = nd
                heapq.heappush(heap, (nd, w))
    return math.inf
