"""Restricted Delaunay Graph (Gao et al., MobiHoc 2001) — baseline.

Gao et al. call *any* planar graph containing ``UDel(V) = Del(V) ∩
UDG(V)`` a restricted Delaunay graph and prove such graphs are length
spanners of the UDG.  The canonical representative — and the one we
use as the comparison baseline — is ``UDel`` itself.  The reproduced
paper's critique is not about the resulting graph but about its
construction cost: Gao et al.'s distributed procedure exchanges up to
O(n^2) messages in the worst case and O(d^3) computation per node,
versus the constant per-node message bound of the CDS + LDel pipeline
(that comparison is benchmarked in
``benchmarks/bench_ablation_rdg_cost.py``).
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.topology.delaunay_udg import unit_delaunay_graph


def restricted_delaunay_graph(udg: UnitDiskGraph) -> Graph:
    """The canonical RDG: Delaunay edges no longer than the radius."""
    rdg = unit_delaunay_graph(udg)
    rdg.name = "RDG"
    return rdg


def rdg_message_cost(udg: UnitDiskGraph) -> list[int]:
    """Per-node message cost of Gao et al.'s RDG construction.

    In their protocol every node sends its full 1-hop neighbor list to
    each neighbor (then prunes non-Delaunay edges over further
    rounds); the dominant term charged to a node is one message per
    incident UDG link, so the worst-case total is the number of UDG
    links — O(n^2) — versus O(n) for the paper's pipeline.  We charge
    exactly that dominant term.
    """
    return [udg.degree(u) for u in udg.nodes()]
