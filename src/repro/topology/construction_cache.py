"""Per-UDG neighborhood/geometry cache for the construction hot path.

The localized Delaunay pipeline asks the same questions over and over:
``k_hop_neighborhood(u, k)`` is needed once per node by the candidate
generation, three times per candidate triangle by the k-localized
filter, and again per edge by the Gabriel test; a triangle's
circumcircle is needed by the k-localized filter and then again by the
planarization's crossing contest.  A :class:`ConstructionCache` scoped
to one :class:`~repro.graphs.udg.UnitDiskGraph` memoizes both so each
neighborhood and circumcircle is computed exactly once per
construction, and counts hits/misses so the serving layer and the
hotpath benchmark can report cache effectiveness.

Every entry point in :mod:`repro.topology.ldel` and
:mod:`repro.topology.gabriel` accepts an optional ``cache``; passing
the same instance across stages (as
:func:`~repro.topology.ldel.planar_local_delaunay_graph` does) shares
the work, while omitting it keeps the old call-by-call behavior.
Results are identical either way — the cache stores exact values, not
approximations — which the equivalence test suite asserts.
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.circle import Circle, circumcircle
from repro.graphs.udg import UnitDiskGraph

Triangle = tuple[int, int, int]

#: Sentinel distinguishing "not cached" from a cached ``None`` circle.
_MISSING = object()


class ConstructionCache:
    """Memoized neighborhoods and circumcircles for one UDG.

    The cache is keyed by node/triangle identity, so it is only valid
    for the graph it was created for; :meth:`for_udg` guards against
    accidental reuse across graphs.
    """

    __slots__ = ("udg", "counters", "_khop", "_circles")

    def __init__(self, udg: UnitDiskGraph) -> None:
        self.udg = udg
        self._khop: dict[tuple[int, int], frozenset[int]] = {}
        self._circles: dict[Triangle, Optional[Circle]] = {}
        self.counters: dict[str, int] = {
            "khop_hits": 0,
            "khop_misses": 0,
            "circumcircle_hits": 0,
            "circumcircle_misses": 0,
            "local_delaunay_calls": 0,
            "triangle_pairs_candidate": 0,
            "triangle_pairs_tested": 0,
            "triangle_pairs_intersecting": 0,
        }

    @classmethod
    def for_udg(
        cls, udg: UnitDiskGraph, cache: Optional["ConstructionCache"]
    ) -> "ConstructionCache":
        """``cache`` when it belongs to ``udg``, else a fresh one."""
        if cache is not None and cache.udg is udg:
            return cache
        return cls(udg)

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a named counter (created on first use)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def k_hop(self, u: int, k: int) -> frozenset[int]:
        """Memoized ``N_k(u)`` (includes ``u``), shared across stages."""
        key = (u, k)
        hood = self._khop.get(key)
        if hood is not None:
            self.counters["khop_hits"] += 1
            return hood
        self.counters["khop_misses"] += 1
        hood = frozenset(self.udg.k_hop_neighborhood(u, k))
        self._khop[key] = hood
        return hood

    def circumcircle_of(self, triangle: Triangle) -> Optional[Circle]:
        """Memoized circumcircle of a (sorted) vertex triple."""
        circle = self._circles.get(triangle, _MISSING)
        if circle is not _MISSING:
            self.counters["circumcircle_hits"] += 1
            return circle  # type: ignore[return-value]
        self.counters["circumcircle_misses"] += 1
        pos = self.udg.positions
        circle = circumcircle(pos[triangle[0]], pos[triangle[1]], pos[triangle[2]])
        self._circles[triangle] = circle
        return circle

    def snapshot(self) -> dict[str, int]:
        """Copy of the counters (JSON-ready)."""
        return dict(self.counters)
