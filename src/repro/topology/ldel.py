"""The k-localized Delaunay graph LDel^k and its planarization PLDel.

Definitions (Li, Calinescu, Wan — INFOCOM 2002; reviewed in the
reproduced paper, Section II):

* a triangle ``uvw`` with all sides at most the transmission radius is
  a **k-localized Delaunay triangle** when its circumcircle contains
  no vertex of ``N_k(u) ∪ N_k(v) ∪ N_k(w)``;
* ``LDel^k(V)`` consists of all Gabriel edges plus the edges of all
  k-localized Delaunay triangles.

``LDel^k`` is planar for ``k >= 2``; ``LDel^1`` has thickness 2 and is
made planar by Algorithm 3: whenever two 1-localized Delaunay
triangles intersect, any triangle whose circumcircle contains a vertex
of the other is dropped (Li et al. prove at least one of the two
always is).  The surviving graph, called **PLDel** here, is the planar
structure the paper applies on top of the ICDS backbone.

This module is the *centralized reference*; the message-passing
protocol (paper Algorithms 2 and 3 verbatim) lives in
:mod:`repro.protocols.ldel_protocol` and is tested to produce the same
graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.geometry.circle import circumcircle
from repro.geometry.predicates import segments_cross
from repro.geometry.primitives import Point, angle_at, dist_sq
from repro.geometry.triangulation import delaunay
from repro.graphs.graph import Graph
from repro.graphs.planarity import crossing_pairs
from repro.graphs.udg import UnitDiskGraph
from repro.topology.gabriel import gabriel_graph

Triangle = tuple[int, int, int]


@dataclass(frozen=True)
class LDelResult:
    """LDel^k construction output: the graph plus its building blocks."""

    graph: Graph
    triangles: tuple[Triangle, ...]
    gabriel_edges: frozenset[tuple[int, int]]
    k: int


def candidate_triangles(udg: UnitDiskGraph) -> set[Triangle]:
    """Triangles proposed by the per-node local Delaunay triangulations.

    A node generates exactly the triangles Algorithm 2 would have it
    *propose*: incident triangles of ``Del(N_1(u))`` with all sides at
    most the radius and an angle of at least 60 degrees at ``u``.
    Every triangle has such a vertex and a k-localized Delaunay
    triangle appears in that vertex's local triangulation (its
    circumcircle is empty of the neighborhood), so generation is
    complete.  Applying the same angle discipline as the distributed
    protocol also makes tie-breaking identical on exactly-cocircular
    inputs, where "the" local Delaunay triangulation is not unique.
    """
    r_sq = udg.radius * udg.radius
    candidates: set[Triangle] = set()
    pos = udg.positions
    min_angle = math.pi / 3.0 - 1e-12
    for u in udg.nodes():
        local = sorted(udg.k_hop_neighborhood(u, 1))
        if len(local) < 3:
            continue
        tri = delaunay([pos[i] for i in local])
        for a, b, c in tri.triangles:
            ga, gb, gc = local[a], local[b], local[c]
            if u not in (ga, gb, gc):
                continue
            if (
                dist_sq(pos[ga], pos[gb]) > r_sq
                or dist_sq(pos[gb], pos[gc]) > r_sq
                or dist_sq(pos[ga], pos[gc]) > r_sq
            ):
                continue
            others = [x for x in (ga, gb, gc) if x != u]
            try:
                angle = angle_at(pos[u], pos[others[0]], pos[others[1]])
            except ValueError:
                continue
            if angle >= min_angle:
                candidates.add(tuple(sorted((ga, gb, gc))))  # type: ignore[arg-type]
    return candidates


def is_k_localized_delaunay(
    udg: UnitDiskGraph, triangle: Triangle, k: int
) -> bool:
    """Whether ``triangle`` satisfies the k-localized Delaunay property."""
    u, v, w = triangle
    pos = udg.positions
    circle = circumcircle(pos[u], pos[v], pos[w])
    if circle is None:
        return False
    witnesses = (
        udg.k_hop_neighborhood(u, k)
        | udg.k_hop_neighborhood(v, k)
        | udg.k_hop_neighborhood(w, k)
    ) - {u, v, w}
    return not any(circle.contains(pos[x]) for x in witnesses)


def local_delaunay_graph(udg: UnitDiskGraph, k: int = 1) -> LDelResult:
    """Construct LDel^k over the unit disk graph.

    Returns the graph (Gabriel edges plus localized-Delaunay-triangle
    edges), the accepted triangles, and the Gabriel edge set.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    accepted = tuple(
        sorted(
            t for t in candidate_triangles(udg) if is_k_localized_delaunay(udg, t, k)
        )
    )
    gabriel = gabriel_graph(udg)
    graph = Graph(udg.positions, gabriel.edges(), name=f"LDel{k}")
    for u, v, w in accepted:
        graph.add_edge(u, v)
        graph.add_edge(v, w)
        graph.add_edge(u, w)
    return LDelResult(
        graph=graph,
        triangles=accepted,
        gabriel_edges=gabriel.edge_set(),
        k=k,
    )


def _triangles_intersect(pos: Sequence[Point], t1: Triangle, t2: Triangle) -> bool:
    """Whether two triangles overlap improperly (some edges cross)."""
    edges1 = [(t1[0], t1[1]), (t1[1], t1[2]), (t1[0], t1[2])]
    edges2 = [(t2[0], t2[1]), (t2[1], t2[2]), (t2[0], t2[2])]
    for a, b in edges1:
        for c, d in edges2:
            if len({a, b, c, d}) < 4:
                continue
            if segments_cross(pos[a], pos[b], pos[c], pos[d]):
                return True
    return False


def _nearby_triangle_pairs(
    pos: Sequence[Point], triangles: Sequence[Triangle], cell: float
) -> set[tuple[int, int]]:
    """Index pairs of triangles whose bounding boxes share a grid cell."""
    buckets: dict[tuple[int, int], list[int]] = {}
    for idx, (u, v, w) in enumerate(triangles):
        xs = (pos[u][0], pos[v][0], pos[w][0])
        ys = (pos[u][1], pos[v][1], pos[w][1])
        for cx in range(math.floor(min(xs) / cell), math.floor(max(xs) / cell) + 1):
            for cy in range(math.floor(min(ys) / cell), math.floor(max(ys) / cell) + 1):
                buckets.setdefault((cx, cy), []).append(idx)
    pairs: set[tuple[int, int]] = set()
    for members in buckets.values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                a, b = members[i], members[j]
                pairs.add((min(a, b), max(a, b)))
    return pairs


def resolve_degenerate_crossings(graph: Graph) -> Graph:
    """Break exactly-cocircular ties so the output is always planar.

    The paper assumes no four nodes are cocircular; when real input
    violates that (e.g. nodes on a perfect grid), two crossing
    diagonals of a cocircular quad can both pass the open-disk Gabriel
    test.  This sweep removes one edge of every surviving crossing
    deterministically — the lexicographically larger (length, ids)
    edge loses — leaving the graph unchanged on general-position
    input (the common case costs one planarity check).
    """
    while True:
        crossings = crossing_pairs(graph)
        if not crossings:
            return graph
        for e1, e2 in crossings:
            if not (graph.has_edge(*e1) and graph.has_edge(*e2)):
                continue  # already resolved via an earlier pair
            loser = max(
                (e1, e2), key=lambda e: (graph.edge_length(*e), e)
            )
            graph.remove_edge(*loser)


def planarize_ldel1(udg: UnitDiskGraph, ldel1: LDelResult) -> LDelResult:
    """Algorithm 3 (centralized): drop crossing triangles, keep PLDel.

    For every pair of intersecting 1-localized Delaunay triangles, a
    triangle whose circumcircle contains a vertex of the other is
    removed; Li et al. prove this leaves a planar graph.  Gabriel
    edges are always retained.
    """
    if ldel1.k != 1:
        raise ValueError("planarization applies to LDel^1")
    pos = udg.positions
    triangles = list(ldel1.triangles)
    circles = [circumcircle(pos[u], pos[v], pos[w]) for u, v, w in triangles]
    removed = [False] * len(triangles)

    for i, j in _nearby_triangle_pairs(pos, triangles, udg.radius):
        if not _triangles_intersect(pos, triangles[i], triangles[j]):
            continue
        ci, cj = circles[i], circles[j]
        if ci is not None and any(ci.contains(pos[x]) for x in triangles[j]):
            removed[i] = True
        if cj is not None and any(cj.contains(pos[x]) for x in triangles[i]):
            removed[j] = True

    survivors = tuple(t for t, gone in zip(triangles, removed) if not gone)
    graph = Graph(udg.positions, ldel1.gabriel_edges, name="PLDel")
    for u, v, w in survivors:
        graph.add_edge(u, v)
        graph.add_edge(v, w)
        graph.add_edge(u, w)
    resolve_degenerate_crossings(graph)
    return LDelResult(
        graph=graph,
        triangles=survivors,
        gabriel_edges=ldel1.gabriel_edges,
        k=1,
    )


def planar_local_delaunay_graph(udg: UnitDiskGraph) -> LDelResult:
    """Convenience: LDel^1 followed by Algorithm 3 planarization."""
    return planarize_ldel1(udg, local_delaunay_graph(udg, k=1))
