"""The k-localized Delaunay graph LDel^k and its planarization PLDel.

Definitions (Li, Calinescu, Wan — INFOCOM 2002; reviewed in the
reproduced paper, Section II):

* a triangle ``uvw`` with all sides at most the transmission radius is
  a **k-localized Delaunay triangle** when its circumcircle contains
  no vertex of ``N_k(u) ∪ N_k(v) ∪ N_k(w)``;
* ``LDel^k(V)`` consists of all Gabriel edges plus the edges of all
  k-localized Delaunay triangles.

``LDel^k`` is planar for ``k >= 2``; ``LDel^1`` has thickness 2 and is
made planar by Algorithm 3: whenever two 1-localized Delaunay
triangles intersect, any triangle whose circumcircle contains a vertex
of the other is dropped (Li et al. prove at least one of the two
always is).  The surviving graph, called **PLDel** here, is the planar
structure the paper applies on top of the ICDS backbone.

This module is the *centralized reference*; the message-passing
protocol (paper Algorithms 2 and 3 verbatim) lives in
:mod:`repro.protocols.ldel_protocol` and is tested to produce the same
graph.

Hot-path notes: every stage accepts an optional
:class:`~repro.topology.construction_cache.ConstructionCache` so
neighborhoods and circumcircles are computed once per construction,
and :func:`candidate_triangles` can fan the per-node local
triangulations out over the batch executor
(:mod:`repro.service.executor`) with bit-identical output — per-node
candidate generation is a pure function of the node's 1-hop
neighborhood, so the union over nodes is order-independent.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.geometry.predicates import segments_cross
from repro.geometry.primitives import Point, angle_at, dist_sq
from repro.geometry.triangulation import delaunay
from repro.graphs.graph import Graph
from repro.graphs.planarity import crossing_pairs
from repro.graphs.udg import UnitDiskGraph
from repro.topology.construction_cache import ConstructionCache
from repro.topology.gabriel import gabriel_graph

Triangle = tuple[int, int, int]

#: Below this node count the parallel fan-out costs more than it saves
#: (pool spin-up plus pickling dominates sub-second constructions).
PARALLEL_MIN_NODES = 600

#: Minimum angle at the proposing vertex (Algorithm 2's 60° rule).
_MIN_ANGLE = math.pi / 3.0 - 1e-12

#: Cosine-space form of the 60° rule for the vectorized path: the
#: angle test ``angle >= _MIN_ANGLE`` is equivalent to
#: ``cos(angle) <= cos(_MIN_ANGLE)`` (acos is decreasing).  Rows whose
#: vector-computed cosine lands within the band of the threshold are
#: re-decided by the scalar :func:`angle_at`, so hypot/division
#: rounding (~1e-15 relative, far inside the band) can never flip a
#: decision against the reference path.
_COS_MIN_ANGLE = math.cos(_MIN_ANGLE)
_ANGLE_COS_BAND = 1e-9


@dataclass(frozen=True)
class LDelResult:
    """LDel^k construction output: the graph plus its building blocks."""

    graph: Graph
    triangles: tuple[Triangle, ...]
    gabriel_edges: frozenset[tuple[int, int]]
    k: int


def _node_candidates(
    pos: Sequence[Point], r_sq: float, u: int, local: Sequence[int]
) -> list[Triangle]:
    """Triangles node ``u`` proposes from ``Del(N_1(u))``.

    Shared by the serial and parallel paths so both produce the same
    triangles by construction.  ``local`` is the sorted 1-hop
    neighborhood of ``u`` (including ``u``).
    """
    if len(local) < 3:
        return []
    tri = delaunay([pos[i] for i in local])
    iu = bisect_left(local, u)
    out: list[Triangle] = []
    for a, b, c in tri.triangles_of(iu):
        ga, gb, gc = local[a], local[b], local[c]
        if (
            dist_sq(pos[ga], pos[gb]) > r_sq
            or dist_sq(pos[gb], pos[gc]) > r_sq
            or dist_sq(pos[ga], pos[gc]) > r_sq
        ):
            continue
        others = [x for x in (ga, gb, gc) if x != u]
        try:
            angle = angle_at(pos[u], pos[others[0]], pos[others[1]])
        except ValueError:
            continue
        if angle >= _MIN_ANGLE:
            out.append(tuple(sorted((ga, gb, gc))))  # type: ignore[arg-type]
    return out


# -- vectorized construction core (SoA kernels) -------------------------------
#
# With numpy available, candidate generation, the k=1 filter and the
# Algorithm 3 planarization all run over the deployment's shared
# :class:`~repro.core.soa.SoaSnapshot`.  Every kernel replicates its
# scalar counterpart's float expressions elementwise and routes rows
# the replication cannot decide (ambiguous predicates, duplicate
# coordinates, degenerate angle arms) to the scalar code, so the
# output is bit-identical — the equivalence suite and the benchmark
# tripwires both assert edge-set equality against the reference path.

#: Queries per lockstep triangulation block; bounds the flat record
#: pool (~block x avg-degree rows) so n=1e5 deployments stay in memory.
_SOA_CHUNK = 8192


def _soa_candidate_chunk(np, snap, pos, r_sq, qs):
    """Candidate triples for one block of query nodes; (K, 3) int64."""
    from repro.core.soa import gather_csr_rows
    from repro.geometry.triangulation import delaunay_stars_batch

    xs, ys = snap.xs, snap.ys
    owner_n, vals = gather_csr_rows(np, snap.indptr, snap.indices, qs)
    nq = qs.shape[0]
    # Member list of q = sorted({q} | N(q)): merge the CSR rows with
    # one self entry per query via a single lexsort.
    owner_all = np.concatenate([owner_n, np.arange(nq)])
    value_all = np.concatenate([vals, qs])
    self_flag = np.zeros(owner_all.shape[0], dtype=bool)
    self_flag[owner_n.shape[0]:] = True
    order = np.lexsort((value_all, owner_all))
    members_flat = value_all[order]
    m = (snap.indptr[qs + 1] - snap.indptr[qs]) + 1
    indptr_q = np.zeros(nq + 1, dtype=np.int64)
    np.cumsum(m, out=indptr_q[1:])
    base = indptr_q[:-1]
    iu = np.nonzero(self_flag[order])[0] - base  # local index of q

    res = delaunay_stars_batch(xs, ys, indptr_q, members_flat)
    parts = []
    if res.owner.shape[0]:
        own = res.owner
        la, lb, lc = res.tris[:, 0], res.tris[:, 1], res.tris[:, 2]
        inc = (la == iu[own]) | (lb == iu[own]) | (lc == iu[own])
        own, la, lb, lc = own[inc], la[inc], lb[inc], lc[inc]
        ga = members_flat[base[own] + la]
        gb = members_flat[base[own] + lb]
        gc = members_flat[base[own] + lc]
        d_ab = (xs[ga] - xs[gb]) ** 2 + (ys[ga] - ys[gb]) ** 2
        d_bc = (xs[gb] - xs[gc]) ** 2 + (ys[gb] - ys[gc]) ** 2
        d_ac = (xs[ga] - xs[gc]) ** 2 + (ys[ga] - ys[gc]) ** 2
        keep = ~((d_ab > r_sq) | (d_bc > r_sq) | (d_ac > r_sq))

        # Angle at the proposing vertex, in cosine space with a band;
        # ambiguous rows re-decided by the scalar angle_at.
        u_arr = qs[own]
        o1 = np.where(ga == u_arr, gb, ga)
        o2 = np.where(gc == u_arr, gb, gc)
        axv = xs[o1] - xs[u_arr]
        ayv = ys[o1] - ys[u_arr]
        bxv = xs[o2] - xs[u_arr]
        byv = ys[o2] - ys[u_arr]
        na = np.hypot(axv, ayv)
        nb = np.hypot(bxv, byv)
        ok_arm = (na != 0.0) & (nb != 0.0)
        cosv = np.clip(
            (axv * bxv + ayv * byv) / np.where(ok_arm, na * nb, 1.0), -1.0, 1.0
        )
        accept = ok_arm & (cosv <= _COS_MIN_ANGLE - _ANGLE_COS_BAND)
        clear_reject = ok_arm & (cosv >= _COS_MIN_ANGLE + _ANGLE_COS_BAND)
        for row in np.nonzero(keep & ~(accept | clear_reject))[0]:
            try:
                angle = angle_at(
                    pos[int(u_arr[row])], pos[int(o1[row])], pos[int(o2[row])]
                )
            except ValueError:
                continue
            accept[row] = angle >= _MIN_ANGLE
        keep &= accept
        if keep.any():
            parts.append(np.stack([ga[keep], gb[keep], gc[keep]], axis=1))

    for q in res.fallback.tolist():
        u = int(qs[q])
        local = members_flat[base[q]: indptr_q[q + 1]].tolist()
        tris = _node_candidates(pos, r_sq, u, local)
        if tris:
            parts.append(np.array(tris, dtype=np.int64))
    if not parts:
        return np.zeros((0, 3), dtype=np.int64)
    return np.concatenate(parts, axis=0)


def _soa_candidate_arrays(
    udg: UnitDiskGraph,
    cache: ConstructionCache,
    node_ids: Optional[Sequence[int]] = None,
):
    """All candidate triples as a sorted-unique (K, 3) array, or ``None``.

    ``node_ids`` restricts the proposing nodes (the sharded build
    passes each tile's proposer set); default is every node.  The
    triple set equals the union of :func:`_node_candidates` over the
    same nodes — fallback queries literally run it.
    """
    from repro.core.compat import get_numpy
    from repro.core.soa import snapshot_for

    np = get_numpy()
    if np is None:
        return None
    snap = snapshot_for(udg)
    if snap is None:
        return None
    n = snap.n
    r_sq = udg.radius * udg.radius
    pos = udg.positions
    if node_ids is None:
        queries = np.arange(n, dtype=np.int64)
    else:
        queries = np.asarray(sorted(node_ids), dtype=np.int64)
    deg = snap.indptr[queries + 1] - snap.indptr[queries]
    cache.count("local_delaunay_calls", int((deg >= 2).sum()))
    eligible = queries[deg >= 2]  # m = deg + 1 >= 3

    parts = []
    for s in range(0, eligible.shape[0], _SOA_CHUNK):
        part = _soa_candidate_chunk(
            np, snap, pos, r_sq, eligible[s: s + _SOA_CHUNK]
        )
        if part.shape[0]:
            parts.append(part)
    if not parts:
        return np.zeros((0, 3), dtype=np.int64)
    allt = np.concatenate(parts, axis=0)
    if n < 2_000_000:  # key packing fits int64 up to n^3
        from repro.core.soa import sorted_unique

        key = (allt[:, 0] * n + allt[:, 1]) * n + allt[:, 2]
        ukey = sorted_unique(np, key)
        return np.stack(
            [ukey // (n * n), (ukey // n) % n, ukey % n], axis=1
        )
    return np.unique(allt, axis=0)


def _soa_filter_k1(udg: UnitDiskGraph, tris):
    """Vectorized 1-localized Delaunay filter; bool mask over ``tris``.

    Replicates :func:`is_k_localized_delaunay` for ``k=1``: the batched
    circumcircle (exact-rescued rows identical to the scalar cache's),
    witnesses ``N_1(u) | N_1(v) | N_1(w)`` minus the corners by id, and
    the same tolerance-shrunk open-disk containment.
    """
    from repro.core.compat import get_numpy
    from repro.core.soa import gather_csr_rows, snapshot_for
    from repro.geometry.circle import circumcircles_batch

    np = get_numpy()
    if np is None:
        return None
    snap = snapshot_for(udg)
    if snap is None:
        return None
    if tris.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    xs, ys = snap.xs, snap.ys
    u, v, w = tris[:, 0], tris[:, 1], tris[:, 2]
    valid, ccx, ccy, rad = circumcircles_batch(
        xs[u], ys[u], xs[v], ys[v], xs[w], ys[w]
    )
    own_parts, wit_parts = [], []
    for col in (u, v, w):
        o, vals = gather_csr_rows(np, snap.indptr, snap.indices, col)
        own_parts.append(o)
        wit_parts.append(vals)
    owner = np.concatenate(own_parts)
    wit = np.concatenate(wit_parts)
    keep = (wit != u[owner]) & (wit != v[owner]) & (wit != w[owner])
    owner, wit = owner[keep], wit[keep]
    r = rad[owner] - 1e-9
    dxw = ccx[owner] - xs[wit]
    dyw = ccy[owner] - ys[wit]
    inside = valid[owner] & (r > 0.0) & (dxw * dxw + dyw * dyw < r * r)
    blocked = np.bincount(owner[inside], minlength=tris.shape[0]) > 0
    return valid & ~blocked


def _soa_triangles_intersect(np, xs, ys, tris, pi, pj):
    """Which triangle pairs overlap improperly (vectorized 9-way test)."""
    from repro.geometry.predicates import segments_cross_batch

    edge_slots = ((0, 1), (1, 2), (0, 2))  # _triangle_edges order
    inter = np.zeros(pi.shape[0], dtype=bool)
    for i1, j1 in edge_slots:
        a, b = tris[pi, i1], tris[pi, j1]
        ax_, ay_, bx_, by_ = xs[a], ys[a], xs[b], ys[b]
        ax0 = np.minimum(ax_, bx_) - _EDGE_BBOX_SLACK
        ay0 = np.minimum(ay_, by_) - _EDGE_BBOX_SLACK
        ax1 = np.maximum(ax_, bx_) + _EDGE_BBOX_SLACK
        ay1 = np.maximum(ay_, by_) + _EDGE_BBOX_SLACK
        for i2, j2 in edge_slots:
            c, d = tris[pj, i2], tris[pj, j2]
            share = (a == c) | (a == d) | (b == c) | (b == d)
            cx_, cy_, dx_, dy_ = xs[c], ys[c], xs[d], ys[d]
            miss = (
                (ax1 < np.minimum(cx_, dx_) - _EDGE_BBOX_SLACK)
                | (np.maximum(cx_, dx_) + _EDGE_BBOX_SLACK < ax0)
                | (ay1 < np.minimum(cy_, dy_) - _EDGE_BBOX_SLACK)
                | (np.maximum(cy_, dy_) + _EDGE_BBOX_SLACK < ay0)
            )
            cand = ~share & ~miss & ~inter
            if not cand.any():
                continue
            inter |= segments_cross_batch(
                ax_, ay_, bx_, by_, cx_, cy_, dx_, dy_, mask=cand
            )
    return inter


def _soa_planarize(
    udg: UnitDiskGraph, ldel1: "LDelResult", cache: ConstructionCache
) -> Optional["LDelResult"]:
    """Vectorized Algorithm 3; ``None`` defers to the scalar path."""
    from repro.core.compat import get_numpy
    from repro.core.soa import bbox_grid_pairs, snapshot_for
    from repro.geometry.circle import circumcircles_batch, contains_batch

    np = get_numpy()
    if np is None:
        return None
    snap = snapshot_for(udg)
    if snap is None:
        return None
    triangles = list(ldel1.triangles)
    count = len(triangles)
    removed = np.zeros(count, dtype=bool)
    if count:
        xs, ys = snap.xs, snap.ys
        tris = np.array(triangles, dtype=np.int64)
        u, v, w = tris[:, 0], tris[:, 1], tris[:, 2]
        valid, ccx, ccy, rad = circumcircles_batch(
            xs[u], ys[u], xs[v], ys[v], xs[w], ys[w]
        )
        bx0 = np.minimum(np.minimum(xs[u], xs[v]), xs[w])
        by0 = np.minimum(np.minimum(ys[u], ys[v]), ys[w])
        bx1 = np.maximum(np.maximum(xs[u], xs[v]), xs[w])
        by1 = np.maximum(np.maximum(ys[u], ys[v]), ys[w])
        pi, pj = bbox_grid_pairs(np, bx0, by0, bx1, by1, udg.radius)
        cache.count("triangle_pairs_candidate", int(pi.shape[0]))
        overlap = ~(
            (bx1[pi] < bx0[pj])
            | (bx1[pj] < bx0[pi])
            | (by1[pi] < by0[pj])
            | (by1[pj] < by0[pi])
        )
        cache.count("triangle_pairs_tested", int(overlap.sum()))
        pi, pj = pi[overlap], pj[overlap]
        inter = _soa_triangles_intersect(np, xs, ys, tris, pi, pj)
        cache.count("triangle_pairs_intersecting", int(inter.sum()))
        pi, pj = pi[inter], pj[inter]
        for mine, other in ((pi, pj), (pj, pi)):
            hit = np.zeros(pi.shape[0], dtype=bool)
            for corner in range(3):
                vid = tris[other, corner]
                hit |= contains_batch(
                    ccx[mine], ccy[mine], rad[mine], xs[vid], ys[vid]
                )
            removed[mine[hit & valid[mine]]] = True
    else:
        cache.count("triangle_pairs_candidate", 0)
        cache.count("triangle_pairs_tested", 0)
        cache.count("triangle_pairs_intersecting", 0)

    survivors = tuple(
        t for t, gone in zip(triangles, removed.tolist()) if not gone
    )
    graph = Graph(udg.positions, ldel1.gabriel_edges, name="PLDel")
    graph.add_edges_bulk(
        pair
        for tu, tv, tw in survivors
        for pair in ((tu, tv), (tv, tw), (tu, tw))
    )
    resolve_degenerate_crossings(graph)
    return LDelResult(
        graph=graph,
        triangles=survivors,
        gabriel_edges=ldel1.gabriel_edges,
        k=1,
    )


def _candidate_chunk(
    payload: tuple[Sequence[Point], float, list[tuple[int, list[int]]]]
) -> list[Triangle]:
    """Process-pool worker: candidates for a chunk of nodes.

    Module-level and addressed purely by value so it pickles cleanly.
    """
    pos, r_sq, items = payload
    out: list[Triangle] = []
    for u, local in items:
        out.extend(_node_candidates(pos, r_sq, u, local))
    return out


def candidate_triangles(
    udg: UnitDiskGraph,
    *,
    cache: Optional[ConstructionCache] = None,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    executor_mode: str = "process",
) -> set[Triangle]:
    """Triangles proposed by the per-node local Delaunay triangulations.

    A node generates exactly the triangles Algorithm 2 would have it
    *propose*: incident triangles of ``Del(N_1(u))`` with all sides at
    most the radius and an angle of at least 60 degrees at ``u``.
    Every triangle has such a vertex and a k-localized Delaunay
    triangle appears in that vertex's local triangulation (its
    circumcircle is empty of the neighborhood), so generation is
    complete.  Applying the same angle discipline as the distributed
    protocol also makes tie-breaking identical on exactly-cocircular
    inputs, where "the" local Delaunay triangulation is not unique.

    With numpy available the vectorized SoA kernel handles everything
    in-process (one lockstep triangulation beats the fan-out), unless
    ``parallel=True`` explicitly forces the executor path — which, like
    the serial scalar loop (numpy masked out), remains the
    bit-identical reference the SoA kernel is tested against.
    ``parallel=None`` (auto) falls back to the executor for large
    deployments only when numpy is unavailable.
    """
    cache = ConstructionCache.for_udg(udg, cache)
    r_sq = udg.radius * udg.radius
    pos = udg.positions
    if parallel is not True:
        arr = _soa_candidate_arrays(udg, cache)
        if arr is not None:
            return set(map(tuple, arr.tolist()))
    nodes = [(u, sorted(cache.k_hop(u, 1))) for u in udg.nodes()]
    cache.count("local_delaunay_calls", sum(1 for _, local in nodes if len(local) >= 3))

    if parallel or (parallel is None and len(nodes) >= PARALLEL_MIN_NODES):
        chunk_results = _parallel_candidates(pos, r_sq, nodes, max_workers, executor_mode)
        if chunk_results is not None:
            cache.count("parallel_chunks", len(chunk_results))
            candidates: set[Triangle] = set()
            for chunk in chunk_results:
                candidates.update(chunk)
            return candidates

    candidates = set()
    for u, local in nodes:
        candidates.update(_node_candidates(pos, r_sq, u, local))
    return candidates


def _parallel_candidates(
    pos: Sequence[Point],
    r_sq: float,
    nodes: list[tuple[int, list[int]]],
    max_workers: Optional[int],
    executor_mode: str,
) -> Optional[list[list[Triangle]]]:
    """Fan node chunks over the executor; ``None`` means "run serially".

    Imported lazily so the topology layer only touches the serving
    layer when parallelism is actually requested.
    """
    from repro.service.executor import default_workers, run_batch

    workers = max_workers or default_workers()
    if workers < 2:
        return None
    chunk_size = max(1, math.ceil(len(nodes) / (workers * 4)))
    payloads = [
        (pos, r_sq, nodes[i : i + chunk_size])
        for i in range(0, len(nodes), chunk_size)
    ]
    batch = run_batch(
        payloads, _candidate_chunk, mode=executor_mode, max_workers=workers
    )
    if batch.failed:
        # A broken pool or pickling failure: the serial path is always
        # correct, so degrade rather than surface executor internals.
        return None
    return batch.values()


def is_k_localized_delaunay(
    udg: UnitDiskGraph,
    triangle: Triangle,
    k: int,
    cache: Optional[ConstructionCache] = None,
) -> bool:
    """Whether ``triangle`` satisfies the k-localized Delaunay property."""
    cache = ConstructionCache.for_udg(udg, cache)
    u, v, w = triangle
    pos = udg.positions
    circle = cache.circumcircle_of(triangle)
    if circle is None:
        return False
    witnesses = (cache.k_hop(u, k) | cache.k_hop(v, k) | cache.k_hop(w, k)) - {u, v, w}
    contains = circle.contains
    return not any(contains(pos[x]) for x in witnesses)


def local_delaunay_graph(
    udg: UnitDiskGraph,
    k: int = 1,
    *,
    cache: Optional[ConstructionCache] = None,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
) -> LDelResult:
    """Construct LDel^k over the unit disk graph.

    Returns the graph (Gabriel edges plus localized-Delaunay-triangle
    edges), the accepted triangles, and the Gabriel edge set.  Pass a
    shared ``cache`` to reuse neighborhoods/circumcircles across
    stages, and ``parallel`` to control the candidate fan-out (see
    :func:`candidate_triangles`).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    cache = ConstructionCache.for_udg(udg, cache)
    accepted: Optional[tuple[Triangle, ...]] = None
    if parallel is not True and k == 1:
        arr = _soa_candidate_arrays(udg, cache)
        if arr is not None:
            mask = _soa_filter_k1(udg, arr)
            if mask is not None:
                # Unique-key rows come out lexicographically sorted, so
                # the masked rows are already the sorted accepted list.
                accepted = tuple(map(tuple, arr[mask].tolist()))
    if accepted is None:
        candidates = candidate_triangles(
            udg, cache=cache, parallel=parallel, max_workers=max_workers
        )
        accepted = tuple(
            sorted(t for t in candidates if is_k_localized_delaunay(udg, t, k, cache))
        )
    gabriel = gabriel_graph(udg, cache=cache)
    graph = Graph(udg.positions, gabriel.edges(), name=f"LDel{k}")
    graph.add_edges_bulk(
        pair for u, v, w in accepted for pair in ((u, v), (v, w), (u, w))
    )
    return LDelResult(
        graph=graph,
        triangles=accepted,
        gabriel_edges=gabriel.edge_set(),
        k=k,
    )


#: Absolute slack on per-edge bounding boxes, matching the 1e-12
#: tolerance of :func:`repro.geometry.predicates.on_segment` so the
#: box rejection can never contradict ``segments_cross`` (a proper
#: crossing implies exactly-overlapping boxes; the collinear-touch
#: branch implies overlap within the ``on_segment`` slack).
_EDGE_BBOX_SLACK = 1e-12


def _triangle_edges(
    pos: Sequence[Point], tri: Triangle
) -> tuple[tuple[int, int, Point, Point, float, float, float, float], ...]:
    """Edge descriptors for the pairwise-intersection test.

    Each entry is ``(a, b, pa, pb, x0, y0, x1, y1)``: endpoint indices,
    endpoint points, and the slack-inflated edge bounding box.
    """
    u, v, w = tri
    pu, pv, pw = pos[u], pos[v], pos[w]
    out = []
    for a, b, pa, pb in ((u, v, pu, pv), (v, w, pv, pw), (u, w, pu, pw)):
        ax, ay = pa
        bx, by = pb
        out.append(
            (
                a,
                b,
                pa,
                pb,
                (ax if ax < bx else bx) - _EDGE_BBOX_SLACK,
                (ay if ay < by else by) - _EDGE_BBOX_SLACK,
                (ax if ax > bx else bx) + _EDGE_BBOX_SLACK,
                (ay if ay > by else by) + _EDGE_BBOX_SLACK,
            )
        )
    return tuple(out)


def _triangles_intersect(
    edges1: Sequence[tuple[int, int, Point, Point, float, float, float, float]],
    edges2: Sequence[tuple[int, int, Point, Point, float, float, float, float]],
) -> bool:
    """Whether two triangles overlap improperly (some edges cross).

    Takes precomputed :func:`_triangle_edges` descriptors; edge pairs
    sharing a vertex index or with disjoint (slack-inflated) bounding
    boxes are rejected before the exact segment test runs.
    """
    for a, b, pa, pb, ax0, ay0, ax1, ay1 in edges1:
        for c, d, pc, pd, bx0, by0, bx1, by1 in edges2:
            if a == c or a == d or b == c or b == d:
                continue
            if ax1 < bx0 or bx1 < ax0 or ay1 < by0 or by1 < ay0:
                continue
            if segments_cross(pa, pb, pc, pd):
                return True
    return False


def _nearby_triangle_pairs(
    pos: Sequence[Point], triangles: Sequence[Triangle], cell: float
) -> set[tuple[int, int]]:
    """Index pairs of triangles whose bounding boxes share a grid cell."""
    buckets: dict[tuple[int, int], list[int]] = {}
    for idx, (u, v, w) in enumerate(triangles):
        xs = (pos[u][0], pos[v][0], pos[w][0])
        ys = (pos[u][1], pos[v][1], pos[w][1])
        for cx in range(math.floor(min(xs) / cell), math.floor(max(xs) / cell) + 1):
            for cy in range(math.floor(min(ys) / cell), math.floor(max(ys) / cell) + 1):
                buckets.setdefault((cx, cy), []).append(idx)
    pairs: set[tuple[int, int]] = set()
    for members in buckets.values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                a, b = members[i], members[j]
                pairs.add((min(a, b), max(a, b)))
    return pairs


def resolve_degenerate_crossings(graph: Graph) -> Graph:
    """Break exactly-cocircular ties so the output is always planar.

    The paper assumes no four nodes are cocircular; when real input
    violates that (e.g. nodes on a perfect grid), two crossing
    diagonals of a cocircular quad can both pass the open-disk Gabriel
    test.  This sweep removes one edge of every surviving crossing
    deterministically — the lexicographically larger (length, ids)
    edge loses — leaving the graph unchanged on general-position
    input.

    One scan suffices: removing an edge never *creates* a crossing, so
    every crossing pair among the surviving edges was already in the
    initial list — and any pair whose two edges both survive to the
    end was processed with both edges present, which would have removed
    one of them.  The previous implementation re-scanned the whole
    graph after each sweep; the incremental argument makes that second
    scan provably empty, so it is gone.

    Pairs are processed in sorted order so the outcome is a function of
    the edge *set* alone, not of set-iteration order.  When crossings
    chain (edge B crosses both A and C), which edges survive depends on
    processing order; sorting pins it down, which is what lets the
    sharded construction stitch tiles into a graph bit-identical to the
    serial pipeline's.
    """
    pairs = sorted(
        (e1, e2) if e1 <= e2 else (e2, e1) for e1, e2 in crossing_pairs(graph)
    )
    for e1, e2 in pairs:
        if not (graph.has_edge(*e1) and graph.has_edge(*e2)):
            continue  # already resolved via an earlier pair
        loser = max((e1, e2), key=lambda e: (graph.edge_length(*e), e))
        graph.remove_edge(*loser)
    return graph


def planarize_ldel1(
    udg: UnitDiskGraph,
    ldel1: LDelResult,
    *,
    cache: Optional[ConstructionCache] = None,
) -> LDelResult:
    """Algorithm 3 (centralized): drop crossing triangles, keep PLDel.

    For every pair of intersecting 1-localized Delaunay triangles, a
    triangle whose circumcircle contains a vertex of the other is
    removed; Li et al. prove this leaves a planar graph.  Gabriel
    edges are always retained.

    Candidate pairs come from a uniform grid over triangle bounding
    boxes; a cheap bounding-box overlap test then rejects most of them
    before the nine-way segment-crossing test runs.  Circumcircles are
    served from the shared ``cache`` (the k-localized filter already
    computed every one of them).
    """
    if ldel1.k != 1:
        raise ValueError("planarization applies to LDel^1")
    cache = ConstructionCache.for_udg(udg, cache)
    soa = _soa_planarize(udg, ldel1, cache)
    if soa is not None:
        return soa
    pos = udg.positions
    triangles = list(ldel1.triangles)
    circles = [cache.circumcircle_of(t) for t in triangles]
    removed = [False] * len(triangles)
    boxes: list[tuple[float, float, float, float]] = []
    for u, v, w in triangles:
        (x1, y1), (x2, y2), (x3, y3) = pos[u], pos[v], pos[w]
        boxes.append(
            (min(x1, x2, x3), min(y1, y2, y3), max(x1, x2, x3), max(y1, y2, y3))
        )
    edge_data = [_triangle_edges(pos, t) for t in triangles]

    pairs = _nearby_triangle_pairs(pos, triangles, udg.radius)
    tested = intersecting = 0
    for i, j in pairs:
        bi, bj = boxes[i], boxes[j]
        if bi[2] < bj[0] or bj[2] < bi[0] or bi[3] < bj[1] or bj[3] < bi[1]:
            continue  # disjoint bounding boxes cannot intersect
        tested += 1
        if not _triangles_intersect(edge_data[i], edge_data[j]):
            continue
        intersecting += 1
        ci, cj = circles[i], circles[j]
        if ci is not None and any(ci.contains(pos[x]) for x in triangles[j]):
            removed[i] = True
        if cj is not None and any(cj.contains(pos[x]) for x in triangles[i]):
            removed[j] = True
    cache.count("triangle_pairs_candidate", len(pairs))
    cache.count("triangle_pairs_tested", tested)
    cache.count("triangle_pairs_intersecting", intersecting)

    survivors = tuple(t for t, gone in zip(triangles, removed) if not gone)
    graph = Graph(udg.positions, ldel1.gabriel_edges, name="PLDel")
    for u, v, w in survivors:
        graph.add_edge(u, v)
        graph.add_edge(v, w)
        graph.add_edge(u, w)
    resolve_degenerate_crossings(graph)
    return LDelResult(
        graph=graph,
        triangles=survivors,
        gabriel_edges=ldel1.gabriel_edges,
        k=1,
    )


def planar_local_delaunay_graph(
    udg: UnitDiskGraph,
    *,
    cache: Optional[ConstructionCache] = None,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
) -> LDelResult:
    """Convenience: LDel^1 followed by Algorithm 3 planarization.

    One :class:`ConstructionCache` is shared across both stages so the
    planarization's circumcircle lookups are all hits.
    """
    cache = ConstructionCache.for_udg(udg, cache)
    ldel1 = local_delaunay_graph(
        udg, k=1, cache=cache, parallel=parallel, max_workers=max_workers
    )
    return planarize_ldel1(udg, ldel1, cache=cache)
