"""Planarity of *embedded* graphs: do any two edges properly cross?

The paper's planarity claim is geometric — LDel(ICDS) drawn with
straight-line edges at the node positions has no two crossing edges —
so we test exactly that, not abstract (Kuratowski) planarity.  A
uniform grid over edge bounding boxes keeps the test near-linear for
the sparse graphs this library produces.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.geometry.predicates import segments_cross
from repro.graphs.graph import Graph


def _candidate_pairs(graph: Graph) -> Iterator[tuple[tuple[int, int], tuple[int, int]]]:
    """Edge pairs whose bounding boxes share a grid cell."""
    edges = list(graph.edges())
    if not edges:
        return
    avg_len = max(
        sum(graph.edge_length(u, v) for u, v in edges) / len(edges), 1e-9
    )
    cell = avg_len
    buckets: dict[tuple[int, int], list[int]] = {}
    for idx, (u, v) in enumerate(edges):
        pu, pv = graph.positions[u], graph.positions[v]
        x_lo = math.floor(min(pu[0], pv[0]) / cell)
        x_hi = math.floor(max(pu[0], pv[0]) / cell)
        y_lo = math.floor(min(pu[1], pv[1]) / cell)
        y_hi = math.floor(max(pu[1], pv[1]) / cell)
        for cx in range(x_lo, x_hi + 1):
            for cy in range(y_lo, y_hi + 1):
                buckets.setdefault((cx, cy), []).append(idx)
    reported: set[tuple[int, int]] = set()
    for members in buckets.values():
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                i, j = members[a], members[b]
                key = (min(i, j), max(i, j))
                if key in reported:
                    continue
                reported.add(key)
                yield edges[i], edges[j]


def _vector_crossing_pairs(
    graph: Graph,
) -> "list[tuple[tuple[int, int], tuple[int, int]]] | None":
    """Vectorized crossing enumeration; ``None`` when numpy is masked.

    The grid cell size only controls how many candidate pairs the
    exact test sees, never which pairs cross (two crossing edges share
    the cell containing their intersection point at any cell size), so
    this path is free to bin with array arithmetic while the scalar
    path keeps its incremental average — the crossing *set* is
    identical either way, which is all the deterministic resolution
    sweep consumes.
    """
    from repro.core.compat import get_numpy
    from repro.core.soa import bbox_grid_pairs
    from repro.geometry.predicates import segments_cross_batch

    np = get_numpy()
    if np is None:
        return None
    edges = sorted(graph.edge_set())
    if len(edges) < 2:
        return []
    pos = graph.positions
    n = len(pos)
    xs = np.fromiter((p[0] for p in pos), dtype=np.float64, count=n)
    ys = np.fromiter((p[1] for p in pos), dtype=np.float64, count=n)
    arr = np.array(edges, dtype=np.int64)
    eu, ev = arr[:, 0], arr[:, 1]
    ux, uy, vx, vy = xs[eu], ys[eu], xs[ev], ys[ev]
    lengths = np.hypot(ux - vx, uy - vy)
    cell = max(float(lengths.sum()) / len(edges), 1e-9)
    pi, pj = bbox_grid_pairs(
        np,
        np.minimum(ux, vx), np.minimum(uy, vy),
        np.maximum(ux, vx), np.maximum(uy, vy),
        cell,
    )
    share = (
        (eu[pi] == eu[pj])
        | (eu[pi] == ev[pj])
        | (ev[pi] == eu[pj])
        | (ev[pi] == ev[pj])
    )
    pi, pj = pi[~share], pj[~share]
    cross = segments_cross_batch(
        ux[pi], uy[pi], vx[pi], vy[pi], ux[pj], uy[pj], vx[pj], vy[pj]
    )
    return [
        (edges[i], edges[j])
        for i, j in zip(pi[cross].tolist(), pj[cross].tolist())
    ]


def crossing_pairs(graph: Graph) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """All pairs of edges that properly cross in the embedding."""
    fast = _vector_crossing_pairs(graph)
    if fast is not None:
        return fast
    crossings: list[tuple[tuple[int, int], tuple[int, int]]] = []
    pos = graph.positions
    for (u1, v1), (u2, v2) in _candidate_pairs(graph):
        if len({u1, v1, u2, v2}) < 4:
            continue  # edges sharing an endpoint never *cross*
        if segments_cross(pos[u1], pos[v1], pos[u2], pos[v2]):
            crossings.append(((u1, v1), (u2, v2)))
    return crossings


def is_planar_embedding(graph: Graph) -> bool:
    """Whether the straight-line embedding of ``graph`` is crossing-free."""
    fast = _vector_crossing_pairs(graph)
    if fast is not None:
        return not fast
    pos = graph.positions
    for (u1, v1), (u2, v2) in _candidate_pairs(graph):
        if len({u1, v1, u2, v2}) < 4:
            continue
        if segments_cross(pos[u1], pos[v1], pos[u2], pos[v2]):
            return False
    return True
