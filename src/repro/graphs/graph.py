"""A lightweight undirected graph embedded in the plane.

Every topology in this library (UDG, RNG, Gabriel, CDS, ICDS, the
localized Delaunay backbones, ...) is a :class:`Graph`: integer node
ids, a position per node, and an undirected edge set kept both as a set
of sorted pairs and as adjacency lists.  The class is deliberately
small — analysis lives in :mod:`repro.graphs.paths`,
:mod:`repro.graphs.planarity` and :mod:`repro.core.metrics`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.geometry.primitives import Point, dist


class Graph:
    """Undirected graph over nodes ``0..n-1`` with planar positions."""

    def __init__(
        self,
        positions: Sequence[Point],
        edges: Iterable[tuple[int, int]] = (),
        *,
        name: str = "graph",
    ) -> None:
        self.positions: list[Point] = [Point(p[0], p[1]) for p in positions]
        self.name = name
        self._adj: list[set[int]] = [set() for _ in self.positions]
        self._edges: set[tuple[int, int]] = set()
        self.add_edges_bulk(edges)

    # -- construction -------------------------------------------------

    def add_edge(self, u: int, v: int) -> None:
        """Add undirected edge ``uv``.  Self-loops are rejected."""
        if u == v:
            raise ValueError(f"self-loop at node {u}")
        if not (0 <= u < len(self.positions) and 0 <= v < len(self.positions)):
            raise IndexError(f"edge ({u}, {v}) references a missing node")
        key = (u, v) if u < v else (v, u)
        if key in self._edges:
            return
        self._edges.add(key)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def add_edges_bulk(self, edges: Iterable[tuple[int, int]]) -> None:
        """Add many edges at once; same validation as :meth:`add_edge`.

        Normalizes, deduplicates against the existing edge set, then
        updates adjacency in a single pass — the per-edge method-call
        and membership-test overhead of repeated :meth:`add_edge` calls
        dominates bulk construction of large topologies.
        """
        fresh = {(u, v) if u < v else (v, u) for u, v in edges}
        fresh -= self._edges
        if not fresh:
            return
        n = len(self.positions)
        adj = self._adj
        for u, v in fresh:
            if u == v:
                raise ValueError(f"self-loop at node {u}")
            if not (0 <= u and v < n):
                raise IndexError(f"edge ({u}, {v}) references a missing node")
            adj[u].add(v)
            adj[v].add(u)
        self._edges |= fresh

    def remove_edge(self, u: int, v: int) -> None:
        """Remove undirected edge ``uv`` if present."""
        key = (u, v) if u < v else (v, u)
        if key in self._edges:
            self._edges.discard(key)
            self._adj[u].discard(v)
            self._adj[v].discard(u)

    def copy(self, *, name: str | None = None) -> "Graph":
        """Deep copy (positions are shared immutable points)."""
        return Graph(self.positions, self._edges, name=name or self.name)

    # -- queries -------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.positions)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def nodes(self) -> range:
        """Iterable of node ids ``0..n-1``."""
        return range(len(self.positions))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterator over undirected edges as sorted ``(u, v)`` pairs."""
        return iter(self._edges)

    def edge_set(self) -> frozenset[tuple[int, int]]:
        """Immutable snapshot of the edge set."""
        return frozenset(self._edges)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether undirected edge ``uv`` is present."""
        key = (u, v) if u < v else (v, u)
        return key in self._edges

    def neighbors(self, u: int) -> frozenset[int]:
        """The adjacency set of ``u`` (immutable)."""
        return frozenset(self._adj[u])

    def degree(self, u: int) -> int:
        """Number of edges incident on ``u``."""
        return len(self._adj[u])

    def degrees(self) -> list[int]:
        """Degree of every node, indexed by node id."""
        return [len(adj) for adj in self._adj]

    def edge_length(self, u: int, v: int) -> float:
        """Euclidean length of the edge (or would-be edge) ``uv``."""
        return dist(self.positions[u], self.positions[v])

    def total_edge_length(self) -> float:
        """Sum of Euclidean lengths over all edges."""
        return sum(self.edge_length(u, v) for u, v in self._edges)

    def is_subgraph_of(self, other: "Graph") -> bool:
        """Whether this graph's edges are a subset of ``other``'s.

        Both graphs must be over the same node set for the comparison
        to be meaningful; positions are not compared.
        """
        return self._edges <= other._edges

    def subgraph(self, keep: Iterable[int], *, name: str | None = None) -> tuple["Graph", dict[int, int]]:
        """Induced subgraph on ``keep``; returns (graph, old->new id map)."""
        kept = sorted(set(keep))
        remap = {old: new for new, old in enumerate(kept)}
        sub = Graph(
            [self.positions[old] for old in kept],
            name=name or f"{self.name}[sub]",
        )
        for u, v in self._edges:
            if u in remap and v in remap:
                sub.add_edge(remap[u], remap[v])
        return sub, remap

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(name={self.name!r}, nodes={self.node_count}, "
            f"edges={self.edge_count})"
        )
