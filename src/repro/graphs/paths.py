"""Shortest paths, connectivity, and single-source searches.

The stretch-factor experiments need all-pairs shortest hop counts (BFS)
and shortest Euclidean lengths (Dijkstra) on graphs of a few hundred
nodes; plain Python with ``heapq`` is comfortably fast at that scale
and keeps the library dependency-light.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.graphs.graph import Graph


@dataclass(frozen=True)
class PathResult:
    """A path with its hop count and Euclidean length."""

    nodes: tuple[int, ...]
    hops: int
    length: float

    @property
    def found(self) -> bool:
        return bool(self.nodes)


_NO_PATH = PathResult(nodes=(), hops=-1, length=math.inf)


def bfs_hops(graph: Graph, source: int) -> list[int]:
    """Hop distance from ``source`` to every node (-1 if unreachable)."""
    dist = [-1] * graph.node_count
    dist[source] = 0
    frontier = [source]
    while frontier:
        nxt: list[int] = []
        for u in frontier:
            du = dist[u]
            for v in graph.neighbors(u):
                if dist[v] < 0:
                    dist[v] = du + 1
                    nxt.append(v)
        frontier = nxt
    return dist


def dijkstra_lengths(
    graph: Graph,
    source: int,
    weight: Optional[Callable[[int, int], float]] = None,
) -> list[float]:
    """Weighted distance from ``source`` to every node (inf if unreachable).

    ``weight`` defaults to Euclidean edge length; pass e.g.
    ``lambda u, v: graph.edge_length(u, v) ** 2`` for the power metric.
    """
    if weight is None:
        weight = graph.edge_length
    dist = [math.inf] * graph.node_count
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v in graph.neighbors(u):
            nd = d + weight(u, v)
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def breadth_first_path(graph: Graph, source: int, target: int) -> PathResult:
    """Minimum-hop path from ``source`` to ``target``."""
    if source == target:
        return PathResult(nodes=(source,), hops=0, length=0.0)
    parent: dict[int, int] = {source: source}
    frontier = [source]
    while frontier and target not in parent:
        nxt: list[int] = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in parent:
                    parent[v] = u
                    nxt.append(v)
        frontier = nxt
    if target not in parent:
        return _NO_PATH
    return _trace(graph, parent, source, target)


def shortest_path(graph: Graph, source: int, target: int) -> PathResult:
    """Minimum Euclidean-length path from ``source`` to ``target``."""
    if source == target:
        return PathResult(nodes=(source,), hops=0, length=0.0)
    dist = [math.inf] * graph.node_count
    dist[source] = 0.0
    parent: dict[int, int] = {source: source}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u == target:
            break
        if d > dist[u]:
            continue
        for v in graph.neighbors(u):
            nd = d + graph.edge_length(u, v)
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    if target not in parent:
        return _NO_PATH
    return _trace(graph, parent, source, target)


def _trace(graph: Graph, parent: dict[int, int], source: int, target: int) -> PathResult:
    nodes = [target]
    while nodes[-1] != source:
        nodes.append(parent[nodes[-1]])
    nodes.reverse()
    length = sum(graph.edge_length(a, b) for a, b in zip(nodes, nodes[1:]))
    return PathResult(nodes=tuple(nodes), hops=len(nodes) - 1, length=length)


def connected_components(graph: Graph) -> list[set[int]]:
    """Connected components as sets of node ids."""
    seen: set[int] = set()
    components: list[set[int]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        comp = {start}
        frontier = [start]
        while frontier:
            u = frontier.pop()
            for v in graph.neighbors(u):
                if v not in comp:
                    comp.add(v)
                    frontier.append(v)
        seen |= comp
        components.append(comp)
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (vacuously true when empty)."""
    if graph.node_count == 0:
        return True
    return len(connected_components(graph)) == 1


def hop_diameter(graph: Graph) -> int:
    """Largest hop distance between any connected pair (0 when edgeless).

    Computed per component; disconnected pairs do not count (the
    diameter of a disconnected graph is conventionally infinite, but
    the experiments always want the intra-component figure).
    """
    worst = 0
    for source in graph.nodes():
        distances = bfs_hops(graph, source)
        reachable = [d for d in distances if d > 0]
        if reachable:
            worst = max(worst, max(reachable))
    return worst


def hop_eccentricity(graph: Graph, node: int) -> int:
    """Largest hop distance from ``node`` to anything reachable."""
    distances = bfs_hops(graph, node)
    reachable = [d for d in distances if d > 0]
    return max(reachable) if reachable else 0
