"""Cut vertices, bridges, and failure robustness.

The paper keeps *multiple* connectors per dominator pair and argues
"this increases the robustness of the backbone."  This module provides
the machinery to quantify that: articulation points and bridges via
Tarjan's low-link DFS, and a failure-robustness summary (how many
single-node failures disconnect the structure, and what survives
removing a set of nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.graphs.graph import Graph
from repro.graphs.paths import connected_components


def articulation_points(graph: Graph) -> frozenset[int]:
    """Nodes whose removal increases the number of components.

    Iterative Tarjan DFS (recursion-free: deployments can be chains
    hundreds of nodes long).
    """
    n = graph.node_count
    disc = [-1] * n
    low = [0] * n
    parent = [-1] * n
    points: set[int] = set()
    timer = 0

    for root in range(n):
        if disc[root] != -1:
            continue
        stack: list[tuple[int, Iterable[int]]] = [(root, iter(sorted(graph.neighbors(root))))]
        disc[root] = low[root] = timer
        timer += 1
        root_children = 0
        while stack:
            node, it = stack[-1]
            advanced = False
            for nbr in it:
                if disc[nbr] == -1:
                    parent[nbr] = node
                    disc[nbr] = low[nbr] = timer
                    timer += 1
                    if node == root:
                        root_children += 1
                    stack.append((nbr, iter(sorted(graph.neighbors(nbr)))))
                    advanced = True
                    break
                elif nbr != parent[node]:
                    low[node] = min(low[node], disc[nbr])
            if not advanced:
                stack.pop()
                if stack:
                    p = stack[-1][0]
                    low[p] = min(low[p], low[node])
                    if p != root and low[node] >= disc[p]:
                        points.add(p)
        if root_children > 1:
            points.add(root)
    return frozenset(points)


def bridges(graph: Graph) -> frozenset[tuple[int, int]]:
    """Edges whose removal increases the number of components."""
    n = graph.node_count
    disc = [-1] * n
    low = [0] * n
    parent = [-1] * n
    out: set[tuple[int, int]] = set()
    timer = 0

    for root in range(n):
        if disc[root] != -1:
            continue
        stack: list[tuple[int, Iterable[int]]] = [(root, iter(sorted(graph.neighbors(root))))]
        disc[root] = low[root] = timer
        timer += 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for nbr in it:
                if disc[nbr] == -1:
                    parent[nbr] = node
                    disc[nbr] = low[nbr] = timer
                    timer += 1
                    stack.append((nbr, iter(sorted(graph.neighbors(nbr)))))
                    advanced = True
                    break
                elif nbr != parent[node]:
                    low[node] = min(low[node], disc[nbr])
            if not advanced:
                stack.pop()
                if stack:
                    p = stack[-1][0]
                    low[p] = min(low[p], low[node])
                    if low[node] > disc[p]:
                        out.add((min(p, node), max(p, node)))
    return frozenset(out)


@dataclass(frozen=True)
class RobustnessReport:
    """Single-failure robustness of a structure."""

    node_count: int
    component_count: int
    articulation_points: frozenset[int]
    bridges: frozenset[tuple[int, int]]

    @property
    def cut_fraction(self) -> float:
        """Fraction of nodes whose single failure splits a component."""
        if self.node_count == 0:
            return 0.0
        return len(self.articulation_points) / self.node_count

    @property
    def biconnected(self) -> bool:
        """No single node failure disconnects anything."""
        return not self.articulation_points


def robustness(graph: Graph, *, nodes: Iterable[int] | None = None) -> RobustnessReport:
    """Single-failure robustness of ``graph``.

    ``nodes`` restricts the analysis to the induced subgraph on those
    nodes (e.g. only the backbone members), since isolated dominatees
    would otherwise drown the statistics.
    """
    if nodes is not None:
        sub, _ = graph.subgraph(nodes)
        graph = sub
    comps = [c for c in connected_components(graph) if len(c) > 1]
    return RobustnessReport(
        node_count=graph.node_count,
        component_count=len(comps),
        articulation_points=articulation_points(graph),
        bridges=bridges(graph),
    )


def survives_failures(graph: Graph, failed: Iterable[int]) -> Graph:
    """The structure after the ``failed`` nodes crash.

    Keeps the full node set (failed nodes become isolated), so node
    ids stay stable for routing experiments.
    """
    failed_set = set(failed)
    survivor = Graph(graph.positions, name=f"{graph.name}-fail")
    for u, v in graph.edges():
        if u not in failed_set and v not in failed_set:
            survivor.add_edge(u, v)
    return survivor
