"""Unit disk graphs with a uniform-grid spatial index.

The paper's network model: nodes with identical transmission radius
``r``; an undirected link exists exactly when the Euclidean distance is
at most ``r``.  Construction uses a bucket grid with cell side ``r`` so
each node only tests the 3x3 surrounding cells — expected O(n) for the
uniform deployments used in the experiments instead of the naive
O(n^2).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from repro.geometry.primitives import Point, dist_sq
from repro.graphs.graph import Graph


class GridIndex:
    """Uniform bucket grid for fixed-radius neighbor queries."""

    def __init__(self, points: Sequence[Point], cell_size: float) -> None:
        if cell_size <= 0.0:
            raise ValueError("cell_size must be positive")
        self.cell_size = cell_size
        self.points = list(points)
        self._cells: dict[tuple[int, int], list[int]] = {}
        for i, p in enumerate(self.points):
            self._cells.setdefault(self._cell_of(p), []).append(i)

    def _cell_of(self, p: Point) -> tuple[int, int]:
        return (math.floor(p[0] / self.cell_size), math.floor(p[1] / self.cell_size))

    def candidates_near(self, p: Point, radius: float) -> Iterator[int]:
        """Indices of points whose cell is within ``radius`` of ``p``'s.

        A superset of the true within-``radius`` set; callers must
        filter by exact distance.
        """
        reach = max(1, math.ceil(radius / self.cell_size))
        # When the query radius spans more cells than there are points
        # (e.g. radius >> cell_size), scanning the cell window would be
        # O(reach^2) mostly-empty lookups; a flat scan is the superset
        # too and never slower than the caller's distance filter.
        if (2 * reach + 1) ** 2 > len(self.points):
            yield from range(len(self.points))
            return
        cx, cy = self._cell_of(p)
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                yield from self._cells.get((cx + dx, cy + dy), ())

    def within(self, p: Point, radius: float) -> list[int]:
        """Indices of points at distance <= ``radius`` from ``p``."""
        r_sq = radius * radius
        px, py = p[0], p[1]
        points = self.points
        out: list[int] = []
        reach = max(1, math.ceil(radius / self.cell_size))
        if (2 * reach + 1) ** 2 > len(points):
            # Same flat-scan cutover as candidates_near, but without
            # the generator indirection on this hot query path.
            for i, q in enumerate(points):
                dx = q[0] - px
                dy = q[1] - py
                if dx * dx + dy * dy <= r_sq:
                    out.append(i)
            return out
        cx, cy = self._cell_of(p)
        cells = self._cells
        for dx_cell in range(-reach, reach + 1):
            for dy_cell in range(-reach, reach + 1):
                for i in cells.get((cx + dx_cell, cy + dy_cell), ()):
                    q = points[i]
                    dx = q[0] - px
                    dy = q[1] - py
                    if dx * dx + dy * dy <= r_sq:
                        out.append(i)
        return out

    def pairs_within(self, radius: float) -> Iterator[tuple[int, int]]:
        """All unordered pairs ``(i, j)``, ``i < j``, within ``radius``.

        The bulk analogue of calling :meth:`within` once per point:
        each cell is paired with itself and with the half of its
        neighbor window that sorts after it, so every candidate pair is
        distance-tested exactly once instead of twice.

        Pairs are yielded in sorted order.  The underlying cell walk
        follows dict insertion order, which ties to point order in a
        way callers must not depend on — the SoA bulk enumeration
        (:func:`repro.core.soa.udg_edge_arrays`) and this path must
        list UDG edges identically for the bit-identical tripwires.
        """
        yield from sorted(self._iter_pairs_within(radius))

    def _iter_pairs_within(self, radius: float) -> Iterator[tuple[int, int]]:
        r_sq = radius * radius
        points = self.points
        n = len(points)
        reach = max(1, math.ceil(radius / self.cell_size))
        if (2 * reach + 1) ** 2 > n:
            # Dense-radius regime: the cell window covers everything,
            # so enumerate the triangle of index pairs directly.
            for i in range(n):
                p = points[i]
                for j in range(i + 1, n):
                    if dist_sq(p, points[j]) <= r_sq:
                        yield (i, j)
            return
        # Forward half-window: (0, 0) handled specially (within-cell
        # pairs), then only offsets that are lexicographically positive
        # so each cell pair is visited once.
        offsets = [
            (dx, dy)
            for dx in range(0, reach + 1)
            for dy in range(-reach if dx > 0 else 1, reach + 1)
        ]
        cells = self._cells
        for (cx, cy), members in cells.items():
            for a in range(len(members)):
                i = members[a]
                p = points[i]
                for b in range(a + 1, len(members)):
                    j = members[b]
                    if dist_sq(p, points[j]) <= r_sq:
                        yield (i, j) if i < j else (j, i)
            for dx, dy in offsets:
                other = cells.get((cx + dx, cy + dy))
                if not other:
                    continue
                for i in members:
                    p = points[i]
                    for j in other:
                        if dist_sq(p, points[j]) <= r_sq:
                            yield (i, j) if i < j else (j, i)


class UnitDiskGraph(Graph):
    """The unit disk graph of a point set at a given radius.

    Carries its ``radius`` so downstream constructions (Gabriel tests,
    localized Delaunay length caps) can normalize distances against it.
    """

    #: Whether adjacency is exactly the "distance <= radius" rule.
    #: Kernels may exploit its geometric consequences (e.g. "within
    #: |uv| of both endpoints implies adjacent to both"); radio-model
    #: subclasses that drop links (quasi-UDG) override this to False
    #: so those shortcuts fall back to pure adjacency reasoning.
    adjacency_is_disk_rule = True

    def __init__(self, positions: Sequence[Point], radius: float, *, name: str = "UDG") -> None:
        if radius <= 0.0:
            raise ValueError("transmission radius must be positive")
        super().__init__(positions, name=name)
        self.radius = radius
        self._build()

    def _build(self) -> None:
        # Array path: one vectorized grid join enumerates every edge
        # and doubles as the deployment's shared SoA snapshot.  The
        # edge set is bit-identical to pairs_within (same cells, same
        # inclusive distance test, IEEE-identical arithmetic), which
        # the equivalence suite and the bench tripwires assert.
        from repro.core.soa import SoaSnapshot

        snap = SoaSnapshot.from_points(self.positions, self.radius)
        if snap is None:
            # pairs_within yields each qualifying pair exactly once,
            # halving the duplicate distance tests of a per-node scan.
            index = GridIndex(self.positions, self.radius)
            for u, v in index.pairs_within(self.radius):
                self.add_edge(u, v)
            return
        self._soa_snapshot = snap
        adj = self._adj
        pairs = list(zip(snap.edge_u.tolist(), snap.edge_v.tolist()))
        self._edges.update(pairs)
        for u, v in pairs:
            adj[u].add(v)
            adj[v].add(u)

    def soa_snapshot(self):
        """The shared :class:`~repro.core.soa.SoaSnapshot` (or ``None``)."""
        from repro.core.soa import snapshot_for

        return snapshot_for(self)

    def k_hop_neighborhood(self, u: int, k: int) -> set[int]:
        """Nodes within ``k`` hops of ``u`` (paper's N_k(u)), including ``u``."""
        frontier = {u}
        seen = {u}
        for _ in range(k):
            nxt: set[int] = set()
            for w in frontier:
                nxt.update(self._adj[w])
            nxt -= seen
            if not nxt:
                break
            seen |= nxt
            frontier = nxt
        return seen


def unit_disk_graph(
    coords: Iterable[tuple[float, float]], radius: float = 1.0
) -> UnitDiskGraph:
    """Build a :class:`UnitDiskGraph` from raw coordinate pairs."""
    points = [Point(float(x), float(y)) for x, y in coords]
    return UnitDiskGraph(points, radius)
