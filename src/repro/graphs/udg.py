"""Unit disk graphs with a uniform-grid spatial index.

The paper's network model: nodes with identical transmission radius
``r``; an undirected link exists exactly when the Euclidean distance is
at most ``r``.  Construction uses a bucket grid with cell side ``r`` so
each node only tests the 3x3 surrounding cells — expected O(n) for the
uniform deployments used in the experiments instead of the naive
O(n^2).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from repro.geometry.primitives import Point, dist_sq
from repro.graphs.graph import Graph


class GridIndex:
    """Uniform bucket grid for fixed-radius neighbor queries."""

    def __init__(self, points: Sequence[Point], cell_size: float) -> None:
        if cell_size <= 0.0:
            raise ValueError("cell_size must be positive")
        self.cell_size = cell_size
        self.points = list(points)
        self._cells: dict[tuple[int, int], list[int]] = {}
        for i, p in enumerate(self.points):
            self._cells.setdefault(self._cell_of(p), []).append(i)

    def _cell_of(self, p: Point) -> tuple[int, int]:
        return (math.floor(p[0] / self.cell_size), math.floor(p[1] / self.cell_size))

    def candidates_near(self, p: Point, radius: float) -> Iterator[int]:
        """Indices of points whose cell is within ``radius`` of ``p``'s.

        A superset of the true within-``radius`` set; callers must
        filter by exact distance.
        """
        reach = max(1, math.ceil(radius / self.cell_size))
        # When the query radius spans more cells than there are points
        # (e.g. radius >> cell_size), scanning the cell window would be
        # O(reach^2) mostly-empty lookups; a flat scan is the superset
        # too and never slower than the caller's distance filter.
        if (2 * reach + 1) ** 2 > len(self.points):
            yield from range(len(self.points))
            return
        cx, cy = self._cell_of(p)
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                yield from self._cells.get((cx + dx, cy + dy), ())

    def within(self, p: Point, radius: float) -> list[int]:
        """Indices of points at distance <= ``radius`` from ``p``."""
        r_sq = radius * radius
        return [
            i
            for i in self.candidates_near(p, radius)
            if dist_sq(self.points[i], p) <= r_sq
        ]


class UnitDiskGraph(Graph):
    """The unit disk graph of a point set at a given radius.

    Carries its ``radius`` so downstream constructions (Gabriel tests,
    localized Delaunay length caps) can normalize distances against it.
    """

    def __init__(self, positions: Sequence[Point], radius: float, *, name: str = "UDG") -> None:
        if radius <= 0.0:
            raise ValueError("transmission radius must be positive")
        super().__init__(positions, name=name)
        self.radius = radius
        self._build()

    def _build(self) -> None:
        index = GridIndex(self.positions, self.radius)
        r_sq = self.radius * self.radius
        for u, p in enumerate(self.positions):
            for v in index.candidates_near(p, self.radius):
                if v > u and dist_sq(p, self.positions[v]) <= r_sq:
                    self.add_edge(u, v)

    def k_hop_neighborhood(self, u: int, k: int) -> set[int]:
        """Nodes within ``k`` hops of ``u`` (paper's N_k(u)), including ``u``."""
        frontier = {u}
        seen = {u}
        for _ in range(k):
            nxt: set[int] = set()
            for w in frontier:
                nxt.update(self._adj[w])
            nxt -= seen
            if not nxt:
                break
            seen |= nxt
            frontier = nxt
        return seen


def unit_disk_graph(
    coords: Iterable[tuple[float, float]], radius: float = 1.0
) -> UnitDiskGraph:
    """Build a :class:`UnitDiskGraph` from raw coordinate pairs."""
    points = [Point(float(x), float(y)) for x, y in coords]
    return UnitDiskGraph(points, radius)
