"""Graph substrate: embedded graphs, unit disk graphs, paths, planarity."""

from repro.graphs.graph import Graph
from repro.graphs.udg import GridIndex, UnitDiskGraph, unit_disk_graph
from repro.graphs.paths import (
    PathResult,
    bfs_hops,
    breadth_first_path,
    connected_components,
    dijkstra_lengths,
    hop_diameter,
    hop_eccentricity,
    is_connected,
    shortest_path,
)
from repro.graphs.planarity import crossing_pairs, is_planar_embedding
from repro.graphs.connectivity import (
    RobustnessReport,
    articulation_points,
    bridges,
    robustness,
    survives_failures,
)

__all__ = [
    "Graph",
    "GridIndex",
    "UnitDiskGraph",
    "unit_disk_graph",
    "PathResult",
    "bfs_hops",
    "breadth_first_path",
    "connected_components",
    "dijkstra_lengths",
    "hop_diameter",
    "hop_eccentricity",
    "is_connected",
    "shortest_path",
    "crossing_pairs",
    "is_planar_embedding",
    "RobustnessReport",
    "articulation_points",
    "bridges",
    "robustness",
    "survives_failures",
]
