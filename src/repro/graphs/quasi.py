"""Quasi unit disk graphs: the Damian-Pemmaraju radio model.

The UDG's sharp reception threshold is an idealization; real radios
have a gray zone.  The quasi-UDG model (see PAPERS.md) keeps a link
whenever the distance is at most ``epsilon * r`` (the reliable zone),
never keeps one beyond ``r``, and leaves links in between *arbitrary*.
This module makes "arbitrary" reproducible: each gray-zone pair is kept
or dropped by a keyed hash of ``(link_seed, u, v)``, so the same
deployment and seed regenerate the exact same link set on any platform
— the property the validation farm's frozen corpus entries rely on.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.geometry.primitives import Point, dist_sq
from repro.graphs.udg import UnitDiskGraph


def gray_link_alive(link_seed: int, u: int, v: int, keep_probability: float) -> bool:
    """Deterministic fate of the gray-zone pair ``{u, v}``.

    Keyed 64-bit blake2b of the (sorted) pair mapped to [0, 1) and
    compared against ``keep_probability`` — order-independent, stable
    across platforms and process restarts (unlike ``hash()``, which is
    salted per interpreter).
    """
    a, b = (u, v) if u <= v else (v, u)
    digest = hashlib.blake2b(
        f"{link_seed}:{a}:{b}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64 < keep_probability


class QuasiUnitDiskGraph(UnitDiskGraph):
    """A unit disk graph with a hash-decided gray zone.

    Links at distance <= ``epsilon * radius`` always exist, links
    beyond ``radius`` never do, and each pair in between exists iff
    :func:`gray_link_alive` says so for ``link_seed``.  Subclasses
    :class:`UnitDiskGraph` so every construction that consumes graph
    adjacency (clustering, connectors, Gabriel, LDel) runs unchanged
    on the harder radio model.
    """

    #: Gray-zone removals break the "short distance implies adjacency"
    #: direction of the disk rule; kernels must not exploit it.
    adjacency_is_disk_rule = False

    def __init__(
        self,
        positions: Sequence[Point],
        radius: float,
        *,
        epsilon: float = 0.75,
        link_seed: int = 0,
        keep_probability: float = 0.6,
        name: str = "quasi-UDG",
    ) -> None:
        if not 0.0 < epsilon <= 1.0:
            raise ValueError("epsilon must be in (0, 1]")
        if not 0.0 <= keep_probability <= 1.0:
            raise ValueError("keep_probability must be in [0, 1]")
        self.epsilon = epsilon
        self.link_seed = link_seed
        self.keep_probability = keep_probability
        super().__init__(positions, radius, name=name)

    def _build(self) -> None:
        # Full UDG first (the vectorized path when numpy is up, the
        # pure-Python grid join otherwise — both enumerate the same
        # edge set), then drop the gray-zone losers.  Removal-only, so
        # the quasi edge set is identical under either build path.
        super()._build()
        inner_sq = (self.epsilon * self.radius) ** 2
        doomed = [
            (u, v)
            for u, v in self.edges()
            if dist_sq(self.positions[u], self.positions[v]) > inner_sq
            and not gray_link_alive(self.link_seed, u, v, self.keep_probability)
        ]
        for u, v in doomed:
            self.remove_edge(u, v)
        # The cached SoA snapshot (if the vectorized build installed
        # one) describes the pre-removal UDG; drop it so consumers
        # rebuild from the actual quasi adjacency.
        if doomed and getattr(self, "_soa_snapshot", None) is not None:
            del self._soa_snapshot


def induced_radio_subgraph(
    udg: UnitDiskGraph, nodes: Sequence[int], *, name: str = "UDG-sub"
) -> UnitDiskGraph:
    """The radio graph ``udg`` induces on ``nodes``, reindexed 0..k-1.

    For a plain :class:`UnitDiskGraph` this equals rebuilding a UDG
    over the selected positions (the distance rule is hereditary), so
    existing pipelines stay bit-identical.  For a quasi-UDG (or any
    subclass whose link set is a subset of the disk rule) the rebuild
    would resurrect dropped gray-zone links; here they stay dropped —
    the induced subgraph keeps exactly the parent's links.
    """
    sub = UnitDiskGraph([udg.positions[i] for i in nodes], udg.radius, name=name)
    doomed = [
        (a, b)
        for a, b in sub.edges()
        if not udg.has_edge(nodes[a], nodes[b])
    ]
    for a, b in doomed:
        sub.remove_edge(a, b)
    if doomed and getattr(sub, "_soa_snapshot", None) is not None:
        del sub._soa_snapshot
    return sub
