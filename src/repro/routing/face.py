"""Right-hand-rule face routing on planar embedded graphs.

The recovery mode of GPSR and the reason the paper insists the
backbone be planar.  The packet walks the boundary of the face
intersected by the line toward the destination, counterclockwise by
the right-hand rule, and hops to the next face whenever an edge
crosses that line closer to the destination.  On a *planar* connected
graph this provably reaches the destination; on a non-planar graph it
can loop — which is exactly what the tests demonstrate on the
paper's Figure 5 counterexample.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.geometry.predicates import Orientation, on_segment, orientation
from repro.geometry.primitives import Point, dist_sq
from repro.graphs.graph import Graph
from repro.routing.greedy import RouteResult


def _ccw_angle(reference: float, angle: float) -> float:
    """Counterclockwise sweep from ``reference`` to ``angle`` in (0, 2pi]."""
    sweep = (angle - reference) % (2.0 * math.pi)
    if sweep <= 1e-12:
        sweep = 2.0 * math.pi
    return sweep


def _direction(frm: Point, to: Point) -> float:
    return math.atan2(to[1] - frm[1], to[0] - frm[0])


def _rhr_next_positions(
    here: Point,
    neighbors: "dict[int, Point]",
    reference_angle: float,
    exclude: Optional[int],
) -> Optional[int]:
    """Neighbor with the smallest ccw angle from ``reference_angle``.

    Operates on an explicit ``{node: position}`` map so both the
    centralized path-walker and the stateless routing protocol share
    one right-hand-rule implementation.  ``exclude`` is the node we
    arrived from; it is only chosen when it is the sole neighbor
    (dead-end bounce).
    """
    best: Optional[int] = None
    best_sweep = math.inf
    for v in sorted(neighbors):
        if v == exclude:
            continue
        npos = neighbors[v]
        if npos[0] == here[0] and npos[1] == here[1]:
            # Coincident neighbor: the direction (and thus the sweep)
            # is undefined, and hopping to it cannot advance the face
            # walk.  Skip it; the dead-end bounce below still applies.
            continue
        sweep = _ccw_angle(reference_angle, _direction(here, npos))
        if sweep < best_sweep:
            best_sweep = sweep
            best = v
    if best is None and exclude is not None and exclude in neighbors:
        return exclude  # dead end: walk back along the same edge
    return best


def _rhr_next(
    graph: Graph, current: int, reference_angle: float, exclude: Optional[int]
) -> Optional[int]:
    """Right-hand-rule choice over a graph's adjacency."""
    pos = graph.positions
    neighbors = {v: pos[v] for v in graph.neighbors(current)}
    return _rhr_next_positions(pos[current], neighbors, reference_angle, exclude)


def _segment_crossing_point(
    a: Point, b: Point, c: Point, d: Point
) -> Optional[Point]:
    """Intersection point of segments ``ab`` and ``cd`` (None if disjoint).

    Degenerate contacts go through the exact orientation predicate
    instead of the parametric formula: when an endpoint of either
    segment lies (snapped-)exactly on the other segment — the
    source–target line passing through a vertex, or the target sitting
    on a traversed edge — the returned point is that endpoint,
    coordinate-exact, so face-entry comparisons downstream never see
    parametric rounding noise.  A segment running *along* the line
    (both endpoints collinear) stays "no single crossing", matching
    the old near-zero-denominator behaviour.  General-position inputs
    take the same parametric path as before, bit for bit.
    """
    o1 = orientation(a, b, c)
    o2 = orientation(a, b, d)
    o3 = orientation(c, d, a)
    o4 = orientation(c, d, b)
    if o3 == Orientation.COLLINEAR and o4 == Orientation.COLLINEAR:
        return None  # ab runs along the cd line: no face change
    if o3 == Orientation.COLLINEAR and on_segment(c, d, a):
        return a
    if o4 == Orientation.COLLINEAR and on_segment(c, d, b):
        return b
    if o1 == Orientation.COLLINEAR and on_segment(a, b, c):
        return c
    if o2 == Orientation.COLLINEAR and on_segment(a, b, d):
        return d
    if not (o1 != o2 and o3 != o4):
        return None
    r = (b[0] - a[0], b[1] - a[1])
    s = (d[0] - c[0], d[1] - c[1])
    denom = r[0] * s[1] - r[1] * s[0]
    if abs(denom) < 1e-15:
        return None  # numerically parallel: treat as no face change
    t = ((c[0] - a[0]) * s[1] - (c[1] - a[1]) * s[0]) / denom
    return Point(a[0] + t * r[0], a[1] + t * r[1])


def face_route(
    graph: Graph,
    source: int,
    target: int,
    *,
    max_hops: Optional[int] = None,
    resume_distance: Optional[float] = None,
) -> RouteResult:
    """Face routing from ``source`` toward ``target``.

    ``resume_distance``: when set (GPSR perimeter mode), stop with
    reason ``"greedy-resume"`` as soon as the packet reaches a node
    strictly closer to the target than this distance.
    """
    if max_hops is None:
        max_hops = 8 * graph.node_count + 32
    pos = graph.positions
    target_pos = pos[target]
    # Compare squared distances: dist_sq is a fixed sequence of
    # correctly rounded ops, so the batch engine reproduces the resume
    # test bit for bit (np.hypot and math.hypot may not agree).
    resume_d2 = (
        resume_distance * resume_distance if resume_distance is not None else None
    )
    path = [source]
    current = source
    came_from: Optional[int] = None
    face_entry = pos[source]
    first_edge: Optional[tuple[int, int]] = None
    hops = 0
    switches = 0

    while hops < max_hops:
        if current == target:
            return RouteResult(tuple(path), True, "delivered")
        if (
            resume_d2 is not None
            and current != source
            and dist_sq(pos[current], target_pos) < resume_d2
        ):
            return RouteResult(tuple(path), False, "greedy-resume")

        if came_from is None:
            reference = _direction(pos[current], target_pos)
            nxt = _rhr_next(graph, current, reference, exclude=None)
        else:
            reference = _direction(pos[current], pos[came_from])
            nxt = _rhr_next(graph, current, reference, exclude=came_from)
        if nxt is None:
            return RouteResult(tuple(path), False, "stuck")

        # Face change: the chosen edge crosses the (face-entry ->
        # target) segment at a point strictly closer to the target.
        crossing = _segment_crossing_point(
            pos[current], pos[nxt], face_entry, target_pos
        )
        if (
            crossing is not None
            and dist_sq(crossing, target_pos) < dist_sq(face_entry, target_pos) - 1e-12
        ):
            face_entry = crossing
            came_from = None
            first_edge = None
            switches += 1
            if switches > max_hops:
                return RouteResult(tuple(path), False, "loop")
            continue

        edge = (current, nxt)
        if first_edge is None:
            first_edge = edge
        elif edge == first_edge:
            # Completed a full tour of the face without a face change:
            # the destination is unreachable (or the graph is not
            # planar and the traversal degenerated).
            return RouteResult(tuple(path), False, "loop")

        came_from = current
        current = nxt
        path.append(current)
        hops += 1

    return RouteResult(tuple(path), False, "hop-limit")
