"""Network-wide broadcasting over the constructed topologies.

The intro's first complaint is that flooding "wastes the rare
resources of wireless nodes"; dominating sets and sparse planar
subgraphs are the classic remedies (the paper cites RNG-based
broadcasting — Seddigh et al. — and dominating-set-based routing).
Three strategies, all simulated on the radio model (one broadcast
reaches all UDG neighbors):

* **blind flooding** — every node retransmits once;
* **relay-set flooding** — only nodes in a designated relay set
  (e.g. the backbone) retransmit; correctness requires the relay set
  to be a connected dominating set, which the paper's pipeline
  guarantees;
* **tree broadcast** — retransmit only along a precomputed spanning
  tree (e.g. the MST or a backbone BFS tree), the lower bound on
  retransmissions among structure-based schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of one network-wide broadcast."""

    #: Nodes that received the message.
    reached: frozenset[int]
    #: Nodes that transmitted (the forwarding cost).
    transmitters: frozenset[int]
    #: Rounds until the broadcast stabilized (radio rounds).
    rounds: int

    @property
    def coverage(self) -> int:
        return len(self.reached)

    @property
    def transmissions(self) -> int:
        return len(self.transmitters)


def flood(udg: UnitDiskGraph, source: int) -> BroadcastResult:
    """Blind flooding: every node retransmits the first copy it hears."""
    return relay_flood(udg, source, relays=udg.nodes())


def relay_flood(
    udg: UnitDiskGraph, source: int, relays: Iterable[int]
) -> BroadcastResult:
    """Flooding where only ``relays`` (plus the source) retransmit.

    Reception still happens over the full radio graph — a dominatee
    hears its dominator even though it never forwards.
    """
    relay_set = set(relays)
    relay_set.add(source)
    reached = {source}
    transmitters: set[int] = set()
    frontier = [source]
    rounds = 0
    while frontier:
        rounds += 1
        next_frontier: list[int] = []
        for u in frontier:
            if u not in relay_set or u in transmitters:
                continue
            transmitters.add(u)
            for v in udg.neighbors(u):
                if v not in reached:
                    reached.add(v)
                    next_frontier.append(v)
        frontier = next_frontier
    return BroadcastResult(
        reached=frozenset(reached),
        transmitters=frozenset(transmitters),
        rounds=rounds,
    )


def backbone_broadcast(
    udg: UnitDiskGraph, source: int, backbone_nodes: Iterable[int]
) -> BroadcastResult:
    """Dominating-set-based broadcast: only backbone nodes forward.

    With a connected dominating set as the relay set, every node is
    within one hop of a relay, so coverage is total while the
    forwarding cost drops from n to |backbone|.
    """
    return relay_flood(udg, source, backbone_nodes)


def rng_relay_set(udg: UnitDiskGraph) -> frozenset[int]:
    """Relay set of RNG-based broadcasting (Seddigh et al., the paper's [11]).

    Only *internal* nodes of the relative neighborhood graph — nodes
    with RNG degree above one — retransmit; RNG leaves are always
    covered by their single RNG neighbor's broadcast.  Because the RNG
    is connected and spanning, relaying on its internal nodes covers
    the whole component.
    """
    from repro.topology.rng import relative_neighborhood_graph

    rng_graph = relative_neighborhood_graph(udg)
    return frozenset(u for u in rng_graph.nodes() if rng_graph.degree(u) > 1)


def rng_broadcast(udg: UnitDiskGraph, source: int) -> BroadcastResult:
    """RNG internal-node broadcasting: flood relayed by RNG-internal nodes."""
    return relay_flood(udg, source, rng_relay_set(udg))


def tree_broadcast(
    udg: UnitDiskGraph, source: int, tree: Graph
) -> BroadcastResult:
    """Broadcast along a spanning tree's edges only.

    Each tree node transmits once; receivers are its *radio* neighbors
    (wireless multicast advantage), but forwarding follows tree edges.
    Internal tree nodes transmit; leaves never need to.
    """
    reached = {source}
    transmitters: set[int] = set()
    frontier = [source]
    rounds = 0
    seen_tree = {source}
    while frontier:
        rounds += 1
        next_frontier: list[int] = []
        for u in frontier:
            children = [v for v in tree.neighbors(u) if v not in seen_tree]
            if not children:
                continue  # leaf in the remaining tree: no transmission
            transmitters.add(u)
            reached.update(udg.neighbors(u))
            for v in children:
                seen_tree.add(v)
                next_frontier.append(v)
        frontier = next_frontier
    return BroadcastResult(
        reached=frozenset(reached),
        transmitters=frozenset(transmitters),
        rounds=rounds,
    )
