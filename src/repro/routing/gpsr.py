"""GPSR — Greedy Perimeter Stateless Routing (Karp & Kung).

Greedy geographic forwarding with face-routing recovery: when greedy
hits a local minimum at node ``x``, the packet switches to perimeter
(face) mode and walks faces by the right-hand rule until it reaches a
node strictly closer to the destination than ``x``, where greedy
resumes.  Delivery is guaranteed on connected *planar* graphs — the
property the paper's LDel(ICDS) backbone provides and the bare CDS
does not.
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.primitives import dist
from repro.graphs.graph import Graph
from repro.routing.face import face_route
from repro.routing.greedy import RouteResult, greedy_route


def gpsr_route(
    graph: Graph,
    source: int,
    target: int,
    *,
    max_hops: Optional[int] = None,
) -> RouteResult:
    """Route from ``source`` to ``target`` with GPSR on ``graph``."""
    if max_hops is None:
        max_hops = 8 * graph.node_count + 64
    pos = graph.positions
    path: list[int] = [source]
    current = source
    budget = max_hops

    while budget > 0:
        leg = greedy_route(graph, current, target, max_hops=budget)
        path.extend(leg.path[1:])
        budget -= leg.hops
        if leg.delivered:
            return RouteResult(tuple(path), True, "delivered")
        if leg.reason == "hop-limit":
            break
        # Local minimum: enter perimeter mode from the stuck node.
        current = leg.path[-1]
        stuck_distance = dist(pos[current], pos[target])
        recovery = face_route(
            graph,
            current,
            target,
            max_hops=budget,
            resume_distance=stuck_distance,
        )
        path.extend(recovery.path[1:])
        budget -= recovery.hops
        if recovery.delivered:
            return RouteResult(tuple(path), True, "delivered")
        if recovery.reason != "greedy-resume":
            return RouteResult(tuple(path), False, recovery.reason)
        current = recovery.path[-1]

    return RouteResult(tuple(path), False, "hop-limit")
