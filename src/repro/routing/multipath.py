"""Disjoint multipath routing on the backbone.

The redundancy the paper builds into the CDS (multiple connectors per
dominator pair) only pays off if traffic can actually use it; node-
disjoint paths are the standard way: a packet and its copy cannot be
killed by any single intermediate failure.  ``disjoint_paths`` finds
up to ``k`` node-disjoint routes by iterative shortest-path extraction
(optimal for k = 2 on the structures here in practice, and a standard
heuristic beyond), and ``survivable_pairs`` reports how much of the
backbone enjoys 2-path survivability — the quantitative counterpart of
the robustness ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.connectivity import survives_failures
from repro.graphs.graph import Graph
from repro.graphs.paths import breadth_first_path


@dataclass(frozen=True)
class MultipathResult:
    """Node-disjoint paths between one pair."""

    source: int
    target: int
    paths: tuple[tuple[int, ...], ...]

    @property
    def count(self) -> int:
        return len(self.paths)

    @property
    def survivable(self) -> bool:
        """At least two node-disjoint routes exist."""
        return len(self.paths) >= 2


def disjoint_paths(graph: Graph, source: int, target: int, k: int = 2) -> MultipathResult:
    """Up to ``k`` node-disjoint (except endpoints) paths, shortest first.

    Iterative extraction: find a shortest path, delete its interior
    nodes, repeat.  Exact for the existence of a single path; a
    standard approximation for maximum disjoint-path packing (which is
    all the survivability statistics need).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if source == target:
        return MultipathResult(source, target, ((source,),))
    working = graph.copy()
    found: list[tuple[int, ...]] = []
    for _ in range(k):
        result = breadth_first_path(working, source, target)
        if not result.found:
            break
        found.append(result.nodes)
        interior = [n for n in result.nodes if n not in (source, target)]
        if not interior:
            # Direct edge: remove it so the next path must differ.
            working.remove_edge(source, target)
            continue
        for node in interior:
            for neighbor in list(working.neighbors(node)):
                working.remove_edge(node, neighbor)
    return MultipathResult(source=source, target=target, paths=tuple(found))


def survivable_pairs(
    graph: Graph, nodes: list[int], *, sample_stride: int = 1
) -> tuple[int, int]:
    """(survivable, checked) over node pairs from ``nodes``.

    A pair is survivable when two node-disjoint paths connect it.
    ``sample_stride`` subsamples pairs on large instances.
    """
    survivable = 0
    checked = 0
    members = nodes[::sample_stride] if sample_stride > 1 else nodes
    for i, s in enumerate(members):
        for t in members[i + 1 :]:
            checked += 1
            if disjoint_paths(graph, s, t, k=2).survivable:
                survivable += 1
    return survivable, checked


def route_survives(graph: Graph, result: MultipathResult, failed: int) -> bool:
    """Whether some found path avoids the failed node entirely.

    Sanity primitive used by the tests: with 2 disjoint paths, any
    single interior failure leaves one path intact.
    """
    survivor_graph = survives_failures(graph, [failed])
    for path in result.paths:
        if failed in path:
            continue
        if all(survivor_graph.has_edge(a, b) for a, b in zip(path, path[1:])):
            return True
    return False
