"""Dominating-set-based routing through the planar backbone.

The paper's routing procedure (Sections III-B and IV): a node sends
directly to any destination within its transmission range; otherwise
it hands the packet to one of its dominators, the packet travels the
backbone — with GPSR, since LDel(ICDS) is planar — to a dominator of
the destination, which delivers it in one final hop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.routing.gpsr import gpsr_route
from repro.routing.greedy import RouteResult, greedy_route

if TYPE_CHECKING:  # pragma: no cover - annotation-only dependency
    from repro.core.spanner import BackboneResult


def _entry_point(result: BackboneResult, node: int) -> Optional[int]:
    """The backbone node a packet from ``node`` enters the backbone at."""
    if node in result.backbone_nodes:
        return node
    doms = result.dominators_of(node)
    if not doms:
        return None
    return min(doms)


def backbone_route(
    result: BackboneResult,
    source: int,
    target: int,
    *,
    mode: str = "gpsr",
    max_hops: Optional[int] = None,
) -> RouteResult:
    """Route ``source -> target`` per the paper's procedure.

    ``mode`` selects the backbone traversal: ``"gpsr"`` (guaranteed on
    the planar backbone) or ``"greedy"`` (may stall; used by the
    routing ablation to show why planarity matters).
    """
    if mode not in ("gpsr", "greedy"):
        raise ValueError(f"unknown mode {mode!r}")
    udg = result.udg
    if source == target:
        return RouteResult((source,), True, "delivered")
    if udg.has_edge(source, target):
        return RouteResult((source, target), True, "delivered")

    entry = _entry_point(result, source)
    exit_ = _entry_point(result, target)
    if entry is None or exit_ is None:
        return RouteResult((source,), False, "stuck")

    backbone = result.ldel_icds
    if entry == exit_:
        core = RouteResult((entry,), True, "delivered")
    elif mode == "gpsr":
        core = gpsr_route(backbone, entry, exit_, max_hops=max_hops)
    else:
        core = greedy_route(backbone, entry, exit_, max_hops=max_hops)
    if not core.delivered:
        return RouteResult(
            _stitch(source, core.path, target, include_target=False),
            False,
            core.reason,
        )
    return RouteResult(
        _stitch(source, core.path, target, include_target=True),
        True,
        "delivered",
    )


def _stitch(
    source: int, core: tuple[int, ...], target: int, *, include_target: bool
) -> tuple[int, ...]:
    """Join source -> backbone path -> target without duplicate hops."""
    path: list[int] = [source]
    for node in core:
        if node != path[-1]:
            path.append(node)
    if include_target and path[-1] != target:
        path.append(target)
    return tuple(path)
