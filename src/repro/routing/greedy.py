"""Greedy geographic forwarding.

Each node forwards the packet to its neighbor closest to the
destination, as long as that strictly decreases the distance; a *local
minimum* (no neighbor closer than the current node) stalls the route.
Greedy is the fast path of GPSR; the planar backbone exists so the
perimeter fallback can rescue exactly these stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.primitives import dist_sq
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class RouteResult:
    """Outcome of a routing attempt."""

    path: tuple[int, ...]
    delivered: bool
    #: Why the route ended: "delivered", "stuck" (local minimum),
    #: "loop" (face routing revisited a directed edge), "hop-limit".
    reason: str

    @property
    def hops(self) -> int:
        return max(len(self.path) - 1, 0)

    def length(self, graph: Graph) -> float:
        return sum(
            graph.edge_length(a, b) for a, b in zip(self.path, self.path[1:])
        )

    def as_dict(self, graph: Graph | None = None) -> dict:
        """JSON-ready form; ``graph`` supplies edge lengths when given."""
        out: dict = {
            "delivered": self.delivered,
            "reason": self.reason,
            "hops": self.hops,
            "path": list(self.path),
        }
        out["length"] = (
            self.length(graph) if graph is not None and self.delivered else None
        )
        return out


def greedy_route(
    graph: Graph, source: int, target: int, *, max_hops: int | None = None
) -> RouteResult:
    """Route by always moving to the neighbor closest to ``target``.

    Purely local: each step uses only the current node's neighbor
    positions and the target position.
    """
    if max_hops is None:
        max_hops = 4 * graph.node_count + 16
    target_pos = graph.positions[target]
    path = [source]
    current = source
    for _ in range(max_hops):
        if current == target:
            return RouteResult(tuple(path), True, "delivered")
        current_d = dist_sq(graph.positions[current], target_pos)
        best = None
        best_d = current_d
        for v in sorted(graph.neighbors(current)):
            d = dist_sq(graph.positions[v], target_pos)
            if d < best_d:
                best = v
                best_d = d
        if best is None:
            return RouteResult(tuple(path), False, "stuck")
        current = best
        path.append(current)
    if current == target:
        return RouteResult(tuple(path), True, "delivered")
    return RouteResult(tuple(path), False, "hop-limit")
