"""Greedy geographic forwarding.

Each node forwards the packet to its neighbor closest to the
destination, as long as that strictly decreases the distance; a *local
minimum* (no neighbor closer than the current node) stalls the route.
Greedy is the fast path of GPSR; the planar backbone exists so the
perimeter fallback can rescue exactly these stalls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.primitives import dist_sq
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class RouteResult:
    """Outcome of a routing attempt."""

    path: tuple[int, ...]
    delivered: bool
    #: Why the route ended: "delivered", "stuck" (local minimum),
    #: "loop" (face routing revisited a directed edge), "hop-limit".
    reason: str

    @property
    def hops(self) -> int:
        return max(len(self.path) - 1, 0)

    def _edge_metric_sum(self, graph: Graph, alpha: float) -> float:
        """Sum of per-edge ``length ** alpha`` along the path, cached.

        Computed once per ``(graph, alpha)`` from the graph's
        coordinate arrays (the shared SoA snapshot when numpy is up,
        the position list otherwise) with the same sequential
        ``math.hypot`` accumulation as ``graph.edge_length`` — so the
        cached value is bit-identical to the old per-call recomputation
        while repeated ``length()`` / ``as_dict()`` calls stop paying
        O(hops) graph lookups every time.
        """
        cache = self.__dict__.setdefault("_metric_cache", {})
        hit = cache.get(alpha)
        if hit is not None and hit[0] is graph:
            return hit[1]
        # Reuse the graph's SoA snapshot only when one is already
        # cached and current — building one just for a length query
        # would cost O(E log E) on a cold graph.
        snap = getattr(graph, "_soa_snapshot", None)
        if snap is not None and (
            snap.n != graph.node_count or snap.edge_count != graph.edge_count
        ):
            snap = None
        total = 0.0
        if snap is not None:
            xs, ys = snap.xs, snap.ys
            for a, b in zip(self.path, self.path[1:]):
                step = math.hypot(xs[a] - xs[b], ys[a] - ys[b])
                total += step if alpha == 1.0 else step ** alpha
        else:
            positions = graph.positions
            for a, b in zip(self.path, self.path[1:]):
                pa = positions[a]
                pb = positions[b]
                step = math.hypot(pa[0] - pb[0], pa[1] - pb[1])
                total += step if alpha == 1.0 else step ** alpha
        cache[alpha] = (graph, total)
        return total

    def length(self, graph: Graph) -> float:
        """Euclidean length of the path (cached per graph)."""
        return self._edge_metric_sum(graph, 1.0)

    def power_cost(self, graph: Graph, alpha: float = 2.0) -> float:
        """Total transmission energy ``sum(len(e) ** alpha)`` of the path.

        The routing ablation's energy metric: each hop costs the edge
        length raised to the path-loss exponent ``alpha`` (2 for free
        space, up to 4 indoors).  Cached per ``(graph, alpha)`` like
        :meth:`length`.
        """
        return self._edge_metric_sum(graph, alpha)

    def as_dict(self, graph: Graph | None = None) -> dict:
        """JSON-ready form; ``graph`` supplies edge lengths when given."""
        out: dict = {
            "delivered": self.delivered,
            "reason": self.reason,
            "hops": self.hops,
            "path": list(self.path),
        }
        out["length"] = (
            self.length(graph) if graph is not None and self.delivered else None
        )
        return out


def greedy_route(
    graph: Graph, source: int, target: int, *, max_hops: int | None = None
) -> RouteResult:
    """Route by always moving to the neighbor closest to ``target``.

    Purely local: each step uses only the current node's neighbor
    positions and the target position.
    """
    if max_hops is None:
        max_hops = 4 * graph.node_count + 16
    target_pos = graph.positions[target]
    path = [source]
    current = source
    for _ in range(max_hops):
        if current == target:
            return RouteResult(tuple(path), True, "delivered")
        current_d = dist_sq(graph.positions[current], target_pos)
        best = None
        best_d = current_d
        for v in sorted(graph.neighbors(current)):
            d = dist_sq(graph.positions[v], target_pos)
            if d < best_d:
                best = v
                best_d = d
        if best is None:
            return RouteResult(tuple(path), False, "stuck")
        current = best
        path.append(current)
    if current == target:
        return RouteResult(tuple(path), True, "delivered")
    return RouteResult(tuple(path), False, "hop-limit")
