"""Geographic routing on the constructed topologies.

The paper builds the planar backbone *so that* localized routing works
on it: greedy forwarding (:mod:`~repro.routing.greedy`), right-hand
face routing on planar graphs (:mod:`~repro.routing.face`), GPSR =
greedy with perimeter fallback (:mod:`~repro.routing.gpsr`), and
dominating-set-based routing through the backbone
(:mod:`~repro.routing.backbone_routing`).
"""

from repro.routing.greedy import RouteResult, greedy_route
from repro.routing.face import face_route
from repro.routing.gpsr import gpsr_route
from repro.routing.backbone_routing import backbone_route
from repro.routing.broadcast import (
    BroadcastResult,
    backbone_broadcast,
    flood,
    relay_flood,
    rng_broadcast,
    rng_relay_set,
    tree_broadcast,
)
from repro.routing.compass import compass_route
from repro.routing.multipath import (
    MultipathResult,
    disjoint_paths,
    survivable_pairs,
)

__all__ = [
    "RouteResult",
    "greedy_route",
    "face_route",
    "gpsr_route",
    "backbone_route",
    "BroadcastResult",
    "backbone_broadcast",
    "flood",
    "relay_flood",
    "rng_broadcast",
    "rng_relay_set",
    "tree_broadcast",
    "compass_route",
    "MultipathResult",
    "disjoint_paths",
    "survivable_pairs",
]
