"""Compass routing (Kranakis, Singh, Urrutia).

The other classic localized geographic heuristic: forward to the
neighbor whose *direction* is closest to the direction of the
destination (greedy minimizes remaining distance; compass minimizes
angular deviation).  Compass routing is known to deliver on Delaunay
triangulations but can cycle on general planar graphs — our tests
exhibit both behaviours, motivating GPSR's face-based recovery on the
paper's backbone instead.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.graphs.graph import Graph
from repro.routing.greedy import RouteResult


def compass_route(
    graph: Graph, source: int, target: int, *, max_hops: Optional[int] = None
) -> RouteResult:
    """Route by smallest angle to the destination direction.

    Loops are detected by revisiting a directed edge; ties break by
    node id so runs are deterministic.  The comparison key is the
    negated cosine ``-(dot / sqrt(|a|^2 * |b|^2))`` rather than the
    angle itself: ``sqrt`` and division are correctly rounded by IEEE
    754, so the batch engine (:mod:`repro.core.route_engine`) computes
    the bit-identical key with numpy, whereas ``acos``/``atan2``
    implementations may round a ulp apart and flip mathematically tied
    neighbors.
    """
    if max_hops is None:
        max_hops = 4 * graph.node_count + 16
    pos = graph.positions
    target_pos = pos[target]
    path = [source]
    current = source
    taken: set[tuple[int, int]] = set()
    for _ in range(max_hops):
        if current == target:
            return RouteResult(tuple(path), True, "delivered")
        here = pos[current]
        ax = target_pos[0] - here[0]
        ay = target_pos[1] - here[1]
        na2 = ax * ax + ay * ay
        best: Optional[int] = None
        best_key = float("inf")
        for v in sorted(graph.neighbors(current)):
            if v == target:
                best = v
                break
            vpos = pos[v]
            bx = vpos[0] - here[0]
            by = vpos[1] - here[1]
            denom = math.sqrt(na2 * (bx * bx + by * by))
            if denom == 0.0:
                # A zero-length arm (coincident points): the angle is
                # undefined, skip the neighbor.
                continue
            key = -((ax * bx + ay * by) / denom)
            if key < best_key:
                best_key = key
                best = v
        if best is None:
            return RouteResult(tuple(path), False, "stuck")
        edge = (current, best)
        if edge in taken:
            return RouteResult(tuple(path), False, "loop")
        taken.add(edge)
        current = best
        path.append(current)
    if current == target:
        return RouteResult(tuple(path), True, "delivered")
    return RouteResult(tuple(path), False, "hop-limit")
