"""Compass routing (Kranakis, Singh, Urrutia).

The other classic localized geographic heuristic: forward to the
neighbor whose *direction* is closest to the direction of the
destination (greedy minimizes remaining distance; compass minimizes
angular deviation).  Compass routing is known to deliver on Delaunay
triangulations but can cycle on general planar graphs — our tests
exhibit both behaviours, motivating GPSR's face-based recovery on the
paper's backbone instead.
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.primitives import angle_at
from repro.graphs.graph import Graph
from repro.routing.greedy import RouteResult


def compass_route(
    graph: Graph, source: int, target: int, *, max_hops: Optional[int] = None
) -> RouteResult:
    """Route by smallest angle to the destination direction.

    Loops are detected by revisiting a directed edge; ties break by
    node id so runs are deterministic.
    """
    if max_hops is None:
        max_hops = 4 * graph.node_count + 16
    pos = graph.positions
    target_pos = pos[target]
    path = [source]
    current = source
    taken: set[tuple[int, int]] = set()
    for _ in range(max_hops):
        if current == target:
            return RouteResult(tuple(path), True, "delivered")
        here = pos[current]
        best: Optional[int] = None
        best_angle = float("inf")
        for v in sorted(graph.neighbors(current)):
            if v == target:
                best = v
                best_angle = -1.0
                break
            try:
                ang = angle_at(here, target_pos, pos[v])
            except ValueError:
                continue
            if ang < best_angle:
                best_angle = ang
                best = v
        if best is None:
            return RouteResult(tuple(path), False, "stuck")
        edge = (current, best)
        if edge in taken:
            return RouteResult(tuple(path), False, "loop")
        taken.add(edge)
        current = best
        path.append(current)
    if current == target:
        return RouteResult(tuple(path), True, "delivered")
    return RouteResult(tuple(path), False, "hop-limit")
