"""The invariant catalog: what the paper promises, stated as checks.

Each :class:`Invariant` names the pipelines (and radio models) it
covers and a metric closure evaluated against a
:class:`~repro.validation.engine.PipelineBuild`.  Bounds come from
:mod:`repro.core.bounds` where the paper supplies a constant; the
quasi-UDG variants scale them by the gray-zone parameter ``epsilon``
(a link surviving the gray zone can be up to ``1/epsilon`` times
longer than the reliable-zone radius the proofs assume).

Paper-bound invariants are exact claims; the bit-identity invariants
(sharded-vs-serial, SoA-vs-reference) are the implementation's own
contracts from PRs 3-7, promoted to nightly tripwires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.core import bounds
from repro.graphs.paths import connected_components
from repro.graphs.planarity import is_planar_embedding

if TYPE_CHECKING:
    from repro.validation.engine import PipelineBuild

#: Numeric slack for comparing measured values against exact bounds:
#: relative for the ratio checks, absolute for values near zero.
TOLERANCE_REL = 1e-9
TOLERANCE_ABS = 1e-9

#: Empirical ceiling for Lemma 3's "constant messages per node".  The
#: paper proves O(1); the protocol implementation stays well under this
#: across every corpus regime (uniform, clustered, gradient, quasi) —
#: tests/test_cds_fast.py pins the same figure on uniform fields.
LEMMA3_MAX_MESSAGES = 80

#: Empirical length-stretch ceiling for PLDel under the quasi-UDG
#: model.  The 2.5 proof (Keil-Gutwin via LDel) assumes the disk
#: model; with a gray zone the planarization can only reroute along
#: surviving links, so the bound loosens.  2.5 / epsilon is the
#: natural scaling and holds with margin on the quasi corpus.
def quasi_length_stretch_bound(epsilon: float) -> float:
    return bounds.ldel_length_stretch_bound() / epsilon


@dataclass(frozen=True)
class Check:
    """Outcome of evaluating one invariant metric."""

    passed: bool
    value: Optional[float] = None
    bound: Optional[float] = None
    detail: str = ""


def _bounded(value: float, bound: float, detail: str = "") -> Check:
    ok = value <= bound * (1.0 + TOLERANCE_REL) + TOLERANCE_ABS
    return Check(passed=ok, value=value, bound=bound, detail=detail)


@dataclass(frozen=True)
class Invariant:
    """One declarative claim: metric + where it applies."""

    name: str
    description: str
    pipelines: tuple[str, ...]
    metric: Callable[["PipelineBuild"], Check]
    #: Radio models the claim covers; a covered pipeline with an
    #: uncovered model renders as ``skip`` (the matrix shows the hole).
    models: tuple[str, ...] = ("udg", "quasi")
    #: Grouping label for docs and listings.
    kind: str = "bound"

    def applies_to(self, pipeline: str) -> bool:
        return pipeline in self.pipelines

    def covers_model(self, model: str) -> bool:
        return model in self.models


# --------------------------------------------------------------------
# Metric implementations
# --------------------------------------------------------------------


def _planarity(ctx: "PipelineBuild") -> Check:
    ok = is_planar_embedding(ctx.graph)
    return Check(passed=ok, detail="" if ok else "crossing edge pair found")


def _partition(graph) -> set[frozenset[int]]:
    return {frozenset(component) for component in connected_components(graph)}


def _connectivity(ctx: "PipelineBuild") -> Check:
    # The backbone's all-node connectivity claim is about LDel(ICDS')
    # (dominatees attach to their dominators); the spanner pipelines
    # must preserve the radio graph's component partition exactly.
    graph = ctx.backbone.ldel_icds_prime if ctx.pipeline == "backbone" else ctx.graph
    ok = _partition(graph) == _partition(ctx.udg)
    return Check(passed=ok, detail="" if ok else "component partition differs from radio graph")


def _domination(ctx: "PipelineBuild") -> Check:
    family = ctx.backbone.family
    backbone = family.backbone_nodes
    missing = [
        u
        for u in range(ctx.udg.node_count)
        if u not in backbone
        and not any(w in family.dominators for w in ctx.udg.neighbors(u))
    ]
    return Check(
        passed=not missing,
        value=float(len(missing)),
        bound=0.0,
        detail="" if not missing else f"undominated nodes: {missing[:5]}",
    )


def _degree_bound(ctx: "PipelineBuild") -> Check:
    # Lemma 8 bounds the ICDS degree; the gray zone thins the packing
    # argument's disks by epsilon, inflating the count by 1/epsilon^2.
    limit = float(bounds.lemma8_icds_degree_bound())
    if ctx.model == "quasi":
        limit = limit / ctx.epsilon**2
    icds = ctx.backbone.family.icds
    worst = max((icds.degree(u) for u in range(icds.node_count)), default=0)
    return _bounded(float(worst), limit, detail="max ICDS degree")


def _length_stretch(ctx: "PipelineBuild") -> Check:
    limit = bounds.ldel_length_stretch_bound()
    if ctx.model == "quasi":
        limit = quasi_length_stretch_bound(ctx.epsilon)
    stats = ctx.oracle.stretch(ctx.graph, "length")
    if stats.unreachable_pairs:
        return Check(
            passed=False,
            value=math.inf,
            bound=limit,
            detail=f"{stats.unreachable_pairs} pairs unreachable in spanner",
        )
    return _bounded(stats.max, limit, detail="max length stretch")


def _power_stretch(ctx: "PipelineBuild") -> Check:
    # GG keeps an optimal power path for every pair (stretch exactly 1).
    # Disk model only: the induction needs every blocker inside the uv
    # disk to be adjacent to *both* endpoints, which a gray zone breaks
    # (measured stretch ~1.7 on the quasi corpus).
    stats = ctx.oracle.stretch(ctx.graph, "power")
    if stats.unreachable_pairs:
        return Check(
            passed=False,
            value=math.inf,
            bound=1.0,
            detail=f"{stats.unreachable_pairs} pairs unreachable in spanner",
        )
    return _bounded(stats.max, 1.0, detail="max power stretch (exact claim: == 1)")


def _affine_worst_ratio(d_graph, d_base, n: int, additive: float) -> float:
    """max over pairs of ``(d_graph - additive) / d_base`` (inf if cut)."""
    worst = 0.0
    for u in range(n):
        row_g = d_graph[u]
        row_b = d_base[u]
        for v in range(u + 1, n):
            base = row_b[v]
            if base <= 0.0 or math.isinf(base):
                continue
            g = row_g[v]
            if math.isinf(g):
                return math.inf
            worst = max(worst, (g - additive) / base)
    return worst


def _hop_bound(ctx: "PipelineBuild") -> Check:
    # Lemma 5: h_CDS'(u,v) <= 3 h(u,v) + 2.  Purely combinatorial
    # (counts cluster traversals), so the same constant holds under
    # the quasi model.
    d_graph = ctx.oracle.apsp(ctx.backbone.family.cds_prime, "hops")
    d_base = ctx.oracle.apsp(ctx.udg, "hops")
    worst = _affine_worst_ratio(d_graph, d_base, ctx.udg.node_count, additive=2.0)
    return _bounded(worst, 3.0, detail="max (hops_CDS' - 2) / hops_UDG")


def _length_bound(ctx: "PipelineBuild") -> Check:
    # Lemma 6: d_CDS'(u,v) <= 6 d(u,v) + 5r (the paper states it in
    # r-units).  Under quasi, adjacent shortest-path hops are only
    # guaranteed longer than epsilon*r, scaling the ratio to 6/eps.
    ratio_limit = 6.0 if ctx.model == "udg" else 6.0 / ctx.epsilon
    d_graph = ctx.oracle.apsp(ctx.backbone.family.cds_prime, "length")
    d_base = ctx.oracle.apsp(ctx.udg, "length")
    worst = _affine_worst_ratio(
        d_graph, d_base, ctx.udg.node_count, additive=5.0 * ctx.udg.radius
    )
    return _bounded(worst, ratio_limit, detail="max (d_CDS' - 5r) / d_UDG")


def _route_stretch(ctx: "PipelineBuild") -> Check:
    # End-to-end routed stretch of the batch engine's dominating-set
    # procedure, bounded by composing the paper's pieces: a routed path
    # is entry hop + backbone core + exit hop.  With ``shortest`` cores
    # on LDel(ICDS) the core is at most the planarization stretch (2.5,
    # Keil-Gutwin) times the ICDS distance between the chosen entry
    # dominators; those sit within one connector detour (<= 2r each
    # side) of the entry points Lemma 6 routes through, and Lemma 6
    # caps that core at 6d + 5r.  Altogether:
    #   routed <= 2r + 2.5 * (4r + 6d + 5r) = 15d + 24.5r
    # so max (routed - 24.5r) / d_UDG <= 15 over reachable pairs, and
    # every UDG-reachable pair must be delivered at all.  Disk model
    # only — the quasi gray zone breaks the packing arguments both
    # constants rest on.
    from repro.core.route_engine import DELIVERED, BackboneRouter

    family = ctx.backbone.family
    n = ctx.udg.node_count
    d_base = ctx.oracle.apsp(ctx.udg, "length")
    pairs = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if d_base[u][v] > 0.0 and math.isfinite(d_base[u][v])
    ]
    ratio_limit = bounds.ldel_length_stretch_bound() * 6.0
    additive = (2.0 + bounds.ldel_length_stretch_bound() * 9.0) * ctx.udg.radius
    if not pairs:
        return Check(passed=True, value=0.0, bound=ratio_limit, detail="no routable pairs")
    router = BackboneRouter(
        udg=ctx.udg,
        backbone=ctx.backbone.ldel_icds,
        backbone_nodes=family.backbone_nodes,
        dominators_of=family.clustering.dominators_of,
        oracle=ctx.oracle,
    )
    batch = router.route_pairs(
        pairs, mode="shortest", keep_paths=False, count_unreachable=False
    )
    worst = 0.0
    raw = 0.0
    for i, (u, v) in enumerate(pairs):
        if int(batch.reasons[i]) != DELIVERED:
            return Check(
                passed=False,
                value=math.inf,
                bound=ratio_limit,
                detail=f"reachable pair ({u}, {v}) undelivered by backbone routing",
            )
        routed = float(batch.lengths[i])
        worst = max(worst, (routed - additive) / d_base[u][v])
        raw = max(raw, routed / d_base[u][v])
    return _bounded(
        worst,
        ratio_limit,
        detail=f"max (routed - 24.5r) / d_UDG; raw stretch {raw:.3f}",
    )


def _lemma3_messages(ctx: "PipelineBuild") -> Check:
    worst = ctx.backbone.stats_cds.max_per_node()
    return _bounded(
        float(worst),
        float(LEMMA3_MAX_MESSAGES),
        detail="max CDS messages per node",
    )


def _sharded_identity(ctx: "PipelineBuild") -> Check:
    from repro.sharding.build import sharded_pldel

    result, _ = sharded_pldel(
        list(ctx.deployment.points),
        ctx.deployment.radius,
        shards=4,
        executor_mode="serial",
    )
    same = result.graph.edge_set() == ctx.graph.edge_set()
    diff = len(result.graph.edge_set() ^ ctx.graph.edge_set())
    return Check(
        passed=same,
        value=float(diff),
        bound=0.0,
        detail="" if same else f"{diff} edges differ sharded vs serial",
    )


def _soa_identity(ctx: "PipelineBuild") -> Check:
    from repro.core.compat import numpy_disabled
    from repro.topology.ldel import planar_local_delaunay_graph

    with numpy_disabled():
        reference = planar_local_delaunay_graph(ctx.deployment.udg()).graph
    same = reference.edge_set() == ctx.graph.edge_set()
    diff = len(reference.edge_set() ^ ctx.graph.edge_set())
    return Check(
        passed=same,
        value=float(diff),
        bound=0.0,
        detail="" if same else f"{diff} edges differ SoA vs pure-python",
    )


def _udg_edge_rule(ctx: "PipelineBuild") -> Check:
    from repro.geometry.primitives import dist_sq

    pos = ctx.udg.positions
    r_sq = ctx.udg.radius**2
    violations = 0
    for u in range(ctx.udg.node_count):
        for v in range(u + 1, ctx.udg.node_count):
            within = dist_sq(pos[u], pos[v]) <= r_sq
            if within != ctx.udg.has_edge(u, v):
                violations += 1
    return Check(
        passed=violations == 0,
        value=float(violations),
        bound=0.0,
        detail="" if not violations else f"{violations} pairs violate the disk rule",
    )


def _quasi_link_bounds(ctx: "PipelineBuild") -> Check:
    from repro.geometry.primitives import dist_sq

    pos = ctx.udg.positions
    inner_sq = (ctx.epsilon * ctx.udg.radius) ** 2
    outer_sq = ctx.udg.radius**2
    violations = 0
    for u in range(ctx.udg.node_count):
        for v in range(u + 1, ctx.udg.node_count):
            d_sq = dist_sq(pos[u], pos[v])
            if d_sq <= inner_sq and not ctx.udg.has_edge(u, v):
                violations += 1  # reliable zone must be connected
            elif d_sq > outer_sq and ctx.udg.has_edge(u, v):
                violations += 1  # beyond r must not be
    return Check(
        passed=violations == 0,
        value=float(violations),
        bound=0.0,
        detail="" if not violations else f"{violations} pairs violate quasi zones",
    )


#: The catalog, in matrix-column order.
INVARIANTS: tuple[Invariant, ...] = (
    Invariant(
        name="udg-edge-rule",
        description="UDG adjacency is exactly the <= r disk rule",
        pipelines=("udg",),
        models=("udg",),
        metric=_udg_edge_rule,
        kind="model",
    ),
    Invariant(
        name="quasi-link-bounds",
        description="quasi-UDG keeps every link <= eps*r and none beyond r",
        pipelines=("udg",),
        models=("quasi",),
        metric=_quasi_link_bounds,
        kind="model",
    ),
    Invariant(
        name="planarity",
        description="no two edges cross in the embedding",
        pipelines=("gg", "ldel", "backbone"),
        metric=_planarity,
        kind="boolean",
    ),
    Invariant(
        name="connectivity",
        description="structure preserves the radio graph's component partition",
        pipelines=("gg", "ldel", "backbone"),
        metric=_connectivity,
        kind="boolean",
    ),
    Invariant(
        name="domination",
        description="every node is in the backbone or hears a dominator",
        pipelines=("backbone",),
        metric=_domination,
        kind="boolean",
    ),
    Invariant(
        name="degree-bound",
        description="ICDS degree <= Lemma 8's constant (scaled 1/eps^2 for quasi)",
        pipelines=("backbone",),
        metric=_degree_bound,
    ),
    Invariant(
        name="length-stretch",
        description="PLDel length stretch <= 2.5 (2.5/eps for quasi)",
        pipelines=("ldel",),
        metric=_length_stretch,
    ),
    Invariant(
        name="power-stretch",
        description="Gabriel power stretch is exactly 1 (disk model only)",
        pipelines=("gg",),
        models=("udg",),
        metric=_power_stretch,
    ),
    Invariant(
        name="hop-bound",
        description="Lemma 5: CDS' hops <= 3h + 2",
        pipelines=("backbone",),
        metric=_hop_bound,
    ),
    Invariant(
        name="length-bound",
        description="Lemma 6: CDS' length <= 6d + 5r (ratio 6/eps for quasi)",
        pipelines=("backbone",),
        metric=_length_bound,
    ),
    Invariant(
        name="route-stretch",
        description="batch-routed length <= 15d + 24.5r (Lemma 6 x planarization)",
        pipelines=("backbone",),
        models=("udg",),
        metric=_route_stretch,
    ),
    Invariant(
        name="lemma3-messages",
        description="constant messages per node during CDS construction",
        pipelines=("backbone",),
        metric=_lemma3_messages,
    ),
    Invariant(
        name="sharded-identity",
        description="sharded PLDel is bit-identical to the serial build",
        pipelines=("ldel",),
        models=("udg",),
        metric=_sharded_identity,
        kind="identity",
    ),
    Invariant(
        name="soa-identity",
        description="SoA-kernel PLDel is bit-identical to the pure-python reference",
        pipelines=("ldel",),
        metric=_soa_identity,
        kind="identity",
    ),
)

INDEX: dict[str, Invariant] = {inv.name: inv for inv in INVARIANTS}


def invariant_listing() -> list[dict]:
    """JSON-ready catalog (for ``GET /invariants`` and the docs)."""
    return [
        {
            "name": inv.name,
            "description": inv.description,
            "pipelines": list(inv.pipelines),
            "models": list(inv.models),
            "kind": inv.kind,
        }
        for inv in INVARIANTS
    ]

