"""The pass/fail matrix: cells plus JSON / markdown / text renderings.

The JSON document (schema ``repro/validation-matrix/v1``) is the
artifact the nightly farm uploads; the markdown rendering is what
lands in ``$GITHUB_STEP_SUMMARY``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

SCHEMA = "repro/validation-matrix/v1"

_SYMBOLS = {"pass": "✅", "fail": "❌", "skip": "⏭️", "error": "💥"}


@dataclass
class CellResult:
    """One (entry, pipeline, invariant) evaluation."""

    entry: str
    index: int
    pipeline: str
    invariant: str
    status: str  # pass | fail | skip | error
    value: Optional[float] = None
    bound: Optional[float] = None
    detail: str = ""
    seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "entry": self.entry,
            "index": self.index,
            "pipeline": self.pipeline,
            "invariant": self.invariant,
            "status": self.status,
            "value": self.value,
            "bound": self.bound,
            "detail": self.detail,
            "seconds": round(self.seconds, 4),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        return cls(
            entry=data["entry"],
            index=data["index"],
            pipeline=data["pipeline"],
            invariant=data["invariant"],
            status=data["status"],
            value=data.get("value"),
            bound=data.get("bound"),
            detail=data.get("detail", ""),
            seconds=data.get("seconds", 0.0),
        )

    @property
    def instance(self) -> str:
        return f"{self.entry}/{self.index}"


@dataclass
class ValidationMatrix:
    """Every cell of one validation run plus run metadata."""

    cells: list[CellResult] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def summary(self) -> dict[str, int]:
        counts = {"pass": 0, "fail": 0, "skip": 0, "error": 0}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        summary = self.summary
        return summary["fail"] == 0 and summary["error"] == 0

    def problems(self) -> list[CellResult]:
        return [c for c in self.cells if c.status in ("fail", "error")]

    def to_json_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "meta": self.meta,
            "summary": self.summary,
            "ok": self.ok,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    # -- renderings ---------------------------------------------------

    def _pipelines(self) -> list[str]:
        order = self.meta.get("pipelines") or []
        seen = {cell.pipeline for cell in self.cells}
        listed = [p for p in order if p in seen]
        return listed + sorted(seen - set(listed))

    def _columns(self, pipeline: str) -> list[str]:
        order = self.meta.get("invariants") or []
        seen = {c.invariant for c in self.cells if c.pipeline == pipeline}
        listed = [i for i in order if i in seen]
        return listed + sorted(seen - set(listed))

    def _instances(self) -> list[str]:
        instances: list[str] = []
        for cell in self.cells:
            if cell.instance not in instances:
                instances.append(cell.instance)
        return instances

    def to_markdown(self) -> str:
        summary = self.summary
        lines = [
            "## Validation matrix",
            "",
            f"**{summary['pass']} pass** · {summary['fail']} fail · "
            f"{summary['error']} error · {summary['skip']} skipped "
            f"({self.meta.get('elapsed_s', '?')}s, "
            f"executor={self.meta.get('executor', '?')})",
        ]
        index = {
            (c.instance, c.pipeline, c.invariant): c for c in self.cells
        }
        for pipeline in self._pipelines():
            columns = self._columns(pipeline)
            if not columns:
                continue
            lines += ["", f"### `{pipeline}`", ""]
            lines.append("| instance | " + " | ".join(columns) + " |")
            lines.append("|---" * (len(columns) + 1) + "|")
            for instance in self._instances():
                row = [f"`{instance}`"]
                touched = False
                for col in columns:
                    cell = index.get((instance, pipeline, col))
                    if cell is None:
                        row.append("—")
                    else:
                        touched = True
                        row.append(_SYMBOLS.get(cell.status, cell.status))
                if touched:
                    lines.append("| " + " | ".join(row) + " |")
        problems = self.problems()
        if problems:
            lines += ["", "### Failures", ""]
            for cell in problems:
                measured = ""
                if cell.value is not None:
                    measured = f" (value {cell.value:.6g}"
                    if cell.bound is not None:
                        measured += f", bound {cell.bound:.6g}"
                    measured += ")"
                lines.append(
                    f"- `{cell.instance}` · `{cell.pipeline}` · "
                    f"**{cell.invariant}**: {cell.status}{measured}"
                    + (f" — {cell.detail}" if cell.detail else "")
                )
        return "\n".join(lines) + "\n"

    def to_text(self) -> str:
        summary = self.summary
        lines = [
            f"validation: {summary['pass']} pass, {summary['fail']} fail, "
            f"{summary['error']} error, {summary['skip']} skip"
        ]
        for cell in self.cells:
            if cell.status == "pass":
                continue
            measured = ""
            if cell.value is not None:
                measured = f" value={cell.value:.6g}"
                if cell.bound is not None:
                    measured += f" bound={cell.bound:.6g}"
            lines.append(
                f"  {cell.status.upper():5s} {cell.instance} {cell.pipeline} "
                f"{cell.invariant}{measured}"
                + (f" :: {cell.detail}" if cell.detail else "")
            )
        if self.ok:
            lines.append("  all invariants hold")
        return "\n".join(lines) + "\n"
