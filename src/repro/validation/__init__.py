"""Declarative invariant validation over the scenario corpus.

:mod:`repro.validation.invariants` declares WHAT must hold (the
paper's guarantees plus the implementation's bit-identity contracts),
:mod:`repro.validation.engine` evaluates invariants against pipeline x
corpus-entry cells, and :mod:`repro.validation.matrix` renders the
result as the machine-readable pass/fail matrix the CI farm publishes.
"""

from repro.validation.engine import PIPELINES, run_validation, validate_entry
from repro.validation.invariants import INVARIANTS, Check, Invariant, invariant_listing
from repro.validation.matrix import CellResult, ValidationMatrix

__all__ = [
    "PIPELINES",
    "run_validation",
    "validate_entry",
    "INVARIANTS",
    "Check",
    "Invariant",
    "invariant_listing",
    "CellResult",
    "ValidationMatrix",
]
