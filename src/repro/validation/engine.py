"""Evaluate the invariant catalog against pipeline x corpus cells.

One corpus entry is the unit of fan-out: the worker regenerates the
deployment, builds every requested pipeline once (sharing the radio
graph and one :class:`DistanceOracle` across them), and evaluates each
applicable invariant.  Entries run serially, threaded, or across
processes via the service executor — the worker and its task tuples
are picklable by construction.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.oracle import DistanceOracle
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.backbone import BackbonePipelineResult, run_backbone_pipeline
from repro.service.executor import run_batch
from repro.topology.gabriel import gabriel_graph
from repro.topology.ldel import planar_local_delaunay_graph
from repro.validation.invariants import INDEX, INVARIANTS, Invariant
from repro.validation.matrix import CellResult, ValidationMatrix
from repro.workloads.corpus import CORPUS, CorpusEntry, select_entries
from repro.workloads.generators import Deployment

#: Pipelines a cell can name: the raw radio graph (model-rule checks),
#: the two spanners, and the full backbone construction.
PIPELINES = ("udg", "gg", "ldel", "backbone")


@dataclass
class PipelineBuild:
    """Everything a metric may inspect for one (entry, pipeline) cell."""

    pipeline: str
    entry: CorpusEntry
    index: int
    deployment: Deployment
    udg: UnitDiskGraph
    graph: Graph
    oracle: DistanceOracle
    backbone: Optional[BackbonePipelineResult] = None

    @property
    def model(self) -> str:
        return self.entry.model

    @property
    def epsilon(self) -> float:
        return self.entry.epsilon


def _resolve_pipelines(pipelines: Sequence[str]) -> tuple[str, ...]:
    if not pipelines:
        return PIPELINES
    unknown = sorted(set(pipelines) - set(PIPELINES))
    if unknown:
        raise KeyError(f"unknown pipelines {unknown}; known: {list(PIPELINES)}")
    return tuple(p for p in PIPELINES if p in set(pipelines))


def _resolve_invariants(invariants: Sequence[str]) -> tuple[Invariant, ...]:
    if not invariants:
        return INVARIANTS
    unknown = sorted(set(invariants) - set(INDEX))
    if unknown:
        raise KeyError(f"unknown invariants {unknown}; known: {sorted(INDEX)}")
    wanted = set(invariants)
    return tuple(inv for inv in INVARIANTS if inv.name in wanted)


def _build_context(
    pipeline: str,
    entry: CorpusEntry,
    index: int,
    deployment: Deployment,
    udg: UnitDiskGraph,
    oracle: DistanceOracle,
    backbone: Optional[BackbonePipelineResult],
) -> PipelineBuild:
    if pipeline == "udg":
        graph: Graph = udg
    elif pipeline == "gg":
        graph = gabriel_graph(udg)
    elif pipeline == "ldel":
        graph = planar_local_delaunay_graph(udg).graph
    elif pipeline == "backbone":
        assert backbone is not None
        graph = backbone.ldel_icds
    else:  # pragma: no cover - guarded by _resolve_pipelines
        raise KeyError(pipeline)
    return PipelineBuild(
        pipeline=pipeline,
        entry=entry,
        index=index,
        deployment=deployment,
        udg=udg,
        graph=graph,
        oracle=oracle,
        backbone=backbone,
    )


def validate_entry(
    entry: CorpusEntry,
    index: int = 0,
    pipelines: Sequence[str] = (),
    invariants: Sequence[str] = (),
) -> list[CellResult]:
    """Evaluate every applicable invariant for one corpus instance."""
    pipes = _resolve_pipelines(pipelines)
    catalog = _resolve_invariants(invariants)
    deployment = entry.instance(index)
    udg = deployment.udg()
    oracle = DistanceOracle(udg)
    backbone = (
        run_backbone_pipeline(udg, mode="fast") if "backbone" in pipes else None
    )
    cells: list[CellResult] = []
    for pipeline in pipes:
        ctx = _build_context(pipeline, entry, index, deployment, udg, oracle, backbone)
        for inv in catalog:
            if not inv.applies_to(pipeline):
                continue
            started = time.perf_counter()
            if not inv.covers_model(entry.model):
                cells.append(
                    CellResult(
                        entry=entry.name,
                        index=index,
                        pipeline=pipeline,
                        invariant=inv.name,
                        status="skip",
                        detail=f"not covered for model {entry.model!r}",
                    )
                )
                continue
            try:
                check = inv.metric(ctx)
                status = "pass" if check.passed else "fail"
                cells.append(
                    CellResult(
                        entry=entry.name,
                        index=index,
                        pipeline=pipeline,
                        invariant=inv.name,
                        status=status,
                        value=check.value,
                        bound=check.bound,
                        detail=check.detail,
                        seconds=time.perf_counter() - started,
                    )
                )
            except Exception as exc:  # noqa: BLE001 - farm must report, not die
                cells.append(
                    CellResult(
                        entry=entry.name,
                        index=index,
                        pipeline=pipeline,
                        invariant=inv.name,
                        status="error",
                        detail="".join(
                            traceback.format_exception_only(type(exc), exc)
                        ).strip(),
                        seconds=time.perf_counter() - started,
                    )
                )
    return cells


def _entry_worker(task: tuple) -> list[dict]:
    """Picklable per-entry worker for the batch executor."""
    name, index, pipelines, invariants = task
    entry = CORPUS[name]
    return [cell.to_dict() for cell in validate_entry(entry, index, pipelines, invariants)]


def run_validation(
    corpus: Sequence[str] = (),
    pipelines: Sequence[str] = (),
    invariants: Sequence[str] = (),
    *,
    executor: str = "serial",
    max_workers: Optional[int] = None,
) -> ValidationMatrix:
    """Run the invariant matrix over the selected corpus slice.

    ``corpus`` takes entry names, ``name/index`` specs, or tags (the
    blocking PR job passes ``["smoke"]``); empty selections mean
    "everything".  ``executor`` picks the batch mode (``serial`` /
    ``thread`` / ``process``); a worker that dies becomes an ``error``
    cell rather than sinking the run.
    """
    selected = select_entries(corpus)
    pipes = _resolve_pipelines(pipelines)
    catalog = _resolve_invariants(invariants)
    inv_names = tuple(inv.name for inv in catalog)

    started = time.perf_counter()
    tasks = [(entry.name, index, pipes, inv_names) for entry, index in selected]
    outcome = run_batch(
        tasks,
        _entry_worker,
        mode=executor,
        max_workers=max_workers,
        metric_name="validation.entry",
    )
    cells: list[CellResult] = []
    for task, task_outcome in zip(tasks, outcome.outcomes):
        if task_outcome.ok:
            cells.extend(CellResult.from_dict(d) for d in task_outcome.value)
        else:
            # The whole entry failed to build (generator error, pickle
            # trouble, worker crash): one error cell per invariant so
            # the hole is visible in every column.
            name, index, _, _ = task
            detail = str(getattr(task_outcome, "error", "worker failed"))
            for pipeline in pipes:
                for inv in catalog:
                    if inv.applies_to(pipeline):
                        cells.append(
                            CellResult(
                                entry=name,
                                index=index,
                                pipeline=pipeline,
                                invariant=inv.name,
                                status="error",
                                detail=detail,
                            )
                        )
    meta = {
        "corpus": list(corpus),
        "entries": [f"{entry.name}/{index}" for entry, index in selected],
        "pipelines": list(pipes),
        "invariants": list(inv_names),
        "executor": executor,
        "elapsed_s": round(time.perf_counter() - started, 3),
    }
    return ValidationMatrix(cells=cells, meta=meta)
