"""Interop exports: GraphML and DOT renderings of embedded graphs.

For handing constructed topologies to external tools (Gephi, yEd,
NetworkX pipelines, Graphviz).  Positions travel as standard node
attributes (``x``/``y`` in GraphML, ``pos`` in DOT); edge lengths ride
along so downstream tools can weight layouts without recomputing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Union
from xml.sax.saxutils import escape, quoteattr

from repro.graphs.graph import Graph

PathLike = Union[str, Path]


def graph_to_graphml(graph: Graph, *, roles: Optional[Mapping[int, str]] = None) -> str:
    """GraphML document for ``graph`` (positions + lengths + roles)."""
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">',
        '<key id="x" for="node" attr.name="x" attr.type="double"/>',
        '<key id="y" for="node" attr.name="y" attr.type="double"/>',
        '<key id="role" for="node" attr.name="role" attr.type="string"/>',
        '<key id="length" for="edge" attr.name="length" attr.type="double"/>',
        f"<graph id={quoteattr(graph.name)} edgedefault=\"undirected\">",
    ]
    for node in graph.nodes():
        p = graph.positions[node]
        role = (roles or {}).get(node, "")
        lines.append(
            f'<node id="n{node}">'
            f'<data key="x">{p.x!r}</data>'
            f'<data key="y">{p.y!r}</data>'
            f'<data key="role">{escape(role)}</data>'
            "</node>"
        )
    for i, (u, v) in enumerate(sorted(graph.edges())):
        lines.append(
            f'<edge id="e{i}" source="n{u}" target="n{v}">'
            f'<data key="length">{graph.edge_length(u, v)!r}</data>'
            "</edge>"
        )
    lines.append("</graph>")
    lines.append("</graphml>")
    return "\n".join(lines)


def graph_to_dot(graph: Graph, *, roles: Optional[Mapping[int, str]] = None) -> str:
    """Graphviz DOT document for ``graph``.

    Positions use the ``pos="x,y!"`` pin syntax understood by
    ``neato -n``; roles map to shapes matching the SVG renderer's
    convention (squares for backbone nodes).
    """
    safe_name = "".join(c if c.isalnum() else "_" for c in graph.name)
    lines = [f"graph {safe_name} {{", "  node [fixedsize=true, width=0.15];"]
    for node in graph.nodes():
        p = graph.positions[node]
        role = (roles or {}).get(node, "")
        shape = "box" if role in ("dominator", "connector") else "circle"
        lines.append(
            f'  n{node} [pos="{p.x:.3f},{p.y:.3f}!", shape={shape}'
            + (f', tooltip="{role}"' if role else "")
            + "];"
        )
    for u, v in sorted(graph.edges()):
        lines.append(f"  n{u} -- n{v};")
    lines.append("}")
    return "\n".join(lines)


def save_graphml(graph: Graph, path: PathLike, *, roles=None) -> None:
    """Write ``graph`` to ``path`` as GraphML."""
    Path(path).write_text(graph_to_graphml(graph, roles=roles))


def save_dot(graph: Graph, path: PathLike, *, roles=None) -> None:
    """Write ``graph`` to ``path`` as Graphviz DOT."""
    Path(path).write_text(graph_to_dot(graph, roles=roles))
