"""Node-deployment workload generators for the experiments."""

from repro.workloads.generators import (
    Deployment,
    clustered_points,
    connected_udg_instance,
    corridor_points,
    grid_points,
    uniform_points,
)
from repro.workloads.corpus import CORPUS, CorpusEntry, get_instance
from repro.workloads.io import (
    load_deployment,
    load_graph,
    save_deployment,
    save_graph,
)
from repro.workloads.export import save_dot, save_graphml

__all__ = [
    "Deployment",
    "clustered_points",
    "connected_udg_instance",
    "corridor_points",
    "grid_points",
    "uniform_points",
    "CORPUS",
    "CorpusEntry",
    "get_instance",
    "load_deployment",
    "load_graph",
    "save_deployment",
    "save_graph",
    "save_dot",
    "save_graphml",
]
