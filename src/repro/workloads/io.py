"""Serialization: save and load deployments and graphs as JSON.

Experiment reproducibility plumbing: a deployment (points + region +
radius) or a constructed topology (positions + edges) round-trips
through a stable JSON schema, so benchmark inputs and backbone outputs
can be archived and diffed across runs or machines.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Union

from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.workloads.generators import Deployment, QuasiDeployment

_SCHEMA_DEPLOYMENT = "repro/deployment/v1"
_SCHEMA_GRAPH = "repro/graph/v1"

PathLike = Union[str, Path]


def deployment_to_dict(deployment: Deployment) -> dict:
    """JSON-ready representation of a deployment.

    Quasi-UDG deployments add a ``model`` block carrying the gray-zone
    knobs; plain deployments omit it, so v1 documents written before
    the quasi model stay loadable unchanged.
    """
    data = {
        "schema": _SCHEMA_DEPLOYMENT,
        "side": deployment.side,
        "radius": deployment.radius,
        "points": [[p.x, p.y] for p in deployment.points],
    }
    if isinstance(deployment, QuasiDeployment):
        data["model"] = {
            "kind": "quasi",
            "epsilon": deployment.epsilon,
            "link_seed": deployment.link_seed,
            "keep_probability": deployment.keep_probability,
        }
    return data


def deployment_from_dict(data: dict) -> Deployment:
    """Inverse of :func:`deployment_to_dict` (validates the schema tag)."""
    if data.get("schema") != _SCHEMA_DEPLOYMENT:
        raise ValueError(f"not a deployment document: {data.get('schema')!r}")
    points = tuple(Point(float(x), float(y)) for x, y in data["points"])
    model = data.get("model")
    if model is not None:
        if model.get("kind") != "quasi":
            raise ValueError(f"unknown radio model {model.get('kind')!r}")
        return QuasiDeployment(
            points=points,
            side=float(data["side"]),
            radius=float(data["radius"]),
            epsilon=float(model["epsilon"]),
            link_seed=int(model["link_seed"]),
            keep_probability=float(model["keep_probability"]),
        )
    return Deployment(
        points=points, side=float(data["side"]), radius=float(data["radius"])
    )


def save_deployment(deployment: Deployment, path: PathLike) -> None:
    """Write a deployment to ``path`` as JSON."""
    Path(path).write_text(json.dumps(deployment_to_dict(deployment), indent=1))


def load_deployment(path: PathLike) -> Deployment:
    """Read a deployment written by :func:`save_deployment`."""
    return deployment_from_dict(json.loads(Path(path).read_text()))


def points_fingerprint(points: Iterable[tuple[float, float]]) -> str:
    """Stable content hash of an ordered point sequence.

    Coordinates are hashed via ``float.hex`` so the fingerprint is
    bit-exact (no decimal rounding ambiguity) and identical across
    platforms and process restarts.  Order matters: node ids are
    positional throughout the codebase.
    """
    digest = hashlib.sha256()
    for x, y in points:
        digest.update(float(x).hex().encode())
        digest.update(b",")
        digest.update(float(y).hex().encode())
        digest.update(b";")
    return digest.hexdigest()


def deployment_fingerprint(deployment: Deployment) -> str:
    """Content hash of a deployment: points + radius (side excluded).

    The side only describes the sampling region; every construction
    depends on points and radius alone, so two deployments with equal
    fingerprints yield identical topologies.
    """
    digest = hashlib.sha256()
    digest.update(points_fingerprint(deployment.points).encode())
    digest.update(b"|r=")
    digest.update(float(deployment.radius).hex().encode())
    if isinstance(deployment, QuasiDeployment):
        # The gray-zone knobs change the link set, hence the topology.
        digest.update(b"|quasi:")
        digest.update(float(deployment.epsilon).hex().encode())
        digest.update(b",")
        digest.update(str(deployment.link_seed).encode())
        digest.update(b",")
        digest.update(float(deployment.keep_probability).hex().encode())
    return digest.hexdigest()


def graph_to_dict(graph: Graph) -> dict:
    """JSON-ready representation of an embedded graph."""
    return {
        "schema": _SCHEMA_GRAPH,
        "name": graph.name,
        "positions": [[p.x, p.y] for p in graph.positions],
        "edges": sorted(graph.edges()),
    }


def graph_from_dict(data: dict) -> Graph:
    """Inverse of :func:`graph_to_dict` (validates the schema tag)."""
    if data.get("schema") != _SCHEMA_GRAPH:
        raise ValueError(f"not a graph document: {data.get('schema')!r}")
    positions = [Point(float(x), float(y)) for x, y in data["positions"]]
    edges = [(int(u), int(v)) for u, v in data["edges"]]
    return Graph(positions, edges, name=data.get("name", "graph"))


def save_graph(graph: Graph, path: PathLike) -> None:
    """Write an embedded graph to ``path`` as JSON."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=1))


def load_graph(path: PathLike) -> Graph:
    """Read a graph written by :func:`save_graph`."""
    return graph_from_dict(json.loads(Path(path).read_text()))
