"""Random node deployments.

The paper's simulations place ``n`` nodes uniformly at random in a
square and keep only instances whose unit disk graph is connected;
:func:`connected_udg_instance` reproduces exactly that sampling loop.
The clustered / grid / corridor generators exercise the constructions
on the non-uniform deployments a real sensor field produces (the
intro's motivating scenario).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.geometry.primitives import Point
from repro.graphs.paths import is_connected
from repro.graphs.udg import UnitDiskGraph


@dataclass(frozen=True)
class Deployment:
    """A sampled deployment: the points, the region side, and the radius."""

    points: tuple[Point, ...]
    side: float
    radius: float

    def udg(self) -> UnitDiskGraph:
        """Unit disk graph of this deployment."""
        return UnitDiskGraph(list(self.points), self.radius)


@dataclass(frozen=True)
class QuasiDeployment(Deployment):
    """A deployment whose radio model is the quasi-UDG gray zone.

    ``udg()`` yields a :class:`~repro.graphs.quasi.QuasiUnitDiskGraph`:
    links are guaranteed below ``epsilon * radius``, impossible beyond
    ``radius``, and hash-decided (by ``link_seed``) in between — the
    Damian-Pemmaraju model the validation farm checks the paper's
    invariants under.
    """

    epsilon: float = 0.75
    link_seed: int = 0
    keep_probability: float = 0.6

    def udg(self) -> UnitDiskGraph:
        from repro.graphs.quasi import QuasiUnitDiskGraph

        return QuasiUnitDiskGraph(
            list(self.points),
            self.radius,
            epsilon=self.epsilon,
            link_seed=self.link_seed,
            keep_probability=self.keep_probability,
        )


def uniform_points(n: int, side: float, rng: random.Random) -> list[Point]:
    """``n`` points uniform in the ``side x side`` square."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return [Point(rng.uniform(0.0, side), rng.uniform(0.0, side)) for _ in range(n)]


def clustered_points(
    n: int,
    side: float,
    rng: random.Random,
    *,
    clusters: int = 5,
    spread_fraction: float = 0.08,
) -> list[Point]:
    """``n`` points in Gaussian clusters around random centers.

    Models dense sensor pockets (e.g. instruments around points of
    interest) with sparse space between them.
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    centers = [
        Point(rng.uniform(0.15 * side, 0.85 * side), rng.uniform(0.15 * side, 0.85 * side))
        for _ in range(clusters)
    ]
    spread = spread_fraction * side
    points: list[Point] = []
    for i in range(n):
        cx, cy = centers[i % clusters]
        x = min(max(rng.gauss(cx, spread), 0.0), side)
        y = min(max(rng.gauss(cy, spread), 0.0), side)
        points.append(Point(x, y))
    return points


def grid_points(n: int, side: float, rng: random.Random, *, jitter: float = 0.1) -> list[Point]:
    """Roughly ``n`` points on a jittered grid covering the square.

    Models an engineered deployment (sensors dropped on a survey
    grid).  The actual count is the nearest perfect square >= ``n``,
    truncated back to ``n``.
    """
    per_side = max(1, math.ceil(math.sqrt(n)))
    step = side / per_side
    points: list[Point] = []
    for i in range(per_side):
        for j in range(per_side):
            if len(points) == n:
                return points
            x = (i + 0.5 + rng.uniform(-jitter, jitter)) * step
            y = (j + 0.5 + rng.uniform(-jitter, jitter)) * step
            points.append(Point(min(max(x, 0.0), side), min(max(y, 0.0), side)))
    return points


def corridor_points(
    n: int, side: float, rng: random.Random, *, width_fraction: float = 0.12
) -> list[Point]:
    """``n`` points in a thin horizontal strip across the square.

    Models vehicles or sensors along a road — the elongated topology
    where hop counts are large and spanner quality matters most.
    """
    width = width_fraction * side
    y0 = (side - width) / 2.0
    return [
        Point(rng.uniform(0.0, side), y0 + rng.uniform(0.0, width)) for _ in range(n)
    ]


def hotspot_points(
    n: int,
    side: float,
    rng: random.Random,
    *,
    hotspots: int = 3,
    background_fraction: float = 0.35,
    spread_fraction: float = 0.06,
) -> list[Point]:
    """Uniform background traffic plus dense Gaussian hotspots.

    Unlike :func:`clustered_points` (every point in a cluster, round-
    robin), each point first flips for the uniform background; the rest
    pick a random hotspot.  Models a city: sparse coverage everywhere,
    sharp density spikes around gathering points.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if hotspots < 1:
        raise ValueError("need at least one hotspot")
    if not 0.0 <= background_fraction <= 1.0:
        raise ValueError("background_fraction must be in [0, 1]")
    centers = [
        Point(rng.uniform(0.15 * side, 0.85 * side), rng.uniform(0.15 * side, 0.85 * side))
        for _ in range(hotspots)
    ]
    spread = spread_fraction * side
    points: list[Point] = []
    for _ in range(n):
        if rng.random() < background_fraction:
            points.append(Point(rng.uniform(0.0, side), rng.uniform(0.0, side)))
        else:
            cx, cy = centers[rng.randrange(hotspots)]
            x = min(max(rng.gauss(cx, spread), 0.0), side)
            y = min(max(rng.gauss(cy, spread), 0.0), side)
            points.append(Point(x, y))
    return points


def gradient_points(
    n: int, side: float, rng: random.Random, *, gamma: float = 2.0
) -> list[Point]:
    """Density increasing along x as ``x**gamma`` (inverse-CDF sampled).

    One region spanning sub-critical to super-critical density — the
    regime where a construction's behaviour at the sparse fringe and
    the dense core must coexist in one instance.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if gamma < 0.0:
        raise ValueError("gamma must be non-negative")
    exponent = 1.0 / (gamma + 1.0)
    return [
        Point(side * rng.random() ** exponent, rng.uniform(0.0, side))
        for _ in range(n)
    ]


def obstacle_points(
    n: int,
    side: float,
    rng: random.Random,
    *,
    corridor_fraction: float = 0.34,
    max_attempts_per_point: int = 1000,
) -> list[Point]:
    """Points confined to a cross of corridors between obstacle blocks.

    The reachable region is the union of a horizontal and a vertical
    strip of width ``corridor_fraction * side`` through the center —
    non-convex, with four obstacle corners no straight radio path may
    shortcut.  Rejection-sampled uniform over the cross.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 < corridor_fraction <= 1.0:
        raise ValueError("corridor_fraction must be in (0, 1]")
    half = 0.5 * corridor_fraction * side
    center = 0.5 * side
    points: list[Point] = []
    for _ in range(n):
        for _ in range(max_attempts_per_point):
            x = rng.uniform(0.0, side)
            y = rng.uniform(0.0, side)
            if abs(x - center) <= half or abs(y - center) <= half:
                points.append(Point(x, y))
                break
        else:  # pragma: no cover - corridor_fraction > 0 always admits points
            raise RuntimeError("rejection sampling starved")
    return points


def mobility_snapshot_points(
    n: int,
    side: float,
    rng: random.Random,
    *,
    warmup: float = 60.0,
    warmup_steps: int = 8,
    speed_range: tuple[float, float] = (1.0, 5.0),
    pause_range: tuple[float, float] = (0.0, 2.0),
) -> list[Point]:
    """A deployment frozen out of a random-waypoint trace.

    Uniform initial placement, then ``warmup`` time units of
    random-waypoint motion (:mod:`repro.mobility.waypoint`) in
    ``warmup_steps`` increments; the snapshot after warm-up shows the
    waypoint model's stationary center bias — the distribution a
    mobile network actually presents, rather than the uniform one it
    was booted with.
    """
    from repro.mobility.waypoint import RandomWaypointModel

    if warmup < 0.0:
        raise ValueError("warmup must be non-negative")
    if warmup_steps < 1:
        raise ValueError("warmup_steps must be positive")
    initial = uniform_points(n, side, rng)
    model = RandomWaypointModel(
        initial, side, rng, speed_range=speed_range, pause_range=pause_range
    )
    dt = warmup / warmup_steps
    for _ in range(warmup_steps):
        model.step(dt)
    return model.positions()


#: Generator registry: every named point-placement family.  Each maps
#: ``(n, side, rng, **params)`` to a point list; the corpus and the CLI
#: address them by these names.
GENERATORS: dict[str, Any] = {
    "uniform": uniform_points,
    "clustered": clustered_points,
    "grid": grid_points,
    "corridor": corridor_points,
    "hotspot": hotspot_points,
    "gradient": gradient_points,
    "obstacle": obstacle_points,
    "mobility": mobility_snapshot_points,
}

#: Radio models a deployment can carry: the paper's sharp-threshold
#: unit disk, or the quasi-UDG gray zone of Damian-Pemmaraju.
MODELS = ("udg", "quasi")


def connected_udg_instance(
    n: int,
    side: float,
    radius: float,
    rng: random.Random,
    *,
    max_attempts: int = 1000,
    generator: str = "uniform",
    generator_params: Optional[Mapping[str, Any]] = None,
    model: str = "udg",
    epsilon: float = 0.75,
    keep_probability: float = 0.6,
) -> Deployment:
    """Sample deployments until the radio graph is connected.

    This mirrors the paper's experimental loop ("we generate UDG(V) and
    test the connectivity ... if it is connected, we construct
    different topologies").  ``generator`` names a family in
    :data:`GENERATORS` (``generator_params`` are passed through);
    ``model="quasi"`` samples a quasi-UDG deployment instead, drawing a
    fresh gray-zone ``link_seed`` from ``rng`` per attempt and testing
    connectivity of the *quasi* graph.  Raises :class:`RuntimeError`
    when no connected instance is found within ``max_attempts`` — a
    sign the chosen ``(n, side, radius)`` regime is sub-critical.
    """
    if generator not in GENERATORS:
        raise ValueError(f"unknown generator {generator!r}; known: {sorted(GENERATORS)}")
    if model not in MODELS:
        raise ValueError(f"unknown radio model {model!r}; known: {MODELS}")
    make = GENERATORS[generator]
    params = dict(generator_params or {})
    for _ in range(max_attempts):
        points = make(n, side, rng, **params)
        deployment: Deployment
        if model == "quasi":
            deployment = QuasiDeployment(
                points=tuple(points),
                side=side,
                radius=radius,
                epsilon=epsilon,
                link_seed=rng.randrange(2**32),
                keep_probability=keep_probability,
            )
        else:
            deployment = Deployment(points=tuple(points), side=side, radius=radius)
        if is_connected(deployment.udg()):
            return deployment
    raise RuntimeError(
        f"no connected {model} instance after {max_attempts} attempts "
        f"(n={n}, side={side}, radius={radius}, generator={generator})"
    )
