"""Random node deployments.

The paper's simulations place ``n`` nodes uniformly at random in a
square and keep only instances whose unit disk graph is connected;
:func:`connected_udg_instance` reproduces exactly that sampling loop.
The clustered / grid / corridor generators exercise the constructions
on the non-uniform deployments a real sensor field produces (the
intro's motivating scenario).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.geometry.primitives import Point
from repro.graphs.paths import is_connected
from repro.graphs.udg import UnitDiskGraph


@dataclass(frozen=True)
class Deployment:
    """A sampled deployment: the points, the region side, and the radius."""

    points: tuple[Point, ...]
    side: float
    radius: float

    def udg(self) -> UnitDiskGraph:
        """Unit disk graph of this deployment."""
        return UnitDiskGraph(list(self.points), self.radius)


def uniform_points(n: int, side: float, rng: random.Random) -> list[Point]:
    """``n`` points uniform in the ``side x side`` square."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return [Point(rng.uniform(0.0, side), rng.uniform(0.0, side)) for _ in range(n)]


def clustered_points(
    n: int,
    side: float,
    rng: random.Random,
    *,
    clusters: int = 5,
    spread_fraction: float = 0.08,
) -> list[Point]:
    """``n`` points in Gaussian clusters around random centers.

    Models dense sensor pockets (e.g. instruments around points of
    interest) with sparse space between them.
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    centers = [
        Point(rng.uniform(0.15 * side, 0.85 * side), rng.uniform(0.15 * side, 0.85 * side))
        for _ in range(clusters)
    ]
    spread = spread_fraction * side
    points: list[Point] = []
    for i in range(n):
        cx, cy = centers[i % clusters]
        x = min(max(rng.gauss(cx, spread), 0.0), side)
        y = min(max(rng.gauss(cy, spread), 0.0), side)
        points.append(Point(x, y))
    return points


def grid_points(n: int, side: float, rng: random.Random, *, jitter: float = 0.1) -> list[Point]:
    """Roughly ``n`` points on a jittered grid covering the square.

    Models an engineered deployment (sensors dropped on a survey
    grid).  The actual count is the nearest perfect square >= ``n``,
    truncated back to ``n``.
    """
    per_side = max(1, math.ceil(math.sqrt(n)))
    step = side / per_side
    points: list[Point] = []
    for i in range(per_side):
        for j in range(per_side):
            if len(points) == n:
                return points
            x = (i + 0.5 + rng.uniform(-jitter, jitter)) * step
            y = (j + 0.5 + rng.uniform(-jitter, jitter)) * step
            points.append(Point(min(max(x, 0.0), side), min(max(y, 0.0), side)))
    return points


def corridor_points(
    n: int, side: float, rng: random.Random, *, width_fraction: float = 0.12
) -> list[Point]:
    """``n`` points in a thin horizontal strip across the square.

    Models vehicles or sensors along a road — the elongated topology
    where hop counts are large and spanner quality matters most.
    """
    width = width_fraction * side
    y0 = (side - width) / 2.0
    return [
        Point(rng.uniform(0.0, side), y0 + rng.uniform(0.0, width)) for _ in range(n)
    ]


def connected_udg_instance(
    n: int,
    side: float,
    radius: float,
    rng: random.Random,
    *,
    max_attempts: int = 1000,
    generator: str = "uniform",
) -> Deployment:
    """Sample deployments until the unit disk graph is connected.

    This mirrors the paper's experimental loop ("we generate UDG(V) and
    test the connectivity ... if it is connected, we construct
    different topologies").  Raises :class:`RuntimeError` when no
    connected instance is found within ``max_attempts`` — a sign the
    chosen ``(n, side, radius)`` regime is sub-critical.
    """
    generators = {
        "uniform": uniform_points,
        "clustered": clustered_points,
        "grid": grid_points,
        "corridor": corridor_points,
    }
    if generator not in generators:
        raise ValueError(f"unknown generator {generator!r}")
    make = generators[generator]
    for _ in range(max_attempts):
        points = make(n, side, rng)
        udg = UnitDiskGraph(points, radius)
        if is_connected(udg):
            return Deployment(points=tuple(points), side=side, radius=radius)
    raise RuntimeError(
        f"no connected UDG instance after {max_attempts} attempts "
        f"(n={n}, side={side}, radius={radius}, generator={generator})"
    )
