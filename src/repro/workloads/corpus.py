"""The canonical instance corpus.

Named, seeded deployments frozen for cross-version comparability:
benchmarks and bug reports can say "run on ``paper-table1/0``" and
everyone regenerates bit-identical coordinates.  The corpus mirrors
the calibrated experiment regimes from DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.generators import Deployment, connected_udg_instance


@dataclass(frozen=True)
class CorpusEntry:
    """Recipe for one family of canonical instances."""

    name: str
    n: int
    side: float
    radius: float
    generator: str
    base_seed: int
    description: str

    def instance(self, index: int = 0) -> Deployment:
        """Deterministically regenerate instance ``index`` of the family."""
        if index < 0:
            raise ValueError("index must be non-negative")
        rng = random.Random(self.base_seed * 100_003 + index)
        return connected_udg_instance(
            self.n, self.side, self.radius, rng, generator=self.generator
        )


CORPUS: dict[str, CorpusEntry] = {
    entry.name: entry
    for entry in (
        CorpusEntry(
            name="paper-table1",
            n=100,
            side=200.0,
            radius=60.0,
            generator="uniform",
            base_seed=1001,
            description="Table I regime: 100 nodes, R=60, 200x200 uniform",
        ),
        CorpusEntry(
            name="paper-sparse",
            n=20,
            side=200.0,
            radius=60.0,
            generator="uniform",
            base_seed=1002,
            description="Figure 8-10 low end: 20 nodes at R=60",
        ),
        CorpusEntry(
            name="paper-dense",
            n=500,
            side=200.0,
            radius=60.0,
            generator="uniform",
            base_seed=1003,
            description="Figure 11-12 regime: 500 nodes at R=60",
        ),
        CorpusEntry(
            name="sensor-clusters",
            n=120,
            side=200.0,
            radius=55.0,
            generator="clustered",
            base_seed=1004,
            description="clustered sensor pockets with inter-cluster voids",
        ),
        CorpusEntry(
            name="road-corridor",
            n=90,
            side=300.0,
            radius=45.0,
            generator="corridor",
            base_seed=1005,
            description="elongated corridor: large hop diameter",
        ),
        CorpusEntry(
            name="survey-grid",
            n=100,
            side=200.0,
            radius=40.0,
            generator="grid",
            base_seed=1006,
            description="jittered survey grid: near-degenerate geometry",
        ),
        CorpusEntry(
            name="wide-field",
            n=150,
            side=400.0,
            radius=48.0,
            generator="uniform",
            base_seed=1007,
            description="~10-hop diameter field for locality experiments",
        ),
    )
}


def get_instance(name: str, index: int = 0) -> Deployment:
    """Regenerate corpus instance ``name``/``index``."""
    if name not in CORPUS:
        raise KeyError(
            f"unknown corpus entry {name!r}; have {sorted(CORPUS)}"
        )
    return CORPUS[name].instance(index)
