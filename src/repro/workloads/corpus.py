"""The canonical instance corpus.

Named, seeded deployments frozen for cross-version comparability:
benchmarks and bug reports can say "run on ``paper-table1/0``" and
everyone regenerates bit-identical coordinates.  The corpus mirrors
the calibrated experiment regimes from DESIGN.md, extended with the
validation-farm scenario families (hotspots, density gradients,
obstacle corridors, mobility snapshots, quasi-UDG radio models).

Versioning contract: ``version`` is metadata describing the recipe
revision.  Changing anything that alters the generated coordinates or
link set (n, side, radius, generator, params, model knobs, base_seed)
MUST bump ``version`` *and* ``base_seed`` together — the seed formula
``base_seed * 100_003 + index`` itself is frozen forever, so old
entries keep regenerating bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.workloads.generators import Deployment, connected_udg_instance


@dataclass(frozen=True)
class CorpusEntry:
    """Recipe for one family of canonical instances."""

    name: str
    n: int
    side: float
    radius: float
    generator: str
    base_seed: int
    description: str
    #: Recipe revision (see module docstring); metadata only.
    version: int = 1
    #: Extra keyword arguments for the generator, stored as a sorted
    #: tuple of pairs so the entry stays hashable/frozen.
    generator_params: tuple[tuple[str, Any], ...] = ()
    #: Radio model: ``"udg"`` (paper) or ``"quasi"`` (gray zone).
    model: str = "udg"
    #: Quasi-UDG knobs; ignored for ``model="udg"``.
    epsilon: float = 0.75
    keep_probability: float = 0.6
    #: Free-form labels; ``"smoke"`` marks the fast blocking-CI subset.
    tags: tuple[str, ...] = ()

    def instance(self, index: int = 0) -> Deployment:
        """Deterministically regenerate instance ``index`` of the family."""
        if index < 0:
            raise ValueError("index must be non-negative")
        rng = random.Random(self.base_seed * 100_003 + index)
        return connected_udg_instance(
            self.n,
            self.side,
            self.radius,
            rng,
            generator=self.generator,
            generator_params=dict(self.generator_params),
            model=self.model,
            epsilon=self.epsilon,
            keep_probability=self.keep_probability,
        )

    def to_dict(self) -> dict:
        """JSON-ready recipe listing (for the CLI and the service)."""
        return {
            "name": self.name,
            "n": self.n,
            "side": self.side,
            "radius": self.radius,
            "generator": self.generator,
            "generator_params": dict(self.generator_params),
            "model": self.model,
            "epsilon": self.epsilon if self.model == "quasi" else None,
            "keep_probability": (
                self.keep_probability if self.model == "quasi" else None
            ),
            "base_seed": self.base_seed,
            "version": self.version,
            "tags": list(self.tags),
            "description": self.description,
        }


CORPUS: dict[str, CorpusEntry] = {
    entry.name: entry
    for entry in (
        CorpusEntry(
            name="paper-table1",
            n=100,
            side=200.0,
            radius=60.0,
            generator="uniform",
            base_seed=1001,
            description="Table I regime: 100 nodes, R=60, 200x200 uniform",
        ),
        CorpusEntry(
            name="paper-sparse",
            n=20,
            side=200.0,
            radius=60.0,
            generator="uniform",
            base_seed=1002,
            description="Figure 8-10 low end: 20 nodes at R=60",
            tags=("smoke",),
        ),
        CorpusEntry(
            name="paper-dense",
            n=500,
            side=200.0,
            radius=60.0,
            generator="uniform",
            base_seed=1003,
            description="Figure 11-12 regime: 500 nodes at R=60",
        ),
        CorpusEntry(
            name="sensor-clusters",
            n=120,
            side=200.0,
            radius=55.0,
            generator="clustered",
            base_seed=1004,
            description="clustered sensor pockets with inter-cluster voids",
        ),
        CorpusEntry(
            name="road-corridor",
            n=90,
            side=300.0,
            radius=45.0,
            generator="corridor",
            base_seed=1005,
            description="elongated corridor: large hop diameter",
        ),
        CorpusEntry(
            name="survey-grid",
            n=100,
            side=200.0,
            radius=40.0,
            generator="grid",
            base_seed=1006,
            description="jittered survey grid: near-degenerate geometry",
        ),
        CorpusEntry(
            name="wide-field",
            n=150,
            side=400.0,
            radius=48.0,
            generator="uniform",
            base_seed=1007,
            description="~10-hop diameter field for locality experiments",
        ),
        CorpusEntry(
            name="hotspot-mix",
            n=120,
            side=200.0,
            radius=55.0,
            generator="hotspot",
            base_seed=1008,
            description="uniform background + dense Gaussian hotspots",
            tags=("smoke",),
        ),
        CorpusEntry(
            name="density-gradient",
            n=130,
            side=200.0,
            radius=55.0,
            generator="gradient",
            base_seed=1009,
            description="density ramping as x^2: sparse fringe to dense core",
        ),
        CorpusEntry(
            name="obstacle-cross",
            n=120,
            side=200.0,
            radius=50.0,
            generator="obstacle",
            base_seed=1010,
            description="non-convex cross of corridors between obstacle blocks",
            tags=("smoke",),
        ),
        CorpusEntry(
            name="mobility-rush",
            n=110,
            side=200.0,
            radius=55.0,
            generator="mobility",
            base_seed=1011,
            description="random-waypoint snapshot after 60s warm-up",
            tags=("smoke",),
        ),
        CorpusEntry(
            name="quasi-field",
            n=110,
            side=200.0,
            radius=60.0,
            generator="uniform",
            base_seed=1012,
            description="uniform field under the quasi-UDG gray zone (eps=0.75)",
            model="quasi",
            epsilon=0.75,
            keep_probability=0.6,
            tags=("smoke", "quasi"),
        ),
        CorpusEntry(
            name="quasi-hotspots",
            n=100,
            side=200.0,
            radius=60.0,
            generator="hotspot",
            base_seed=1013,
            description="hotspot mix under the quasi-UDG gray zone (eps=0.8)",
            model="quasi",
            epsilon=0.8,
            keep_probability=0.5,
            tags=("quasi",),
        ),
    )
}


def get_instance(name: str, index: int = 0) -> Deployment:
    """Regenerate corpus instance ``name``/``index``."""
    if name not in CORPUS:
        raise KeyError(
            f"unknown corpus entry {name!r}; have {sorted(CORPUS)}"
        )
    return CORPUS[name].instance(index)


def select_entries(
    filters: Sequence[str] = (),
) -> list[tuple[CorpusEntry, int]]:
    """Resolve corpus filters to concrete ``(entry, index)`` pairs.

    Each filter is an entry name (``"paper-sparse"``), a name with an
    instance index (``"paper-sparse/2"``), or a tag (``"smoke"``,
    matching every entry carrying it).  No filters selects index 0 of
    every entry.  Unknown names raise :class:`KeyError` so a typo
    fails the run instead of silently validating nothing.
    """
    if not filters:
        return [(CORPUS[name], 0) for name in sorted(CORPUS)]
    picked: list[tuple[CorpusEntry, int]] = []
    seen: set[tuple[str, int]] = set()
    for spec in filters:
        name, _, index_part = spec.partition("/")
        index = 0
        if index_part:
            index = int(index_part)
        if name in CORPUS:
            matches: Iterable[CorpusEntry] = (CORPUS[name],)
        else:
            matches = tuple(
                CORPUS[key] for key in sorted(CORPUS) if name in CORPUS[key].tags
            )
            if not matches:
                raise KeyError(
                    f"corpus filter {spec!r} matches no entry name or tag; "
                    f"entries: {sorted(CORPUS)}"
                )
        for entry in matches:
            key = (entry.name, index)
            if key not in seen:
                seen.add(key)
                picked.append((entry, index))
    return picked


def corpus_listing() -> list[dict]:
    """JSON-ready listing of every corpus recipe (sorted by name)."""
    return [CORPUS[name].to_dict() for name in sorted(CORPUS)]
