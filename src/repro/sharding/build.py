"""Sharded spanner construction: parallel per-tile builds, exact stitch.

The paper's structures are *localized*: every Gabriel test, LDel^k
acceptance, and planarization contest depends only on a constant-radius
neighborhood of the decision's anchor.  That is exactly what makes the
plane shardable — partition the deployment into an r-aligned tile grid
(:class:`~repro.sharding.tiles.TileGrid`), hand each tile its core
points plus a halo of borrowed context, build in parallel worker
processes via :func:`repro.service.executor.run_batch`, and stitch.

Ownership and exactness:

* every point belongs to exactly one tile core (half-open boxes);
* an edge is owned by the tile owning its smaller-id endpoint, a
  triangle by the tile owning its smallest-id vertex (the *anchor* —
  all other vertices are within ``r`` of it, since every side of an
  accepted triangle fits in one transmission radius);
* with the per-stage halo widths of
  :func:`repro.sharding.tiles.stage_halo`, the owning tile sees every
  node that can influence the decision, so interior *and* boundary
  decisions are exact — the union of owned outputs over all tiles is
  bit-identical to the serial pipeline's output.  The stitch asserts
  the ownership partition (no triangle claimed twice, none dropped).

The clusterhead election is *almost* halo-local: the smallest-id MIS
fixed point of a node is determined by the descending-id chain of
white-neighbor dependencies reaching it, which in practice dies out
within a few hops but is not distance-bounded in the worst case
(adversarial id layouts chain decisions across the whole plane).
:func:`sharded_backbone` therefore runs a *certified* per-tile
election: each tile resolves every core node whose dependency chain
stays inside a ``3r`` halo and flags the rest ``unknown``; the
coordinator reconciles the unknowns exactly with one ascending-id
pass over the global UDG.  Both populations are counted
(``election_certified`` / ``election_unresolved``), the connector
fixed point is then computed directly
(:mod:`repro.protocols.cds_fast`), and the expensive planarized-LDel
stage on the backbone subgraph is tiled as before.

Planarization runs in two parallel phases: phase A computes the
accepted LDel^1 triangle set per tile (halo ``2r``), phase B replays
Algorithm 3's circumcircle contests per tile over the *stitched*
accepted set (halo ``3r``) — the contest for an owned triangle needs
every accepted triangle that can intersect it, and those sit within
``3r`` of the anchor.  Contests whose two triangles are owned by
different tiles are counted as ``straddle_contests``: they are the
cross-tile reconciliation work the halo pays for.  A final global
:func:`~repro.topology.ldel.resolve_degenerate_crossings` sweep (cheap,
and deterministic in the edge set) breaks exactly-cocircular ties the
same way the serial pipeline does.
"""

from __future__ import annotations

import contextlib
import contextvars
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.geometry.circle import circumcircle
from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.cds import build_cds_family
from repro.protocols.clustering import ClusteringOutcome
from repro.sharding.tiles import TileGrid, stage_halo
from repro.sim.stats import MessageStats
from repro.topology.construction_cache import ConstructionCache
from repro.topology.gabriel import gabriel_graph
from repro.topology.ldel import (
    LDelResult,
    Triangle,
    _nearby_triangle_pairs,
    _node_candidates,
    _soa_candidate_arrays,
    _soa_filter_k1,
    _triangle_edges,
    _triangles_intersect,
    is_k_localized_delaunay,
    resolve_degenerate_crossings,
)


class ShardingError(RuntimeError):
    """A tile worker failed; the sharded build cannot be trusted."""


@dataclass
class ShardingStats:
    """Accounting for one sharded build (JSON-ready via :meth:`as_dict`)."""

    shards: int
    tiles: int
    grid: tuple[int, int]
    mode: str
    workers: int
    phase_seconds: dict[str, float] = field(default_factory=dict)
    tile_seconds: list[dict] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def as_dict(self) -> dict:
        return {
            "shards": self.shards,
            "tiles": self.tiles,
            "grid": list(self.grid),
            "mode": self.mode,
            "workers": self.workers,
            "phase_seconds": {k: round(v, 6) for k, v in self.phase_seconds.items()},
            "tile_seconds": self.tile_seconds,
            "counters": dict(self.counters),
        }


@dataclass(frozen=True)
class ShardedBackboneResult:
    """Sharded analogue of :class:`repro.core.spanner.BackboneResult`.

    Carries the structures (not the message ledgers — the sharded path
    replaces the message-passing LDel protocol with the tiled
    centralized construction, which is the point).
    """

    udg: UnitDiskGraph
    dominators: frozenset[int]
    connectors: frozenset[int]
    dominatees: frozenset[int]
    cds: Graph
    icds: Graph
    ldel_icds: Graph
    ldel_icds_prime: Graph

    @property
    def backbone_nodes(self) -> frozenset[int]:
        return self.dominators | self.connectors


# -- tile workers (module-level: they must pickle into worker processes) ------


def _box_distance(box: tuple[float, float, float, float], p: Point) -> float:
    x0, y0, x1, y1 = box
    dx = max(x0 - p[0], 0.0, p[0] - x1)
    dy = max(y0 - p[1], 0.0, p[1] - y1)
    return math.hypot(dx, dy)


def _soa_phase_a_candidates(udg, cache, box, radius):
    """Vectorized per-tile candidate generation; ``None`` defers to scalar.

    Proposer selection replicates the scalar loop exactly: the axis
    gaps come out of array arithmetic (``max`` is an exact operation),
    but the final ``hypot`` comparison runs through ``math.hypot`` per
    node so borderline proposers match :func:`_box_distance` bit for
    bit.  The candidate union is then one call into the shared SoA
    kernel restricted to those proposers.
    """
    from repro.core.compat import get_numpy
    from repro.core.soa import snapshot_for

    np = get_numpy()
    if np is None:
        return None
    snap = snapshot_for(udg)
    if snap is None:
        return None
    x0, y0, x1, y1 = box
    gx = np.maximum(np.maximum(x0 - snap.xs, 0.0), snap.xs - x1)
    gy = np.maximum(np.maximum(y0 - snap.ys, 0.0), snap.ys - y1)
    proposers = [
        u
        for u, (dx, dy) in enumerate(zip(gx.tolist(), gy.tolist()))
        if math.hypot(dx, dy) <= radius
    ]
    return _soa_candidate_arrays(udg, cache, node_ids=proposers)


def _phase_a(payload: tuple) -> dict:
    """Per-tile construction: UDG / Gabriel / LDel^k acceptance.

    ``payload`` is pure values: the tile key and core box, the sorted
    global ids and coordinates of the core+halo point set, the
    authoritative core ids (half-open assignment — box distance alone
    cannot see which side of a tile line a point falls on), the radius,
    the LDel order ``k``, and which stages to produce.  Global-id order
    is preserved in the local ids (the member list is sorted), so
    anchor-of-triangle and min-endpoint-of-edge agree between local and
    global views.
    """
    tile_key, box, gids, coords, core_gids, radius, k, stages = payload
    pos = [Point(x, y) for x, y in coords]
    gid_index = {gid: local for local, gid in enumerate(gids)}
    core = {gid_index[g] for g in core_gids}
    seconds: dict[str, float] = {}
    out: dict[str, Any] = {
        "tile": tile_key,
        "nodes": {"core": len(core), "halo": len(gids) - len(core)},
    }

    t0 = time.perf_counter()
    udg = UnitDiskGraph(pos, radius, name=f"tile{tile_key}")
    seconds["udg"] = time.perf_counter() - t0
    cache = ConstructionCache(udg)

    if "udg" in stages:
        out["udg_edges"] = [
            (gids[u], gids[v]) for u, v in udg.edges() if min(u, v) in core
        ]

    if "gabriel" in stages:
        t0 = time.perf_counter()
        gg = gabriel_graph(udg, cache=cache)
        seconds["gabriel"] = time.perf_counter() - t0
        out["gabriel_edges"] = [
            (gids[u], gids[v]) for u, v in gg.edges() if min(u, v) in core
        ]

    if "ldel" in stages:
        r_sq = radius * radius
        t0 = time.perf_counter()
        cand_arr = _soa_phase_a_candidates(udg, cache, box, radius)
        if cand_arr is not None:
            from repro.core.compat import get_numpy

            np = get_numpy()
            seconds["candidates"] = time.perf_counter() - t0
            t0 = time.perf_counter()
            core_mask = np.zeros(len(gids), dtype=bool)
            if core:
                core_mask[np.fromiter(core, dtype=np.int64, count=len(core))] = True
            # Anchor-owned rows; unique-key order keeps them sorted.
            owned = cand_arr[core_mask[cand_arr[:, 0]]]
            fmask = _soa_filter_k1(udg, owned) if k == 1 else None
            if fmask is not None:
                accepted = [tuple(t) for t in owned[fmask].tolist()]
            else:
                accepted = sorted(
                    t
                    for t in map(tuple, owned.tolist())
                    if is_k_localized_delaunay(udg, t, k, cache)
                )
            seconds["filter"] = time.perf_counter() - t0
            out["accepted"] = [
                (gids[a], gids[b], gids[c]) for a, b, c in accepted
            ]
            out["candidates"] = int(cand_arr.shape[0])
        else:
            candidates: set[Triangle] = set()
            for u in range(len(gids)):
                # Only nodes within r of the core can be a vertex of an
                # owned triangle, hence the only useful proposers.
                if _box_distance(box, pos[u]) > radius:
                    continue
                local_hood = sorted(cache.k_hop(u, 1))
                candidates.update(_node_candidates(pos, r_sq, u, local_hood))
            seconds["candidates"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            accepted = sorted(
                t
                for t in candidates
                if t[0] in core and is_k_localized_delaunay(udg, t, k, cache)
            )
            seconds["filter"] = time.perf_counter() - t0
            out["accepted"] = [
                (gids[a], gids[b], gids[c]) for a, b, c in accepted
            ]
            out["candidates"] = len(candidates)

    out["seconds"] = {name: round(v, 6) for name, v in seconds.items()}
    out["cache"] = cache.snapshot()
    return out


def _election_worker(payload: tuple) -> dict:
    """Certified per-tile smallest-id MIS over core + 3r halo.

    One ascending-id pass over the local point set (local ids preserve
    global-id order).  A node is certified ``out`` when a smaller
    certified-``in`` neighbor dominates it — sound even near the halo
    edge, since a certified ``in`` is exact by induction.  It is
    certified ``in`` only when its whole 1-hop neighborhood is inside
    the halo (*complete*) and every smaller neighbor is certified
    ``out``.  Anything else — an incomplete node not yet dominated, or
    a chain through an ``unknown`` — stays ``unknown`` for the
    coordinator's exact reconciliation pass.
    """
    tile_key, box, gids, coords, core_gids, radius, _k, _stages = payload
    t0 = time.perf_counter()
    pos = [Point(x, y) for x, y in coords]
    udg = UnitDiskGraph(pos, radius, name=f"tile{tile_key}")
    halo_r = stage_halo("election") * radius
    complete = [_box_distance(box, p) <= halo_r - radius for p in pos]
    unknown_mark, out_mark, in_mark = -1, 0, 1
    state = [unknown_mark] * len(gids)
    for u in range(len(gids)):
        smaller = [w for w in udg.neighbors(u) if w < u]
        if any(state[w] == in_mark for w in smaller):
            state[u] = out_mark
        elif complete[u] and all(state[w] == out_mark for w in smaller):
            state[u] = in_mark
    core = set(core_gids)
    names = {in_mark: "in", out_mark: "out", unknown_mark: "unknown"}
    verdicts: dict[str, list[int]] = {"in": [], "out": [], "unknown": []}
    for u, gid in enumerate(gids):
        if gid in core:
            verdicts[names[state[u]]].append(gid)
    return {
        "tile": tile_key,
        "seconds": round(time.perf_counter() - t0, 6),
        **verdicts,
    }


def _contest_worker(payload: tuple) -> dict:
    """Phase B: Algorithm 3 circumcircle contests for one tile.

    Receives every accepted triangle within ``3r`` of the tile core
    (vertex global ids + coordinates + whether this tile owns it) and
    replays the serial contest rule; reports which *owned* triangles
    survive.  The rule is per-pair independent — a triangle is removed
    exactly when some intersecting accepted triangle has one of its
    vertices strictly inside the triangle's circumcircle — so per-tile
    replay with a complete 3r context is exact.
    """
    tile_key, tri_gids, tri_coords, owned_flags, radius = payload
    # Local position table over the distinct vertices involved.
    gid_index: dict[int, int] = {}
    pos: list[Point] = []
    triangles: list[Triangle] = []
    for gtri, ctri in zip(tri_gids, tri_coords):
        local = []
        for gid, (x, y) in zip(gtri, ctri):
            idx = gid_index.get(gid)
            if idx is None:
                idx = gid_index[gid] = len(pos)
                pos.append(Point(x, y))
            local.append(idx)
        triangles.append(tuple(local))  # type: ignore[arg-type]

    circles = [circumcircle(pos[a], pos[b], pos[c]) for a, b, c in triangles]
    boxes = []
    for a, b, c in triangles:
        (x1, y1), (x2, y2), (x3, y3) = pos[a], pos[b], pos[c]
        boxes.append(
            (min(x1, x2, x3), min(y1, y2, y3), max(x1, x2, x3), max(y1, y2, y3))
        )
    edge_data = [_triangle_edges(pos, t) for t in triangles]
    removed = [False] * len(triangles)
    contests = straddle = 0
    for i, j in _nearby_triangle_pairs(pos, triangles, radius):
        bi, bj = boxes[i], boxes[j]
        if bi[2] < bj[0] or bj[2] < bi[0] or bi[3] < bj[1] or bj[3] < bi[1]:
            continue
        if not _triangles_intersect(edge_data[i], edge_data[j]):
            continue
        contests += 1
        if owned_flags[i] != owned_flags[j]:
            straddle += 1
        ci, cj = circles[i], circles[j]
        if ci is not None and any(ci.contains(pos[x]) for x in triangles[j]):
            removed[i] = True
        if cj is not None and any(cj.contains(pos[x]) for x in triangles[i]):
            removed[j] = True
    survivors = [
        tri_gids[idx]
        for idx in range(len(triangles))
        if owned_flags[idx] and not removed[idx]
    ]
    return {
        "tile": tile_key,
        "survivors": survivors,
        "contests": contests,
        "straddle_contests": straddle,
    }


# -- coordinator --------------------------------------------------------------

#: Per-context hook observing tile results as the coordinator collects
#: them: ``callback(phase, info)`` with ``info`` the same summary dict
#: the streaming tier frames as a ``tile`` SSE event.  A contextvar so
#: concurrent builds in one process never see each other's tiles.
_TILE_OBSERVER: contextvars.ContextVar[
    Optional[Callable[[str, dict], None]]
] = contextvars.ContextVar("tile_observer", default=None)


@contextlib.contextmanager
def tile_observer(callback: Callable[[str, dict], None]):
    """Report every finished tile of builds run inside the block."""
    token = _TILE_OBSERVER.set(callback)
    try:
        yield
    finally:
        _TILE_OBSERVER.reset(token)


def _run_tiles(
    payloads: Sequence[tuple],
    worker,
    *,
    executor_mode: str,
    max_workers: Optional[int],
    stats: ShardingStats,
    phase: str,
) -> list[dict]:
    """Fan tile payloads over the batch executor; serial when tiny."""
    from repro.service.executor import default_workers, run_batch

    observer = _TILE_OBSERVER.get()
    on_outcome = None
    if observer is not None:
        from repro.service.streaming import _tile_event_info

        total = len(payloads)

        def on_outcome(outcome):  # noqa: F811 - deliberate rebind
            if outcome.ok:
                observer(
                    phase,
                    _tile_event_info(
                        outcome.index, total, outcome.value, outcome.duration_s
                    ),
                )

    workers = max_workers or default_workers()
    mode = executor_mode if (workers > 1 and len(payloads) > 1) else "serial"
    t0 = time.perf_counter()
    batch = run_batch(
        list(payloads), worker,
        mode=mode, max_workers=workers, on_outcome=on_outcome,
    )
    stats.phase_seconds[phase] = time.perf_counter() - t0
    stats.mode = batch.mode
    stats.workers = batch.workers
    if batch.failed:
        errors = [o.error for o in batch.outcomes if not o.ok]
        raise ShardingError(
            f"{batch.failed} tile worker(s) failed in phase {phase!r}: {errors[0]}"
        )
    return batch.values()


def _phase_a_payloads(
    grid: TileGrid,
    points: Sequence[Point],
    radius: float,
    k: int,
    stages: tuple[str, ...],
    halo_cells: int,
) -> list[tuple]:
    owned = grid.assign(points)
    halo_r = halo_cells * radius
    payloads = []
    for tile in grid.tiles:
        if not owned[tile.key]:
            continue  # coreless tile: owns nothing, would output nothing
        members = grid.halo_members(tile, points, halo_r)
        payloads.append(
            (
                tile.key,
                (tile.x0, tile.y0, tile.x1, tile.y1),
                members,
                [(points[i][0], points[i][1]) for i in members],
                owned[tile.key],
                radius,
                k,
                stages,
            )
        )
    return payloads


def _collect_phase_a(
    results: list[dict], stats: ShardingStats
) -> tuple[set[tuple[int, int]], set[tuple[int, int]], list[Triangle]]:
    """Union the owned outputs; assert the ownership partition."""
    udg_edges: set[tuple[int, int]] = set()
    gabriel: set[tuple[int, int]] = set()
    accepted: list[Triangle] = []
    seen: set[Triangle] = set()
    for res in results:
        udg_edges.update(map(tuple, res.get("udg_edges", ())))
        gabriel.update(map(tuple, res.get("gabriel_edges", ())))
        for tri in res.get("accepted", ()):
            tri = tuple(tri)
            # Locality lemma, asserted: the anchor lives in exactly one
            # core, so no two tiles may claim the same triangle.
            assert tri not in seen, f"triangle {tri} claimed by two tiles"
            seen.add(tri)
            accepted.append(tri)  # type: ignore[arg-type]
        stats.tile_seconds.append(
            {
                "tile": list(res["tile"]),
                **res["nodes"],
                "seconds": res["seconds"],
            }
        )
        stats.count("candidates", res.get("candidates", 0))
        for name in ("local_delaunay_calls", "khop_misses", "circumcircle_misses"):
            stats.count(name, res.get("cache", {}).get(name, 0))
    accepted.sort()
    stats.count("udg_edges", len(udg_edges))
    stats.count("gabriel_edges", len(gabriel))
    stats.count("accepted_triangles", len(accepted))
    return udg_edges, gabriel, accepted


def _sharded_phase_a(
    points: Sequence[Point],
    radius: float,
    *,
    shards: int,
    k: int,
    stages: tuple[str, ...],
    halo_cells: int,
    max_workers: Optional[int],
    executor_mode: str,
) -> tuple[TileGrid, ShardingStats, set, set, list[Triangle]]:
    grid = TileGrid(points, radius, shards)
    stats = ShardingStats(
        shards=shards, tiles=len(grid), grid=(grid.nx, grid.ny),
        mode="serial", workers=1,
    )
    t0 = time.perf_counter()
    payloads = _phase_a_payloads(grid, points, radius, k, stages, halo_cells)
    stats.phase_seconds["assign"] = time.perf_counter() - t0
    results = _run_tiles(
        payloads, _phase_a,
        executor_mode=executor_mode, max_workers=max_workers,
        stats=stats, phase="build",
    )
    udg_edges, gabriel, accepted = _collect_phase_a(results, stats)
    return grid, stats, udg_edges, gabriel, accepted


def _sharded_election(
    udg: UnitDiskGraph,
    *,
    shards: int,
    max_workers: Optional[int],
    executor_mode: str,
) -> tuple[frozenset[int], int, int, float]:
    """Tiled smallest-id MIS: certified per tile, reconciled exactly.

    Returns the dominator set (bit-identical to the global election),
    the certified / unresolved node counts, and the phase wall-clock.
    """
    pts = udg.positions
    grid = TileGrid(pts, udg.radius, shards)
    stats = ShardingStats(
        shards=shards, tiles=len(grid), grid=(grid.nx, grid.ny),
        mode="serial", workers=1,
    )
    payloads = _phase_a_payloads(
        grid, pts, udg.radius, 1, (), stage_halo("election")
    )
    results = _run_tiles(
        payloads, _election_worker,
        executor_mode=executor_mode, max_workers=max_workers,
        stats=stats, phase="election",
    )
    status: dict[int, bool] = {}
    unresolved: list[int] = []
    for res in results:
        for gid in res["in"]:
            status[gid] = True
        for gid in res["out"]:
            status[gid] = False
        unresolved.extend(res["unknown"])
    certified = len(status)
    # Exact fallback for chains that escaped the halo: one ascending-id
    # pass over the global UDG.  Every smaller node is already decided
    # (certified, or reconciled earlier in this loop), so this replays
    # the greedy MIS rule verbatim.
    for u in sorted(unresolved):
        status[u] = not any(status[w] for w in udg.neighbors(u) if w < u)
    dominators = frozenset(gid for gid, is_in in status.items() if is_in)
    return (
        dominators,
        certified,
        len(unresolved),
        stats.phase_seconds.get("election", 0.0),
    )


# -- public constructions -----------------------------------------------------


def sharded_udg(
    points: Sequence[Point],
    radius: float,
    *,
    shards: int = 4,
    max_workers: Optional[int] = None,
    executor_mode: str = "process",
) -> tuple[Graph, ShardingStats]:
    """Unit disk graph, tiled: bit-identical edge set to the serial build."""
    _, stats, udg_edges, _, _ = _sharded_phase_a(
        points, radius, shards=shards, k=1, stages=("udg",),
        halo_cells=stage_halo("udg"), max_workers=max_workers,
        executor_mode=executor_mode,
    )
    return Graph(points, udg_edges, name="UDG"), stats


def sharded_gabriel(
    points: Sequence[Point],
    radius: float,
    *,
    shards: int = 4,
    max_workers: Optional[int] = None,
    executor_mode: str = "process",
) -> tuple[Graph, ShardingStats]:
    """Gabriel graph on UDG edges, tiled (halo ``1r`` — witnesses are 1-hop)."""
    _, stats, _, gabriel, _ = _sharded_phase_a(
        points, radius, shards=shards, k=1, stages=("gabriel",),
        halo_cells=stage_halo("gabriel"), max_workers=max_workers,
        executor_mode=executor_mode,
    )
    return Graph(points, gabriel, name="GG"), stats


def sharded_ldel(
    points: Sequence[Point],
    radius: float,
    *,
    k: int = 1,
    shards: int = 4,
    max_workers: Optional[int] = None,
    executor_mode: str = "process",
) -> tuple[LDelResult, ShardingStats]:
    """LDel^k, tiled: Gabriel edges plus owned accepted triangles."""
    if k < 1:
        raise ValueError("k must be at least 1")
    _, stats, _, gabriel, accepted = _sharded_phase_a(
        points, radius, shards=shards, k=k, stages=("gabriel", "ldel"),
        halo_cells=stage_halo("ldel", k), max_workers=max_workers,
        executor_mode=executor_mode,
    )
    graph = Graph(points, gabriel, name=f"LDel{k}")
    for u, v, w in accepted:
        graph.add_edge(u, v)
        graph.add_edge(v, w)
        graph.add_edge(u, w)
    result = LDelResult(
        graph=graph, triangles=tuple(accepted),
        gabriel_edges=frozenset(gabriel), k=k,
    )
    return result, stats


def sharded_pldel(
    points: Sequence[Point],
    radius: float,
    *,
    shards: int = 4,
    max_workers: Optional[int] = None,
    executor_mode: str = "process",
) -> tuple[LDelResult, ShardingStats]:
    """PLDel, tiled: accepted set (phase A) then contests (phase B).

    Bit-identical to
    :func:`repro.topology.ldel.planar_local_delaunay_graph` — the
    equivalence suite holds it to that on degenerate inputs too.
    """
    grid, stats, _, gabriel, accepted = _sharded_phase_a(
        points, radius, shards=shards, k=1, stages=("gabriel", "ldel"),
        halo_cells=stage_halo("ldel", 1), max_workers=max_workers,
        executor_mode=executor_mode,
    )

    # Phase B: replay the contests per tile over the stitched accepted
    # set.  A tile receives every accepted triangle whose anchor is
    # within 3r of its core and owns those whose anchor it owns.
    t0 = time.perf_counter()
    contest_halo = stage_halo("pldel") * radius
    payloads = []
    for tile in grid.tiles:
        tri_gids: list[Triangle] = []
        tri_coords = []
        owned_flags = []
        for tri in accepted:
            anchor = points[tri[0]]
            if tile.box_distance(anchor) > contest_halo:
                continue
            tri_gids.append(tri)
            tri_coords.append(tuple((points[i][0], points[i][1]) for i in tri))
            owned_flags.append(grid.tile_of(anchor) == tile.key)
        if tri_gids:
            payloads.append((tile.key, tri_gids, tri_coords, owned_flags, radius))
    stats.phase_seconds["contest_assign"] = time.perf_counter() - t0

    survivors: list[Triangle] = []
    if payloads:
        results = _run_tiles(
            payloads, _contest_worker,
            executor_mode=executor_mode, max_workers=max_workers,
            stats=stats, phase="contest",
        )
        seen: set[Triangle] = set()
        for res in results:
            stats.count("contests", res["contests"])
            stats.count("straddle_contests", res["straddle_contests"])
            for tri in res["survivors"]:
                tri = tuple(tri)
                assert tri not in seen, f"survivor {tri} claimed by two tiles"
                seen.add(tri)
                survivors.append(tri)  # type: ignore[arg-type]
    survivors.sort()
    stats.count("surviving_triangles", len(survivors))

    t0 = time.perf_counter()
    graph = Graph(points, gabriel, name="PLDel")
    for u, v, w in survivors:
        graph.add_edge(u, v)
        graph.add_edge(v, w)
        graph.add_edge(u, w)
    before = graph.edge_count
    resolve_degenerate_crossings(graph)
    stats.count("resolve_removed_edges", before - graph.edge_count)
    stats.phase_seconds["stitch"] = time.perf_counter() - t0
    result = LDelResult(
        graph=graph, triangles=tuple(survivors),
        gabriel_edges=frozenset(gabriel), k=1,
    )
    return result, stats


def sharded_backbone(
    points: Sequence[Point],
    radius: float,
    *,
    shards: int = 4,
    election: str = "smallest-id",
    max_workers: Optional[int] = None,
    executor_mode: str = "process",
) -> tuple[ShardedBackboneResult, ShardingStats]:
    """The paper's backbone, sharded end to end.

    The clusterhead election is tiled with per-tile certification and
    an exact coordinator reconciliation of the halo-escaping chains
    (``election_certified`` / ``election_unresolved`` count the two
    populations); connectors and the CDS family come from the direct
    fixed-point computation (:mod:`repro.protocols.cds_fast`); the
    planarized LDel stage over the backbone subgraph is tiled as
    before.  The result maps back to original node ids, bit-identical
    to :func:`repro.core.spanner.build_backbone`.
    """
    pts = [Point(float(p[0]), float(p[1])) for p in points]
    udg = UnitDiskGraph(pts, radius)
    t0 = time.perf_counter()
    if udg.node_count:
        dominators, certified, unresolved, election_s = _sharded_election(
            udg, shards=shards, max_workers=max_workers,
            executor_mode=executor_mode,
        )
    else:
        dominators, certified, unresolved, election_s = frozenset(), 0, 0, 0.0
    # The certified election pins the same fixed point the protocol
    # reaches; fabricate its outcome (no messages were simulated) and
    # let the direct-computation path derive connectors and the family.
    dominators_of = {
        w: frozenset(udg.neighbors(w) & dominators)
        for w in udg.nodes()
        if w not in dominators
    }
    clustering = ClusteringOutcome(
        dominators=dominators, dominators_of=dominators_of,
        rounds=0, stats=MessageStats(),
    )
    family = build_cds_family(
        udg, election=election, clustering=clustering, mode="fast"
    )
    cluster_s = time.perf_counter() - t0

    backbone = sorted(family.backbone_nodes)
    sub_positions = [udg.positions[orig] for orig in backbone]
    sub_result, stats = sharded_pldel(
        sub_positions, radius, shards=shards,
        max_workers=max_workers, executor_mode=executor_mode,
    )
    stats.phase_seconds["clustering"] = cluster_s
    stats.phase_seconds["election"] = election_s
    stats.count("election_certified", certified)
    stats.count("election_unresolved", unresolved)

    ldel_icds = Graph(udg.positions, name="LDel(ICDS)")
    for u, v in sub_result.graph.edges():
        ldel_icds.add_edge(backbone[u], backbone[v])
    ldel_icds_prime = Graph(udg.positions, ldel_icds.edges(), name="LDel(ICDS')")
    for dominatee, doms in family.clustering.dominators_of.items():
        for d in doms:
            ldel_icds_prime.add_edge(dominatee, d)

    result = ShardedBackboneResult(
        udg=udg,
        dominators=family.dominators,
        connectors=family.connectors,
        dominatees=family.dominatees,
        cds=family.cds,
        icds=family.icds,
        ldel_icds=ldel_icds,
        ldel_icds_prime=ldel_icds_prime,
    )
    return result, stats
