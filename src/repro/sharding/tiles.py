"""r-aligned tile grids: the spatial partition behind sharded builds.

A :class:`TileGrid` cuts the deployment's bounding box into an axis-
aligned grid of tiles whose boundaries sit on integer multiples of the
transmission radius ``r`` (hence *r-aligned*: every halo width the
construction stages need is a whole number of grid steps).  Tile cores
are half-open boxes ``[x0, x1) x [y0, y1)``, so every point — including
points exactly on a tile line — belongs to exactly one core, and the
assignment is a deterministic function of the coordinates.

Each construction stage extends a tile's core by a *halo* of borrowed
context whose width is a stage-specific multiple of ``r``
(:func:`stage_halo`).  The per-stage widths come from the locality
lemma the paper's constructions rest on (see ``docs/scaling.md`` for
the derivations):

* ``udg`` / ``gabriel`` — 1·r: a UDG edge reaches at most ``r`` from
  its anchor endpoint, and every Gabriel witness lies inside the
  diameter disk, hence within ``r`` of the anchor.
* ``ldel`` (LDel^k acceptance) — (k+1)·r: a triangle anchored in the
  core has all vertices within ``r``; its proposers' 1-hop Delaunay
  neighborhoods and the k-localized filter's ``N_k`` witnesses reach
  another ``k·r``.
* ``pldel`` (planarization contest) — 3·r *given the accepted
  triangle set*: an intersecting triangle's crossing edge ends within
  ``2r`` of the anchor and its third vertex within ``3r``.
* ``backbone`` connectors — 2–3·r in the protocol's message pattern.
* ``election`` (clusterhead MIS) — the smallest-id fixed point chains
  through ids, so a tile can only *certify* decisions whose id-chain
  stays inside the halo (3·r covers the overwhelming majority);
  escaped chains are flagged unresolved and reconciled exactly by the
  coordinator (see :mod:`repro.sharding.build`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.geometry.primitives import Point

#: Halo width, in multiples of the radius, each stage needs for its
#: interior decisions to be provably exact.  ``ldel`` is the k=1 value;
#: use :func:`stage_halo` for general k.
STAGE_HALO = {
    "udg": 1,
    "gabriel": 1,
    "ldel": 2,
    "pldel": 3,
    "backbone": 3,
    "election": 3,
}


def stage_halo(stage: str, k: int = 1) -> int:
    """Halo width (in multiples of ``r``) for ``stage``.

    ``ldel`` scales with the neighborhood order: LDel^k acceptance
    needs ``(k+1)·r`` of borrowed context.
    """
    if stage == "ldel":
        return k + 1
    try:
        return STAGE_HALO[stage]
    except KeyError:
        known = ", ".join(sorted(STAGE_HALO))
        raise ValueError(f"unknown stage {stage!r}; known: {known}") from None


@dataclass(frozen=True)
class Tile:
    """One tile: grid coordinates plus its half-open core box."""

    ix: int
    iy: int
    x0: float
    y0: float
    x1: float
    y1: float

    @property
    def key(self) -> tuple[int, int]:
        return (self.ix, self.iy)

    def box_distance(self, p: Point) -> float:
        """Euclidean distance from ``p`` to the core box (0 inside)."""
        dx = max(self.x0 - p[0], 0.0, p[0] - self.x1)
        dy = max(self.y0 - p[1], 0.0, p[1] - self.y1)
        return math.hypot(dx, dy)


class TileGrid:
    """An r-aligned tile grid over a point set.

    ``shards`` is a *target* tile count: the grid picks the factor pair
    ``nx * ny`` closest to the deployment's aspect ratio, then rounds
    tile sides up to whole multiples of the radius.  The actual tile
    count (``len(grid.tiles)``) never exceeds ``shards``.
    """

    def __init__(self, points: Sequence[Point], radius: float, shards: int) -> None:
        if radius <= 0.0:
            raise ValueError("radius must be positive")
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if not points:
            raise ValueError("cannot tile an empty point set")
        self.radius = radius
        min_x = min(p[0] for p in points)
        max_x = max(p[0] for p in points)
        min_y = min(p[1] for p in points)
        max_y = max(p[1] for p in points)
        # Align the origin down to a multiple of r so every tile
        # boundary lands on the integer-r lattice.
        self.origin_x = math.floor(min_x / radius) * radius
        self.origin_y = math.floor(min_y / radius) * radius
        # Whole r-cells needed to cover the bounding box (at least
        # one).  A point exactly on the far boundary would index one
        # past the last tile; the clamp in tile_of folds it back in.
        cells_x = max(1, math.ceil((max_x - self.origin_x) / radius))
        cells_y = max(1, math.ceil((max_y - self.origin_y) / radius))
        nx, ny = _best_grid_shape(shards, cells_x, cells_y)
        # Tile sides in whole r-cells, rounded up so nx*ny tiles cover
        # the box; shrink the counts back if the rounding overshot.
        self.tile_cells_x = math.ceil(cells_x / nx)
        self.tile_cells_y = math.ceil(cells_y / ny)
        self.nx = math.ceil(cells_x / self.tile_cells_x)
        self.ny = math.ceil(cells_y / self.tile_cells_y)
        self.tile_w = self.tile_cells_x * radius
        self.tile_h = self.tile_cells_y * radius
        self.tiles: list[Tile] = [
            Tile(
                ix,
                iy,
                self.origin_x + ix * self.tile_w,
                self.origin_y + iy * self.tile_h,
                self.origin_x + (ix + 1) * self.tile_w,
                self.origin_y + (iy + 1) * self.tile_h,
            )
            for iy in range(self.ny)
            for ix in range(self.nx)
        ]

    def __len__(self) -> int:
        return len(self.tiles)

    def tile_of(self, p: Point) -> tuple[int, int]:
        """Grid coordinates of the tile whose core owns ``p``.

        Cores are half-open, so a point exactly on an interior tile
        line belongs to the tile on its right/top; points on the outer
        boundary clamp into the last tile.  Deterministic in the
        coordinates alone.
        """
        ix = min(self.nx - 1, max(0, math.floor((p[0] - self.origin_x) / self.tile_w)))
        iy = min(self.ny - 1, max(0, math.floor((p[1] - self.origin_y) / self.tile_h)))
        return (ix, iy)

    def assign(self, points: Sequence[Point]) -> dict[tuple[int, int], list[int]]:
        """Owner tile -> sorted point indices (a partition of the ids)."""
        owned: dict[tuple[int, int], list[int]] = {t.key: [] for t in self.tiles}
        for i, p in enumerate(points):
            owned[self.tile_of(p)].append(i)
        return owned

    def halo_members(
        self, tile: Tile, points: Sequence[Point], halo_r: float
    ) -> list[int]:
        """Sorted indices of points within ``halo_r`` of the tile core.

        A superset of the core (core points are at box-distance 0).
        Correctness only needs *at least* everything within the halo;
        the box distance delivers exactly that.
        """
        return [
            i for i, p in enumerate(points) if tile.box_distance(p) <= halo_r
        ]


class DynamicTileGrid:
    """An unbounded, lazy r-aligned tile grid for incremental maintenance.

    :class:`TileGrid` is sized to a fixed point set and clamps out-of-
    range coordinates into the boundary tiles — exactly wrong for a
    mobility stream, where nodes drift past the initial bounding box.
    This grid has no bounds: tile keys are plain ``floor`` coordinates
    over an infinite lattice of ``tile_cells * r`` squares anchored at
    ``origin``, so the key of a point is a deterministic function of
    its coordinates alone, stable under arbitrary motion.  Tiles are
    never materialized; callers keep their own ``key -> state`` maps
    and use the geometric queries here to find which keys a changed
    point can influence.
    """

    def __init__(
        self,
        radius: float,
        *,
        tile_cells: int = 2,
        origin: tuple[float, float] = (0.0, 0.0),
    ) -> None:
        if radius <= 0.0:
            raise ValueError("radius must be positive")
        if tile_cells < 1:
            raise ValueError("tile_cells must be at least 1")
        self.radius = radius
        self.tile_cells = tile_cells
        self.tile_side = tile_cells * radius
        self.origin_x, self.origin_y = origin

    def key_of(self, p: Point) -> tuple[int, int]:
        """Grid coordinates of the tile whose half-open core owns ``p``."""
        return (
            math.floor((p[0] - self.origin_x) / self.tile_side),
            math.floor((p[1] - self.origin_y) / self.tile_side),
        )

    def box(self, key: tuple[int, int]) -> tuple[float, float, float, float]:
        """Core box ``(x0, y0, x1, y1)`` of the tile at ``key``."""
        ix, iy = key
        x0 = self.origin_x + ix * self.tile_side
        y0 = self.origin_y + iy * self.tile_side
        return (x0, y0, x0 + self.tile_side, y0 + self.tile_side)

    def box_distance(self, key: tuple[int, int], p: Point) -> float:
        """Euclidean distance from ``p`` to the tile's core box (0 inside)."""
        x0, y0, x1, y1 = self.box(key)
        dx = max(x0 - p[0], 0.0, p[0] - x1)
        dy = max(y0 - p[1], 0.0, p[1] - y1)
        return math.hypot(dx, dy)

    def keys_within(self, p: Point, halo_r: float) -> list[tuple[int, int]]:
        """All tile keys whose core box is within ``halo_r`` of ``p``.

        The influence footprint of a changed point: every tile whose
        halo of width ``halo_r`` contains ``p``.  Enumerates the
        covering key window arithmetically, then filters by exact box
        distance, so the result is independent of which tiles happen to
        be populated.
        """
        side = self.tile_side
        ix0 = math.floor((p[0] - halo_r - self.origin_x) / side)
        ix1 = math.floor((p[0] + halo_r - self.origin_x) / side)
        iy0 = math.floor((p[1] - halo_r - self.origin_y) / side)
        iy1 = math.floor((p[1] + halo_r - self.origin_y) / side)
        return [
            (ix, iy)
            for ix in range(ix0, ix1 + 1)
            for iy in range(iy0, iy1 + 1)
            if self.box_distance((ix, iy), p) <= halo_r
        ]

    def keys_near_key(self, key: tuple[int, int], halo_r: float) -> list[tuple[int, int]]:
        """All tile keys whose core box is within ``halo_r`` of ``key``'s box.

        Box-to-box distance: along each axis, tiles ``d`` apart leave a
        gap of ``(d - 1)`` tile sides (adjacent tiles touch).  Used to
        dilate a phase-A dirty set into the contest-stage footprint.
        """
        side = self.tile_side
        reach = math.floor(halo_r / side) + 1
        ix, iy = key
        out: list[tuple[int, int]] = []
        for dx in range(-reach, reach + 1):
            gap_x = max(abs(dx) - 1, 0) * side
            for dy in range(-reach, reach + 1):
                gap_y = max(abs(dy) - 1, 0) * side
                if math.hypot(gap_x, gap_y) <= halo_r:
                    out.append((ix + dx, iy + dy))
        return out


def _best_grid_shape(shards: int, cells_x: int, cells_y: int) -> tuple[int, int]:
    """Factor pair ``(nx, ny)`` of ``shards`` best matching the aspect.

    Considers every factorization ``nx * ny == shards`` and picks the
    one whose tile aspect ratio is closest to square, never splitting a
    dimension finer than its cell count (a tile must span >= 1 cell).
    """
    best: tuple[float, int, int] | None = None
    for nx in range(1, shards + 1):
        if shards % nx:
            continue
        ny = shards // nx
        if nx > cells_x or ny > cells_y:
            continue
        # Per-tile aspect: cells per tile along each axis.
        tx = cells_x / nx
        ty = cells_y / ny
        skew = max(tx, ty) / max(min(tx, ty), 1e-9)
        key = (skew, nx, ny)
        if best is None or key < best:
            best = key
    if best is None:
        # Deployment too small for any exact factorization (more
        # shards than cells): fall back to one tile per cell, capped.
        nx = min(shards, cells_x)
        ny = min(max(1, shards // nx), cells_y)
        return nx, ny
    return best[1], best[2]
