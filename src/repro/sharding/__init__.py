"""Tiled sharded spanner construction with halo-exact stitching.

See :mod:`repro.sharding.tiles` for the r-aligned tile grid and the
per-stage halo widths, and :mod:`repro.sharding.build` for the
parallel per-tile construction and the stitch.  ``docs/scaling.md``
derives the halo widths from the paper's locality arguments.
"""

from repro.sharding.build import (
    ShardedBackboneResult,
    ShardingError,
    ShardingStats,
    sharded_backbone,
    sharded_gabriel,
    sharded_ldel,
    sharded_pldel,
    sharded_udg,
)
from repro.sharding.tiles import STAGE_HALO, Tile, TileGrid, stage_halo

__all__ = [
    "STAGE_HALO",
    "ShardedBackboneResult",
    "ShardingError",
    "ShardingStats",
    "Tile",
    "TileGrid",
    "sharded_backbone",
    "sharded_gabriel",
    "sharded_ldel",
    "sharded_pldel",
    "sharded_udg",
    "stage_halo",
]
