"""One-deployment Markdown report.

``generate_report`` turns a deployment into a complete, self-contained
Markdown document: construction summary, per-topology quality table,
communication ledger, power and interference figures, and routing spot
checks — the artifact to attach to an experiment or a bug report.
Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.core.interference import interference
from repro.core.metrics import hop_stretch, length_stretch
from repro.core.oracle import DistanceOracle
from repro.core.power import power_profile, power_saving_ratio
from repro.core.verify import verify_spanner
from repro.experiments.runner import STRETCH_TOPOLOGIES, build_all_topologies
from repro.graphs.planarity import is_planar_embedding
from repro.routing.backbone_routing import backbone_route
from repro.workloads.generators import Deployment

PathLike = Union[str, Path]


def generate_report(
    deployment: Deployment,
    *,
    title: str = "Backbone construction report",
    svg_dir: Optional[PathLike] = None,
) -> str:
    """Build everything and render the full Markdown report.

    When ``svg_dir`` is given, SVG renderings are written there and
    linked from the document.
    """
    udg = deployment.udg()
    graphs, backbone = build_all_topologies(udg)
    oracle = DistanceOracle(udg)  # UDG all-pairs matrices built once
    lines: list[str] = [f"# {title}", ""]

    # -- deployment ----------------------------------------------------
    lines += [
        "## Deployment",
        "",
        f"* nodes: **{udg.node_count}** in a "
        f"{deployment.side:g} × {deployment.side:g} region",
        f"* transmission radius: **{deployment.radius:g}**",
        f"* UDG: {udg.edge_count} links, max degree {max(udg.degrees())}",
        "",
    ]

    # -- construction ----------------------------------------------------
    lines += [
        "## Construction",
        "",
        f"* roles: {len(backbone.dominators)} dominators, "
        f"{len(backbone.connectors)} connectors, "
        f"{len(backbone.dominatees)} dominatees",
        f"* LDel(ICDS): {backbone.ldel_icds.edge_count} links, planar: "
        f"**{is_planar_embedding(backbone.ldel_icds)}**",
        f"* messages: {backbone.stats_ldel.total} total, max "
        f"{backbone.stats_ldel.max_per_node()} per node "
        f"(CDS phase: max {backbone.stats_cds.max_per_node()})",
        "",
    ]

    # -- topology table ----------------------------------------------------
    lines += [
        "## Topology quality",
        "",
        "| topology | edges | deg max | len stretch (avg/max) | "
        "hop stretch (avg/max) | planar | interference max |",
        "|---|---|---|---|---|---|---|",
    ]
    for name, graph in graphs.items():
        if name in STRETCH_TOPOLOGIES:
            skip = STRETCH_TOPOLOGIES[name]
            length = length_stretch(
                graph, udg, skip_udg_adjacent=skip, oracle=oracle
            )
            hops = hop_stretch(graph, udg, skip_udg_adjacent=skip, oracle=oracle)
            stretch_l = f"{length.avg:.2f} / {length.max:.2f}"
            stretch_h = f"{hops.avg:.2f} / {hops.max:.2f}"
        else:
            stretch_l = stretch_h = "–"
        interf = interference(graph).max if graph.edge_count else 0
        lines.append(
            f"| {name} | {graph.edge_count} | "
            f"{max(graph.degrees(), default=0)} | {stretch_l} | {stretch_h} | "
            f"{'yes' if is_planar_embedding(graph) else 'no'} | {interf} |"
        )
    lines.append("")

    # -- power -----------------------------------------------------------
    saving = power_saving_ratio(backbone.ldel_icds_prime, udg, alpha=2.0)
    profile = power_profile(backbone.ldel_icds_prime, alpha=2.0)
    lines += [
        "## Power (alpha = 2)",
        "",
        f"* assigned-power saving vs UDG: **{saving:.2f}×**",
        f"* max node power on the spanning structure: {profile.max_node_power:,.0f}",
        "",
    ]

    # -- spanner verification ------------------------------------------------
    length = length_stretch(
        backbone.ldel_icds_prime, udg, skip_udg_adjacent=True, oracle=oracle
    )
    verdict = verify_spanner(
        backbone.ldel_icds_prime,
        udg,
        claimed=length.max + 1e-6,
        skip_udg_adjacent=True,
    )
    lines += [
        "## Spanner verification",
        "",
        f"* measured length stretch: avg {length.avg:.3f}, max {length.max:.3f}",
        f"* verified as a {length.max:.3f}-spanner over "
        f"{verdict.pairs_checked} pairs: **{verdict.holds}**",
        "",
    ]

    # -- routing spot checks ----------------------------------------------
    n = udg.node_count
    probes = [(0, n - 1), (1, n // 2), (n // 3, n - 2)]
    lines += ["## Routing spot checks", ""]
    for s, t in probes:
        if s == t:
            continue
        route = backbone_route(backbone, s, t)
        status = f"delivered in {route.hops} hops" if route.delivered else (
            f"FAILED ({route.reason})"
        )
        lines.append(f"* {s} → {t}: {status}")
    lines.append("")

    # -- figures -------------------------------------------------------------
    if svg_dir is not None:
        from repro.viz.svg import render_backbone_svg

        svg_path = Path(svg_dir)
        svg_path.mkdir(parents=True, exist_ok=True)
        lines += ["## Figures", ""]
        for which in ("cds", "ldel_icds", "ldel_icds_prime"):
            out = svg_path / f"{which}.svg"
            out.write_text(render_backbone_svg(backbone, which=which))
            lines.append(f"* [{which}]({out.name})")
        lines.append("")

    return "\n".join(lines)
