"""Analysis and reporting utilities."""

from repro.analysis.report import generate_report

__all__ = ["generate_report"]
