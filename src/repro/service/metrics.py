"""Service metrics: counters and latency histograms.

Stdlib-only instrumentation for the serving layer.  Counters are
monotonically increasing named integers; histograms keep a bounded
reservoir of observations and report p50/p95/p99 alongside count, sum,
min and max.  Everything is thread-safe — the HTTP server handles
requests on a thread per connection and the batch executor observes
latencies from worker completion callbacks.

The exported snapshot is plain JSON (``GET /metrics``), flat enough to
scrape into any external system later without changing the producers.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 1] of sorted data."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class LatencyHistogram:
    """Bounded reservoir of latency observations (seconds).

    Keeps the most recent ``max_samples`` observations (a sliding
    window, not a random reservoir: serving dashboards care about
    *recent* tail latency) plus running count/sum/min/max over the
    full lifetime.
    """

    __slots__ = ("name", "max_samples", "_samples", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str, *, max_samples: int = 4096) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be positive")
        self.name = name
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        if seconds < 0.0:
            seconds = 0.0
        with self._lock:
            self._count += 1
            self._sum += seconds
            self._min = min(self._min, seconds)
            self._max = max(self._max, seconds)
            self._samples.append(seconds)
            if len(self._samples) > self.max_samples:
                # Drop the oldest half in one go; amortized O(1).
                del self._samples[: self.max_samples // 2]

    @contextmanager
    def time(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    def snapshot(self) -> dict:
        with self._lock:
            samples = sorted(self._samples)
            count, total = self._count, self._sum
            lo = self._min if self._count else 0.0
            hi = self._max
        return {
            "count": count,
            "sum_s": total,
            "avg_ms": (total / count * 1000.0) if count else 0.0,
            "min_ms": lo * 1000.0,
            "max_ms": hi * 1000.0,
            "p50_ms": percentile(samples, 0.50) * 1000.0,
            "p95_ms": percentile(samples, 0.95) * 1000.0,
            "p99_ms": percentile(samples, 0.99) * 1000.0,
        }


class MetricsRegistry:
    """A namespace of counters and histograms with a JSON snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()
        self.started_at = time.time()

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram(name)
            return histogram

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def merge_counters(self, counters: Dict[str, int], *, prefix: str = "") -> None:
        """Fold a dict of counter deltas in (e.g. a construction-cache
        snapshot from a finished build); negative values are skipped
        rather than violating counter monotonicity."""
        for name, amount in counters.items():
            if isinstance(amount, int) and not isinstance(amount, bool) and amount > 0:
                self.counter(prefix + name).inc(amount)

    def observe(self, name: str, seconds: float) -> None:
        self.histogram(name).observe(seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        with self.histogram(name).time():
            yield

    def snapshot(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "uptime_s": time.time() - self.started_at,
            "counters": {
                name: counter.value for name, counter in sorted(counters.items())
            },
            "latency": {
                name: histogram.snapshot()
                for name, histogram in sorted(histograms.items())
            },
        }
