"""The spanner construction service and its HTTP JSON API.

:class:`SpannerService` is the transport-free application object: it
owns the result cache, the metrics registry, and the batch executor
configuration, and exposes one method per endpoint.  The HTTP layer
(:class:`ServiceHandler` on a ``ThreadingHTTPServer``) is a thin JSON
shim over it — tests and benchmarks drive the service object directly
and only the integration test pays for sockets.

Endpoints:

* ``POST /build``  — build one topology (through the cache);
* ``POST /batch``  — fan many build requests across the executor;
* ``POST /route``  — greedy/GPSR routing on a cached backbone build;
* ``POST /route_batch`` — many (source, target) queries at once through
  the vectorized route engine, chunked, with optional failure replay;
* ``POST /build_stream`` — the same build as an SSE stream: per-tile
  progress events as shards land, then the full result;
* ``POST /session`` — open a live incremental maintenance session;
* ``POST /session/{id}/step`` — apply one event batch, stream the
  topology delta (edges added/removed) back;
* ``POST /session/{id}/stream`` — many event batches in, one SSE
  ``delta`` event out per batch as it is computed;
* ``GET /session/{id}`` — session summary and cumulative counters;
* ``DELETE /session/{id}`` — close a session;
* ``POST/GET/DELETE /deployments[/{name}]`` — the persistent named
  deployment store (requires ``--data-dir``);
* ``GET /pipelines`` — the registry listing with parameter schemas;
* ``GET /invariants`` — the declarative invariant catalog, the corpus
  recipes it runs against, and the last in-process validation summary;
* ``POST /validate`` — run the invariant matrix (corpus / pipeline /
  invariant filters) and return the pass/fail document;
* ``GET /metrics`` — counters, latency percentiles, cache accounting,
  and the ``incremental.*`` maintenance totals;
* ``GET /healthz`` — liveness.

Run it with ``python -m repro serve`` (``--async`` selects the
asyncio tier of :mod:`repro.service.aserver` over the same API).
"""

from __future__ import annotations

import os
import random
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping, Optional

from repro.core.route_engine import (
    DEFAULT_CHUNK,
    REASON_STRINGS,
    BackboneRouter,
    replay_failures,
)
from repro.incremental.engine import IncrementalMaintainer, StepReport
from repro.incremental.events import parse_events
from repro.incremental.session import IncrementalSession
from repro.routing.backbone_routing import backbone_route
from repro.service.cache import ResultCache, scenario_key
from repro.service.dispatch import (
    MAX_BODY,
    EventStream,
    JsonResponse,
    dispatch,
    error_response,
)
from repro.service.executor import MODES, global_tracker, run_batch
from repro.service.metrics import MetricsRegistry
from repro.service.registry import (
    BuildProduct,
    RegistryError,
    available_pipelines,
    build_scenario,
    get_pipeline,
    resolve_scenario,
)
from repro.service.store import DeploymentStore, StoreError

#: Route traversal modes accepted by ``POST /route``.
ROUTE_MODES = ("gpsr", "greedy")

#: Backbone traversal modes accepted by ``POST /route_batch``
#: (``shortest`` answers cores with true Dijkstra shortest paths).
BATCH_ROUTE_MODES = BackboneRouter.MODES

#: Most per-pair paths one ``POST /route_batch`` response will inline
#: (aggregates are unlimited; explicit paths are a debugging aid).
MAX_BATCH_PATHS = 1024

#: Most pairs one ``POST /route_batch`` request may route (the 1M-pair
#: regime fits; anything past this belongs in the offline bench).
MAX_BATCH_PAIRS = 5_000_000

#: Cached per-build-key batch routers kept on the service (each holds
#: CSR snapshots, angle tables, and the per-mode core-route memo).
_ROUTER_CACHE_ENTRIES = 32


class ServiceError(Exception):
    """A request-level failure with an HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class SpannerService:
    """The serving layer: cache + registry + executor + metrics."""

    def __init__(
        self,
        *,
        cache_size: int = 256,
        cache_dir: Optional[str] = None,
        executor_mode: str = "process",
        max_workers: Optional[int] = None,
        task_timeout: Optional[float] = 120.0,
        data_dir: Optional[str] = None,
        worker_id: Optional[int] = None,
    ) -> None:
        if executor_mode not in MODES:
            raise ValueError(f"unknown executor mode {executor_mode!r}")
        #: Persistent state root (``--data-dir``).  When set, the
        #: deployment store lives under it and — unless the caller
        #: chose an explicit ``cache_dir`` — so does the build cache's
        #: disk layer, which is what lets every shared-nothing worker
        #: of the async tier warm key-based lookups any peer built.
        self.data_dir = data_dir
        self.store: Optional[DeploymentStore] = None
        if data_dir is not None:
            self.store = DeploymentStore(data_dir)
            if cache_dir is None:
                cache_dir = os.path.join(data_dir, "cache")
        self.cache = ResultCache(max_entries=cache_size, disk_dir=cache_dir)
        self.metrics = MetricsRegistry()
        self.executor_mode = executor_mode
        self.max_workers = max_workers
        self.task_timeout = task_timeout
        #: Pool-worker identity (``None`` for a standalone service).
        #: Namespaces session ids (``w3-s1``) so ids minted by
        #: different shared-nothing workers can never collide, and the
        #: async front end can pin session traffic to the owner.
        self.worker_id = worker_id
        #: Live incremental maintenance sessions by id.
        self._sessions: dict[str, IncrementalSession] = {}
        self._sessions_lock = threading.Lock()
        #: Batch routers by build key (CSR snapshots + core-route memo).
        self._routers: dict[str, BackboneRouter] = {}
        self._routers_lock = threading.Lock()
        self._session_seq = 0
        self._closed = False
        #: Summary of the most recent ``POST /validate`` run, shown by
        #: ``GET /invariants`` (None until a validation has run).
        self._last_validation: Optional[dict] = None

    # -- building --------------------------------------------------------

    def _resolve(self, scenario: Any):
        """Resolve a scenario spec, including ``{"deployment": name}``.

        The store form references a named persisted deployment so
        clients stop re-shipping point sets; every other form defers
        to :func:`~repro.service.registry.resolve_scenario`.
        """
        if isinstance(scenario, Mapping) and "deployment" in scenario:
            name = scenario["deployment"]
            if not isinstance(name, str):
                raise ServiceError(400, "'deployment' must be a string name")
            if self.store is None:
                raise ServiceError(
                    400, "no deployment store configured; start with --data-dir"
                )
            try:
                return self.store.get(name)
            except StoreError as exc:
                raise ServiceError(404, str(exc.args[0])) from None
        try:
            return resolve_scenario(scenario)
        except RegistryError as exc:
            raise ServiceError(400, str(exc)) from None

    def _prepare(self, payload: Mapping[str, Any]) -> tuple[str, dict, dict, str]:
        """Validate one build request -> (pipeline, scenario, params, key).

        Scenario resolution happens here (cheap relative to
        construction) so the cache key addresses the *resolved point
        set*: a corpus reference and the same points sent explicitly
        share one cache entry.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError(400, "request body must be a JSON object")
        name = payload.get("pipeline")
        if not isinstance(name, str):
            raise ServiceError(400, "missing required field 'pipeline'")
        scenario = payload.get("scenario")
        if scenario is None:
            raise ServiceError(400, "missing required field 'scenario'")
        try:
            spec = get_pipeline(name)
            params = spec.canonicalize(payload.get("params"))
        except RegistryError as exc:
            raise ServiceError(400, str(exc)) from None
        deployment = self._resolve(scenario)
        key = scenario_key(deployment.points, deployment.radius, name, params)
        resolved = {
            "points": [[p.x, p.y] for p in deployment.points],
            "radius": deployment.radius,
            "side": deployment.side,
        }
        return name, resolved, params, key

    def build(self, payload: Mapping[str, Any]) -> dict:
        """``POST /build`` — one construction through the cache."""
        self.metrics.inc("build.requests")
        with self.metrics.timer("build.request"):
            name, scenario, params, key = self._prepare(payload)
            product, hit = self._build_cached(name, scenario, params, key)
        self.metrics.inc("build.cache_hits" if hit else "build.cache_misses")
        if not hit:
            self._record_construction_metrics(product)
        response = {"key": key, "params": params, "cache": "hit" if hit else "miss"}
        response.update(product.summary())
        return response

    def _build_cached(
        self, name: str, scenario: dict, params: dict, key: str
    ) -> tuple[BuildProduct, bool]:
        def construct() -> BuildProduct:
            with self.metrics.timer("build.construct"):
                return build_scenario(name, scenario, params)

        return self.cache.get_or_build(key, construct)

    def _record_construction_metrics(self, product: BuildProduct) -> None:
        """Fold a fresh build's construction-cache counters into metrics.

        LDel-family builders ship a ``construction_cache`` snapshot in
        their extras (hit/miss counts for the neighborhood and
        circumcircle layers, triangle-pair statistics); exposing the
        running totals under ``construction.*`` makes the hot-path
        cache effectiveness visible on ``GET /metrics``.
        """
        counters = product.extras.get("construction_cache")
        if isinstance(counters, Mapping):
            self.metrics.merge_counters(dict(counters), prefix="construction.")
        sharding = product.extras.get("sharding")
        if isinstance(sharding, Mapping):
            self._record_sharding_metrics(sharding)
        backbone = product.extras.get("backbone")
        if isinstance(backbone, Mapping):
            self._record_backbone_metrics(backbone)
        oracle = product.extras.get("oracle")
        if isinstance(oracle, Mapping):
            self._record_oracle_metrics(oracle)

    def _record_oracle_metrics(self, oracle: Mapping[str, Any]) -> None:
        """Fold a measured build's distance-oracle stats into ``oracle.*``.

        ``measure=true`` builds ship the oracle's snapshot in their
        extras: APSP/snapshot cache hit-miss counters become running
        totals (``oracle.apsp_hits``, ...), the per-stage wall times
        (snapshot / apsp / kernel) feed latency histograms under
        ``oracle.stage.*``, and ``oracle.measurements`` counts measured
        builds — so ``GET /metrics`` shows how much the memoized
        matrices and the vectorized kernel save.
        """
        self.metrics.inc("oracle.measurements")
        counters = oracle.get("counters")
        if isinstance(counters, Mapping):
            self.metrics.merge_counters(dict(counters), prefix="oracle.")
        seconds = oracle.get("seconds")
        if isinstance(seconds, Mapping):
            for name, value in seconds.items():
                if isinstance(value, (int, float)):
                    self.metrics.observe(f"oracle.stage.{name}", float(value))

    def _record_backbone_metrics(self, backbone: Mapping[str, Any]) -> None:
        """Fold a backbone build's stats into ``backbone.*`` metrics.

        Builds are counted overall and per construction mode
        (``backbone.mode.fast`` / ``backbone.mode.protocol``), the
        per-phase wall times (CDS election + connectors, LDel
        planarization) feed latency histograms, and the build's message
        ledger total becomes a running counter — so ``GET /metrics``
        shows directly how much the fast path saves per phase.
        """
        self.metrics.inc("backbone.builds")
        mode = backbone.get("mode")
        if isinstance(mode, str) and mode:
            self.metrics.inc(f"backbone.mode.{mode}")
        phases = backbone.get("phase_seconds")
        if isinstance(phases, Mapping):
            for name, seconds in phases.items():
                if isinstance(seconds, (int, float)):
                    self.metrics.observe(f"backbone.phase.{name}", float(seconds))
        counters = backbone.get("counters")
        if isinstance(counters, Mapping):
            self.metrics.merge_counters(dict(counters), prefix="backbone.")

    def _record_sharding_metrics(self, sharding: Mapping[str, Any]) -> None:
        """Fold a sharded build's stats into ``sharding.*`` metrics.

        Stitch counters (accepted/surviving triangles, contests,
        ``straddle_contests`` — the cross-tile reconciliation work)
        become running counters; per-tile and per-phase wall times feed
        latency histograms so ``GET /metrics`` shows tile balance.
        """
        counters = sharding.get("counters")
        if isinstance(counters, Mapping):
            self.metrics.merge_counters(dict(counters), prefix="sharding.")
        self.metrics.inc("sharding.builds")
        self.metrics.inc("sharding.tiles", int(sharding.get("tiles", 0)))
        for entry in sharding.get("tile_seconds", ()):
            seconds = entry.get("seconds", {}) if isinstance(entry, Mapping) else {}
            total = sum(v for v in seconds.values() if isinstance(v, (int, float)))
            self.metrics.observe("sharding.tile_seconds", total)
        phases = sharding.get("phase_seconds")
        if isinstance(phases, Mapping):
            for phase, seconds in phases.items():
                if isinstance(seconds, (int, float)):
                    self.metrics.observe(f"sharding.phase.{phase}", float(seconds))

    # -- batching --------------------------------------------------------

    def batch(self, payload: Mapping[str, Any]) -> dict:
        """``POST /batch`` — fan build requests across the worker pool.

        Cache hits are answered inline; only misses travel to the
        pool.  Results keep request order.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError(400, "request body must be a JSON object")
        requests = payload.get("requests")
        if not isinstance(requests, list) or not requests:
            raise ServiceError(400, "'requests' must be a non-empty list")
        options = payload.get("executor") or {}
        mode = options.get("mode", self.executor_mode)
        if mode not in MODES:
            raise ServiceError(400, f"unknown executor mode {mode!r}")
        max_workers = options.get("max_workers", self.max_workers)
        timeout = options.get("timeout", self.task_timeout)

        self.metrics.inc("batch.requests")
        self.metrics.inc("batch.tasks", len(requests))
        with self.metrics.timer("batch.request"):
            prepared = []
            for i, request in enumerate(requests):
                try:
                    prepared.append(self._prepare(request))
                except ServiceError as exc:
                    prepared.append(exc)

            results: list[Optional[dict]] = [None] * len(requests)
            pending: list[tuple[int, str, dict, dict, str]] = []
            for i, item in enumerate(prepared):
                if isinstance(item, ServiceError):
                    results[i] = {"ok": False, "error": item.message}
                    continue
                name, scenario, params, key = item
                cached = self.cache.get(key)
                if cached is not None:
                    self.metrics.inc("build.cache_hits")
                    results[i] = {
                        "ok": True, "key": key, "cache": "hit",
                        **cached.summary(),
                    }
                else:
                    self.metrics.inc("build.cache_misses")
                    pending.append((i, name, scenario, params, key))

            outcome = None
            if pending:
                outcome = run_batch(
                    [(name, scenario, params) for _, name, scenario, params, _ in pending],
                    _batch_worker,
                    mode=mode,
                    max_workers=max_workers,
                    timeout=timeout,
                    metrics=self.metrics,
                    metric_name="build.construct",
                )
                for (i, name, scenario, params, key), task in zip(
                    pending, outcome.outcomes
                ):
                    if task.ok:
                        self.cache.put(key, task.value)
                        self._record_construction_metrics(task.value)
                        results[i] = {
                            "ok": True, "key": key, "cache": "miss",
                            "elapsed_ms": round(task.duration_s * 1000.0, 3),
                            **task.value.summary(),
                        }
                    else:
                        self.metrics.inc("batch.task_errors")
                        results[i] = {
                            "ok": False, "error": task.error,
                            "timed_out": task.timed_out,
                        }
        return {
            "tasks": len(requests),
            "succeeded": sum(1 for r in results if r and r.get("ok")),
            "cache_hits": sum(1 for r in results if r and r.get("cache") == "hit"),
            "executor": {
                "mode": outcome.mode if outcome else "inline",
                "workers": outcome.workers if outcome else 0,
            },
            "results": results,
        }

    # -- routing ---------------------------------------------------------

    def route(self, payload: Mapping[str, Any]) -> dict:
        """``POST /route`` — paper-procedure routing on a cached backbone.

        Accepts either ``{"key": <build key>}`` referencing a previous
        routable build, or an inline build request (``pipeline`` +
        ``scenario``), which is served through the cache first.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError(400, "request body must be a JSON object")
        self.metrics.inc("route.requests")
        with self.metrics.timer("route.request"):
            key, product = self._resolve_routable(payload)
            try:
                source = int(payload["source"])
                target = int(payload["target"])
            except (KeyError, TypeError, ValueError):
                raise ServiceError(
                    400, "'source' and 'target' must be integer node ids"
                ) from None
            mode = payload.get("mode", "gpsr")
            if mode not in ROUTE_MODES:
                raise ServiceError(400, f"unknown route mode {mode!r}")
            n = product.backbone.udg.node_count
            if not (0 <= source < n and 0 <= target < n):
                raise ServiceError(400, f"source/target must be in [0, {n})")
            result = backbone_route(product.backbone, source, target, mode=mode)
        self.metrics.inc("route.delivered" if result.delivered else "route.failed")
        return {
            "key": key,
            "source": source,
            "target": target,
            "mode": mode,
            **result.as_dict(product.backbone.udg),
        }

    def _resolve_routable(self, payload: Mapping[str, Any]) -> tuple[str, BuildProduct]:
        """Shared ``/route`` + ``/route_batch`` lookup: a routable build.

        Accepts ``{"key": <build key>}`` referencing a cached build, or
        an inline ``pipeline`` + ``scenario`` request served through
        the cache first.
        """
        key = payload.get("key")
        if key is not None:
            product = self.cache.get(key)
            if product is None:
                raise ServiceError(
                    404, f"no cached build under key {key!r}; POST /build first"
                )
        else:
            name, scenario, params, key = self._prepare(payload)
            product, _ = self._build_cached(name, scenario, params, key)
        if product.backbone is None:
            raise ServiceError(
                400,
                f"pipeline {product.pipeline!r} is not routable; use a "
                "backbone pipeline (e.g. 'backbone', 'ldel_icds')",
            )
        return key, product

    def _router_for(self, key: str, product: BuildProduct) -> BackboneRouter:
        """The cached batch router for one build key.

        Routers carry the CSR snapshots, the per-directed-edge angle
        tables, and the per-mode core-route memo, so reusing one across
        requests is what makes repeat batches near-free.
        """
        with self._routers_lock:
            router = self._routers.get(key)
        if router is not None:
            self.metrics.inc("routing.router_cache_hits")
            return router
        self.metrics.inc("routing.router_cache_misses")
        router = BackboneRouter(product.backbone)
        with self._routers_lock:
            if len(self._routers) >= _ROUTER_CACHE_ENTRIES:
                self._routers.clear()
            self._routers[key] = router
        return router

    def route_batch(self, payload: Mapping[str, Any]) -> dict:
        """``POST /route_batch`` — batch routing via the vectorized engine.

        Routes every ``(source, target)`` pair — given explicitly as
        ``pairs`` or sampled with ``count`` (+ ``seed``) — through the
        cached :class:`~repro.core.route_engine.BackboneRouter` for the
        build, advancing all queries in lockstep over CSR snapshots.
        ``mode`` picks the backbone traversal (``gpsr`` / ``greedy`` /
        ``shortest``); ``include_paths`` inlines up to
        :data:`MAX_BATCH_PATHS` explicit paths; ``chunk`` bounds how
        many pairs each engine round holds in memory.  An optional
        ``failure`` object (``node_loss`` / ``link_loss`` / ``seed``)
        switches to failure replay: the batch runs against the degraded
        topology and the response reports delivery rates and the
        stretch of surviving routes instead.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError(400, "request body must be a JSON object")
        self.metrics.inc("routing.requests")
        with self.metrics.timer("routing.request"):
            key, product = self._resolve_routable(payload)
            mode = payload.get("mode", "gpsr")
            if mode not in BATCH_ROUTE_MODES:
                raise ServiceError(
                    400,
                    f"unknown route mode {mode!r}; known: {list(BATCH_ROUTE_MODES)}",
                )
            n = product.backbone.udg.node_count
            pairs = self._batch_pairs(payload, n)
            max_hops = payload.get("max_hops")
            if max_hops is not None and (
                isinstance(max_hops, bool)
                or not isinstance(max_hops, int)
                or max_hops < 1
            ):
                raise ServiceError(400, "'max_hops' must be a positive integer")
            failure = payload.get("failure")
            if failure is not None:
                return self._route_batch_failure(
                    key, product, pairs, mode, max_hops, failure
                )
            include_paths = payload.get("include_paths", 0)
            if (
                isinstance(include_paths, bool)
                or not isinstance(include_paths, int)
                or include_paths < 0
            ):
                raise ServiceError(
                    400, "'include_paths' must be a non-negative integer"
                )
            include_paths = min(include_paths, MAX_BATCH_PATHS, len(pairs))
            chunk = payload.get("chunk", DEFAULT_CHUNK)
            if isinstance(chunk, bool) or not isinstance(chunk, int) or chunk < 1:
                raise ServiceError(400, "'chunk' must be a positive integer")
            router = self._router_for(key, product)
            # Paths are only kept for the (small, capped) leading slice;
            # the rest of the batch streams through in hops/lengths-only
            # chunks — the shape that survives million-pair requests.
            bounds: list[tuple[int, int, bool]] = []
            if include_paths:
                bounds.append((0, include_paths, True))
            lo = include_paths
            while lo < len(pairs):
                hi = min(len(pairs), lo + chunk)
                bounds.append((lo, hi, False))
                lo = hi
            delivered = 0
            unreachable = 0
            hops_sum = 0.0
            length_sum = 0.0
            reason_counts = {name: 0 for name in REASON_STRINGS}
            paths: list[dict] = []
            for lo, hi, keep in bounds:
                with self.metrics.timer("routing.batch"):
                    batch = router.route_pairs(
                        pairs[lo:hi],
                        mode=mode,
                        max_hops=max_hops,
                        keep_paths=keep,
                    )
                delivered += batch.delivered_count
                unreachable += batch.unreachable_pairs
                hops_sum += batch.hops_avg() * batch.delivered_count
                length_sum += batch.length_avg() * batch.delivered_count
                for name, count in batch.reason_counts().items():
                    reason_counts[name] += count
                if keep:
                    for i in range(batch.pairs):
                        paths.append(
                            {
                                "source": int(batch.sources[i]),
                                "target": int(batch.targets[i]),
                                "reason": batch.reason(i),
                                "hops": int(batch.hops[i]),
                                "path": list(batch.path(i)),
                            }
                        )
        total = len(pairs)
        reachable = total - unreachable
        self.metrics.inc("routing.pairs", total)
        self.metrics.inc("routing.delivered", delivered)
        self.metrics.inc("routing.unreachable", unreachable)
        self.metrics.inc("routing.chunks", len(bounds))
        response = {
            "key": key,
            "mode": mode,
            "pairs": total,
            "delivered": delivered,
            "delivery_rate": delivered / total if total else 0.0,
            "unreachable_pairs": unreachable,
            "reachable_delivery_rate": (
                delivered / reachable if reachable else 0.0
            ),
            "hops_avg": hops_sum / delivered if delivered else 0.0,
            "length_avg": length_sum / delivered if delivered else 0.0,
            "reasons": reason_counts,
            "chunks": len(bounds),
        }
        if include_paths:
            response["paths"] = paths
        return response

    def _batch_pairs(
        self, payload: Mapping[str, Any], n: int
    ) -> list[tuple[int, int]]:
        """The pair list for one batch request: explicit or sampled."""
        pairs = payload.get("pairs")
        if pairs is not None:
            if not isinstance(pairs, list) or not pairs:
                raise ServiceError(
                    400, "'pairs' must be a non-empty list of [source, target]"
                )
            if len(pairs) > MAX_BATCH_PAIRS:
                raise ServiceError(
                    400, f"at most {MAX_BATCH_PAIRS} pairs per request"
                )
            norm: list[tuple[int, int]] = []
            for item in pairs:
                if (
                    not isinstance(item, (list, tuple))
                    or len(item) != 2
                    or any(
                        isinstance(v, bool) or not isinstance(v, int)
                        for v in item
                    )
                ):
                    raise ServiceError(
                        400, "each pair must be a [source, target] integer pair"
                    )
                s, t = int(item[0]), int(item[1])
                if not (0 <= s < n and 0 <= t < n):
                    raise ServiceError(
                        400, f"pair endpoints must be in [0, {n})"
                    )
                norm.append((s, t))
            return norm
        count = payload.get("count")
        if count is None:
            raise ServiceError(
                400, "provide 'pairs' or a sampled pair 'count'"
            )
        if isinstance(count, bool) or not isinstance(count, int) or count < 1:
            raise ServiceError(400, "'count' must be a positive integer")
        if count > MAX_BATCH_PAIRS:
            raise ServiceError(400, f"at most {MAX_BATCH_PAIRS} pairs per request")
        if n < 2:
            raise ServiceError(400, "need at least two nodes to sample pairs")
        seed = payload.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ServiceError(400, "'seed' must be an integer")
        rng = random.Random(seed)
        sampled: list[tuple[int, int]] = []
        while len(sampled) < count:
            s, t = rng.randrange(n), rng.randrange(n)
            if s != t:
                sampled.append((s, t))
        return sampled

    def _route_batch_failure(
        self,
        key: str,
        product: BuildProduct,
        pairs: list[tuple[int, int]],
        mode: str,
        max_hops: Optional[int],
        failure: Any,
    ) -> dict:
        """The ``failure`` branch of ``/route_batch``: degraded replay."""
        if not isinstance(failure, Mapping):
            raise ServiceError(400, "'failure' must be a JSON object")
        node_loss = failure.get("node_loss", 0.0)
        link_loss = failure.get("link_loss", 0.0)
        for name, value in (("node_loss", node_loss), ("link_loss", link_loss)):
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or not (0.0 <= float(value) <= 1.0)
            ):
                raise ServiceError(400, f"'{name}' must be a number in [0, 1]")
        seed = failure.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ServiceError(400, "failure 'seed' must be an integer")
        self.metrics.inc("routing.replays")
        with self.metrics.timer("routing.replay"):
            report = replay_failures(
                product.backbone,
                pairs,
                node_loss=float(node_loss),
                link_loss=float(link_loss),
                seed=seed,
                mode=mode,
                max_hops=max_hops,
            )
        self.metrics.inc("routing.pairs", len(pairs))
        self.metrics.inc("routing.delivered", report["survived"])
        return {"key": key, **report}

    # -- incremental sessions --------------------------------------------

    def session_create(self, payload: Mapping[str, Any]) -> dict:
        """``POST /session`` — open a live incremental maintenance session.

        The scenario resolves exactly like a build request's; the
        session then owns an
        :class:`~repro.incremental.engine.IncrementalMaintainer` whose
        maintained structures stay bit-identical to a from-scratch
        rebuild as event batches stream in through
        ``POST /session/{id}/step``.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError(400, "request body must be a JSON object")
        scenario = payload.get("scenario")
        if scenario is None:
            raise ServiceError(400, "missing required field 'scenario'")
        tile_cells = payload.get("tile_cells", 2)
        if isinstance(tile_cells, bool) or not isinstance(tile_cells, int) or tile_cells < 1:
            raise ServiceError(400, "'tile_cells' must be a positive integer")
        deployment = self._resolve(scenario)
        self.metrics.inc("incremental.sessions")
        with self.metrics.timer("incremental.open"):
            maintainer = IncrementalMaintainer(
                list(deployment.points), deployment.radius, tile_cells=tile_cells
            )
        session = IncrementalSession(maintainer)
        with self._sessions_lock:
            self._session_seq += 1
            prefix = f"w{self.worker_id}-" if self.worker_id is not None else ""
            session_id = f"{prefix}s{self._session_seq}"
            self._sessions[session_id] = session
        snap = maintainer.snapshot()
        return {
            "session": session_id,
            "nodes": maintainer.udg.node_count,
            "radius": deployment.radius,
            "udg_edges": len(snap.udg_edges),
            "dominators": len(snap.dominators),
            "connectors": len(snap.connectors),
            "ldel_icds_edges": len(snap.ldel_icds_edges),
        }

    def _session(self, session_id: str) -> IncrementalSession:
        with self._sessions_lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServiceError(
                404, f"no session {session_id!r}; POST /session first"
            )
        return session

    def session_step(self, session_id: str, payload: Mapping[str, Any]) -> dict:
        """``POST /session/{id}/step`` — one event batch in, one delta out.

        The response is the step's :class:`StepReport`: invalidation
        accounting (dirty tiles/nodes, certified vs fallback repairs)
        plus the streamed topology delta — the LDel(ICDS') edges this
        batch added and removed.  ``verify=true`` additionally runs the
        rebuild-equivalence tripwire and reports the outcome.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError(400, "request body must be a JSON object")
        session = self._session(session_id)
        specs = payload.get("events")
        if not isinstance(specs, list):
            raise ServiceError(400, "'events' must be a list of event objects")
        try:
            events = parse_events(specs)
        except ValueError as exc:
            raise ServiceError(400, str(exc)) from None
        verify = bool(payload.get("verify", False))
        with self.metrics.timer("incremental.step"):
            report = session.step(events, verify=verify)
        self._record_incremental_metrics(report)
        response = {
            "session": session_id,
            "step": len(session.reports),
            **report.as_dict(),
        }
        if verify:
            self.metrics.inc("incremental.verifications")
            failures = session.verification_failures
            verified = not failures or failures[-1]["step"] != len(session.reports)
            if not verified:
                self.metrics.inc("incremental.verification_failures")
            response["verified"] = verified
        return response

    def session_get(self, session_id: str) -> dict:
        """``GET /session/{id}`` — summary plus cumulative counters."""
        session = self._session(session_id)
        snap = session.maintainer.snapshot()
        return {
            "session": session_id,
            "nodes": session.maintainer.udg.node_count,
            "steps": len(session.reports),
            "udg_edges": len(snap.udg_edges),
            "backbone_nodes": len(snap.backbone_nodes),
            "ldel_icds_edges": len(snap.ldel_icds_edges),
            "counters": session.counters(),
        }

    def session_delete(self, session_id: str) -> dict:
        """``DELETE /session/{id}`` — close and drop a session."""
        with self._sessions_lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise ServiceError(404, f"no session {session_id!r}")
        self.metrics.inc("incremental.sessions_closed")
        return {
            "session": session_id,
            "closed": True,
            "steps": len(session.reports),
        }

    def _record_incremental_metrics(self, report: StepReport) -> None:
        """Fold one maintenance step into the ``incremental.*`` metrics.

        Event/link/repair counts become running counters, the per-phase
        wall times feed latency histograms under
        ``incremental.phase.*``, and the step's dirty-node fraction
        feeds a (unitless) histogram — so ``GET /metrics`` shows how
        local the maintenance actually stayed.
        """
        self.metrics.inc("incremental.steps")
        self.metrics.inc("incremental.events", report.events)
        self.metrics.inc("incremental.appeared_links", report.appeared_links)
        self.metrics.inc("incremental.vanished_links", report.vanished_links)
        self.metrics.inc("incremental.role_changes", report.role_changes)
        self.metrics.inc("incremental.repairs_certified", report.repairs_certified)
        self.metrics.inc("incremental.repairs_fallback", report.repairs_fallback)
        self.metrics.inc("incremental.dirty_tiles", report.dirty_tiles)
        self.metrics.inc("incremental.dirty_nodes", report.dirty_nodes)
        self.metrics.inc("incremental.edges_added", len(report.edges_added))
        self.metrics.inc("incremental.edges_removed", len(report.edges_removed))
        self.metrics.observe("incremental.dirty_fraction", report.dirty_fraction)
        for name, seconds in report.phase_seconds.items():
            self.metrics.observe(f"incremental.phase.{name}", float(seconds))

    # -- named deployments -----------------------------------------------

    def _require_store(self) -> DeploymentStore:
        if self.store is None:
            raise ServiceError(
                400, "no deployment store configured; start with --data-dir"
            )
        return self.store

    def deployments_create(self, payload: Mapping[str, Any]) -> dict:
        """``POST /deployments`` — persist a named deployment.

        ``{"name": ..., "scenario": <any scenario form>}`` resolves the
        scenario exactly like a build request would, then stores the
        resolved deployment durably; ``overwrite=false`` makes the
        request fail with 409 instead of republishing an existing name.
        """
        store = self._require_store()
        if not isinstance(payload, Mapping):
            raise ServiceError(400, "request body must be a JSON object")
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ServiceError(400, "missing required field 'name'")
        scenario = payload.get("scenario")
        if scenario is None:
            raise ServiceError(400, "missing required field 'scenario'")
        overwrite = payload.get("overwrite", True)
        if not isinstance(overwrite, bool):
            raise ServiceError(400, "'overwrite' must be a boolean")
        deployment = self._resolve(scenario)
        self.metrics.inc("store.puts")
        try:
            return store.put(name, deployment, overwrite=overwrite)
        except ValueError as exc:
            raise ServiceError(400, str(exc)) from None
        except StoreError as exc:
            raise ServiceError(409, str(exc.args[0])) from None

    def deployments_list(self) -> dict:
        """``GET /deployments`` — every stored name, sorted."""
        return {"deployments": self._require_store().listing()}

    def deployments_get(self, name: str) -> dict:
        """``GET /deployments/{name}`` — one manifest entry."""
        try:
            return self._require_store().entry(name)
        except StoreError as exc:
            raise ServiceError(404, str(exc.args[0])) from None

    def deployments_delete(self, name: str) -> dict:
        """``DELETE /deployments/{name}`` — unpublish a name."""
        try:
            entry = self._require_store().delete(name)
        except StoreError as exc:
            raise ServiceError(404, str(exc.args[0])) from None
        self.metrics.inc("store.deletes")
        return {**entry, "deleted": True}

    # -- lifecycle -------------------------------------------------------

    def close(self, *, drain_timeout: float = 10.0) -> dict:
        """Graceful shutdown: drain executors, persist, drop live state.

        Joins every tracked worker pool still holding abandoned work
        (bounded by ``drain_timeout``), re-persists the deployment
        store manifest, and closes live sessions/routers.  Idempotent;
        the server transports call it once the listener has stopped
        accepting and in-flight requests have finished.
        """
        if self._closed:
            return {"closed": True, "already": True}
        self._closed = True
        drained = global_tracker().drain(timeout=drain_timeout)
        if not drained:
            self.metrics.inc("server.drain_timeouts")
        if self.store is not None:
            self.store.flush()
        with self._sessions_lock:
            sessions = len(self._sessions)
            self._sessions.clear()
        with self._routers_lock:
            self._routers.clear()
        return {"closed": True, "drained": drained, "sessions_closed": sessions}

    # -- validation ------------------------------------------------------

    def invariants_summary(self) -> dict:
        """``GET /invariants`` — catalog, corpus, last run summary."""
        from repro.validation.engine import PIPELINES
        from repro.validation.invariants import invariant_listing
        from repro.workloads.corpus import corpus_listing

        return {
            "invariants": invariant_listing(),
            "pipelines": list(PIPELINES),
            "corpus": corpus_listing(),
            "last_validation": self._last_validation,
        }

    def validate(self, payload: Mapping[str, Any]) -> dict:
        """``POST /validate`` — run the invariant matrix in-process.

        Accepts ``corpus`` / ``pipelines`` / ``invariants`` filter
        lists (all optional).  Runs serially inside the request — the
        farm's fan-out belongs to the CLI; this endpoint exists for
        on-demand spot checks against a live service.
        """
        if payload is None:
            payload = {}
        if not isinstance(payload, Mapping):
            raise ServiceError(400, "request body must be a JSON object")
        filters = {}
        for field in ("corpus", "pipelines", "invariants"):
            value = payload.get(field, [])
            if not isinstance(value, list) or not all(
                isinstance(item, str) for item in value
            ):
                raise ServiceError(400, f"'{field}' must be a list of strings")
            filters[field] = value
        from repro.validation.engine import run_validation

        self.metrics.inc("validation.requests")
        try:
            with self.metrics.timer("validation.run"):
                matrix = run_validation(
                    corpus=filters["corpus"],
                    pipelines=filters["pipelines"],
                    invariants=filters["invariants"],
                    executor="serial",
                )
        except KeyError as exc:
            raise ServiceError(400, str(exc.args[0])) from None
        summary = matrix.summary
        for status, count in summary.items():
            self.metrics.inc(f"validation.cells_{status}", count)
        if not matrix.ok:
            self.metrics.inc("validation.failed_runs")
        self._last_validation = {
            "ok": matrix.ok,
            "summary": summary,
            "meta": matrix.meta,
        }
        return matrix.to_json_dict()

    # -- introspection ---------------------------------------------------

    def pipelines(self) -> dict:
        return {"pipelines": available_pipelines()}

    def metrics_snapshot(self) -> dict:
        snapshot = self.metrics.snapshot()
        snapshot["sessions"] = {"active": len(self._sessions)}
        snapshot["cache"] = {
            "entries": len(self.cache),
            "max_entries": self.cache.max_entries,
            "disk_dir": str(self.cache.disk_dir) if self.cache.disk_dir else None,
            **self.cache.stats.as_dict(),
        }
        if self.store is not None:
            snapshot["store"] = {
                "deployments": len(self.store),
                "data_dir": str(self.store.data_dir),
            }
        if self.worker_id is not None:
            snapshot["worker_id"] = self.worker_id
        return snapshot

    def healthz(self) -> dict:
        return {"status": "ok", "uptime_s": self.metrics.snapshot()["uptime_s"]}


def _batch_worker(task: tuple[str, dict, dict]) -> BuildProduct:
    """Process-pool entry point: rebuild by value (name, scenario, params)."""
    name, scenario, params = task
    return build_scenario(name, scenario, params)


# -- HTTP layer ---------------------------------------------------------------


class ServiceHandler(BaseHTTPRequestHandler):
    """HTTP shim over :func:`repro.service.dispatch.dispatch`.

    Endpoint semantics live entirely in the dispatch module (shared
    with the async tier); this class only moves bytes: read the body,
    dispatch, write either the JSON response verbatim or the SSE
    frames as they are produced.
    """

    service: SpannerService  # set by make_server()
    protocol_version = "HTTP/1.1"
    #: Request bodies above this are rejected before being read.
    max_body = MAX_BODY

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging goes through metrics, not stderr

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def _handle(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.max_body:
            # Refuse without reading; same bytes dispatch would emit.
            self._respond(error_response(413, "request body too large"))
            return
        raw = self.rfile.read(length) if length > 0 else None
        result = dispatch(self.service, method, self.path, raw)
        if isinstance(result, EventStream):
            self._respond_stream(result)
        else:
            self._respond(result)

    def _respond(self, response: JsonResponse) -> None:
        body = response.encode()
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond_stream(self, stream: EventStream) -> None:
        """Write SSE frames as they land; the connection closes after.

        No ``Content-Length`` and no chunked framing — ``Connection:
        close`` delimits the stream, which keeps the frame bytes
        identical across transports.
        """
        self.send_response(stream.status)
        self.send_header("Content-Type", stream.content_type)
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for frame in stream.events:
                self.wfile.write(frame)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            self.service.metrics.inc("streaming.client_disconnects")


def make_server(
    host: str = "127.0.0.1",
    port: int = 8972,
    service: Optional[SpannerService] = None,
    **service_kwargs: Any,
) -> tuple[ThreadingHTTPServer, SpannerService]:
    """A bound (not yet serving) HTTP server over a service instance."""
    svc = service or SpannerService(**service_kwargs)
    handler = type("BoundServiceHandler", (ServiceHandler,), {"service": svc})
    httpd = ThreadingHTTPServer((host, port), handler)
    return httpd, svc


def serve(
    host: str = "127.0.0.1",
    port: int = 8972,
    service: Optional[SpannerService] = None,
    **service_kwargs: Any,
) -> int:
    """Blocking entry point behind ``python -m repro serve``."""
    httpd, svc = make_server(host, port, service, **service_kwargs)
    actual_port = httpd.server_address[1]
    print(f"spanner service on http://{host}:{actual_port} "
          f"(executor={svc.executor_mode}, cache={svc.cache.max_entries})")
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        # Stop accepting, then drain: close() joins tracked executor
        # pools and persists the deployment store manifest, so a ^C
        # no longer leaves worker threads running or state unsaved.
        httpd.server_close()
        svc.close()
    return 0


class BackgroundServer:
    """Context manager running the server on a daemon thread (tests)."""

    def __init__(self, service: Optional[SpannerService] = None, **kwargs: Any) -> None:
        self.httpd, self.service = make_server(port=0, service=service, **kwargs)
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )

    @property
    def url(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join(timeout=5)
        self.service.close()
