"""Server-sent-event streaming: build progress and topology deltas.

The paper's construction is *localized* — per-tile results are
independently certifiable — which is exactly what lets the serving
layer stream them out as they land instead of blocking on the global
build.  Two SSE surfaces exploit that:

* ``POST /build_stream`` — a build request whose response is an event
  stream: a ``start`` event, a ``tile`` event per finished shard tile
  (``sharded:*`` pipelines; the PR 3 tile/stitch structure), the full
  ``result`` document (identical to what ``POST /build`` would have
  returned), and ``end``;
* ``POST /session/{id}/stream`` — a *sequence* of incremental event
  batches applied to a live maintenance session, answered with one
  ``delta`` event per batch (the PR 6 topology delta: edges added and
  removed) as each is computed.

Both producers run inside the transport-agnostic dispatch layer, so
the blocking server writes the frames straight to its socket while the
async tier's workers forward them over the pool pipe one by one — the
client sees the same bytes either way.

SSE framing is the standard one (``event:`` + ``data:`` lines,
blank-line terminated); :func:`iter_sse_events` is the matching
client-side parser used by :class:`~repro.service.client.ServiceClient`.
"""

from __future__ import annotations

import json
import queue
import threading
from typing import TYPE_CHECKING, Any, Iterable, Iterator

if TYPE_CHECKING:
    from repro.service.server import SpannerService

#: Most event batches one ``/session/{id}/stream`` request may carry.
MAX_STREAM_BATCHES = 10_000


def sse_event(event: str, data: Any) -> bytes:
    """One wire-ready SSE frame."""
    return f"event: {event}\ndata: {json.dumps(data)}\n\n".encode()


def iter_sse_events(lines: Iterable[bytes]) -> Iterator[tuple[str, Any]]:
    """Parse an SSE byte-line stream into ``(event, data)`` pairs.

    ``data`` is JSON-decoded (every producer in this package sends
    JSON).  Comment lines and unknown fields are ignored, per spec.
    """
    event = "message"
    data_lines: list[str] = []
    for raw in lines:
        line = raw.rstrip(b"\r\n").decode()
        if not line:
            if data_lines:
                yield event, json.loads("\n".join(data_lines))
            event, data_lines = "message", []
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field == "event":
            event = value
        elif field == "data":
            data_lines.append(value)
    if data_lines:
        yield event, json.loads("\n".join(data_lines))


# -- streaming build ----------------------------------------------------------


def build_stream(service: "SpannerService", payload: Any) -> Iterator[bytes]:
    """``POST /build_stream`` — validate eagerly, then stream the build.

    Validation happens before the first frame so malformed requests
    still fail with a plain JSON 400 (the dispatch layer maps the
    raised :class:`ServiceError`); once the stream starts, failures
    travel as an ``error`` event.
    """
    name, scenario, params, key = service._prepare(payload)
    service.metrics.inc("streaming.builds")
    return _build_events(service, name, scenario, params, key)


def _build_events(
    service: "SpannerService", name: str, scenario: dict, params: dict, key: str
) -> Iterator[bytes]:
    yield sse_event(
        "start",
        {
            "pipeline": name,
            "key": key,
            "params": params,
            "nodes": len(scenario["points"]),
        },
    )
    cached = service.cache.get(key)
    if cached is not None:
        service.metrics.inc("build.cache_hits")
        yield sse_event(
            "result", {"key": key, "params": params, "cache": "hit", **cached.summary()}
        )
        yield sse_event("end", {"events": 2})
        return
    service.metrics.inc("build.cache_misses")

    from repro.sharding.build import tile_observer

    events: "queue.Queue[tuple[str, Any]]" = queue.Queue()
    done = object()

    def run_build() -> None:
        # The observer contextvar is set in this thread, so only tile
        # work done on behalf of this build reports into this stream.
        try:
            with tile_observer(
                lambda phase, info: events.put(("tile", {"phase": phase, **info}))
            ):
                with service.metrics.timer("build.construct"):
                    from repro.service.registry import build_scenario

                    product = build_scenario(name, scenario, params)
            service.cache.put(key, product)
            service._record_construction_metrics(product)
            events.put(("product", product))
        except Exception as exc:
            events.put(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            events.put((done, None))  # type: ignore[arg-type]

    worker = threading.Thread(target=run_build, daemon=True)
    worker.start()
    emitted = 1
    try:
        while True:
            kind, value = events.get()
            if kind is done:
                break
            if kind == "tile":
                emitted += 1
                service.metrics.inc("streaming.tile_events")
                yield sse_event("tile", value)
            elif kind == "product":
                emitted += 1
                yield sse_event(
                    "result",
                    {"key": key, "params": params, "cache": "miss", **value.summary()},
                )
            else:  # error
                emitted += 1
                service.metrics.inc("streaming.errors")
                yield sse_event("error", {"error": value})
        yield sse_event("end", {"events": emitted + 1})
    finally:
        worker.join(timeout=60)


def _tile_event_info(outcome_index: int, total: int, value: Any, seconds: float) -> dict:
    """The JSON body of one ``tile`` event, from a tile worker's result."""
    info: dict[str, Any] = {
        "index": outcome_index,
        "tiles": total,
        "seconds": round(seconds, 6),
    }
    if isinstance(value, dict):
        tile = value.get("tile")
        if tile is not None:
            info["tile"] = list(tile)
        nodes = value.get("nodes")
        if isinstance(nodes, dict):
            info.update(nodes)
        for field in ("candidates", "contests", "straddle_contests"):
            if field in value:
                info[field] = value[field]
        survivors = value.get("survivors")
        if survivors is not None:
            info["survivors"] = len(survivors)
        accepted = value.get("accepted")
        if accepted is not None:
            info["accepted"] = len(accepted)
    return info


# -- streaming sessions -------------------------------------------------------


def session_stream(
    service: "SpannerService", session_id: str, payload: Any
) -> Iterator[bytes]:
    """``POST /session/{id}/stream`` — one topology delta per batch."""
    from collections.abc import Mapping

    from repro.service.server import ServiceError

    if not isinstance(payload, Mapping):
        raise ServiceError(400, "request body must be a JSON object")
    service._session(session_id)  # 404 before the stream starts
    batches = payload.get("batches")
    if not isinstance(batches, list) or not batches:
        raise ServiceError(400, "'batches' must be a non-empty list of event lists")
    if len(batches) > MAX_STREAM_BATCHES:
        raise ServiceError(400, f"at most {MAX_STREAM_BATCHES} batches per stream")
    if not all(isinstance(batch, list) for batch in batches):
        raise ServiceError(400, "each batch must be a list of event objects")
    verify = bool(payload.get("verify", False))
    service.metrics.inc("streaming.sessions")
    return _session_events(service, session_id, batches, verify)


def _session_events(
    service: "SpannerService", session_id: str, batches: list, verify: bool
) -> Iterator[bytes]:
    from repro.service.server import ServiceError

    yield sse_event(
        "start", {"session": session_id, "batches": len(batches), "verify": verify}
    )
    applied = 0
    for batch in batches:
        try:
            report = service.session_step(
                session_id, {"events": batch, "verify": verify}
            )
        except ServiceError as exc:
            service.metrics.inc("streaming.errors")
            yield sse_event("error", {"error": exc.message, "status": exc.status})
            break
        except Exception as exc:
            service.metrics.inc("streaming.errors")
            service.metrics.inc("server.errors")
            yield sse_event("error", {"error": f"{type(exc).__name__}: {exc}"})
            break
        applied += 1
        service.metrics.inc("streaming.delta_events")
        yield sse_event("delta", report)
    yield sse_event("end", {"session": session_id, "applied": applied})
