"""Persistent multi-tenant deployment store.

Named deployments survive server restarts: a deployment posted under a
name is written as a content-addressed JSON document (the same
``deployment_to_dict`` format the CLI saves), and a single fsync'd
manifest maps names to document fingerprints.  Build requests can then
reference ``{"scenario": {"deployment": "<name>"}}`` instead of
re-shipping point sets.

Durability discipline:

* documents are content-addressed by
  :func:`~repro.workloads.io.deployment_fingerprint` — writing the
  same deployment twice is idempotent, and renaming a deployment never
  copies points;
* every write lands in a temp file, is flushed + ``fsync``'d, and is
  atomically renamed into place; the directory entry is fsync'd too,
  so a crash leaves either the old or the new manifest, never a torn
  one;
* readers reload the manifest when its ``(mtime_ns, size)`` stamp
  changes, so the async tier's shared-nothing workers (separate
  processes) observe writes without holding locks to read;
* writers serialize the manifest read-modify-write on a
  cross-process ``fcntl`` file lock (``manifest.lock``), so
  concurrent writers in *different* processes — pool workers,
  parallel CLIs over one ``--data-dir`` — cannot lose each other's
  updates.  The async front end additionally pins all
  ``/deployments`` traffic to worker 0, making that worker the
  single writer in the common case; the file lock is the backstop.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Union

try:
    import fcntl
except ImportError:  # non-POSIX: in-process locking only
    fcntl = None  # type: ignore[assignment]

from repro.workloads.generators import Deployment
from repro.workloads.io import (
    deployment_fingerprint,
    deployment_from_dict,
    deployment_to_dict,
)

PathLike = Union[str, Path]

#: Bump when the manifest layout changes; old manifests are ignored.
MANIFEST_VERSION = 1


class StoreError(KeyError):
    """Unknown deployment name, or a conflicting overwrite."""


#: Distinguishes concurrent temp files within one process (thread-mode
#: pool workers share a pid).
_TMP_SEQ = itertools.count()


def _fsync_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` durably: temp file, fsync, rename.

    The temp name is unique per writer (pid + in-process sequence) so
    concurrent writers — pool workers flushing at shutdown, whether
    processes or threads — never race on one temp file; last rename
    wins, and every rename is atomic.
    """
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_TMP_SEQ)}.tmp"
    )
    with tmp.open("wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    # Persist the directory entry as well; without this the rename
    # itself can be lost on power failure.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


class DeploymentStore:
    """Name -> deployment mapping persisted under one data directory."""

    def __init__(self, data_dir: PathLike) -> None:
        self.data_dir = Path(data_dir)
        self.documents_dir = self.data_dir / "deployments"
        self.manifest_path = self.data_dir / "manifest.json"
        self.lock_path = self.data_dir / "manifest.lock"
        self.documents_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._names: dict[str, dict] = {}
        self._stamp: Optional[tuple[int, int]] = None
        self._reload_locked()

    # -- manifest I/O ----------------------------------------------------

    @contextmanager
    def _exclusive(self) -> Iterator[None]:
        """The manifest write critical section, across processes.

        Every read-modify-write of the manifest (refresh, mutate,
        rewrite) runs under both the in-process lock and — where
        ``fcntl`` exists — an exclusive ``flock`` on a sidecar lock
        file, so two store instances in different processes cannot
        interleave and silently drop an acknowledged update.  Readers
        stay lock-free on disk: the manifest itself is only ever
        replaced atomically.
        """
        with self._lock:
            if fcntl is None:
                yield
                return
            with open(self.lock_path, "ab") as handle:
                fcntl.flock(handle, fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(handle, fcntl.LOCK_UN)

    def _manifest_stamp(self) -> Optional[tuple[int, int]]:
        try:
            stat = self.manifest_path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _reload_locked(self) -> None:
        stamp = self._manifest_stamp()
        if stamp is None:
            self._names = {}
            self._stamp = None
            return
        try:
            doc = json.loads(self.manifest_path.read_bytes())
        except (OSError, json.JSONDecodeError):
            return  # torn read mid-replace: keep the previous view
        if doc.get("version") == MANIFEST_VERSION:
            self._names = dict(doc.get("deployments", {}))
        self._stamp = stamp

    def _refresh_locked(self) -> None:
        if self._manifest_stamp() != self._stamp:
            self._reload_locked()

    def _write_manifest_locked(self) -> None:
        doc = {
            "version": MANIFEST_VERSION,
            "deployments": {name: self._names[name] for name in sorted(self._names)},
        }
        _fsync_write(
            self.manifest_path, json.dumps(doc, indent=1).encode()
        )
        self._stamp = self._manifest_stamp()

    # -- API -------------------------------------------------------------

    def put(
        self, name: str, deployment: Deployment, *, overwrite: bool = True
    ) -> dict:
        """Persist ``deployment`` under ``name``; returns its entry.

        The document write is idempotent (content-addressed); the
        manifest update is what publishes the name.
        """
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid deployment name {name!r}")
        fingerprint = deployment_fingerprint(deployment)
        document = self.documents_dir / f"{fingerprint}.json"
        if not document.exists():
            _fsync_write(
                document,
                json.dumps(deployment_to_dict(deployment), indent=1).encode(),
            )
        with self._exclusive():
            self._refresh_locked()
            existing = self._names.get(name)
            if existing is not None and not overwrite:
                raise StoreError(f"deployment {name!r} already exists")
            entry = {
                "fingerprint": fingerprint,
                "nodes": len(deployment.points),
                "radius": deployment.radius,
                "stored_at": round(time.time(), 3),
            }
            if existing is not None and existing["fingerprint"] == fingerprint:
                entry["stored_at"] = existing["stored_at"]
            self._names[name] = entry
            self._write_manifest_locked()
            return {"name": name, **entry}

    def entry(self, name: str) -> dict:
        """The manifest entry for ``name`` (raises :class:`StoreError`)."""
        with self._lock:
            self._refresh_locked()
            entry = self._names.get(name)
        if entry is None:
            raise StoreError(f"no deployment named {name!r}")
        return {"name": name, **entry}

    def get(self, name: str) -> Deployment:
        """Load the deployment stored under ``name``."""
        entry = self.entry(name)
        document = self.documents_dir / f"{entry['fingerprint']}.json"
        try:
            data = json.loads(document.read_bytes())
        except OSError:
            raise StoreError(
                f"deployment {name!r} document is missing from the store"
            ) from None
        return deployment_from_dict(data)

    def delete(self, name: str) -> dict:
        """Unpublish ``name`` (the document stays, content-addressed)."""
        with self._exclusive():
            self._refresh_locked()
            entry = self._names.pop(name, None)
            if entry is None:
                raise StoreError(f"no deployment named {name!r}")
            self._write_manifest_locked()
        return {"name": name, **entry}

    def listing(self) -> list[dict]:
        """Every entry, sorted by name."""
        with self._lock:
            self._refresh_locked()
            return [
                {"name": name, **self._names[name]}
                for name in sorted(self._names)
            ]

    def __len__(self) -> int:
        with self._lock:
            self._refresh_locked()
            return len(self._names)

    def __contains__(self, name: Any) -> bool:
        with self._lock:
            self._refresh_locked()
            return name in self._names

    def flush(self) -> None:
        """Re-persist the manifest (the graceful-shutdown hook)."""
        with self._exclusive():
            self._refresh_locked()
            self._write_manifest_locked()
