"""Content-addressed result cache for spanner constructions.

The serving layer's core amortization: a build request is keyed by a
stable hash of *what* is being built — the point set (bit-exact, via
``float.hex``), the transmission radius, the pipeline name, and the
canonicalized parameters.  Two requests that would produce the same
topology share one construction.

Two layers:

* an in-memory LRU (``max_entries``) holding live Python objects,
* an optional on-disk layer (``disk_dir``) holding pickled results,
  so a restarted server warms from previous traffic.

Accounting (hits / misses / evictions / disk hits / stores) is kept on
the cache itself and surfaced through ``GET /metrics``.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional, Union

from repro.workloads.io import points_fingerprint

PathLike = Union[str, Path]

#: Bump when the cached value layout changes; invalidates disk entries.
_CACHE_VERSION = "v1"


def _canonical_params(params: Mapping[str, Any]) -> str:
    """Deterministic JSON rendering of a parameter mapping.

    Floats are rendered via ``float.hex`` so that e.g. ``0.1`` hashes
    identically regardless of how it was parsed.
    """
    def normalize(value: Any) -> Any:
        if isinstance(value, bool):
            return value
        if isinstance(value, float):
            return value.hex()
        return value

    return json.dumps(
        {key: normalize(params[key]) for key in sorted(params)},
        separators=(",", ":"),
    )


def scenario_key(
    points: Iterable[tuple[float, float]],
    radius: float,
    pipeline: str,
    params: Mapping[str, Any],
) -> str:
    """Content address of one build: sha256 over (points, radius, pipeline, params)."""
    digest = hashlib.sha256()
    digest.update(_CACHE_VERSION.encode())
    digest.update(b"|")
    digest.update(points_fingerprint(points).encode())
    digest.update(b"|r=")
    digest.update(float(radius).hex().encode())
    digest.update(b"|p=")
    digest.update(pipeline.encode())
    digest.update(b"|a=")
    digest.update(_canonical_params(params).encode())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    disk_hits: int = 0
    disk_stores: int = 0
    disk_errors: int = 0

    def as_dict(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "disk_errors": self.disk_errors,
            "hit_rate": (self.hits / total) if total else 0.0,
        }


@dataclass
class ResultCache:
    """Thread-safe LRU of build results, with an optional disk layer.

    ``get_or_build(key, build)`` is the only path the serving layer
    uses: it returns the cached value or invokes ``build()`` exactly
    once per miss (the build itself runs outside the cache lock; two
    concurrent misses on the same key may both build — acceptable, the
    result is deterministic and the second store is idempotent).
    """

    max_entries: int = 256
    disk_dir: Optional[PathLike] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- lookup ----------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The cached value for ``key``, or ``None`` (counts hit/miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
        value = self._disk_load(key)
        if value is not None:
            with self._lock:
                self.stats.hits += 1
                self.stats.disk_hits += 1
            self._store_memory(key, value)
            return value
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        """Insert ``value`` under ``key`` in both layers."""
        self._store_memory(key, value)
        self._disk_store(key, value)
        with self._lock:
            self.stats.stores += 1

    def get_or_build(self, key: str, build: Callable[[], Any]) -> tuple[Any, bool]:
        """``(value, was_hit)`` — builds and stores on miss."""
        value = self.get(key)
        if value is not None:
            return value, True
        value = build()
        self.put(key, value)
        return value, False

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are kept)."""
        with self._lock:
            self._entries.clear()

    # -- internals -------------------------------------------------------

    def _store_memory(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return Path(self.disk_dir) / f"{key}.pkl"

    def _disk_load(self, key: str) -> Optional[Any]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            # A torn write or version skew; treat as a miss and let the
            # rebuild overwrite it.
            with self._lock:
                self.stats.disk_errors += 1
            return None

    def _disk_store(self, key: str, value: Any) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            tmp = path.with_suffix(".tmp")
            with tmp.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)  # atomic on POSIX: readers never see torn files
            with self._lock:
                self.stats.disk_stores += 1
        except Exception:
            with self._lock:
                self.stats.disk_errors += 1
