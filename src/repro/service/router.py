"""Consistent-hash request routing for the shared-nothing worker pool.

The async tier keeps workers *shared-nothing*: each owns its own
registry, construction/router caches, and incremental sessions, and
never locks against a peer.  What makes that fast instead of merely
isolated is placement — requests for the same deployment must always
land on the same worker, so its warm caches are the ones that get hit.

:class:`HashRing` implements classic consistent hashing (sha256 ring,
``replicas`` virtual nodes per worker) over *placement keys*:

* build-style requests hash the **deployment fingerprint** (points +
  radius), so every pipeline over one deployment shares a worker;
* ``{"key": ...}`` requests reuse the worker that produced the build
  key — the front end learns ``key -> worker`` from build responses
  (:class:`KeyAffinity`), falling back to hashing the key itself
  (any worker can still warm it from the shared disk cache layer);
* session requests are pinned by the ``w{worker}-s{seq}`` id prefix
  every pool worker stamps on the sessions it creates.

A fixed pool makes the ring's usual remapping virtue (only ``1/n``
of keys move when membership changes) moot at runtime, but it still
buys us stable placement across restarts and config-independent
balance — and it is the structure a resizable pool would need.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import re
import threading
from typing import Any, Mapping, Optional, Sequence

#: Virtual nodes per worker: enough to balance a handful of workers
#: within a few percent without making ring construction noticeable.
DEFAULT_REPLICAS = 64

_SESSION_ID_RE = re.compile(r"^w(\d+)-s\d+$")


def _hash64(data: bytes) -> int:
    """The ring position of ``data``: the top 8 bytes of sha256."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """Consistent hashing of placement keys onto a fixed worker set."""

    def __init__(self, workers: int, *, replicas: int = DEFAULT_REPLICAS) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for worker in range(workers):
            for replica in range(replicas):
                points.append((_hash64(b"w%d:%d" % (worker, replica)), worker))
        points.sort()
        self._ring = [position for position, _ in points]
        self._owner = [worker for _, worker in points]

    def worker_for(self, key: str) -> int:
        """The worker owning ``key``: first ring point at/after its hash."""
        index = bisect.bisect(self._ring, _hash64(key.encode()))
        return self._owner[index % len(self._owner)]

    def spread(self, keys: Sequence[str]) -> list[int]:
        """Per-worker key counts (balance diagnostics and tests)."""
        counts = [0] * self.workers
        for key in keys:
            counts[self.worker_for(key)] += 1
        return counts


class KeyAffinity:
    """A bounded ``build key -> worker`` map learned from responses.

    The front end records which worker answered each ``/build`` (the
    response carries the cache key) so later ``{"key": ...}`` routing
    requests go back to the worker whose in-memory caches are warm.
    LRU-bounded; eviction only costs a disk-cache warm-up on a
    different worker, never a wrong answer.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._map: dict[str, int] = {}

    def record(self, key: str, worker: int) -> None:
        with self._lock:
            self._map.pop(key, None)
            self._map[key] = worker
            while len(self._map) > self.max_entries:
                self._map.pop(next(iter(self._map)))

    def lookup(self, key: str) -> Optional[int]:
        with self._lock:
            worker = self._map.get(key)
            if worker is not None:
                self._map.pop(key)
                self._map[key] = worker  # refresh LRU position
            return worker

    def __len__(self) -> int:
        with self._lock:
            return len(self._map)


def session_worker(session_id: str) -> Optional[int]:
    """The worker that minted ``session_id`` (``w{k}-s{n}``), if any."""
    match = _SESSION_ID_RE.match(session_id)
    return int(match.group(1)) if match else None


def placement_key(
    method: str, parts: Sequence[str], payload: Any
) -> Optional[str]:
    """The string a request's placement should hash, or ``None``.

    ``None`` means the request has no data affinity (``/healthz``,
    ``/pipelines``, ``/validate``...) and may go to any worker.
    Session paths are handled separately via :func:`session_worker`
    (exact pin, not a hash).
    """
    if not parts:
        return None
    head = parts[0]
    if head in ("build", "build_stream", "route", "route_batch", "session"):
        if isinstance(payload, Mapping):
            key = payload.get("key")
            if isinstance(key, str):
                return f"key:{key}"
            scenario = payload.get("scenario")
            if scenario is not None:
                return f"scenario:{scenario_fingerprint(scenario)}"
        return None
    if head == "batch":
        # A batch fans out internally; place whole batches by their
        # request list so identical batches reuse one worker's caches.
        return None
    return None


def scenario_fingerprint(scenario: Any) -> str:
    """A stable placement fingerprint for any scenario spec form.

    Canonical JSON of the spec itself — cheap (no point generation on
    the front end) and stable: the same corpus reference, generator
    spec, named deployment, or explicit point list always hashes the
    same, which is all placement needs.  Two *different* spellings of
    the same point set may hash apart; that splits a tenant across two
    warm caches, never returns a wrong result.
    """
    try:
        canonical = json.dumps(scenario, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        canonical = repr(scenario)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]
