"""Named construction pipelines with a canonical parameter schema.

The registry is the service's dispatch table: every topology the repo
can construct is addressable by a short name (``udg``, ``gg``,
``ldel``, ``backbone``, ...), with declared, typed, defaulted
parameters.  Canonicalization happens here — the cache keys on the
*canonical* parameter dict, so ``{"k": 6}`` and ``{}`` (default k=6)
hash identically and share one cached build.

Builders are deterministic pure functions of ``(Deployment, params)``;
process-pool workers re-resolve them by name, so nothing in this
module needs to cross a process boundary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.core.metrics import StretchStats, measure_topology
from repro.core.oracle import DistanceOracle
from repro.core.spanner import BackboneResult, build_backbone
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.backbone import ELECTIONS
from repro.protocols.cds import MODES
from repro.topology.beta_skeleton import beta_skeleton
from repro.topology.construction_cache import ConstructionCache
from repro.topology.delaunay_udg import unit_delaunay_graph
from repro.topology.gabriel import gabriel_graph
from repro.topology.greedy_spanner import greedy_spanner
from repro.topology.knn import knn_graph
from repro.topology.ldel import local_delaunay_graph, planar_local_delaunay_graph
from repro.sharding.build import (
    sharded_backbone,
    sharded_gabriel,
    sharded_ldel,
    sharded_pldel,
    sharded_udg,
)
from repro.topology.mst import euclidean_mst
from repro.topology.rdg import restricted_delaunay_graph
from repro.topology.rng import relative_neighborhood_graph
from repro.topology.yao import yao_graph
from repro.topology.yao_sink import yao_sink_graph
from repro.topology.yao_yao import yao_yao_graph
from repro.workloads.generators import Deployment, connected_udg_instance


class RegistryError(ValueError):
    """Unknown pipeline, unknown parameter, or invalid parameter value."""


@dataclass(frozen=True)
class ParamSpec:
    """One declared pipeline parameter."""

    name: str
    type: type
    default: Any
    choices: Optional[tuple] = None
    minimum: Optional[float] = None

    def coerce(self, value: Any) -> Any:
        """Validate and canonicalize one supplied value."""
        if self.type is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if self.type is int and isinstance(value, float) and value.is_integer():
            value = int(value)
        if not isinstance(value, self.type) or isinstance(value, bool) != (self.type is bool):
            raise RegistryError(
                f"parameter {self.name!r} expects {self.type.__name__}, "
                f"got {type(value).__name__}"
            )
        if self.choices is not None and value not in self.choices:
            raise RegistryError(
                f"parameter {self.name!r} must be one of {self.choices}, got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise RegistryError(
                f"parameter {self.name!r} must be >= {self.minimum}, got {value!r}"
            )
        return value


@dataclass(frozen=True)
class BuildProduct:
    """What one pipeline build yields.

    ``graph`` is always present.  Backbone-family pipelines also carry
    the full :class:`~repro.core.spanner.BackboneResult` so routing
    requests can run on the cached build without reconstructing.
    """

    pipeline: str
    graph: Graph
    backbone: Optional[BackboneResult] = None
    extras: Mapping[str, Any] = field(default_factory=dict)

    def summary(self) -> dict:
        """JSON-ready description (what ``POST /build`` responds with)."""
        out = {
            "pipeline": self.pipeline,
            "nodes": self.graph.node_count,
            "edges": self.graph.edge_count,
        }
        if self.backbone is not None:
            out["dominators"] = len(self.backbone.dominators)
            out["connectors"] = len(self.backbone.connectors)
            out["backbone_nodes"] = len(self.backbone.backbone_nodes)
        out.update(self.extras)
        return out


@dataclass(frozen=True)
class PipelineSpec:
    """A named builder plus its parameter schema."""

    name: str
    description: str
    params: tuple[ParamSpec, ...]
    builder: Callable[[Deployment, dict], BuildProduct]
    routable: bool = False

    def canonicalize(self, params: Optional[Mapping[str, Any]]) -> dict:
        """Validated params with defaults filled in, in schema order."""
        supplied = dict(params or {})
        canonical: dict[str, Any] = {}
        for spec in self.params:
            if spec.name in supplied:
                canonical[spec.name] = spec.coerce(supplied.pop(spec.name))
            else:
                canonical[spec.name] = spec.default
        if supplied:
            unknown = ", ".join(sorted(supplied))
            raise RegistryError(f"pipeline {self.name!r} has no parameter(s): {unknown}")
        return canonical

    def build(self, deployment: Deployment, params: Optional[Mapping[str, Any]] = None) -> BuildProduct:
        return self.builder(deployment, self.canonicalize(params))


# -- builders ----------------------------------------------------------------


def _stats_dict(stats: Optional[StretchStats]) -> Optional[dict]:
    """JSON-ready rendering of one :class:`StretchStats` (or ``None``)."""
    if stats is None:
        return None
    return {
        "avg": round(stats.avg, 6),
        "max": round(stats.max, 6),
        "pairs": stats.pairs,
        "unreachable_pairs": stats.unreachable_pairs,
    }


def _measured_extras(
    graph: Graph, udg: UnitDiskGraph, *, skip_udg_adjacent: bool = False
) -> dict:
    """Quality metrics + oracle accounting for ``measure=true`` builds.

    One :class:`~repro.core.oracle.DistanceOracle` serves all three
    stretch kinds; its counters/seconds ride in ``extras["oracle"]``,
    which the serving layer folds into ``GET /metrics`` under the
    ``oracle.*`` prefix.
    """
    oracle = DistanceOracle(udg)
    metrics = measure_topology(
        graph, udg, skip_udg_adjacent=skip_udg_adjacent, power_alpha=2.0,
        oracle=oracle,
    )
    return {
        "metrics": {
            "degree_avg": round(metrics.degree_avg, 3),
            "degree_max": metrics.degree_max,
            "length_stretch": _stats_dict(metrics.length),
            "hop_stretch": _stats_dict(metrics.hops),
            "power_stretch": _stats_dict(metrics.power),
        },
        "oracle": oracle.snapshot(),
    }


def _flat(name: str, make: Callable[..., Graph]) -> Callable[[Deployment, dict], BuildProduct]:
    def builder(deployment: Deployment, params: dict) -> BuildProduct:
        params = dict(params)
        measure = params.pop("measure", False)
        udg = deployment.udg()
        graph = make(udg, **params)
        extras = _measured_extras(graph, udg) if measure else {}
        return BuildProduct(name, graph, extras=extras)

    return builder


def _construction_extras(cache: ConstructionCache) -> dict:
    """Cache-effectiveness accounting shipped with LDel build products.

    Travels in ``extras`` so ``POST /build`` responses surface it and
    the serving layer can fold the counters into ``GET /metrics``.
    """
    return {"construction_cache": cache.snapshot()}


def _ldel_builder(deployment: Deployment, params: dict) -> BuildProduct:
    udg = deployment.udg()
    cache = ConstructionCache(udg)
    result = planar_local_delaunay_graph(udg, cache=cache)
    extras = _construction_extras(cache)
    if params.get("measure"):
        extras.update(_measured_extras(result.graph, udg))
    return BuildProduct("ldel", result.graph, extras=extras)


def _ldel1_builder(deployment: Deployment, params: dict) -> BuildProduct:
    udg = deployment.udg()
    cache = ConstructionCache(udg)
    result = local_delaunay_graph(udg, k=params["k"], cache=cache)
    extras = _construction_extras(cache)
    if params.get("measure"):
        extras.update(_measured_extras(result.graph, udg))
    return BuildProduct("ldel1", result.graph, extras=extras)


def _udg_builder(deployment: Deployment, params: dict) -> BuildProduct:
    udg = deployment.udg()
    extras = _measured_extras(udg, udg) if params.get("measure") else {}
    return BuildProduct("udg", udg, extras=extras)


def _backbone_builder(attr: str) -> Callable[[Deployment, dict], BuildProduct]:
    def builder(deployment: Deployment, params: dict) -> BuildProduct:
        result = build_backbone(
            deployment.points,
            deployment.radius,
            election=params["election"],
            mode=params["mode"],
        )
        pipeline = result.pipeline
        extras = {
            "messages_per_node_max": result.stats_ldel.max_per_node(),
            "messages_per_node_avg": round(
                result.stats_ldel.avg_per_node(result.udg.node_count), 3
            ),
            # Folded into backbone.* on GET /metrics by the server.
            "backbone": {
                "mode": pipeline.mode,
                "phase_seconds": {
                    name: round(s, 6) for name, s in pipeline.timings.items()
                },
                "counters": {"messages_total": result.stats_ldel.total},
            },
        }
        if params.get("measure"):
            # Backbone rows are measured over UDG-non-adjacent pairs
            # (Lemma 6 / the routing rule), as in the paper's Table I.
            extras.update(
                _measured_extras(
                    getattr(result, attr), result.udg, skip_udg_adjacent=True
                )
            )
        return BuildProduct(attr, getattr(result, attr), backbone=result, extras=extras)

    return builder


_ELECTION_PARAM = ParamSpec("election", str, "smallest-id", choices=ELECTIONS)

#: Opt-in quality measurement: when true, the build product's extras
#: carry the paper's Table I metrics for the built graph (degrees +
#: length/hop/power stretch vs the UDG, through one DistanceOracle)
#: plus the oracle's cache counters and stage seconds.
_MEASURE_PARAM = ParamSpec("measure", bool, False)

#: Construction path for backbone-family pipelines.  The serving
#: default is the direct fixed-point computation — bit-identical to
#: the protocol replay (``mode="protocol"``), which stays available
#: for message-trace studies.
_MODE_PARAM = ParamSpec("mode", str, "fast", choices=MODES)

#: Parameters shared by every ``sharded:*`` pipeline.  ``workers=0``
#: means "auto" (the executor's default worker count).
_SHARD_PARAMS = (
    ParamSpec("shards", int, 4, minimum=1),
    ParamSpec("workers", int, 0, minimum=0),
)


def _sharded_builder(
    name: str, construct: Callable[..., tuple]
) -> Callable[[Deployment, dict], BuildProduct]:
    """Builder for a tiled construction from :mod:`repro.sharding`.

    ``construct`` returns ``(product, ShardingStats)``; the stats ride
    in ``extras["sharding"]`` so ``POST /build`` responses surface the
    per-tile timings and the serving layer folds the stitch counters
    into ``GET /metrics`` under the ``sharding.`` prefix.
    """

    def builder(deployment: Deployment, params: dict) -> BuildProduct:
        kwargs = {k: v for k, v in params.items() if k not in ("shards", "workers")}
        result, stats = construct(
            list(deployment.points),
            deployment.radius,
            shards=params["shards"],
            max_workers=params["workers"] or None,
            **kwargs,
        )
        graph = result if isinstance(result, Graph) else result.graph
        return BuildProduct(name, graph, extras={"sharding": stats.as_dict()})

    return builder


def _sharded_backbone_builder(deployment: Deployment, params: dict) -> BuildProduct:
    result, stats = sharded_backbone(
        list(deployment.points),
        deployment.radius,
        shards=params["shards"],
        max_workers=params["workers"] or None,
        election=params["election"],
    )
    extras = {
        "sharding": stats.as_dict(),
        "dominators": len(result.dominators),
        "connectors": len(result.connectors),
        "backbone_nodes": len(result.backbone_nodes),
    }
    return BuildProduct("sharded:backbone", result.ldel_icds, extras=extras)


def _specs() -> tuple[PipelineSpec, ...]:
    backbone_members = (
        ("cds", "the connected dominating set (paper's CDS)"),
        ("cds_prime", "CDS plus dominatee attachment edges (CDS')"),
        ("icds", "the induced CDS unit disk graph (ICDS)"),
        ("icds_prime", "ICDS plus dominatee attachment edges (ICDS')"),
        ("ldel_icds", "the planar backbone LDel(ICDS) — the paper's headline structure"),
        ("ldel_icds_prime", "LDel(ICDS') — planar backbone plus dominatee edges"),
    )
    specs = [
        PipelineSpec("udg", "the unit disk graph itself",
                     (_MEASURE_PARAM,), _udg_builder),
        PipelineSpec("rng", "relative neighborhood graph", (_MEASURE_PARAM,),
                     _flat("rng", relative_neighborhood_graph)),
        PipelineSpec("gg", "Gabriel graph", (_MEASURE_PARAM,),
                     _flat("gg", gabriel_graph)),
        PipelineSpec("ldel", "planarized localized Delaunay graph PLDel",
                     (_MEASURE_PARAM,), _ldel_builder),
        PipelineSpec("ldel1", "raw k-localized Delaunay graph LDel^k",
                     (ParamSpec("k", int, 1, minimum=1), _MEASURE_PARAM),
                     _ldel1_builder),
        PipelineSpec("rdg", "restricted Delaunay graph", (_MEASURE_PARAM,),
                     _flat("rdg", restricted_delaunay_graph)),
        PipelineSpec("delaunay", "Delaunay triangulation capped at unit edges",
                     (_MEASURE_PARAM,), _flat("delaunay", unit_delaunay_graph)),
        PipelineSpec("mst", "Euclidean minimum spanning tree", (_MEASURE_PARAM,),
                     _flat("mst", euclidean_mst)),
        PipelineSpec("yao", "Yao graph",
                     (ParamSpec("k", int, 6, minimum=3), _MEASURE_PARAM),
                     _flat("yao", yao_graph)),
        PipelineSpec("yao_yao", "Yao-Yao (degree-bounded Yao) graph",
                     (ParamSpec("k", int, 6, minimum=3), _MEASURE_PARAM),
                     _flat("yao_yao", yao_yao_graph)),
        PipelineSpec("yao_sink", "Yao sink-structure graph",
                     (ParamSpec("k", int, 6, minimum=3), _MEASURE_PARAM),
                     _flat("yao_sink", yao_sink_graph)),
        PipelineSpec("beta_skeleton", "beta-skeleton (beta in [1, 2])",
                     (ParamSpec("beta", float, 1.0, minimum=0.0), _MEASURE_PARAM),
                     _flat("beta_skeleton", beta_skeleton)),
        PipelineSpec("greedy_spanner", "greedy t-spanner of the UDG",
                     (ParamSpec("t", float, 1.5, minimum=1.0), _MEASURE_PARAM),
                     _flat("greedy_spanner", greedy_spanner)),
        PipelineSpec("knn", "k-nearest-neighbors graph",
                     (ParamSpec("k", int, 6, minimum=1), _MEASURE_PARAM),
                     _flat("knn", knn_graph)),
    ]
    for attr, description in backbone_members:
        specs.append(
            PipelineSpec(attr, description,
                         (_ELECTION_PARAM, _MODE_PARAM, _MEASURE_PARAM),
                         _backbone_builder(attr), routable=True)
        )
    # `backbone` is the serving alias for the paper's routable structure.
    specs.append(
        PipelineSpec("backbone", "alias of ldel_icds: the routable planar backbone",
                     (_ELECTION_PARAM, _MODE_PARAM, _MEASURE_PARAM),
                     _backbone_builder("ldel_icds"), routable=True)
    )
    # Tiled sharded constructions: bit-identical to their serial
    # counterparts, built per-tile in parallel workers and stitched
    # (see repro.sharding and docs/scaling.md).
    specs.extend(
        [
            PipelineSpec("sharded:udg", "unit disk graph, tiled sharded build",
                         _SHARD_PARAMS, _sharded_builder("sharded:udg", sharded_udg)),
            PipelineSpec("sharded:gg", "Gabriel graph, tiled sharded build",
                         _SHARD_PARAMS, _sharded_builder("sharded:gg", sharded_gabriel)),
            PipelineSpec("sharded:ldel1", "raw LDel^k, tiled sharded build",
                         _SHARD_PARAMS + (ParamSpec("k", int, 1, minimum=1),),
                         _sharded_builder("sharded:ldel1", sharded_ldel)),
            PipelineSpec("sharded:ldel", "planarized LDel (PLDel), tiled sharded build",
                         _SHARD_PARAMS, _sharded_builder("sharded:ldel", sharded_pldel)),
            PipelineSpec("sharded:backbone",
                         "paper backbone with the PLDel stage tiled sharded",
                         _SHARD_PARAMS + (_ELECTION_PARAM,),
                         _sharded_backbone_builder),
        ]
    )
    return tuple(specs)


REGISTRY: dict[str, PipelineSpec] = {spec.name: spec for spec in _specs()}


def get_pipeline(name: str) -> PipelineSpec:
    """The registered spec for ``name`` (raises :class:`RegistryError`)."""
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise RegistryError(f"unknown pipeline {name!r}; known: {known}") from None


def available_pipelines() -> list[dict]:
    """JSON-ready listing of every pipeline and its parameter schema."""
    return [
        {
            "name": spec.name,
            "description": spec.description,
            "routable": spec.routable,
            "params": [
                {
                    "name": p.name,
                    "type": p.type.__name__,
                    "default": p.default,
                    **({"choices": list(p.choices)} if p.choices else {}),
                }
                for p in spec.params
            ],
        }
        for spec in sorted(REGISTRY.values(), key=lambda s: s.name)
    ]


# -- scenarios ---------------------------------------------------------------


def resolve_scenario(spec: Mapping[str, Any]) -> Deployment:
    """Turn a scenario document into a concrete :class:`Deployment`.

    Three forms, checked in order:

    * explicit points: ``{"points": [[x, y], ...], "radius": r}``
      (optional ``side``);
    * corpus reference: ``{"corpus": "paper-table1/0"}`` or
      ``{"corpus": "paper-table1", "index": 3}``;
    * generator recipe: ``{"generator": "uniform", "nodes": 100,
      "radius": 60, "side": 200, "seed": 0}`` — deterministic in the
      seed, mirroring the CLI's sampling loop.
    """
    if not isinstance(spec, Mapping):
        raise RegistryError("scenario must be a JSON object")
    if "points" in spec:
        if "radius" not in spec:
            raise RegistryError("explicit-points scenario requires 'radius'")
        from repro.geometry.primitives import Point

        points = tuple(Point(float(x), float(y)) for x, y in spec["points"])
        radius = float(spec["radius"])
        side = float(spec.get("side", 0.0))
        if not side and points:
            side = max(max(p.x for p in points), max(p.y for p in points))
        return Deployment(points=points, side=side, radius=radius)
    if "corpus" in spec:
        from repro.workloads.corpus import get_instance

        name, _, index_str = str(spec["corpus"]).partition("/")
        index = int(index_str) if index_str else int(spec.get("index", 0))
        try:
            return get_instance(name, index)
        except KeyError:
            raise RegistryError(f"unknown corpus entry {name!r}") from None
    if "generator" in spec or "nodes" in spec:
        nodes = int(spec.get("nodes", 100))
        side = float(spec.get("side", 200.0))
        radius = float(spec.get("radius", 60.0))
        seed = int(spec.get("seed", 0))
        generator = str(spec.get("generator", "uniform"))
        try:
            return connected_udg_instance(
                nodes, side, radius, random.Random(seed), generator=generator
            )
        except ValueError as exc:
            raise RegistryError(str(exc)) from None
    raise RegistryError(
        "scenario must supply 'points', 'corpus', or a generator recipe"
    )


def build_scenario(
    pipeline: str,
    scenario: Mapping[str, Any],
    params: Optional[Mapping[str, Any]] = None,
) -> BuildProduct:
    """Resolve + build in one call (this is the process-pool entry point).

    Module-level and addressed purely by value (pipeline name, scenario
    document, params), so it pickles cleanly into worker processes.
    """
    spec = get_pipeline(pipeline)
    deployment = resolve_scenario(scenario)
    return spec.build(deployment, params)
