"""Batch fan-out: run many build/route tasks across a worker pool.

``run_batch`` maps a picklable worker over a list of task payloads
using a ``concurrent.futures`` pool — processes by default (spanner
construction is CPU-bound pure Python, so processes are the only way
to real parallelism under the GIL), threads as an explicit or
automatic fallback (process pools are unavailable in some sandboxes),
or serial for debugging.

Guarantees the serving layer depends on:

* results come back **in input order**, one
  :class:`TaskOutcome` per task — errors and timeouts are captured
  per-task, never raised out of the batch;
* a per-task ``timeout`` marks the outcome ``timed_out`` (the worker
  is abandoned, not killed — stdlib pools cannot cancel running work,
  which is the documented trade-off of this executor model);
* worker latencies are observed into an optional metrics registry.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.service.metrics import MetricsRegistry

#: Executor modes accepted by :func:`run_batch`.
MODES = ("process", "thread", "serial")


class PoolTracker:
    """Strong references to pools that still own abandoned work.

    ``run_batch`` historically shut pools down with ``wait=False`` and
    dropped them — correct for throughput, but a timed-out task leaves
    its worker running with nothing holding the pool, so a graceful
    server shutdown had nothing to join.  A tracker closes that gap:
    pools with unfinished futures are registered here, pools whose
    batches completed cleanly never are, and :meth:`drain` joins
    whatever is still outstanding at shutdown.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pools: list[concurrent.futures.Executor] = []

    def register(self, pool: concurrent.futures.Executor) -> None:
        with self._lock:
            self._pools.append(pool)

    def active(self) -> int:
        with self._lock:
            return len(self._pools)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Join every tracked pool; ``True`` if all exited in time."""
        with self._lock:
            pools, self._pools = self._pools, []
        if not pools:
            return True

        def join_all() -> None:
            for pool in pools:
                pool.shutdown(wait=True, cancel_futures=True)

        waiter = threading.Thread(target=join_all, daemon=True)
        waiter.start()
        waiter.join(timeout)
        if waiter.is_alive():
            # Hand the stragglers back so a later drain can retry.
            with self._lock:
                self._pools.extend(pools)
            return False
        return True


_GLOBAL_TRACKER = PoolTracker()


def global_tracker() -> PoolTracker:
    """The process-wide tracker ``run_batch`` registers into by default."""
    return _GLOBAL_TRACKER


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task of a batch."""

    index: int
    ok: bool
    value: Any = None
    error: Optional[str] = None
    duration_s: float = 0.0
    timed_out: bool = False

    def as_dict(self) -> dict:
        out: dict[str, Any] = {"index": self.index, "ok": self.ok}
        if self.ok:
            out["value"] = self.value
        else:
            out["error"] = self.error
            if self.timed_out:
                out["timed_out"] = True
        out["elapsed_ms"] = round(self.duration_s * 1000.0, 3)
        return out


@dataclass
class BatchOutcome:
    """All outcomes of one batch plus aggregate accounting."""

    outcomes: list[TaskOutcome]
    mode: str
    workers: int
    elapsed_s: float = 0.0

    @property
    def succeeded(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failed(self) -> int:
        return len(self.outcomes) - self.succeeded

    def values(self) -> list[Any]:
        """Successful values in input order (failures become ``None``)."""
        return [o.value if o.ok else None for o in self.outcomes]

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "tasks": len(self.outcomes),
            "succeeded": self.succeeded,
            "failed": self.failed,
            "elapsed_ms": round(self.elapsed_s * 1000.0, 3),
            "results": [o.as_dict() for o in self.outcomes],
        }


def default_workers() -> int:
    """Pool width when the caller does not choose: cores, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def _timed(worker: Callable[[Any], Any], task: Any) -> tuple[Any, float]:
    start = time.perf_counter()
    value = worker(task)
    return value, time.perf_counter() - start


def run_batch(
    tasks: Sequence[Any],
    worker: Callable[[Any], Any],
    *,
    mode: str = "process",
    max_workers: Optional[int] = None,
    timeout: Optional[float] = None,
    metrics: Optional[MetricsRegistry] = None,
    metric_name: str = "executor.task",
    on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
    tracker: Optional[PoolTracker] = None,
) -> BatchOutcome:
    """Fan ``worker`` over ``tasks``; capture every outcome.

    ``mode`` is ``"process"`` (default; silently degrades to threads
    when process pools cannot start), ``"thread"``, or ``"serial"``.
    ``timeout`` bounds each task's wall-clock wait in seconds.
    ``on_outcome`` is invoked with each :class:`TaskOutcome` as it is
    collected (in input order) — the streaming tier's per-tile seam.
    Pools left with abandoned (timed-out) work are registered with
    ``tracker`` (the global one by default) so a graceful shutdown can
    join them.
    """
    if mode not in MODES:
        raise ValueError(f"unknown executor mode {mode!r}; known: {MODES}")
    workers = max_workers or default_workers()
    tracker = tracker if tracker is not None else _GLOBAL_TRACKER
    started = time.perf_counter()

    if mode == "serial" or not tasks:
        outcomes = []
        for index, task in enumerate(tasks):
            outcome = _run_serial(index, worker, task, metrics, metric_name)
            _notify(on_outcome, outcome)
            outcomes.append(outcome)
        return BatchOutcome(outcomes, "serial", 1, time.perf_counter() - started)

    pool, actual_mode = _make_pool(mode, workers)
    futures: list[concurrent.futures.Future] = []
    try:
        futures = [pool.submit(_timed, worker, task) for task in tasks]
        outcomes = []
        for index, future in enumerate(futures):
            outcome = _collect(index, future, timeout, metrics, metric_name)
            _notify(on_outcome, outcome)
            outcomes.append(outcome)
    finally:
        # Abandoned (timed-out) workers keep their slots; don't block
        # the batch response on them — track the pool instead so a
        # graceful shutdown can join the stragglers.
        if any(not future.done() for future in futures):
            tracker.register(pool)
        pool.shutdown(wait=False, cancel_futures=True)
    return BatchOutcome(outcomes, actual_mode, workers, time.perf_counter() - started)


def _notify(
    on_outcome: Optional[Callable[[TaskOutcome], None]], outcome: TaskOutcome
) -> None:
    if on_outcome is None:
        return
    try:
        on_outcome(outcome)
    except Exception:
        pass  # an observer bug must not fail the batch


def _make_pool(
    mode: str, workers: int
) -> tuple[concurrent.futures.Executor, str]:
    if mode == "process":
        try:
            pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
            # Probe eagerly: worker spawn failures otherwise surface as
            # confusing per-task BrokenProcessPool errors.
            pool.submit(int, 0).result(timeout=30)
            return pool, "process"
        except Exception:
            pass
    return concurrent.futures.ThreadPoolExecutor(max_workers=workers), "thread"


def _collect(
    index: int,
    future: concurrent.futures.Future,
    timeout: Optional[float],
    metrics: Optional[MetricsRegistry],
    metric_name: str,
) -> TaskOutcome:
    try:
        value, duration = future.result(timeout=timeout)
    except concurrent.futures.TimeoutError:
        future.cancel()
        return TaskOutcome(
            index, False, error=f"timed out after {timeout}s",
            duration_s=timeout or 0.0, timed_out=True,
        )
    except Exception as exc:  # worker raised (or the pool broke)
        return TaskOutcome(
            index, False, error=f"{type(exc).__name__}: {exc}"
        )
    if metrics is not None:
        metrics.observe(metric_name, duration)
    return TaskOutcome(index, True, value=value, duration_s=duration)


def _run_serial(
    index: int,
    worker: Callable[[Any], Any],
    task: Any,
    metrics: Optional[MetricsRegistry],
    metric_name: str,
) -> TaskOutcome:
    start = time.perf_counter()
    try:
        value = worker(task)
    except Exception as exc:
        return TaskOutcome(
            index, False, error=f"{type(exc).__name__}: {exc}",
            duration_s=time.perf_counter() - start,
        )
    duration = time.perf_counter() - start
    if metrics is not None:
        metrics.observe(metric_name, duration)
    return TaskOutcome(index, True, value=value, duration_s=duration)
