"""The asyncio serving tier: front end + hash router + worker pool.

One event loop accepts connections and speaks hand-rolled HTTP/1.1
(stdlib only, keep-alive); every request is placed onto the
shared-nothing :class:`~repro.service.pool.WorkerPool` through the
consistent-hash ring of :mod:`repro.service.router`, so all traffic
for one deployment lands on one worker's warm caches.  The front end
itself does no construction work — its jobs are:

* **placement** — deployment fingerprints hash to workers; build keys
  pin to the worker that built them; ``w{k}-s{n}`` session ids pin to
  their minting worker; ``/deployments`` traffic pins to worker 0,
  making it the deployment store's single writer;
* **admission control** — per-worker bounded in-flight windows; a full
  window answers ``429`` with ``Retry-After`` instead of queueing
  unboundedly, and slow clients that cannot drain within
  ``write_timeout`` are disconnected rather than allowed to hold
  buffers;
* **response caching** — responses the dispatch layer marks
  ``cacheable`` (pure functions of the request bytes: warm builds,
  routes, the pipeline listing) are replayed verbatim from a bounded
  front cache, skipping the pool round-trip entirely;
* **aggregation** — ``GET /metrics`` fans out to every worker and
  merges the snapshots, adding ``front.*`` and pool sections.

Streaming responses (``/build_stream``, ``/session/{id}/stream``)
forward SSE frames from the worker pipe to the socket as they land,
with ``Connection: close`` delimiting the stream.

Run it with ``python -m repro serve --async``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from http.client import responses as _HTTP_REASONS
from typing import Any, Optional

from repro.service.dispatch import MAX_BODY, error_response, normalize_path
from repro.service.pool import (
    PoolClosed,
    PoolSaturated,
    WorkerPool,
    aggregate_metrics,
)
from repro.service.router import (
    HashRing,
    KeyAffinity,
    placement_key,
    session_worker,
)

#: Default seconds a throttled client is told to wait before retrying.
RETRY_AFTER_S = 1

#: Bodies larger than this are not parsed on the front end for
#: placement — the raw bytes hash instead (same worker every time,
#: no JSON decode of multi-MB point sets on the event loop).
MAX_PLACEMENT_PARSE = 256 * 1024

#: Entries kept in the front-end response cache.
FRONT_CACHE_ENTRIES = 4096


class _FrontCache:
    """Bounded LRU of verbatim response bytes, keyed by request bytes."""

    def __init__(self, max_entries: int = FRONT_CACHE_ENTRIES) -> None:
        self.max_entries = max_entries
        self._map: dict[tuple, tuple[int, bytes]] = {}

    def get(self, key: tuple) -> Optional[tuple[int, bytes]]:
        entry = self._map.get(key)
        if entry is not None:
            self._map.pop(key)
            self._map[key] = entry  # refresh LRU position
        return entry

    def put(self, key: tuple, status: int, body: bytes) -> None:
        if self.max_entries <= 0:
            return
        self._map.pop(key, None)
        self._map[key] = (status, body)
        while len(self._map) > self.max_entries:
            self._map.pop(next(iter(self._map)))

    def __len__(self) -> int:
        return len(self._map)


class AsyncSpannerServer:
    """The asyncio front end over a fixed shared-nothing worker pool."""

    def __init__(
        self,
        *,
        pool_size: int = 4,
        pool_mode: str = "process",
        queue_depth: int = 32,
        write_timeout: float = 30.0,
        front_cache_entries: int = FRONT_CACHE_ENTRIES,
        service_kwargs: Optional[dict] = None,
    ) -> None:
        self.pool = WorkerPool(
            pool_size,
            mode=pool_mode,
            queue_depth=queue_depth,
            service_kwargs=service_kwargs,
        )
        self.ring = HashRing(pool_size)
        self.affinity = KeyAffinity()
        self.cache = _FrontCache(front_cache_entries)
        self.write_timeout = write_timeout
        self.started_at = time.time()
        self.counters: dict[str, int] = {}
        self._rr = 0  # round-robin cursor for unplaced requests
        self._server: Optional[asyncio.AbstractServer] = None
        self._inflight: set[asyncio.Task] = set()
        self._closing = False

    # -- bookkeeping -----------------------------------------------------

    def _count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def front_stats(self) -> dict:
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "counters": dict(sorted(self.counters.items())),
            "cache_entries": len(self.cache),
            "affinity_entries": len(self.affinity),
        }

    # -- placement -------------------------------------------------------

    def _pick_worker(
        self, method: str, path: str, raw_body: Optional[bytes]
    ) -> int:
        parts = [p for p in normalize_path(path).strip("/").split("/") if p]
        if parts and parts[0] == "deployments":
            # All /deployments traffic pins to worker 0 so manifest
            # mutations have a single writer (and reads see their own
            # writes immediately); spreading writes across workers
            # would race the store's read-modify-write between
            # processes.  Builds referencing {"deployment": name}
            # still go anywhere — multi-process *readers* are safe.
            return 0
        if parts and parts[0] == "session" and len(parts) >= 2:
            pinned = session_worker(parts[1])
            if pinned is not None and 0 <= pinned < self.pool.size:
                return pinned
            return self.ring.worker_for(f"session:{parts[1]}")
        payload: Any = None
        if raw_body and method == "POST":
            if len(raw_body) <= MAX_PLACEMENT_PARSE:
                try:
                    payload = json.loads(raw_body)
                except (ValueError, UnicodeDecodeError):
                    payload = None  # worker will produce the 400
            else:
                import hashlib

                return self.ring.worker_for(
                    "body:" + hashlib.sha256(raw_body).hexdigest()
                )
        key = placement_key(method, parts, payload)
        if key is None:
            # No data affinity: spread across live workers round-robin.
            self._rr = (self._rr + 1) % self.pool.size
            return self._rr
        if key.startswith("key:"):
            learned = self.affinity.lookup(key[4:])
            if learned is not None:
                self._count("front.affinity_hits")
                return learned
        return self.ring.worker_for(key)

    def _learn_affinity(self, path: str, status: int, body: bytes, worker: int) -> None:
        """Record build-key ownership from a successful build response."""
        if status != 200 or normalize_path(path) != "/build":
            return
        try:
            key = json.loads(body).get("key")
        except (ValueError, UnicodeDecodeError):
            return
        if isinstance(key, str):
            self.affinity.record(key, worker)

    # -- pool round-trip -------------------------------------------------

    async def _call_worker(
        self, worker: int, method: str, path: str, raw_body: Optional[bytes]
    ) -> "asyncio.Queue[tuple]":
        """Submit one request; messages arrive on the returned queue."""
        loop = asyncio.get_running_loop()
        messages: "asyncio.Queue[tuple]" = asyncio.Queue()

        def on_message(message: tuple) -> None:
            loop.call_soon_threadsafe(messages.put_nowait, message)

        self.pool.submit(worker, method, path, raw_body, on_message)
        return messages

    async def dispatch_json(
        self, method: str, path: str, raw_body: Optional[bytes]
    ) -> tuple[int, bytes]:
        """One non-streaming request through cache + pool; for reuse
        by ``/metrics`` aggregation and in-process tests."""
        worker = self._pick_worker(method, path, raw_body)
        messages = await self._call_worker(worker, method, path, raw_body)
        message = await messages.get()
        if message[1] == "json":
            _, _, status, body, cacheable = message
            self._learn_affinity(path, status, body, worker)
            return status, body
        # A streaming message on the JSON path cannot happen (dispatch
        # decides by path); drain defensively.
        await self._drain_stream(messages)
        return 500, b'{"error": "unexpected stream"}'

    @staticmethod
    async def _drain_stream(messages: "asyncio.Queue[tuple]") -> None:
        """Consume a stream's remaining messages so the worker's
        in-flight slot frees.  A ``"json"`` message is terminal too:
        it is what :meth:`WorkerPool._fail_pending` delivers when the
        worker dies mid-stream, and nothing follows it — waiting for
        an ``"end"`` that will never come would hang forever.
        """
        while True:
            message = await messages.get()
            if message[1] in ("end", "json"):
                return

    async def _collect_metrics(self) -> tuple[int, bytes]:
        """Fan ``GET /metrics`` to every worker and merge."""
        snapshots = []
        for worker in range(self.pool.size):
            try:
                messages = await self._call_worker(worker, "GET", "/metrics", None)
            except (PoolSaturated, PoolClosed):
                continue
            message = await messages.get()
            if message[1] == "json" and message[2] == 200:
                try:
                    snapshots.append(json.loads(message[3]))
                except ValueError:
                    pass
        merged = aggregate_metrics(snapshots)
        merged["front"] = self.front_stats()
        merged["pool"] = self.pool.stats()
        return 200, json.dumps(merged).encode()

    # -- HTTP ------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inflight.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.TimeoutError,
        ):
            pass
        finally:
            if task is not None:
                self._inflight.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while not self._closing:
            request = await self._read_request(reader, writer)
            if request is None:
                return
            method, path, headers, raw_body = request
            self._count("front.requests")
            keep_alive = headers.get("connection", "").lower() != "close"
            if not await self._respond(
                writer, method, path, raw_body, keep_alive
            ):
                return
            if not keep_alive:
                return

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[tuple[str, str, dict, Optional[bytes]]]:
        try:
            line = await reader.readline()
        except (ValueError, ConnectionResetError):
            return None
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            method, path, _version = line.decode("latin-1").split(maxsplit=2)
        except ValueError:
            await self._write_json(
                writer, 400, b'{"error": "malformed request line"}', False
            )
            return None
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            # The hand-rolled parser does not implement chunked
            # framing; accepting the request would leave the body
            # unread in the buffer and desync the keep-alive stream.
            response = error_response(501, "transfer-encoding not supported")
            await self._write_json(writer, 501, response.encode(), False)
            return None
        try:
            length = int(headers.get("content-length") or 0)
            if length < 0:
                raise ValueError(length)
        except ValueError:
            response = error_response(400, "malformed Content-Length")
            await self._write_json(writer, 400, response.encode(), False)
            return None
        if length > MAX_BODY:
            # Refuse without reading the body; the connection cannot be
            # reused (unread bytes), so close it.
            response = error_response(413, "request body too large")
            await self._write_json(writer, 413, response.encode(), False)
            return None
        raw_body = await reader.readexactly(length) if length > 0 else None
        return method, path, headers, raw_body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        raw_body: Optional[bytes],
        keep_alive: bool,
    ) -> bool:
        """Serve one parsed request; ``False`` closes the connection."""
        bare = normalize_path(path)
        if method == "GET" and bare == "/metrics":
            status, body = await self._collect_metrics()
            return await self._write_json(writer, status, body, keep_alive)

        cache_key = (method, bare, raw_body)
        cached = self.cache.get(cache_key)
        if cached is not None:
            self._count("front.cache_hits")
            return await self._write_json(writer, cached[0], cached[1], keep_alive)

        worker = self._pick_worker(method, path, raw_body)
        try:
            messages = await self._call_worker(worker, method, path, raw_body)
        except PoolSaturated:
            self._count("front.throttled")
            response = error_response(
                503 if self._closing else 429, "worker saturated; retry later"
            )
            return await self._write_raw(
                writer,
                self._format_head(
                    response.status,
                    content_length=len(response.encode()),
                    keep_alive=keep_alive,
                    extra={"Retry-After": str(RETRY_AFTER_S)},
                )
                + response.encode(),
            ) and keep_alive
        except PoolClosed:
            response = error_response(503, "service shutting down")
            await self._write_json(writer, 503, response.encode(), False)
            return False

        message = await messages.get()
        kind = message[1]
        if kind == "json":
            _, _, status, body, cacheable = message
            self._learn_affinity(path, status, body, worker)
            if cacheable:
                self.cache.put(cache_key, status, body)
            return await self._write_json(writer, status, body, keep_alive)
        if kind == "stream":
            _, _, status, content_type = message
            self._count("front.streams")
            await self._write_raw(
                writer,
                self._format_head(
                    status,
                    keep_alive=False,
                    content_type=content_type,
                    extra={"Cache-Control": "no-store"},
                ),
            )
            while True:
                message = await messages.get()
                if message[1] in ("end", "json"):
                    # "json" mid-stream means the worker died and
                    # _fail_pending delivered its terminal failure;
                    # the SSE stream is truncated, so just close.
                    break
                if message[1] == "frame":
                    if not await self._write_raw(writer, message[2]):
                        self._count("front.slow_client_drops")
                        # Keep draining the pipe so the worker slot frees.
                        await self._drain_stream(messages)
                        return False
            return False  # Connection: close delimits the stream
        return False

    def _format_head(
        self,
        status: int,
        *,
        keep_alive: bool,
        content_length: Optional[int] = None,
        content_type: str = "application/json",
        extra: Optional[dict] = None,
    ) -> bytes:
        reason = _HTTP_REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
        ]
        if content_length is not None:
            lines.append(f"Content-Length: {content_length}")
        lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        for name, value in (extra or {}).items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _write_json(
        self, writer: asyncio.StreamWriter, status: int, body: bytes, keep_alive: bool
    ) -> bool:
        head = self._format_head(
            status, content_length=len(body), keep_alive=keep_alive
        )
        ok = await self._write_raw(writer, head + body)
        if not ok:
            self._count("front.slow_client_drops")
        return ok and keep_alive

    async def _write_raw(self, writer: asyncio.StreamWriter, data: bytes) -> bool:
        """Write + drain under the slow-client timeout."""
        try:
            writer.write(data)
            await asyncio.wait_for(writer.drain(), timeout=self.write_timeout)
        except (asyncio.TimeoutError, ConnectionResetError, BrokenPipeError, OSError):
            return False
        return True

    # -- lifecycle -------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 8972) -> None:
        self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def shutdown(self, drain_timeout: float = 10.0) -> None:
        """Stop accepting, drain in-flight connections, stop the pool."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._inflight:
            await asyncio.wait(
                set(self._inflight), timeout=drain_timeout
            )
        await asyncio.get_running_loop().run_in_executor(
            None, self.pool.close
        )


def serve_async(
    host: str = "127.0.0.1",
    port: int = 8972,
    *,
    pool_size: int = 4,
    pool_mode: str = "process",
    queue_depth: int = 32,
    **service_kwargs: Any,
) -> int:
    """Blocking entry point behind ``python -m repro serve --async``."""
    server = AsyncSpannerServer(
        pool_size=pool_size,
        pool_mode=pool_mode,
        queue_depth=queue_depth,
        service_kwargs=service_kwargs,
    )

    async def main() -> None:
        import signal

        await server.start(host, port)
        print(
            f"spanner service (async) on http://{host}:{server.port} "
            f"(pool={server.pool.size}x{server.pool.mode}, "
            f"depth={server.pool.queue_depth})"
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGINT, stop.set)
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix loop: KeyboardInterrupt fallback below
        await stop.wait()
        print("shutting down")
        await server.shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("shutting down")
        server.pool.close()
    return 0


class AsyncBackgroundServer:
    """Context manager running the async tier on a thread (tests)."""

    def __init__(self, **kwargs: Any) -> None:
        self._kwargs = kwargs
        self.server: Optional[AsyncSpannerServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._port: Optional[int] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self._port}"

    def __enter__(self) -> "AsyncBackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=60) or self._startup_error:
            raise RuntimeError(
                f"async server failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        async def main() -> None:
            self.server = AsyncSpannerServer(**self._kwargs)
            try:
                await self.server.start(port=0)
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._port = self.server.port
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await self.server.shutdown()

        try:
            asyncio.run(main())
        except BaseException as exc:
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    def __exit__(self, *exc_info: Any) -> None:
        loop, stop, thread = self._loop, self._stop, self._thread
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        if thread is not None:
            thread.join(timeout=60)
