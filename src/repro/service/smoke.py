"""Blocking service smoke check: ``python -m repro.service.smoke``.

Boots the HTTP service in-process (:class:`BackgroundServer`), drives
it through :class:`~repro.service.client.ServiceClient` — the same
code path real consumers use, unlike a curl retry loop — and asserts
the serving contract end to end:

* ``GET /healthz`` reports ``ok`` and ``GET /pipelines`` lists both
  the serial and the ``sharded:*`` families;
* ``POST /build`` constructs a backbone and answers the repeat request
  from cache;
* a ``sharded:*`` build returns the same edge count as its serial
  counterpart (the halo-exact stitch, exercised over HTTP);
* ``POST /route`` routes on the cached backbone;
* ``GET /metrics`` shows the build counters and ``sharding.*`` stats.

Exit status 0 on success, 1 with a one-line diagnosis on the first
failed check — CI runs this as a blocking job.

``--url http://host:port`` runs the same checks against an already
running server instead of booting one — how CI smokes the async tier
(``python -m repro serve --async`` + ``python -m repro.service.smoke
--url ...``); ``--wait`` bounds how long to wait for it to come up.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time

from repro.service.client import ClientError, ServiceClient
from repro.service.server import BackgroundServer

#: Deterministic scenario small enough for CI but big enough to tile.
SCENARIO = {"nodes": 120, "side": 110.0, "radius": 25.0, "seed": 2002}


def _check(name: str, ok: bool, detail: str = "") -> None:
    if not ok:
        raise AssertionError(f"{name}: {detail}" if detail else name)
    print(f"ok  {name}" + (f" ({detail})" if detail else ""))


def wait_ready(url: str, timeout: float = 30.0) -> None:
    """Poll ``/healthz`` until the server answers or the wait expires."""
    probe = ServiceClient(url, timeout=5.0, retries=0)
    deadline = time.monotonic() + timeout
    while True:
        try:
            if probe.healthz().get("status") == "ok":
                return
        except (ClientError, OSError):
            pass
        if time.monotonic() >= deadline:
            raise AssertionError(f"server at {url} not ready after {timeout}s")
        time.sleep(0.25)


def run_smoke(url: "str | None" = None, wait: float = 30.0) -> int:
    """Run every check; against ``url`` if given, else an in-process
    server.  Returns 0 on success."""
    with contextlib.ExitStack() as stack:
        if url is None:
            url = stack.enter_context(BackgroundServer()).url
        else:
            wait_ready(url, timeout=wait)
        client = ServiceClient(url, timeout=120.0)

        health = client.healthz()
        _check("healthz", health.get("status") == "ok", str(health))

        names = {p["name"] for p in client.pipelines()["pipelines"]}
        for required in ("udg", "ldel", "backbone", "sharded:ldel", "sharded:backbone"):
            _check(f"pipeline listed: {required}", required in names)

        built = client.build("backbone", SCENARIO)
        _check("build backbone", built["cache"] == "miss", f"edges={built['edges']}")
        again = client.build("backbone", SCENARIO)
        _check("build cache hit", again["cache"] == "hit")
        _check("build deterministic", again["edges"] == built["edges"])

        serial = client.build("ldel", SCENARIO)
        sharded = client.build("sharded:ldel", SCENARIO, params={"shards": 4})
        _check(
            "sharded stitch matches serial",
            sharded["edges"] == serial["edges"],
            f"edges={sharded['edges']} tiles={sharded['sharding']['tiles']}",
        )

        routed = client.route(0, built["nodes"] - 1, key=built["key"])
        _check("route on cached backbone", routed.get("delivered") is True,
               f"hops={routed.get('hops')}")

        events = [name for name, _ in client.build("ldel", SCENARIO, stream=True)]
        _check("build_stream events",
               events[0] == "start" and events[-1] == "end" and "result" in events,
               "->".join(events[:3]))

        metrics = client.metrics()
        counters = metrics.get("counters", {})
        _check("metrics: build counters", counters.get("build.requests", 0) >= 4)
        sharding_counters = [k for k in counters if k.startswith("sharding.")]
        _check("metrics: sharding.* counters", bool(sharding_counters),
               ", ".join(sorted(sharding_counters)[:4]))
    print("service smoke: all checks passed")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url", default=None,
        help="run against this server instead of booting one in-process",
    )
    parser.add_argument(
        "--wait", type=float, default=30.0,
        help="seconds to wait for --url to become healthy",
    )
    args = parser.parse_args(argv)
    try:
        return run_smoke(url=args.url, wait=args.wait)
    except AssertionError as exc:
        print(f"service smoke FAILED — {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
