"""A small stdlib client for the spanner service.

Used by the integration tests, the benchmark, and scripts; mirrors the
endpoint surface one-to-one.  Raises :class:`ClientError` with the
server's status code and error message on any non-2xx response.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Mapping, Optional, Sequence


class ClientError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talks JSON to a running spanner service."""

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: Any = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", exc.reason)
            except Exception:
                message = str(exc.reason)
            raise ClientError(exc.code, message) from None

    # -- endpoints -------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def pipelines(self) -> dict:
        return self._request("GET", "/pipelines")

    def build(
        self,
        pipeline: str,
        scenario: Mapping[str, Any],
        params: Optional[Mapping[str, Any]] = None,
    ) -> dict:
        payload: dict[str, Any] = {"pipeline": pipeline, "scenario": dict(scenario)}
        if params:
            payload["params"] = dict(params)
        return self._request("POST", "/build", payload)

    def batch(
        self,
        requests: Sequence[Mapping[str, Any]],
        executor: Optional[Mapping[str, Any]] = None,
    ) -> dict:
        payload: dict[str, Any] = {"requests": [dict(r) for r in requests]}
        if executor:
            payload["executor"] = dict(executor)
        return self._request("POST", "/batch", payload)

    def route(
        self,
        source: int,
        target: int,
        *,
        key: Optional[str] = None,
        pipeline: Optional[str] = None,
        scenario: Optional[Mapping[str, Any]] = None,
        params: Optional[Mapping[str, Any]] = None,
        mode: str = "gpsr",
    ) -> dict:
        payload: dict[str, Any] = {"source": source, "target": target, "mode": mode}
        if key is not None:
            payload["key"] = key
        if pipeline is not None:
            payload["pipeline"] = pipeline
        if scenario is not None:
            payload["scenario"] = dict(scenario)
        if params:
            payload["params"] = dict(params)
        return self._request("POST", "/route", payload)

    def route_batch(
        self,
        *,
        key: Optional[str] = None,
        pipeline: Optional[str] = None,
        scenario: Optional[Mapping[str, Any]] = None,
        params: Optional[Mapping[str, Any]] = None,
        pairs: Optional[Sequence[Sequence[int]]] = None,
        count: Optional[int] = None,
        seed: Optional[int] = None,
        mode: str = "gpsr",
        max_hops: Optional[int] = None,
        include_paths: Optional[int] = None,
        chunk: Optional[int] = None,
        failure: Optional[Mapping[str, Any]] = None,
    ) -> dict:
        payload: dict[str, Any] = {"mode": mode}
        if key is not None:
            payload["key"] = key
        if pipeline is not None:
            payload["pipeline"] = pipeline
        if scenario is not None:
            payload["scenario"] = dict(scenario)
        if params:
            payload["params"] = dict(params)
        if pairs is not None:
            payload["pairs"] = [list(pair) for pair in pairs]
        if count is not None:
            payload["count"] = count
        if seed is not None:
            payload["seed"] = seed
        if max_hops is not None:
            payload["max_hops"] = max_hops
        if include_paths is not None:
            payload["include_paths"] = include_paths
        if chunk is not None:
            payload["chunk"] = chunk
        if failure is not None:
            payload["failure"] = dict(failure)
        return self._request("POST", "/route_batch", payload)
