"""A small stdlib client for the spanner service.

Used by the integration tests, the benchmark, and scripts; mirrors the
endpoint surface one-to-one.  Raises :class:`ClientError` with the
server's status code and error message on any non-2xx response.

Resilience: ``429`` throttling from the async tier's admission
control is always retried with exponential backoff (plus jitter) —
the front end rejects throttled requests *before* dispatching them,
so a retry can never duplicate work.  Connection errors and ``503``
are ambiguous (the server may have applied the request before the
response was lost), so they are retried only for idempotent
requests: every ``GET``, plus the pure-computation ``POST``s
(``/build``, ``/batch``, ``/route``, ``/route_batch``,
``/build_stream``) whose replay cannot change server state.
State-mutating calls — session create/step/stream/delete,
deployment put/delete — fail fast on those errors instead of
risking a silent duplicate (an extra live session, a spurious 409
on ``overwrite=false``).  A ``Retry-After`` header overrides the
computed backoff; ``retries=0`` restores fail-fast everywhere.

Streaming: :meth:`ServiceClient.build_stream` and
:meth:`ServiceClient.session_stream` consume the SSE endpoints,
yielding ``(event, data)`` pairs as frames arrive.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Iterator, Mapping, Optional, Sequence

#: Always retried: the admission-control throttle, which by
#: construction is answered before the request reaches a worker.
ALWAYS_RETRYABLE_STATUSES = (429,)

#: Retried only for idempotent requests: the response says the
#: service was unavailable, but an intermediary could produce the
#: same status after the origin applied the request.
IDEMPOTENT_RETRYABLE_STATUSES = (429, 503)


class ClientError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talks JSON to a running spanner service."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 60.0,
        retries: int = 3,
        backoff_s: float = 0.2,
        max_backoff_s: float = 5.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        #: Retries actually performed (observability for tests/benchmarks).
        self.retry_count = 0

    # -- plumbing --------------------------------------------------------

    def _prepare(
        self, method: str, path: str, payload: Any, accept: str
    ) -> urllib.request.Request:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": accept}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        return urllib.request.Request(url, data=data, headers=headers, method=method)

    def _sleep_for(self, attempt: int, retry_after: Optional[str]) -> float:
        if retry_after:
            try:
                return max(0.0, float(retry_after))
            except ValueError:
                pass
        base = min(self.max_backoff_s, self.backoff_s * (2 ** attempt))
        return base * (0.5 + random.random() / 2.0)  # full-ish jitter

    def _open(self, request: urllib.request.Request, *, idempotent: bool):
        """Open with idempotency-gated retry semantics.

        ``429`` is retried unconditionally (admission control rejects
        before dispatch, so nothing was applied).  Connection errors
        and ``503`` — where the request may already have taken effect
        server-side — are retried only when ``idempotent`` says a
        replay cannot change state or duplicate work.
        """
        retryable_statuses = (
            IDEMPOTENT_RETRYABLE_STATUSES
            if idempotent
            else ALWAYS_RETRYABLE_STATUSES
        )
        attempt = 0
        while True:
            try:
                return urllib.request.urlopen(request, timeout=self.timeout)
            except urllib.error.HTTPError as exc:
                if exc.code in retryable_statuses and attempt < self.retries:
                    delay = self._sleep_for(attempt, exc.headers.get("Retry-After"))
                    exc.close()
                    self.retry_count += 1
                    attempt += 1
                    time.sleep(delay)
                    continue
                try:
                    message = json.loads(exc.read()).get("error", exc.reason)
                except Exception:
                    message = str(exc.reason)
                raise ClientError(exc.code, message) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                if idempotent and attempt < self.retries:
                    self.retry_count += 1
                    time.sleep(self._sleep_for(attempt, None))
                    attempt += 1
                    continue
                raise ClientError(0, f"connection failed: {exc}") from None

    def _request(
        self,
        method: str,
        path: str,
        payload: Any = None,
        *,
        idempotent: Optional[bool] = None,
    ) -> dict:
        if idempotent is None:
            idempotent = method == "GET"
        with self._open(
            self._prepare(method, path, payload, "application/json"),
            idempotent=idempotent,
        ) as response:
            return json.loads(response.read())

    def _stream(
        self, path: str, payload: Any, *, idempotent: bool = False
    ) -> Iterator[tuple[str, Any]]:
        """POST and yield parsed SSE ``(event, data)`` pairs as they land."""
        from repro.service.streaming import iter_sse_events

        response = self._open(
            self._prepare("POST", path, payload, "text/event-stream"),
            idempotent=idempotent,
        )
        try:
            yield from iter_sse_events(response)
        finally:
            response.close()

    # -- endpoints -------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def pipelines(self) -> dict:
        return self._request("GET", "/pipelines")

    def build(
        self,
        pipeline: str,
        scenario: Mapping[str, Any],
        params: Optional[Mapping[str, Any]] = None,
        *,
        stream: bool = False,
    ) -> "dict | Iterator[tuple[str, Any]]":
        """``POST /build`` — or, with ``stream=True``, the SSE variant
        yielding ``start`` / ``tile`` / ``result`` / ``end`` events."""
        payload: dict[str, Any] = {"pipeline": pipeline, "scenario": dict(scenario)}
        if params:
            payload["params"] = dict(params)
        if stream:
            return self._stream("/build_stream", payload, idempotent=True)
        return self._request("POST", "/build", payload, idempotent=True)

    def batch(
        self,
        requests: Sequence[Mapping[str, Any]],
        executor: Optional[Mapping[str, Any]] = None,
    ) -> dict:
        payload: dict[str, Any] = {"requests": [dict(r) for r in requests]}
        if executor:
            payload["executor"] = dict(executor)
        return self._request("POST", "/batch", payload, idempotent=True)

    def route(
        self,
        source: int,
        target: int,
        *,
        key: Optional[str] = None,
        pipeline: Optional[str] = None,
        scenario: Optional[Mapping[str, Any]] = None,
        params: Optional[Mapping[str, Any]] = None,
        mode: str = "gpsr",
    ) -> dict:
        payload: dict[str, Any] = {"source": source, "target": target, "mode": mode}
        if key is not None:
            payload["key"] = key
        if pipeline is not None:
            payload["pipeline"] = pipeline
        if scenario is not None:
            payload["scenario"] = dict(scenario)
        if params:
            payload["params"] = dict(params)
        return self._request("POST", "/route", payload, idempotent=True)

    def route_batch(
        self,
        *,
        key: Optional[str] = None,
        pipeline: Optional[str] = None,
        scenario: Optional[Mapping[str, Any]] = None,
        params: Optional[Mapping[str, Any]] = None,
        pairs: Optional[Sequence[Sequence[int]]] = None,
        count: Optional[int] = None,
        seed: Optional[int] = None,
        mode: str = "gpsr",
        max_hops: Optional[int] = None,
        include_paths: Optional[int] = None,
        chunk: Optional[int] = None,
        failure: Optional[Mapping[str, Any]] = None,
    ) -> dict:
        payload: dict[str, Any] = {"mode": mode}
        if key is not None:
            payload["key"] = key
        if pipeline is not None:
            payload["pipeline"] = pipeline
        if scenario is not None:
            payload["scenario"] = dict(scenario)
        if params:
            payload["params"] = dict(params)
        if pairs is not None:
            payload["pairs"] = [list(pair) for pair in pairs]
        if count is not None:
            payload["count"] = count
        if seed is not None:
            payload["seed"] = seed
        if max_hops is not None:
            payload["max_hops"] = max_hops
        if include_paths is not None:
            payload["include_paths"] = include_paths
        if chunk is not None:
            payload["chunk"] = chunk
        if failure is not None:
            payload["failure"] = dict(failure)
        return self._request("POST", "/route_batch", payload, idempotent=True)

    # -- sessions --------------------------------------------------------

    def session_create(
        self, scenario: Mapping[str, Any], *, tile_cells: Optional[int] = None
    ) -> dict:
        payload: dict[str, Any] = {"scenario": dict(scenario)}
        if tile_cells is not None:
            payload["tile_cells"] = tile_cells
        return self._request("POST", "/session", payload)

    def session_step(
        self,
        session_id: str,
        events: Sequence[Mapping[str, Any]],
        *,
        verify: bool = False,
    ) -> dict:
        payload = {"events": [dict(e) for e in events], "verify": verify}
        return self._request("POST", f"/session/{session_id}/step", payload)

    def session_stream(
        self,
        session_id: str,
        batches: Sequence[Sequence[Mapping[str, Any]]],
        *,
        verify: bool = False,
    ) -> Iterator[tuple[str, Any]]:
        """``POST /session/{id}/stream`` — one ``delta`` event per batch."""
        payload = {
            "batches": [[dict(e) for e in batch] for batch in batches],
            "verify": verify,
        }
        return self._stream(f"/session/{session_id}/stream", payload)

    def session_get(self, session_id: str) -> dict:
        return self._request("GET", f"/session/{session_id}")

    def session_delete(self, session_id: str) -> dict:
        return self._request("DELETE", f"/session/{session_id}")

    # -- deployments -----------------------------------------------------

    def deployment_put(
        self,
        name: str,
        scenario: Mapping[str, Any],
        *,
        overwrite: bool = True,
    ) -> dict:
        return self._request(
            "POST",
            "/deployments",
            {"name": name, "scenario": dict(scenario), "overwrite": overwrite},
        )

    def deployments(self) -> dict:
        return self._request("GET", "/deployments")

    def deployment_get(self, name: str) -> dict:
        return self._request("GET", f"/deployments/{name}")

    def deployment_delete(self, name: str) -> dict:
        return self._request("DELETE", f"/deployments/{name}")
