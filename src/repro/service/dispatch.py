"""Transport-agnostic request dispatch for the spanner service.

Endpoint *semantics* — the route tables, body-parsing rules, error
mapping, and JSON encoding — are defined exactly once here and shared
by every transport: the blocking ``ThreadingHTTPServer`` shim
(:mod:`repro.service.server`), the worker processes of the async tier
(:mod:`repro.service.pool`), and any in-process test harness.  That
single definition is what makes the non-streaming responses of the
blocking and async servers byte-identical: both call
:func:`dispatch` and write :meth:`JsonResponse.encode` verbatim.

A transport hands in ``(service, method, path, raw_body)`` and gets
back either a :class:`JsonResponse` (status + JSON payload, already
encodable to the exact bytes on the wire) or an :class:`EventStream`
(an iterator of pre-framed SSE event bytes to be written as they are
produced).  :func:`dispatch` never raises: service-level failures map
to their declared status codes, anything else becomes a 500 and bumps
the ``server.errors`` counter — the same contract the blocking
handler's ``_dispatch`` used to implement privately.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Optional

if TYPE_CHECKING:  # circular at runtime: server imports this module
    from repro.service.server import SpannerService

#: Request bodies above this are rejected with 413 (64 MiB: a
#: 500k-point explicit scenario still fits).  Shared by every
#: transport so the limit is one number.
MAX_BODY = 64 * 1024 * 1024


@dataclass
class JsonResponse:
    """One JSON response: status, payload, optional extra headers.

    ``cacheable`` is a transport hint: ``True`` marks responses whose
    bytes are a pure function of the request (a warm ``/build`` hit, a
    ``/route_batch`` answer, the pipeline listing) and may be replayed
    verbatim by a front-end response cache.  It never changes the
    response itself.
    """

    status: int
    payload: Any
    headers: dict = field(default_factory=dict)
    cacheable: bool = False

    def encode(self) -> bytes:
        """The exact bytes every transport writes for this response."""
        return json.dumps(self.payload).encode()


@dataclass
class EventStream:
    """A server-sent-event response: pre-framed event bytes.

    ``events`` yields complete SSE frames (``event: ...\\ndata:
    ...\\n\\n`` already encoded); transports write each frame as it
    arrives and close the connection afterwards.
    """

    events: Iterator[bytes]
    status: int = 200
    content_type: str = "text/event-stream"


DispatchResult = "JsonResponse | EventStream"


def error_response(status: int, message: str) -> JsonResponse:
    """The uniform error body shape: ``{"error": <message>}``."""
    return JsonResponse(status, {"error": message})


def normalize_path(path: str) -> str:
    """Strip the query string and trailing slashes (``/`` survives)."""
    bare = path.split("?", 1)[0].rstrip("/")
    return bare or "/"


def _parse_body(raw: Optional[bytes], *, optional: bool = False) -> Any:
    """Decode a JSON request body under the endpoint's body rules."""
    from repro.service.server import ServiceError

    if raw is None or len(raw) == 0:
        if optional:
            return {}
        raise ServiceError(400, "request body required")
    if len(raw) > MAX_BODY:
        raise ServiceError(413, "request body too large")
    try:
        return json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ServiceError(400, f"invalid JSON body: {exc}") from None


def _build_cache_hint(payload: Any) -> bool:
    """A ``/build`` response is replayable once it reports a warm hit."""
    return isinstance(payload, Mapping) and payload.get("cache") == "hit"


def _mutable_scenario(body: Any) -> bool:
    """Does the request resolve through mutable server state?

    A scenario of the form ``{"deployment": "<name>"}`` is looked up
    in the :class:`~repro.service.store.DeploymentStore` at request
    time, and the name can be re-pointed at a different point set by
    a later ``POST /deployments``.  Responses derived from it are
    therefore *not* pure functions of the request bytes and must
    never be marked ``cacheable`` — a front cache keyed on raw
    request bytes would replay the pre-overwrite answer forever.
    """
    if not isinstance(body, Mapping):
        return False
    scenario = body.get("scenario")
    return isinstance(scenario, Mapping) and "deployment" in scenario


def _route_get(
    service: "SpannerService", parts: list[str]
) -> Optional[Callable[[], JsonResponse]]:
    """The GET route table: path parts -> a thunk producing a response."""
    if parts == ["healthz"]:
        return lambda: JsonResponse(200, service.healthz())
    if parts == ["metrics"]:
        return lambda: JsonResponse(200, service.metrics_snapshot())
    if parts == ["pipelines"]:
        return lambda: JsonResponse(200, service.pipelines(), cacheable=True)
    if parts == ["invariants"]:
        return lambda: JsonResponse(200, service.invariants_summary())
    if parts == ["deployments"]:
        return lambda: JsonResponse(200, service.deployments_list())
    if len(parts) == 2 and parts[0] == "deployments":
        return lambda: JsonResponse(200, service.deployments_get(parts[1]))
    if len(parts) == 2 and parts[0] == "session":
        return lambda: JsonResponse(200, service.session_get(parts[1]))
    return None


def _route_post(
    service: "SpannerService", parts: list[str], raw: Optional[bytes]
) -> Optional[Callable[[], "JsonResponse | EventStream"]]:
    """The POST route table (body parsing deferred into the thunk)."""
    from repro.service import streaming

    if len(parts) == 1:
        name = parts[0]
        if name == "build":
            def build_thunk() -> JsonResponse:
                body = _parse_body(raw)
                payload = service.build(body)
                return JsonResponse(
                    200,
                    payload,
                    cacheable=_build_cache_hint(payload)
                    and not _mutable_scenario(body),
                )

            return build_thunk
        if name == "batch":
            return lambda: JsonResponse(200, service.batch(_parse_body(raw)))
        if name == "route":
            def route_thunk() -> JsonResponse:
                body = _parse_body(raw)
                return JsonResponse(
                    200,
                    service.route(body),
                    cacheable=not _mutable_scenario(body),
                )

            return route_thunk
        if name == "route_batch":
            def route_batch_thunk() -> JsonResponse:
                body = _parse_body(raw)
                return JsonResponse(
                    200,
                    service.route_batch(body),
                    cacheable=not _mutable_scenario(body),
                )

            return route_batch_thunk
        if name == "session":
            return lambda: JsonResponse(
                200, service.session_create(_parse_body(raw))
            )
        if name == "validate":
            return lambda: JsonResponse(
                200, service.validate(_parse_body(raw, optional=True))
            )
        if name == "build_stream":
            return lambda: EventStream(
                streaming.build_stream(service, _parse_body(raw))
            )
        if name == "deployments":
            return lambda: JsonResponse(
                200, service.deployments_create(_parse_body(raw))
            )
        return None
    if len(parts) == 3 and parts[0] == "session":
        if parts[2] == "step":
            return lambda: JsonResponse(
                200, service.session_step(parts[1], _parse_body(raw))
            )
        if parts[2] == "stream":
            return lambda: EventStream(
                streaming.session_stream(service, parts[1], _parse_body(raw))
            )
    return None


def _route_delete(
    service: "SpannerService", parts: list[str]
) -> Optional[Callable[[], JsonResponse]]:
    """The DELETE route table."""
    if len(parts) == 2 and parts[0] == "session":
        return lambda: JsonResponse(200, service.session_delete(parts[1]))
    if len(parts) == 2 and parts[0] == "deployments":
        return lambda: JsonResponse(200, service.deployments_delete(parts[1]))
    return None


def dispatch(
    service: "SpannerService",
    method: str,
    path: str,
    raw_body: Optional[bytes] = None,
) -> "JsonResponse | EventStream":
    """Route one request to the service; never raises.

    ``raw_body`` is the unparsed request body (``None`` when the
    request carried none); each endpoint applies its own body rules,
    so transports stay byte-oriented and every 400/413 is produced
    here, identically, for every server.
    """
    from repro.service.server import ServiceError

    bare = normalize_path(path)
    parts = [p for p in bare.strip("/").split("/") if p]
    if method == "GET":
        thunk = _route_get(service, parts)
    elif method == "POST":
        thunk = _route_post(service, parts, raw_body)
    elif method == "DELETE":
        thunk = _route_delete(service, parts)
    else:
        return error_response(405, f"method {method} not allowed")
    if thunk is None:
        return error_response(404, f"unknown path {bare!r}")
    try:
        return thunk()
    except ServiceError as exc:
        return error_response(exc.status, exc.message)
    except Exception as exc:  # a bug, not a bad request
        service.metrics.inc("server.errors")
        return error_response(500, f"{type(exc).__name__}: {exc}")


#: Streaming endpoints (used by transports that must decide how to
#: frame the response before dispatching, e.g. the async front end's
#: admission control).
def is_streaming_path(method: str, path: str) -> bool:
    parts = [p for p in normalize_path(path).strip("/").split("/") if p]
    if method != "POST":
        return False
    return parts == ["build_stream"] or (
        len(parts) == 3 and parts[0] == "session" and parts[2] == "stream"
    )
