"""The shared-nothing worker pool behind the async serving tier.

Each worker is one OS process owning a full private
:class:`~repro.service.server.SpannerService` — its own registry,
construction/router caches, and incremental sessions.  Workers never
share memory or locks; the only coordination surfaces are the
placement ring (:mod:`repro.service.router`), the shared *disk* cache
layer, and the single-writer deployment store, all under
``--data-dir``.

Transport is one duplex :func:`multiprocessing.Pipe` per worker.  The
front end writes ``(request_id, method, path, raw_body)`` tuples; the
worker answers each request with either one terminal ``"json"``
message (status + the exact response bytes + the cacheable hint) or a
``"stream"`` / ``"frame"``* / ``"end"`` sequence carrying SSE frames
as they are produced.  A dedicated reader thread per worker
demultiplexes messages to per-request callbacks, so the asyncio loop
never blocks on a pipe.

Degradation mirrors :mod:`repro.service.executor`: where process
spawning is unavailable (locked-down sandboxes), the pool runs each
worker loop on a thread with queue-backed connections — same
protocol, same shared-nothing discipline, no parallelism.

Admission control is enforced here: each worker has a bounded
in-flight window (``queue_depth``); :meth:`WorkerPool.submit` raises
:class:`PoolSaturated` when the owner's window is full, which the
front end maps to ``429 Retry-After``.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
import traceback
from typing import Any, Callable, Mapping, Optional

#: How long ``close()`` waits for a worker to finish its current
#: request and acknowledge the stop before being terminated.
STOP_TIMEOUT_S = 10.0


class PoolSaturated(Exception):
    """The target worker's in-flight window is full (maps to 429)."""

    def __init__(self, worker_id: int, depth: int) -> None:
        super().__init__(f"worker {worker_id} saturated at depth {depth}")
        self.worker_id = worker_id
        self.depth = depth


class PoolClosed(Exception):
    """The pool (or the target worker) is no longer accepting work."""


class _QueueConnection:
    """A ``Connection``-shaped pair of queues (thread-mode transport)."""

    def __init__(self, send_q: "queue.Queue", recv_q: "queue.Queue") -> None:
        self._send_q = send_q
        self._recv_q = recv_q
        self._closed = False

    def send(self, obj: Any) -> None:
        if self._closed:
            raise OSError("connection closed")
        self._send_q.put(obj)

    def recv(self) -> Any:
        obj = self._recv_q.get()
        if obj is _CLOSED:
            raise EOFError
        return obj

    def close(self) -> None:
        self._closed = True
        self._send_q.put(_CLOSED)


_CLOSED = object()


def _worker_loop(worker_id: int, conn: Any, service_kwargs: dict) -> None:
    """One worker's lifetime: serve requests off the pipe until told to stop.

    Runs in a child process (or a thread in degraded mode).  Imports
    are deferred so the child only pays for what it serves.
    """
    from repro.service.dispatch import EventStream, dispatch
    from repro.service.server import SpannerService

    service = SpannerService(worker_id=worker_id, **service_kwargs)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:  # stop sentinel
                break
            request_id, method, path, raw_body = message
            try:
                result = dispatch(service, method, path, raw_body)
            except Exception as exc:  # dispatch never raises; belt and braces
                traceback.print_exc()
                from repro.service.dispatch import error_response

                failure = error_response(500, f"{type(exc).__name__}: {exc}")
                conn.send((request_id, "json", 500, failure.encode(), False))
                continue
            if isinstance(result, EventStream):
                conn.send((request_id, "stream", result.status, result.content_type))
                try:
                    for frame in result.events:
                        conn.send((request_id, "frame", frame))
                finally:
                    conn.send((request_id, "end", None, None))
            else:
                conn.send(
                    (request_id, "json", result.status, result.encode(),
                     result.cacheable)
                )
    finally:
        summary = service.close()
        try:
            conn.send((None, "stopped", summary, None))
            conn.close()
        except (OSError, ValueError):
            pass


class _Worker:
    """Front-end handle: connection, reader thread, in-flight window."""

    def __init__(self, worker_id: int, queue_depth: int) -> None:
        self.worker_id = worker_id
        self.queue_depth = queue_depth
        self.conn: Any = None
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.thread: Optional[threading.Thread] = None
        self.reader: Optional[threading.Thread] = None
        self.send_lock = threading.Lock()
        self.lock = threading.Lock()
        self.pending: dict[int, Callable[[tuple], None]] = {}
        self.alive = False
        self.stop_summary: Optional[dict] = None

    def inflight(self) -> int:
        with self.lock:
            return len(self.pending)


class WorkerPool:
    """A fixed pool of shared-nothing service workers."""

    def __init__(
        self,
        size: int,
        *,
        mode: str = "process",
        queue_depth: int = 32,
        service_kwargs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if size < 1:
            raise ValueError("pool needs at least one worker")
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown pool mode {mode!r}")
        self.size = size
        self.requested_mode = mode
        self.mode = mode
        self.queue_depth = queue_depth
        self.service_kwargs = dict(service_kwargs or {})
        self._workers = [_Worker(i, queue_depth) for i in range(size)]
        self._request_seq = 0
        self._seq_lock = threading.Lock()
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self.mode == "process":
            try:
                self._start_processes()
            except Exception:
                self.mode = "thread"
                self._start_threads()
        else:
            self._start_threads()
        return self

    def _start_processes(self) -> None:
        ctx = multiprocessing.get_context()
        started: list[_Worker] = []
        try:
            for worker in self._workers:
                parent, child = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=_worker_loop,
                    args=(worker.worker_id, child, self.service_kwargs),
                    daemon=True,
                )
                process.start()
                child.close()
                worker.conn = parent
                worker.process = process
                started.append(worker)
            # Probe: a dead-on-arrival child (sandboxed fork) must fail
            # startup here, not on the first request.
            for worker in started:
                if not worker.process.is_alive():
                    raise OSError(f"worker {worker.worker_id} failed to start")
                worker.alive = True
                self._start_reader(worker)
        except Exception:
            for worker in started:
                if worker.process is not None:
                    worker.process.terminate()
                worker.process = None
                worker.conn = None
                worker.alive = False
            raise

    def _start_threads(self) -> None:
        for worker in self._workers:
            to_worker: "queue.Queue" = queue.Queue()
            to_parent: "queue.Queue" = queue.Queue()
            worker.conn = _QueueConnection(to_worker, to_parent)
            worker_conn = _QueueConnection(to_parent, to_worker)
            worker.thread = threading.Thread(
                target=_worker_loop,
                args=(worker.worker_id, worker_conn, self.service_kwargs),
                daemon=True,
            )
            worker.thread.start()
            worker.alive = True
            self._start_reader(worker)

    def _start_reader(self, worker: _Worker) -> None:
        worker.reader = threading.Thread(
            target=self._read_loop, args=(worker,), daemon=True
        )
        worker.reader.start()

    def _read_loop(self, worker: _Worker) -> None:
        """Demultiplex one worker's messages to request callbacks."""
        while True:
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                self._fail_pending(worker, "worker connection lost")
                return
            request_id, kind = message[0], message[1]
            if request_id is None:  # stop acknowledgement
                worker.stop_summary = message[2]
                self._fail_pending(worker, "worker stopped")
                return
            with worker.lock:
                callback = worker.pending.get(request_id)
                if kind in ("json", "end"):
                    worker.pending.pop(request_id, None)
            if callback is not None:
                try:
                    callback(message)
                except Exception:
                    traceback.print_exc()

    def _fail_pending(self, worker: _Worker, reason: str) -> None:
        import json as _json

        worker.alive = False
        with worker.lock:
            pending, worker.pending = dict(worker.pending), {}
        body = _json.dumps({"error": reason}).encode()
        for request_id, callback in pending.items():
            try:
                callback((request_id, "json", 500, body, False))
            except Exception:
                traceback.print_exc()

    # -- submission ------------------------------------------------------

    def submit(
        self,
        worker_id: int,
        method: str,
        path: str,
        raw_body: Optional[bytes],
        on_message: Callable[[tuple], None],
    ) -> int:
        """Enqueue one request on ``worker_id``; returns the request id.

        ``on_message`` runs on the reader thread for every message of
        this request; a ``"json"`` or ``"end"`` message is terminal and
        frees the in-flight slot.
        """
        if self._closed:
            raise PoolClosed("pool is closed")
        worker = self._workers[worker_id]
        if not worker.alive:
            raise PoolClosed(f"worker {worker_id} is down")
        with self._seq_lock:
            self._request_seq += 1
            request_id = self._request_seq
        with worker.lock:
            if len(worker.pending) >= worker.queue_depth:
                raise PoolSaturated(worker_id, worker.queue_depth)
            worker.pending[request_id] = on_message
        try:
            with worker.send_lock:
                worker.conn.send((request_id, method, path, raw_body))
        except (OSError, ValueError) as exc:
            with worker.lock:
                worker.pending.pop(request_id, None)
            worker.alive = False
            raise PoolClosed(f"worker {worker_id} is down: {exc}") from None
        return request_id

    def inflight(self, worker_id: int) -> int:
        return self._workers[worker_id].inflight()

    def alive_workers(self) -> int:
        return sum(1 for worker in self._workers if worker.alive)

    def stats(self) -> dict:
        return {
            "size": self.size,
            "mode": self.mode,
            "queue_depth": self.queue_depth,
            "alive": self.alive_workers(),
            "inflight": [worker.inflight() for worker in self._workers],
        }

    # -- shutdown --------------------------------------------------------

    def close(self, timeout: float = STOP_TIMEOUT_S) -> list[Optional[dict]]:
        """Graceful stop: drain, stop sentinel, join; terminate stragglers.

        Returns each worker's ``SpannerService.close()`` summary (or
        ``None`` if it had to be terminated).
        """
        if self._closed:
            return [worker.stop_summary for worker in self._workers]
        self._closed = True
        deadline = time.monotonic() + timeout
        # Let in-flight requests finish before the stop sentinel, so
        # "drain" means drain — workers process their pipe in order,
        # but streamed responses interleave with the sentinel read.
        for worker in self._workers:
            while worker.alive and worker.inflight() > 0:
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.01)
        for worker in self._workers:
            if worker.alive and worker.conn is not None:
                try:
                    with worker.send_lock:
                        worker.conn.send(None)
                except (OSError, ValueError):
                    pass
        for worker in self._workers:
            remaining = max(0.1, deadline - time.monotonic())
            if worker.process is not None:
                worker.process.join(timeout=remaining)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=1.0)
            elif worker.thread is not None:
                worker.thread.join(timeout=remaining)
            if worker.reader is not None:
                worker.reader.join(timeout=1.0)
            worker.alive = False
        return [worker.stop_summary for worker in self._workers]


# -- metrics aggregation ------------------------------------------------------


def aggregate_metrics(snapshots: list[dict]) -> dict:
    """Merge per-worker ``/metrics`` snapshots into one pool view.

    Counters sum; latency series merge by summing counts/totals and
    taking min/max of the extremes.  Percentiles cannot be merged
    exactly from summaries, so the pool view reports the worst
    (max) per-worker percentile — conservative for alerting.
    """
    merged: dict[str, Any] = {
        "uptime_s": max((s.get("uptime_s", 0.0) for s in snapshots), default=0.0),
        "counters": {},
        "latency": {},
        "sessions": {"active": 0},
        "workers": len(snapshots),
    }
    cache_totals: dict[str, Any] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, series in snapshot.get("latency", {}).items():
            slot = merged["latency"].get(name)
            if slot is None:
                merged["latency"][name] = dict(series)
                continue
            slot["count"] += series.get("count", 0)
            slot["sum_s"] = round(slot.get("sum_s", 0.0) + series.get("sum_s", 0.0), 6)
            for field, pick in (("min_ms", min), ("max_ms", max),
                                ("p50_ms", max), ("p95_ms", max), ("p99_ms", max)):
                if field in series:
                    slot[field] = pick(slot.get(field, series[field]), series[field])
            if slot.get("count"):
                slot["avg_ms"] = round(slot["sum_s"] / slot["count"] * 1000.0, 3)
        merged["sessions"]["active"] += snapshot.get("sessions", {}).get("active", 0)
        for name, value in snapshot.get("cache", {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                cache_totals[name] = cache_totals.get(name, 0) + value
    if cache_totals:
        merged["cache"] = cache_totals
    return merged
