"""The spanner construction service: a long-running serving layer.

The paper's constructions are one-shot library calls; this package
amortizes them across request traffic:

* :mod:`~repro.service.registry` — named, parameter-validated
  pipelines over the topology builders;
* :mod:`~repro.service.cache` — content-addressed LRU result cache
  (memory + optional disk) keyed by scenario fingerprints;
* :mod:`~repro.service.executor` — batch fan-out over a process or
  thread pool with per-task timeouts and error capture;
* :mod:`~repro.service.metrics` — counters and latency histograms
  (p50/p95/p99) for build, cache, and route operations;
* :mod:`~repro.service.server` — the stdlib HTTP JSON API behind
  ``python -m repro serve``;
* :mod:`~repro.service.client` — a small urllib client for tests and
  scripts.
"""

from repro.service.cache import ResultCache, scenario_key
from repro.service.executor import BatchOutcome, TaskOutcome, run_batch
from repro.service.metrics import MetricsRegistry
from repro.service.registry import (
    PipelineSpec,
    available_pipelines,
    build_scenario,
    get_pipeline,
    resolve_scenario,
)
from repro.service.server import SpannerService, serve

__all__ = [
    "ResultCache",
    "scenario_key",
    "BatchOutcome",
    "TaskOutcome",
    "run_batch",
    "MetricsRegistry",
    "PipelineSpec",
    "available_pipelines",
    "build_scenario",
    "get_pipeline",
    "resolve_scenario",
    "SpannerService",
    "serve",
]
