"""Phase 1 — clustering: lowest-ID maximal-independent-set election.

The paper's summary of the Baker/Ephremides-style protocols
(Section III-A.1): every node starts *white*; a white node that has the
smallest ID among all of its white neighbors claims dominator status
and broadcasts ``IamDominator``; a white node that hears
``IamDominator`` from a neighbor becomes a dominatee and broadcasts
``IamDominatee(self, dominator)``.  Because a node may later gain
*additional* adjacent dominators (a white neighbor can still win its
own election), a dominatee broadcasts one ``IamDominatee`` per
dominator it acquires — at most five by Lemma 1.

The elected dominators form a maximal independent set, hence a
dominating set.  An initial ``Hello`` round gives every node the IDs
of its 1-hop neighbors, as the paper assumes.

Alternative clusterhead orders (for the ablation benchmark) are
supported through a ``priority`` function: election compares
``priority(node)`` tuples instead of raw IDs, defaulting to lowest ID.
Highest-degree election (Gerla & Tsai) is ``highest_degree_priority``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from repro.graphs.udg import UnitDiskGraph
from repro.sim.messages import HELLO, IAM_DOMINATEE, IAM_DOMINATOR, Message
from repro.sim.network import SyncNetwork
from repro.sim.protocol import NodeProcess
from repro.sim.stats import MessageStats

#: Election priority: smaller tuples win.  Receives (node_id, degree).
PriorityFn = Callable[[int, int], tuple]


def lowest_id_priority(node_id: int, degree: int) -> tuple:
    """The paper's default: smallest ID wins."""
    return (node_id,)


def highest_degree_priority(node_id: int, degree: int) -> tuple:
    """Gerla & Tsai's variant: largest degree wins, ID breaks ties."""
    return (-degree, node_id)


@dataclass(frozen=True)
class ClusteringOutcome:
    """Result of the clustering phase."""

    dominators: frozenset[int]
    #: For each dominatee, the set of its adjacent dominators.
    dominators_of: Mapping[int, frozenset[int]]
    rounds: int
    stats: MessageStats


class ClusteringProcess(NodeProcess):
    """One node's view of the MIS election."""

    def __init__(
        self,
        node_id: int,
        position,
        neighbor_ids: tuple[int, ...],
        priority: PriorityFn,
    ) -> None:
        super().__init__(node_id, position, neighbor_ids)
        self._priority = priority
        self.status = "white"  # white | dominator | dominatee
        #: Neighbors believed to still be white (filled after Hello).
        self._white_neighbors: set[int] = set()
        #: Priority of each neighbor, learned from Hello messages.
        self._neighbor_priority: dict[int, tuple] = {}
        self.my_dominators: set[int] = set()
        self._announced_dominators: set[int] = set()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        # The paper: "each node knows the IDs of all its 1-hop
        # neighbors, which can be achieved by requiring each node to
        # broadcast its ID ... initially."  Degree rides along for the
        # highest-degree ablation variant.
        self.broadcast(HELLO, degree=len(self.neighbor_ids))

    def receive(self, message: Message) -> None:
        if message.kind == HELLO:
            self._neighbor_priority[message.sender] = self._priority(
                message.sender, message["degree"]
            )
            self._white_neighbors.add(message.sender)
        elif message.kind == IAM_DOMINATOR:
            self._white_neighbors.discard(message.sender)
            if self.status != "dominator":
                self.status = "dominatee"
                self.my_dominators.add(message.sender)
        elif message.kind == IAM_DOMINATEE:
            self._white_neighbors.discard(message.sender)

    def finish_round(self, round_index: int) -> None:
        if self.status == "white" and self._election_won():
            self.status = "dominator"
            self.broadcast(IAM_DOMINATOR)
        if self.status == "dominatee":
            for dom in sorted(self.my_dominators - self._announced_dominators):
                self.broadcast(IAM_DOMINATEE, dominator=dom)
                self._announced_dominators.add(dom)

    def _election_won(self) -> bool:
        # Wait until every neighbor's Hello arrived: the paper notes the
        # asynchronous variant needs the neighbor count known a priori
        # for exactly this reason.
        if len(self._neighbor_priority) < len(self.neighbor_ids):
            return False
        mine = self._priority(self.node_id, len(self.neighbor_ids))
        return all(
            mine < self._neighbor_priority[w] for w in self._white_neighbors
        )

    @property
    def idle(self) -> bool:
        # White nodes are still waiting on neighbors' elections; the
        # election cascade keeps at least one message in flight until
        # everyone is decided, so this never deadlocks the driver.
        return self.status != "white"


def run_clustering(
    udg: UnitDiskGraph,
    *,
    priority: Optional[PriorityFn] = None,
    stats: Optional[MessageStats] = None,
) -> ClusteringOutcome:
    """Run the clustering protocol to quiescence on ``udg``.

    Raises :class:`RuntimeError` if the election stalls (cannot happen
    on a lossless radio: the white node with globally smallest
    priority can always elect itself).
    """
    chosen = priority or lowest_id_priority
    net = SyncNetwork(
        udg,
        lambda node_id, _net: ClusteringProcess(
            node_id,
            udg.positions[node_id],
            tuple(sorted(udg.neighbors(node_id))),
            chosen,
        ),
        stats=stats,
    )
    rounds = net.run(max_rounds=4 * udg.node_count + 16)
    procs = net.processes
    white = [p.node_id for p in procs if p.status == "white"]  # type: ignore[attr-defined]
    if white:
        raise RuntimeError(f"clustering stalled; white nodes remain: {white[:5]}")
    dominators = frozenset(
        p.node_id for p in procs if p.status == "dominator"  # type: ignore[attr-defined]
    )
    dominators_of = {
        p.node_id: frozenset(p.my_dominators)  # type: ignore[attr-defined]
        for p in procs
        if p.status == "dominatee"  # type: ignore[attr-defined]
    }
    return ClusteringOutcome(
        dominators=dominators,
        dominators_of=dominators_of,
        rounds=rounds,
        stats=net.stats,
    )


def centralized_mis(udg: UnitDiskGraph, *, priority: Optional[PriorityFn] = None) -> frozenset[int]:
    """Centralized reference for the same election (for testing).

    Greedy MIS in priority order is exactly what the distributed
    protocol converges to.
    """
    chosen = priority or lowest_id_priority
    order = sorted(udg.nodes(), key=lambda u: chosen(u, udg.degree(u)))
    dominated: set[int] = set()
    mis: set[int] = set()
    for u in order:
        if u not in dominated:
            mis.add(u)
            dominated.add(u)
            dominated |= udg.neighbors(u)
    return frozenset(mis)
