"""Wu & Li's marking process — the other classic CDS construction.

The paper's reference [8] (dominating-set-based routing).  A node
marks itself when it has two neighbors that are not directly
connected; two pruning rules then shed redundant nodes:

* **Rule 1**: unmark ``v`` when some marked neighbor ``u`` with higher
  ID covers it (``N[v] ⊆ N[u]``);
* **Rule 2**: unmark ``v`` when two *adjacent* marked neighbors
  ``u, w``, both with higher IDs, jointly cover it
  (``N(v) ⊆ N(u) ∪ N(w)``).

The surviving marked nodes form a connected dominating set whenever
the UDG is connected and not complete.  Every decision reads only
2-hop-local information (each node broadcasts its neighbor list once),
so the construction is localized; the trade against the paper's
MIS+connectors pipeline — simpler protocol, larger backbone — is
quantified in ``benchmarks/bench_ablation_cds_algorithms.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph


@dataclass(frozen=True)
class WuLiOutcome:
    """Result of the marking process."""

    gateway_nodes: frozenset[int]
    cds: Graph
    #: Marked set before pruning (for the ablation's size comparison).
    marked_before_pruning: frozenset[int]

    @property
    def size(self) -> int:
        return len(self.gateway_nodes)


def _closed_neighborhood(udg: UnitDiskGraph, v: int) -> frozenset[int]:
    return udg.neighbors(v) | {v}


def initial_marking(udg: UnitDiskGraph) -> set[int]:
    """Mark nodes with two non-adjacent neighbors."""
    marked: set[int] = set()
    for v in udg.nodes():
        neighbors = sorted(udg.neighbors(v))
        if any(
            not udg.has_edge(a, b)
            for i, a in enumerate(neighbors)
            for b in neighbors[i + 1 :]
        ):
            marked.add(v)
    return marked


def apply_rule1(udg: UnitDiskGraph, marked: set[int]) -> set[int]:
    """Drop nodes whose closed neighborhood a higher-ID marked neighbor covers."""
    result = set(marked)
    for v in sorted(marked):
        nv = _closed_neighborhood(udg, v)
        for u in udg.neighbors(v):
            if u in marked and u > v and nv <= _closed_neighborhood(udg, u):
                result.discard(v)
                break
    return result


def apply_rule2(udg: UnitDiskGraph, marked: set[int]) -> set[int]:
    """Drop nodes jointly covered by two adjacent higher-ID marked neighbors."""
    result = set(marked)
    for v in sorted(marked):
        nv = udg.neighbors(v)
        candidates = sorted(
            u for u in udg.neighbors(v) if u in marked and u > v
        )
        dropped = False
        for i, u in enumerate(candidates):
            if dropped:
                break
            for w in candidates[i + 1 :]:
                if not udg.has_edge(u, w):
                    continue
                coverage = udg.neighbors(u) | udg.neighbors(w) | {u, w}
                if nv <= coverage:
                    result.discard(v)
                    dropped = True
                    break
    return result


def wu_li_cds(udg: UnitDiskGraph) -> WuLiOutcome:
    """Run the marking process with both pruning rules.

    Rule decisions use the *original* marked set (as in the paper's
    formulation, where rules fire on marked neighbors' IDs, not on the
    shrinking survivor set), so the result is order-independent.
    """
    marked = initial_marking(udg)
    survivors = apply_rule1(udg, marked) & apply_rule2(udg, marked)

    cds = Graph(udg.positions, name="WuLiCDS")
    members = sorted(survivors)
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if udg.has_edge(u, v):
                cds.add_edge(u, v)
    return WuLiOutcome(
        gateway_nodes=frozenset(survivors),
        cds=cds,
        marked_before_pruning=frozenset(marked),
    )
