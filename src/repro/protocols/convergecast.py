"""Convergecast: data aggregation to a sink over the backbone.

The paper's footnote 1 motivates everything with sensor networks
"collecting environmental data ... typically sent to one specific node
called sink."  Sending each reading separately (the unicast protocol
in :mod:`~repro.protocols.routing_protocol`) costs one transmission
per hop per reading; *convergecast* does what real sensor networks do
instead — build an aggregation tree once, then collect every node's
reading in one wave, combining values at each parent, for exactly one
transmission per node per collection round.

Two protocol phases, both on the simulator:

* **tree building** — the sink broadcasts ``TreeBuild(depth=0)``;
  every node adopts the first announcer as parent (smallest ID among
  same-round announcers, i.e. a BFS tree over the given graph) and
  re-announces with depth+1;
* **aggregation** — each node waits until every child reported, then
  sends its aggregate (its own value combined with its children's) to
  its parent in one frame.  The sink's final aggregate covers every
  connected node.

The tree is built over CDS' (backbone plus dominator links): every
node participates, and interior traffic rides the backbone — the
dominating-set-based routing structure used the way sensor networks
actually use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.sim.messages import Message
from repro.sim.network import SyncNetwork
from repro.sim.protocol import NodeProcess
from repro.sim.stats import MessageStats

TREE_BUILD = "TreeBuild"
REPORT = "Report"

#: Aggregator: combines two partial aggregates.  Must be associative
#: and commutative (sum, max, min, count...).
Aggregator = Callable[[float, float], float]


@dataclass(frozen=True)
class ConvergecastOutcome:
    """Result of one collection wave."""

    sink: int
    #: The sink's final aggregate.
    value: float
    #: How many nodes' readings reached the sink.
    contributors: int
    #: parent[node] for every node that joined the tree (sink absent).
    parent: Mapping[int, int]
    rounds: int
    stats: MessageStats

    def depth_of(self, node: int) -> int:
        """Tree depth of ``node`` (0 for the sink)."""
        depth = 0
        current = node
        while current != self.sink:
            current = self.parent[current]
            depth += 1
            if depth > len(self.parent) + 1:
                raise ValueError(f"node {node} is not attached to the tree")
        return depth


class ConvergecastProcess(NodeProcess):
    """One node building the tree and reporting its aggregate."""

    def __init__(
        self,
        node_id: int,
        position,
        neighbor_ids,
        sink: int,
        reading: float,
        aggregator: Aggregator,
    ) -> None:
        super().__init__(node_id, position, neighbor_ids)
        self.sink = sink
        self.reading = reading
        self.aggregator = aggregator
        self.parent: Optional[int] = None
        self.depth: Optional[int] = 0 if node_id == sink else None
        self._children_expected: set[int] = set()
        self._children_reported: dict[int, tuple[float, int]] = {}
        self._announced = False
        self._reported = False
        self._round_offers: list[tuple[int, int]] = []  # (depth, sender)
        self.final_value: Optional[float] = None
        self.final_contributors = 0

    # -- phase 1: tree building ------------------------------------------

    def start(self) -> None:
        if self.node_id == self.sink:
            self._announced = True
            self.broadcast(TREE_BUILD, depth=0)

    def receive(self, message: Message) -> None:
        if message.kind == TREE_BUILD:
            if self.depth is None:
                self._round_offers.append((message["depth"], message.sender))
        elif message.kind == REPORT:
            if message["parent"] == self.node_id:
                self._children_reported[message.sender] = (
                    message["value"],
                    message["contributors"],
                )
            # A neighbor's report also reveals it is NOT our child if
            # it reported elsewhere; children were registered when the
            # child adopted us (see TreeBuild handling below).

    def finish_round(self, round_index: int) -> None:
        # Adopt a parent from this round's offers (BFS: all offers in
        # one round carry the same minimal depth; break ties by ID).
        if self.depth is None and self._round_offers:
            best_depth, best_parent = min(self._round_offers)
            self.parent = best_parent
            self.depth = best_depth + 1
            self._round_offers = []
            if not self._announced:
                self._announced = True
                self.broadcast(TREE_BUILD, depth=self.depth, parent=self.parent)
        self._round_offers = []

        # Leaf detection + upward reporting: a node reports once every
        # child it heard adopting *it* has reported.
        if (
            not self._reported
            and self.depth is not None
            and self.node_id != self.sink
            and self._children_expected <= set(self._children_reported)
            and self._tree_building_settled(round_index)
        ):
            value = self.reading
            contributors = 1
            for child_value, child_count in self._children_reported.values():
                value = self.aggregator(value, child_value)
                contributors += child_count
            self._reported = True
            self.broadcast(
                REPORT,
                parent=self.parent,
                value=value,
                contributors=contributors,
            )

        if self.node_id == self.sink and self._children_expected <= set(
            self._children_reported
        ):
            value = self.reading
            contributors = 1
            for child_value, child_count in self._children_reported.values():
                value = self.aggregator(value, child_value)
                contributors += child_count
            self.final_value = value
            self.final_contributors = contributors

    def _tree_building_settled(self, round_index: int) -> bool:
        # A node can be adopted as parent one round after it announces;
        # give announcements one extra round to land before leaves
        # (nodes that heard no adoption) start reporting.
        return round_index >= (self.depth or 0) + 2

    def note_child(self, child: int) -> None:
        self._children_expected.add(child)

    @property
    def idle(self) -> bool:
        if self.depth is None:
            return True  # unreachable from the sink: nothing to do
        if self.node_id == self.sink:
            return self._children_expected <= set(self._children_reported)
        return self._reported


def run_convergecast(
    graph: Graph,
    udg: UnitDiskGraph,
    sink: int,
    readings: Optional[Mapping[int, float]] = None,
    *,
    aggregator: Aggregator = lambda a, b: a + b,
) -> ConvergecastOutcome:
    """Collect one aggregate over ``graph``'s links at the sink.

    ``graph`` supplies the tree links (CDS' in the intended use);
    ``udg`` supplies the radio (delivery still reaches all radio
    neighbors — a frame addressed up-tree is overheard, as in a real
    broadcast medium, but only tree logic consumes it).  ``readings``
    default to 1.0 per node, making the sum aggregate a live node
    count.
    """
    if readings is None:
        readings = {u: 1.0 for u in graph.nodes()}

    # The protocol communicates over the *graph* links: restrict the
    # radio to them by building a UDG-like view.  The graph is a
    # subgraph of the UDG, so using its adjacency directly is the
    # "logical topology" the paper routes on.
    procs: dict[int, ConvergecastProcess] = {}

    def factory(node_id: int, _net) -> ConvergecastProcess:
        proc = ConvergecastProcess(
            node_id,
            graph.positions[node_id],
            tuple(sorted(graph.neighbors(node_id))),
            sink,
            float(readings.get(node_id, 0.0)),
            aggregator,
        )
        procs[node_id] = proc
        return proc

    from repro.sim.radio import BroadcastRadio

    class _GraphRadio(BroadcastRadio):
        def __init__(self) -> None:
            self.udg = udg
            self.loss_rate = 0.0
            self._neighbors = [
                tuple(sorted(graph.neighbors(u))) for u in graph.nodes()
            ]

    net = SyncNetwork(udg, factory, radio=_GraphRadio())

    # Child registration: in a real radio the parent *hears* the
    # child's adoption broadcast (it is a graph neighbor); register at
    # submit time, one round early, which only makes the parent wait
    # for every true child.
    original_submit = net.submit

    def submit_with_registration(message):
        if message.kind == TREE_BUILD and message.get("parent") is not None:
            procs[message["parent"]].note_child(message.sender)
        original_submit(message)

    net.submit = submit_with_registration  # type: ignore[method-assign]

    rounds = net.run(max_rounds=4 * graph.node_count + 32)

    sink_proc = procs[sink]
    parent = {
        node: proc.parent
        for node, proc in procs.items()
        if proc.parent is not None
    }
    return ConvergecastOutcome(
        sink=sink,
        value=sink_proc.final_value if sink_proc.final_value is not None else float(
            readings.get(sink, 0.0)
        ),
        contributors=sink_proc.final_contributors or 1,
        parent=parent,
        rounds=rounds,
        stats=net.stats,
    )
