"""Direct-computation fast path for Algorithms 2 and 3 (oracle mode).

Companion to :mod:`repro.protocols.cds_fast`: computes the fixed point
of the distributed localized-Delaunay protocol
(:mod:`repro.protocols.ldel_protocol`) without running the message
simulator, bit-identically — same PLDel graph, same confirmed
triangles, same Gabriel edges, same round count, and the same per-node
message ledger.

The protocol's schedule is rigid (locations → proposals → responses →
structure → prune → confirm, one phase per round), so every message is
a pure function of the geometry:

* ``Location``, ``Structure`` and ``Kept`` are one broadcast per node,
  unconditionally.
* ``Proposal`` — node ``u`` proposes exactly the incident triangles of
  ``Del(N_1(u))`` with unit sides and a >= 60° angle at ``u``, which is
  precisely :func:`repro.topology.ldel._node_candidates` (the two
  paths share ``delaunay`` on the same sorted point list, so
  tie-breaking matches even on degenerate inputs).
* ``Accept``/``Reject`` — each non-proposing vertex of a proposed
  triangle responds once, positively exactly when the circumcircle is
  empty of its own 1-hop neighborhood (a proposal implies acceptance,
  so proposers never respond).
* the prune/confirm phases yield the same surviving set as the
  centralized :func:`repro.topology.ldel.planarize_ldel1` — the
  equivalence the protocol module's test suite already pins down.

Round count: five phases after the location round, quiescing with the
last ``Kept`` delivery — 5 rounds for any non-empty graph, 0 for an
empty one.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.ldel_protocol import LDelProtocolOutcome, Triangle
from repro.sim.messages import (
    ACCEPT,
    KEPT,
    LOCATION,
    PROPOSAL,
    REJECT,
    STRUCTURE,
)
from repro.sim.stats import MessageStats
from repro.topology.construction_cache import ConstructionCache
from repro.topology.gabriel import gabriel_graph
from repro.topology.ldel import LDelResult, _node_candidates, planarize_ldel1

__all__ = ["fast_ldel_protocol"]


def fast_ldel_protocol(
    udg: UnitDiskGraph,
    *,
    stats: Optional[MessageStats] = None,
    cache: Optional[ConstructionCache] = None,
) -> LDelProtocolOutcome:
    """Compute the LDel protocol's fixed point directly.

    Bit-identical to
    :func:`~repro.protocols.ldel_protocol.run_ldel_protocol` on every
    field.  Pass a shared ``cache`` to reuse neighborhoods and
    circumcircles with surrounding construction stages.
    """
    ledger = stats if stats is not None else MessageStats()
    n = udg.node_count
    cache = ConstructionCache.for_udg(udg, cache)
    pos = udg.positions
    r_sq = udg.radius * udg.radius

    # Phase 1-2: locations out, then every node proposes its local
    # Delaunay triangles (Algorithm 2's angle-disciplined generation).
    proposers: dict[Triangle, set[int]] = {}
    for u in udg.nodes():
        ledger.record(u, LOCATION)
        local = sorted(cache.k_hop(u, 1))
        cands = set(_node_candidates(pos, r_sq, u, local))
        if cands:
            ledger.record(u, PROPOSAL, len(cands))
            for t in cands:
                proposers.setdefault(t, set()).add(u)

    # Phase 3: each non-proposing vertex answers the first proposal it
    # hears — Accept exactly when the circumcircle is empty of its own
    # neighborhood.  A triangle is accepted when all three verdicts are
    # positive (proposing counts as accepting).
    accepted: list[Triangle] = []
    for t in sorted(proposers):
        circle = cache.circumcircle_of(t)
        verdict_all = True
        for v in t:
            if v in proposers[t]:
                continue
            witnesses = udg.neighbors(v) - set(t)
            mine = circle is not None and not any(
                circle.contains(pos[x]) for x in witnesses
            )
            ledger.record(v, ACCEPT if mine else REJECT)
            verdict_all = verdict_all and mine
        if verdict_all:
            accepted.append(t)

    # Phases 4-6: structure exchange, prune, confirm.  One Structure
    # and one Kept broadcast per node; the surviving triangle set is
    # the centralized Algorithm 3 replay on the accepted set.
    for u in udg.nodes():
        ledger.record(u, STRUCTURE)
        ledger.record(u, KEPT)

    gabriel = gabriel_graph(udg, cache=cache)
    ldel1 = LDelResult(
        graph=Graph(udg.positions, gabriel.edges(), name="LDel1"),
        triangles=tuple(accepted),
        gabriel_edges=gabriel.edge_set(),
        k=1,
    )
    pruned = planarize_ldel1(udg, ldel1, cache=cache)
    graph = Graph(udg.positions, pruned.graph.edges(), name="PLDel")
    return LDelProtocolOutcome(
        graph=graph,
        triangles=pruned.triangles,
        gabriel_edges=pruned.gabriel_edges,
        rounds=5 if n else 0,
        stats=ledger,
    )
