"""Distributed LDel^2 — the planar-by-construction alternative.

Li et al. prove ``LDel^k`` is planar for ``k >= 2``; the paper picks
``LDel^1`` + planarization instead because gathering 2-hop
neighborhoods costs more communication.  This module implements the
road not taken, so the trade-off is measurable:

* round 1 — every node broadcasts its location;
* round 2 — every node broadcasts its *neighbor list with positions*
  (the 2-hop collection step; one message, but a large one);
* round 3 — every node proposes its local Delaunay triangles whose
  circumcircle is empty of its **2-hop** neighborhood (angle >= 60
  degrees at the proposer, as in Algorithm 2);
* round 4 — the other two vertices accept or reject against *their*
  2-hop neighborhoods; a triangle stands when all three agree.

The result equals the centralized ``LDel^2``
(:func:`repro.topology.ldel.local_delaunay_graph` with ``k=2``) —
asserted in the tests — and is planar with no pruning phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.geometry.circle import circumcircle, gabriel_disk_empty
from repro.geometry.primitives import Point, angle_at, dist_sq
from repro.geometry.triangulation import delaunay
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.sim.messages import ACCEPT, LOCATION, PROPOSAL, REJECT, Message
from repro.sim.network import SyncNetwork
from repro.sim.protocol import NodeProcess
from repro.sim.stats import MessageStats

NEIGHBORHOOD = "Neighborhood"

Triangle = tuple[int, int, int]


@dataclass(frozen=True)
class LDel2Outcome:
    """Result of the distributed LDel^2 run."""

    graph: Graph
    triangles: tuple[Triangle, ...]
    gabriel_edges: frozenset[tuple[int, int]]
    rounds: int
    stats: MessageStats


class LDel2Process(NodeProcess):
    """One node running the 2-hop localized Delaunay protocol."""

    def __init__(self, node_id, position: Point, neighbor_ids, radius: float) -> None:
        super().__init__(node_id, position, neighbor_ids)
        self.radius = radius
        self._neighbor_pos: dict[int, Point] = {}
        #: Everything within 2 hops (including 1-hop), with positions.
        self._two_hop_pos: dict[int, Point] = {}
        self.gabriel_edges: set[tuple[int, int]] = set()
        self._verdicts: dict[Triangle, dict[int, Optional[bool]]] = {}
        self.accepted: set[Triangle] = set()
        self._phase = "locations"
        self._done = False

    def _pos_of(self, v: int) -> Point:
        if v == self.node_id:
            return self.position
        return self._neighbor_pos[v]

    def _circumcircle_empty_of_two_hop(self, t: Triangle) -> bool:
        pts = tuple(self._pos_of(v) for v in t)
        circle = circumcircle(*pts)
        if circle is None:
            return False
        for w, pw in self._two_hop_pos.items():
            if w in t:
                continue
            if circle.contains(pw):
                return False
        return True

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self.broadcast(LOCATION, x=self.position[0], y=self.position[1])

    def receive(self, message: Message) -> None:
        kind = message.kind
        if kind == LOCATION:
            p = Point(message["x"], message["y"])
            self._neighbor_pos[message.sender] = p
            self._two_hop_pos[message.sender] = p
        elif kind == NEIGHBORHOOD:
            for node, (x, y) in message["neighbors"]:
                if node != self.node_id and node not in self._neighbor_pos:
                    self._two_hop_pos[node] = Point(x, y)
        elif kind == PROPOSAL:
            t: Triangle = tuple(message["triangle"])  # type: ignore[assignment]
            verdicts = self._verdicts.setdefault(t, {v: None for v in t})
            verdicts[message.sender] = True
            if self.node_id in t and verdicts.get(self.node_id) is None:
                mine = self._circumcircle_empty_of_two_hop(t)
                verdicts[self.node_id] = mine
                self.broadcast(ACCEPT if mine else REJECT, triangle=t)
        elif kind in (ACCEPT, REJECT):
            t = tuple(message["triangle"])  # type: ignore[assignment]
            if self.node_id in t or t in self._verdicts:
                verdicts = self._verdicts.setdefault(t, {v: None for v in t})
                if message.sender in verdicts:
                    verdicts[message.sender] = kind == ACCEPT

    def finish_round(self, round_index: int) -> None:
        if self._phase == "locations":
            # 2-hop collection: ship my neighbor table.
            payload = [
                (v, (p[0], p[1])) for v, p in sorted(self._neighbor_pos.items())
            ]
            self.broadcast(NEIGHBORHOOD, neighbors=payload)
            self._phase = "neighborhoods"
        elif self._phase == "neighborhoods":
            self._compute_and_propose()
            self._phase = "responses"
        elif self._phase == "responses":
            self._phase = "tally"
        elif self._phase == "tally":
            for t, verdicts in self._verdicts.items():
                if self.node_id in t and all(verdicts.get(v) for v in t):
                    self.accepted.add(t)
            self._phase = "done"
            self._done = True

    def _compute_and_propose(self) -> None:
        # Gabriel edges are unchanged by k (blockers are 1-hop-local).
        for v, pv in self._neighbor_pos.items():
            if gabriel_disk_empty(self.position, pv, self._neighbor_pos.values()):
                self.gabriel_edges.add(_edge(self.node_id, v))

        ids = sorted(self._neighbor_pos) + [self.node_id]
        ids.sort()
        if len(ids) < 3:
            return
        pts = [self._pos_of(i) for i in ids]
        r_sq = self.radius * self.radius
        tri = delaunay(pts)
        for a, b, c in tri.triangles:
            t: Triangle = tuple(sorted((ids[a], ids[b], ids[c])))  # type: ignore[assignment]
            if self.node_id not in t:
                continue
            p0, p1, p2 = (self._pos_of(v) for v in t)
            if (
                dist_sq(p0, p1) > r_sq
                or dist_sq(p1, p2) > r_sq
                or dist_sq(p0, p2) > r_sq
            ):
                continue
            others = [v for v in t if v != self.node_id]
            try:
                ang = angle_at(
                    self.position, self._pos_of(others[0]), self._pos_of(others[1])
                )
            except ValueError:
                continue
            if ang < math.pi / 3.0 - 1e-12:
                continue
            if not self._circumcircle_empty_of_two_hop(t):
                continue
            verdicts = self._verdicts.setdefault(t, {v: None for v in t})
            if verdicts.get(self.node_id) is None:
                verdicts[self.node_id] = True
                self.broadcast(PROPOSAL, triangle=t)

    @property
    def idle(self) -> bool:
        return self._done


def _edge(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def run_ldel2_protocol(
    udg: UnitDiskGraph, *, stats: Optional[MessageStats] = None
) -> LDel2Outcome:
    """Run the distributed LDel^2 construction on ``udg``."""
    net = SyncNetwork(
        udg,
        lambda node_id, _net: LDel2Process(
            node_id,
            udg.positions[node_id],
            tuple(sorted(udg.neighbors(node_id))),
            udg.radius,
        ),
        stats=stats,
    )
    rounds = net.run(max_rounds=16)
    gabriel: set[tuple[int, int]] = set()
    confirmed: set[Triangle] = set()
    for proc in net.processes:
        gabriel |= proc.gabriel_edges  # type: ignore[attr-defined]
        confirmed |= proc.accepted  # type: ignore[attr-defined]
    graph = Graph(udg.positions, gabriel, name="LDel2")
    for u, v, w in confirmed:
        graph.add_edge(u, v)
        graph.add_edge(v, w)
        graph.add_edge(u, w)
    # Same degenerate-cocircularity tie-break as PLDel (see
    # repro.topology.ldel.resolve_degenerate_crossings).
    from repro.topology.ldel import resolve_degenerate_crossings

    resolve_degenerate_crossings(graph)
    return LDel2Outcome(
        graph=graph,
        triangles=tuple(sorted(confirmed)),
        gabriel_edges=frozenset(gabriel),
        rounds=rounds,
        stats=net.stats,
    )
