"""Phase 2 — Algorithm 1: electing connectors (gateways).

Connects every pair of dominators that are 2 or 3 hops apart in the
UDG, which suffices for a connected CDS (the dominator graph with
edges between dominators at most 3 hops apart is connected whenever
the UDG is).  Faithful to the paper's Algorithm 1 with smallest-ID
elections:

* a dominatee ``w`` with two dominators ``u, v`` proposes itself
  (``TryConnector`` slot 0) and wins when no same-proposal neighbor
  has a smaller ID — at most two winners per pair, one per side of
  the lune (paper's "at most 2 nodes ... cannot hear each other");
* a dominatee ``w`` with dominator ``u`` and a 2-hop dominator ``v``
  proposes itself as the *first* node of a 3-hop path (slot 1);
  winners announce ``IamConnector``;
* a dominatee ``x`` of ``v`` hearing such an announcement from its
  neighbor ``w`` proposes itself as the *second* node (slot 2);
  winners complete the path ``u–w–x–v``.

Knowledge seeding: Algorithm 1 step 1 re-broadcasts ``IamDominatee``,
but in the combined pipeline those exact broadcasts already happened
during clustering, and every node retained what it heard.  We seed
each process with that (strictly 1-hop-local) knowledge instead of
re-sending, so message counts reflect the combined protocol.  The
paper's standalone accounting (one extra ``IamDominatee`` per
dominatee–dominator pair) can be enabled with
``rebroadcast_dominatees=True``.

The election rule is pluggable for the ablation benchmark:
``smallest-id`` (default, Alzoubi-style) or ``first-response``
(paper's remark that "we can pick any node that comes first to the
notice" — modeled as smallest hop-distance jitter, i.e. an arbitrary
but deterministic pick that skips the ID-collection wait).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.graphs.udg import UnitDiskGraph
from repro.protocols.clustering import ClusteringOutcome
from repro.sim.messages import IAM_CONNECTOR, IAM_DOMINATEE, TRY_CONNECTOR, Message
from repro.sim.network import SyncNetwork
from repro.sim.protocol import NodeProcess
from repro.sim.stats import MessageStats

#: (dominator_u, dominator_v, slot) — the election arena key.
ProposalKey = tuple[int, int, int]

SLOT_COMMON = 0  # sole connector for a 2-hop dominator pair
SLOT_FIRST = 1  # first node on a 3-hop dominator path
SLOT_SECOND = 2  # second node on a 3-hop dominator path


@dataclass(frozen=True)
class ConnectorOutcome:
    """Result of Algorithm 1."""

    connectors: frozenset[int]
    cds_edges: frozenset[tuple[int, int]]
    rounds: int
    stats: MessageStats


@dataclass
class _LocalKnowledge:
    """What one node learned during clustering (1-hop-local only)."""

    role: str  # "dominator" | "dominatee"
    my_dominators: frozenset[int] = frozenset()
    #: 2-hop dominators: dominator id -> via-neighbors that announced it.
    two_hop_dominators: Mapping[int, frozenset[int]] = field(default_factory=dict)


class ConnectorProcess(NodeProcess):
    """One node's part in the connector election."""

    def __init__(
        self,
        node_id: int,
        position,
        neighbor_ids: tuple[int, ...],
        knowledge: _LocalKnowledge,
        *,
        rebroadcast_dominatees: bool,
        election: str,
    ) -> None:
        super().__init__(node_id, position, neighbor_ids)
        self.knowledge = knowledge
        self._rebroadcast = rebroadcast_dominatees
        self._election = election
        #: proposals heard this protocol: key -> neighbor ids that sent it.
        self._rivals: dict[ProposalKey, set[int]] = {}
        #: keys this node itself proposed, with the round they were sent.
        self._my_proposals: dict[ProposalKey, int] = {}
        #: the not-yet-resolved subset of ``_my_proposals``, in proposal
        #: order — so each finish_round touches only live elections
        #: instead of rescanning every proposal ever made.
        self._unresolved: dict[ProposalKey, int] = {}
        #: slot-2 context: (u, v) -> first connector heard (smallest id).
        self._first_connector: dict[tuple[int, int], int] = {}
        self.claims: list[tuple[int, int, int, int]] = []  # (u, v, slot, first)
        self.cds_edges: set[tuple[int, int]] = set()
        self._pending_second: list[tuple[int, int]] = []

    # -- helpers --------------------------------------------------------

    def _propose(self, u: int, v: int, slot: int) -> None:
        key = (u, v, slot)
        if key in self._my_proposals:
            return
        self._my_proposals[key] = 0
        self._unresolved[key] = 0
        self.broadcast(TRY_CONNECTOR, u=u, v=v, slot=slot)

    def _won(self, key: ProposalKey) -> bool:
        rivals = self._rivals.get(key, set())
        if self._election == "smallest-id":
            return all(self.node_id < rival for rival in rivals)
        # first-response: an arbitrary deterministic winner that did not
        # wait to collect rival IDs.  Modeled as: claim unless a rival
        # already *claimed* (we only see claims one round later, so all
        # concurrent proposers claim) — the redundancy the paper
        # accepts in exchange for not postponing selection.
        return True

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        know = self.knowledge
        if know.role != "dominatee":
            return
        doms = sorted(know.my_dominators)
        if self._rebroadcast:
            for dom in doms:
                self.broadcast(IAM_DOMINATEE, dominator=dom)
        # Slot 0: I am a common dominatee of u and v.
        for i, u in enumerate(doms):
            for v in doms[i + 1 :]:
                self._propose(u, v, SLOT_COMMON)
        # Slot 1: my dominator u, a 2-hop dominator v.
        two_hop = sorted(know.two_hop_dominators)
        for u in doms:
            for v in two_hop:
                if v != u and v not in know.my_dominators:
                    self._propose(u, v, SLOT_FIRST)

    def receive(self, message: Message) -> None:
        if message.kind == TRY_CONNECTOR:
            key = (message["u"], message["v"], message["slot"])
            self._rivals.setdefault(key, set()).add(message.sender)
        elif message.kind == IAM_CONNECTOR:
            u, v, slot = message["u"], message["v"], message["slot"]
            if slot == SLOT_FIRST:
                self._note_first_connector(u, v, message.sender)
            # Record the edges this claim certifies (every receiver
            # learns them; the orchestrator reads them off the claims).

    def _note_first_connector(self, u: int, v: int, first: int) -> None:
        """A neighbor claimed to be the first node on the path u -> v."""
        know = self.knowledge
        if know.role != "dominatee":
            return
        if v not in know.my_dominators or u in know.my_dominators:
            return
        pair = (u, v)
        if pair not in self._first_connector or first < self._first_connector[pair]:
            self._first_connector[pair] = first
        self._pending_second.append(pair)

    def finish_round(self, round_index: int) -> None:
        # Act on newly heard first-connector claims: propose as second.
        for u, v in self._pending_second:
            self._propose(u, v, SLOT_SECOND)
        self._pending_second = []

        # Resolve elections one full round after proposing (all rival
        # proposals for a key are sent in the same round we sent ours,
        # so they have all arrived by now).
        resolved: list[ProposalKey] = []
        for key, sent_round in self._unresolved.items():
            if sent_round == 0:
                # Record the actual send round on first visit.
                self._unresolved[key] = round_index
                self._my_proposals[key] = round_index
                continue
            resolved.append(key)
            u, v, slot = key
            self._my_proposals[key] = -1
            if not self._won(key):
                continue
            first = self._first_connector.get((u, v), -1) if slot == SLOT_SECOND else -1
            self.claims.append((u, v, slot, first))
            self.broadcast(IAM_CONNECTOR, u=u, v=v, slot=slot, first=first)
            if slot == SLOT_COMMON:
                self.cds_edges.add(_edge(u, self.node_id))
                self.cds_edges.add(_edge(self.node_id, v))
            elif slot == SLOT_FIRST:
                self.cds_edges.add(_edge(u, self.node_id))
            else:
                self.cds_edges.add(_edge(first, self.node_id))
                self.cds_edges.add(_edge(self.node_id, v))
        for key in resolved:
            del self._unresolved[key]

    @property
    def idle(self) -> bool:
        return not self._pending_second and not self._unresolved


def _edge(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def derive_local_knowledge(
    udg: UnitDiskGraph, clustering: ClusteringOutcome
) -> list[_LocalKnowledge]:
    """Seed each node with what it heard during the clustering phase.

    Strictly 1-hop information: a node's own role and dominators, and
    for each dominatee neighbor ``w``, the dominators ``w`` announced
    via ``IamDominatee`` — which is how ``2HopDominators`` gets filled.
    """
    knowledge: list[_LocalKnowledge] = []
    dominators = clustering.dominators
    doms_of = clustering.dominators_of
    empty: frozenset[int] = frozenset()
    for x in udg.nodes():
        if x in dominators:
            # Dominators sit out the election: start() returns before
            # proposing and first-connector claims are ignored, so
            # their 2-hop map is never read — skip computing it.
            knowledge.append(_LocalKnowledge(role="dominator"))
            continue
        my_doms = doms_of.get(x, empty)
        two_hop: dict[int, set[int]] = {}
        adjacent = udg.neighbors(x)
        for w in adjacent:
            for d in doms_of.get(w, empty):
                if d != x and d not in adjacent:
                    two_hop.setdefault(d, set()).add(w)
        knowledge.append(
            _LocalKnowledge(
                role="dominatee",
                my_dominators=my_doms,
                two_hop_dominators={d: frozenset(v) for d, v in two_hop.items()},
            )
        )
    return knowledge


def run_connectors(
    udg: UnitDiskGraph,
    clustering: ClusteringOutcome,
    *,
    rebroadcast_dominatees: bool = False,
    election: str = "smallest-id",
    stats: Optional[MessageStats] = None,
) -> ConnectorOutcome:
    """Run Algorithm 1 on top of a clustering outcome."""
    if election not in ("smallest-id", "first-response"):
        raise ValueError(f"unknown election rule {election!r}")
    knowledge = derive_local_knowledge(udg, clustering)
    net = SyncNetwork(
        udg,
        lambda node_id, _net: ConnectorProcess(
            node_id,
            udg.positions[node_id],
            tuple(sorted(udg.neighbors(node_id))),
            knowledge[node_id],
            rebroadcast_dominatees=rebroadcast_dominatees,
            election=election,
        ),
        stats=stats,
    )
    rounds = net.run(max_rounds=64)
    connectors: set[int] = set()
    edges: set[tuple[int, int]] = set()
    for proc in net.processes:
        if proc.claims:  # type: ignore[attr-defined]
            connectors.add(proc.node_id)
        edges |= proc.cds_edges  # type: ignore[attr-defined]
    return ConnectorOutcome(
        connectors=frozenset(connectors),
        cds_edges=frozenset(edges),
        rounds=rounds,
        stats=net.stats,
    )
