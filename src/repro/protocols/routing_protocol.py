"""Dominating-set-based routing as a message-passing protocol.

The routing layer in :mod:`repro.routing` computes paths centrally for
analysis; this module runs the same procedure the way a deployment
would — packets as radio frames, every forwarding decision made by a
node from strictly local state acquired during construction:

* its own role and position, and its radio neighbors' positions;
* its dominators (for dominatees) — learned from ``IamDominator``;
* its LDel(ICDS) backbone neighbors with positions — known to backbone
  nodes from the construction protocol's exchanges;
* the destination's position, carried in the packet header (the
  paper's location-service assumption).

Forwarding, exactly GPSR over the backbone: deliver directly when the
destination is in radio range; a dominatee hands the packet to its
smallest dominator; backbone nodes forward greedily toward the
destination over backbone links, entering *perimeter mode* at local
minima — with all face-walk state (mode, stuck position, face entry
point, arrival edge, first face edge) carried in the packet header, so
nodes stay stateless, as in Karp & Kung's design.

Unicast is emulated over the broadcast radio: every neighbor hears
each frame, only the addressed node processes it — so the ledger
charges exactly one transmission per forwarding hop, the radio model's
true cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.geometry.primitives import Point, dist, dist_sq
from repro.routing.face import _direction, _rhr_next_positions, _segment_crossing_point
from repro.sim.messages import Message
from repro.sim.network import SyncNetwork
from repro.sim.protocol import NodeProcess
from repro.sim.stats import MessageStats

if TYPE_CHECKING:  # pragma: no cover - annotation-only dependency
    from repro.core.spanner import BackboneResult

DATA = "Data"


@dataclass(frozen=True)
class PacketOutcome:
    """What happened to one injected packet."""

    source: int
    target: int
    delivered: bool
    path: tuple[int, ...]

    @property
    def hops(self) -> int:
        return max(len(self.path) - 1, 0)

    @property
    def transmissions(self) -> int:
        return self.hops


@dataclass
class _RoutingState:
    """One node's local routing table, built from construction output."""

    role: str  # "dominatee" | "backbone"
    dominators: tuple[int, ...]
    #: LDel(ICDS) neighbors with positions (backbone nodes only).
    backbone_neighbors: dict[int, Point] = field(default_factory=dict)


class RoutingProcess(NodeProcess):
    """Forwards DATA frames using only local state."""

    def __init__(
        self,
        node_id: int,
        position: Point,
        neighbor_ids,
        neighbor_pos: dict[int, Point],
        state: _RoutingState,
        ttl: int,
    ) -> None:
        super().__init__(node_id, position, neighbor_ids)
        self.neighbor_pos = neighbor_pos
        self.state = state
        self.ttl = ttl
        self.delivered_packets: list[int] = []
        self.dropped_packets: list[tuple[int, str]] = []
        self.outbox_at_start: list[tuple[int, int, Point]] = []

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        for packet_id, target, target_pos in self.outbox_at_start:
            header = {
                "packet_id": packet_id,
                "target": target,
                "target_pos": (target_pos[0], target_pos[1]),
                "hops": 0,
                "mode": "greedy",
                "stuck_pos": None,
                "face_entry": None,
                "came_from": -1,
                "first_edge": None,
            }
            self._forward(header)

    def receive(self, message: Message) -> None:
        if message.kind != DATA or message["next_hop"] != self.node_id:
            return
        header = {key: message[key] for key in (
            "packet_id", "target", "target_pos", "hops", "mode",
            "stuck_pos", "face_entry", "came_from", "first_edge",
        )}
        header["hops"] += 1
        header["came_from"] = message.sender
        if header["target"] == self.node_id:
            self.delivered_packets.append(header["packet_id"])
            return
        self._forward(header)

    # -- forwarding (strictly local) --------------------------------------

    def _forward(self, header: dict[str, Any]) -> None:
        if header["hops"] > self.ttl:
            self.dropped_packets.append((header["packet_id"], "ttl"))
            return
        target = header["target"]
        target_pos = Point(*header["target_pos"])

        # Direct delivery whenever the destination is in radio range.
        if target in self.neighbor_pos:
            self._transmit(header, target)
            return

        if self.state.role == "dominatee":
            if not self.state.dominators:
                self.dropped_packets.append((header["packet_id"], "no-dominator"))
                return
            self._transmit(header, min(self.state.dominators))
            return

        if header["mode"] == "greedy":
            nxt = self._greedy_next(target_pos)
            if nxt is not None:
                self._transmit(header, nxt)
                return
            # Local minimum: enter perimeter mode.
            header["mode"] = "perimeter"
            header["stuck_pos"] = (self.position[0], self.position[1])
            header["face_entry"] = (self.position[0], self.position[1])
            header["came_from"] = -1
            header["first_edge"] = None

        self._perimeter_step(header, target_pos)

    def _greedy_next(self, target_pos: Point) -> Optional[int]:
        best = None
        best_d = dist_sq(self.position, target_pos)
        for v, pv in sorted(self.state.backbone_neighbors.items()):
            d = dist_sq(pv, target_pos)
            if d < best_d:
                best, best_d = v, d
        return best

    def _perimeter_step(self, header: dict[str, Any], target_pos: Point) -> None:
        stuck_pos = Point(*header["stuck_pos"])
        if dist(self.position, target_pos) < dist(stuck_pos, target_pos):
            # Closer than the point where greedy failed: resume greedy.
            header["mode"] = "greedy"
            header["stuck_pos"] = None
            header["face_entry"] = None
            header["first_edge"] = None
            nxt = self._greedy_next(target_pos)
            if nxt is not None:
                self._transmit(header, nxt)
                return
            # Degenerate: still a minimum; re-enter perimeter here.
            header["mode"] = "perimeter"
            header["stuck_pos"] = (self.position[0], self.position[1])
            header["face_entry"] = (self.position[0], self.position[1])
            header["came_from"] = -1
            header["first_edge"] = None

        face_entry = Point(*header["face_entry"])
        came_from = header["came_from"]
        neighbors = self.state.backbone_neighbors
        guard = 0
        while guard <= len(neighbors) + 2:
            guard += 1
            if came_from >= 0 and came_from in neighbors:
                reference = _direction(self.position, neighbors[came_from])
                exclude = came_from
            else:
                reference = _direction(self.position, target_pos)
                exclude = None
            nxt = _rhr_next_positions(self.position, neighbors, reference, exclude)
            if nxt is None:
                self.dropped_packets.append((header["packet_id"], "stuck"))
                return
            crossing = _segment_crossing_point(
                self.position, neighbors[nxt], face_entry, target_pos
            )
            if (
                crossing is not None
                and dist_sq(crossing, target_pos)
                < dist_sq(face_entry, target_pos) - 1e-12
            ):
                face_entry = crossing
                header["face_entry"] = (crossing[0], crossing[1])
                came_from = -1
                header["first_edge"] = None
                continue
            edge = [self.node_id, nxt]
            if header["first_edge"] is None:
                header["first_edge"] = edge
            elif list(header["first_edge"]) == edge:
                self.dropped_packets.append((header["packet_id"], "loop"))
                return
            self._transmit(header, nxt)
            return
        self.dropped_packets.append((header["packet_id"], "face-guard"))

    def _transmit(self, header: dict[str, Any], next_hop: int) -> None:
        self.broadcast(DATA, next_hop=next_hop, **header)


def run_routing_protocol(
    result: BackboneResult,
    packets: list[tuple[int, int]],
    *,
    stats: Optional[MessageStats] = None,
) -> tuple[list[PacketOutcome], MessageStats]:
    """Inject ``packets`` (source, target) and run to quiescence."""
    udg = result.udg
    states = _build_states(result)
    ttl = 8 * udg.node_count + 64
    procs: dict[int, RoutingProcess] = {}

    def factory(node_id: int, _net: SyncNetwork) -> RoutingProcess:
        neighbor_pos = {
            v: udg.positions[v] for v in sorted(udg.neighbors(node_id))
        }
        proc = RoutingProcess(
            node_id,
            udg.positions[node_id],
            tuple(sorted(udg.neighbors(node_id))),
            neighbor_pos,
            states[node_id],
            ttl,
        )
        procs[node_id] = proc
        return proc

    net = SyncNetwork(udg, factory, stats=stats)
    for packet_id, (source, target) in enumerate(packets):
        if source == target:
            continue
        procs[source].outbox_at_start.append(
            (packet_id, target, udg.positions[target])
        )
    net.run(max_rounds=ttl + 8)

    paths = _reconstruct_paths(net, packets)
    outcomes: list[PacketOutcome] = []
    for packet_id, (source, target) in enumerate(packets):
        if source == target:
            outcomes.append(
                PacketOutcome(source, target, True, (source,))
            )
            continue
        delivered = packet_id in procs[target].delivered_packets
        outcomes.append(
            PacketOutcome(
                source=source,
                target=target,
                delivered=delivered,
                path=paths.get(packet_id, (source,)),
            )
        )
    return outcomes, net.stats


def _build_states(result: BackboneResult) -> list[_RoutingState]:
    udg = result.udg
    states: list[_RoutingState] = []
    for node in udg.nodes():
        role = result.role_of(node)
        backbone_neighbors = {
            v: udg.positions[v] for v in sorted(result.ldel_icds.neighbors(node))
        }
        states.append(
            _RoutingState(
                role="dominatee" if role == "dominatee" else "backbone",
                dominators=tuple(sorted(result.dominators_of(node))),
                backbone_neighbors=backbone_neighbors,
            )
        )
    return states


def _reconstruct_paths(
    net: SyncNetwork, packets: list[tuple[int, int]]
) -> dict[int, tuple[int, ...]]:
    """Rebuild each packet's path from the DATA frames actually sent."""
    frames: dict[int, list[tuple[int, int, int]]] = {}
    for message in net.sent_log:
        if message.kind != DATA:
            continue
        frames.setdefault(message["packet_id"], []).append(
            (message["hops"], message.sender, message["next_hop"])
        )
    paths: dict[int, tuple[int, ...]] = {}
    for packet_id, (source, _target) in enumerate(packets):
        ordered = sorted(frames.get(packet_id, []))
        path = [source]
        for _h, sender, next_hop in ordered:
            if sender == path[-1]:
                path.append(next_hop)
        paths[packet_id] = tuple(path)
    return paths
