"""Direct-computation fast path for the CDS stage (oracle mode).

The message-passing protocols in :mod:`repro.protocols.clustering` and
:mod:`repro.protocols.connectors` are deterministic: on a lossless
synchronous radio their outcome is a pure function of the UDG and the
priority/election rules.  This module computes that fixed point
directly — no :class:`~repro.sim.network.SyncNetwork`, no per-round
replay — and reproduces the protocol results *bit-identically*: the
same dominator and connector sets, the same certified CDS edges, the
same round counts, and the same per-node/per-kind message ledgers the
communication-cost figures are drawn from.

Why this is sound (and what the equivalence suite pins down):

* **Clustering** converges to the greedy maximal independent set in
  priority order: a node elects itself exactly when every neighbor of
  smaller-or-equal priority has left the white set, so processing
  nodes as an event cascade (election → domination → unblock)
  reproduces both the membership and the round each event lands in.
  The protocol's timeline is ``elect at T → IamDominator delivered at
  T+1 → first IamDominatee delivered at T+2``, which is the recurrence
  :func:`fast_clustering` replays.
* **Connectors** (Algorithm 1) resolve each ``(u, v, slot)`` arena one
  full round after proposing; under ``smallest-id`` the winners are
  exactly the local minima of the proposer conflict graph, and under
  ``first-response`` every proposer wins.  Slot-2 proposals are
  triggered by slot-1 claims, all of which are broadcast in the same
  round — so the ``first`` connector a slot-2 winner pairs with is the
  smallest adjacent slot-1 winner.

The protocol path stays authoritative: it is the executable model of
the paper (message traces, loss/async variants).  This path is the
serving-layer implementation, held bit-identical to it by
``tests/test_cds_fast.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.udg import UnitDiskGraph
from repro.protocols.clustering import (
    ClusteringOutcome,
    PriorityFn,
    lowest_id_priority,
)
from repro.protocols.connectors import (
    SLOT_COMMON,
    SLOT_FIRST,
    ConnectorOutcome,
    _edge,
)
from repro.sim.messages import (
    HELLO,
    IAM_CONNECTOR,
    IAM_DOMINATEE,
    IAM_DOMINATOR,
    TRY_CONNECTOR,
)
from repro.sim.stats import MessageStats

__all__ = ["fast_clustering", "fast_connectors"]

_WHITE, _DOMINATOR, _DOMINATEE = 0, 1, 2


def fast_clustering(
    udg: UnitDiskGraph,
    *,
    priority: Optional[PriorityFn] = None,
    stats: Optional[MessageStats] = None,
) -> ClusteringOutcome:
    """Compute the clustering protocol's fixed point directly.

    Bit-identical to :func:`~repro.protocols.clustering.run_clustering`
    on every field: dominators, ``dominators_of``, round count, and
    message ledger.  Raises :class:`RuntimeError` when the protocol
    would stall (adjacent priority ties that never get dominated).
    """
    chosen = priority or lowest_id_priority
    ledger = stats if stats is not None else MessageStats()
    n = udg.node_count
    if n == 0:
        return ClusteringOutcome(frozenset(), {}, 0, ledger)

    neighbors = [sorted(udg.neighbors(x)) for x in range(n)]
    pri = [chosen(x, len(neighbors[x])) for x in range(n)]
    for x in range(n):
        ledger.record(x, HELLO)

    # A neighbor w blocks x while white iff not (pri[x] < pri[w]); x
    # elects at the finish of the first round with no live blockers.
    blockers = [
        sum(1 for w in nbrs if not (pri[x] < pri[w]))
        for x, nbrs in enumerate(neighbors)
    ]
    status = [_WHITE] * n
    white_count = n
    dominators: list[int] = []
    elected_round: dict[int, int] = {}
    doms_of: dict[int, set[int]] = {}
    #: round -> nodes whose IamDominator arrives that round.
    deliver_dominator: dict[int, list[int]] = {}
    #: round -> dominatees whose first IamDominatee arrives that round.
    deliver_dominatee: dict[int, list[int]] = {}

    def unblock(w: int, newly: list[int]) -> None:
        for y in neighbors[w]:
            if not (pri[y] < pri[w]):
                blockers[y] -= 1
                if status[y] == _WHITE and blockers[y] == 0:
                    newly.append(y)

    round_index = 0
    candidates = [x for x in range(n) if blockers[x] == 0]
    while white_count:
        round_index += 1
        newly: list[int] = candidates
        candidates = []
        # Deliveries first (receive before finish_round): a node hearing
        # IamDominator this round becomes a dominatee and cannot elect.
        for x in deliver_dominator.pop(round_index, ()):
            for w in neighbors[x]:
                if status[w] == _DOMINATOR:
                    continue
                doms_of.setdefault(w, set()).add(x)
                ledger.record(w, IAM_DOMINATEE)
                if status[w] == _WHITE:
                    status[w] = _DOMINATEE
                    white_count -= 1
                    deliver_dominatee.setdefault(round_index + 1, []).append(w)
            unblock(x, newly)
        for w in deliver_dominatee.pop(round_index, ()):
            unblock(w, newly)
        # finish_round: unblocked nodes still white elect now.
        elected = [x for x in newly if status[x] == _WHITE and blockers[x] == 0]
        for x in elected:
            status[x] = _DOMINATOR
            white_count -= 1
            elected_round[x] = round_index
            dominators.append(x)
            ledger.record(x, IAM_DOMINATOR)
            deliver_dominator.setdefault(round_index + 1, []).append(x)
        if white_count and not deliver_dominator and not deliver_dominatee:
            white = [x for x in range(n) if status[x] == _WHITE]
            raise RuntimeError(
                f"clustering stalled; white nodes remain: {white[:5]}"
            )

    # The last elections' IamDominator broadcasts are still in flight
    # when the white set empties; their dominations (and the dominatees'
    # acknowledging broadcasts) land before quiescence.
    for batch in deliver_dominator.values():
        for x in batch:
            for w in neighbors[x]:
                if status[w] == _DOMINATOR:
                    continue
                doms_of.setdefault(w, set()).add(x)
                ledger.record(w, IAM_DOMINATEE)

    # Quiescence: the network idles one round after the last in-flight
    # message — IamDominator at T+1, the dominatees' reactions at T+2.
    rounds = max(
        elected_round[d] + 1 + (1 if neighbors[d] else 0) for d in dominators
    )
    return ClusteringOutcome(
        dominators=frozenset(dominators),
        dominators_of={w: frozenset(ds) for w, ds in doms_of.items()},
        rounds=rounds,
        stats=ledger,
    )


def fast_connectors(
    udg: UnitDiskGraph,
    clustering: ClusteringOutcome,
    *,
    rebroadcast_dominatees: bool = False,
    election: str = "smallest-id",
    stats: Optional[MessageStats] = None,
) -> ConnectorOutcome:
    """Compute Algorithm 1's fixed point directly.

    Bit-identical to :func:`~repro.protocols.connectors.run_connectors`
    on every field: connector set, certified CDS edges, round count,
    and message ledger, for both election rules and with or without
    the standalone ``IamDominatee`` re-broadcast accounting.
    """
    if election not in ("smallest-id", "first-response"):
        raise ValueError(f"unknown election rule {election!r}")
    ledger = stats if stats is not None else MessageStats()
    n = udg.node_count
    adjacency = [udg.neighbors(x) for x in range(n)]
    is_dominator = clustering.dominators
    doms_of = clustering.dominators_of

    def my_dominators(x: int) -> frozenset[int]:
        if x in is_dominator:
            return frozenset()
        return doms_of.get(x, frozenset())

    any_message = False
    #: (u, v, slot) -> proposer node ids, in proposal order.
    arenas: dict[tuple[int, int, int], list[int]] = {}

    def propose(x: int, u: int, v: int, slot: int) -> None:
        arenas.setdefault((u, v, slot), []).append(x)
        ledger.record(x, TRY_CONNECTOR)

    # start(): dominatees re-announce (optionally) and propose for
    # slot 0 (common dominatee of u, v) and slot 1 (first node toward a
    # 2-hop dominator).
    for x in range(n):
        if x in is_dominator:
            continue
        doms = sorted(my_dominators(x))
        if rebroadcast_dominatees:
            for dom in doms:
                ledger.record(x, IAM_DOMINATEE)
                any_message = True
        two_hop: set[int] = set()
        adjacent = adjacency[x]
        for w in adjacent:
            for d in doms_of.get(w, ()):
                if d != x and d not in adjacent:
                    two_hop.add(d)
        for i, u in enumerate(doms):
            for v in doms[i + 1 :]:
                propose(x, u, v, SLOT_COMMON)
        dom_set = my_dominators(x)
        for u in doms:
            for v in sorted(two_hop):
                if v != u and v not in dom_set:
                    propose(x, u, v, SLOT_FIRST)

    def winners(key: tuple[int, int, int]) -> list[int]:
        proposers = arenas[key]
        if election != "smallest-id":
            return proposers
        # Smallest-id: a proposer wins unless an adjacent rival
        # proposed the same key with a smaller id (local minima of the
        # proposer conflict graph — at least one per arena).
        return [
            x
            for x in proposers
            if not any(q < x and q in adjacency[x] for q in proposers)
        ]

    connectors: set[int] = set()
    edges: set[tuple[int, int]] = set()
    slot1_winners: dict[tuple[int, int], list[int]] = {}
    for key in arenas:
        u, v, slot = key
        for x in winners(key):
            connectors.add(x)
            ledger.record(x, IAM_CONNECTOR)
            if slot == SLOT_COMMON:
                edges.add(_edge(u, x))
                edges.add(_edge(x, v))
            else:
                edges.add(_edge(u, x))
                slot1_winners.setdefault((u, v), []).append(x)

    # Slot 2: dominatees of v hearing an adjacent slot-1 claim for
    # (u, v) propose as the second node; every slot-1 claim is
    # broadcast in the same round, so ``first`` is the smallest
    # adjacent slot-1 winner.
    second_arenas: dict[tuple[int, int], list[int]] = {}
    first_of: dict[tuple[int, int, int], int] = {}
    for (u, v), firsts in slot1_winners.items():
        candidates: set[int] = set()
        for w in firsts:
            candidates |= adjacency[w]
        for x in sorted(candidates):
            if x in is_dominator:
                continue
            dom_set = my_dominators(x)
            if v not in dom_set or u in dom_set:
                continue
            second_arenas.setdefault((u, v), []).append(x)
            ledger.record(x, TRY_CONNECTOR)
            first_of[(u, v, x)] = min(w for w in firsts if w in adjacency[x])
    for (u, v), proposers in second_arenas.items():
        if election == "smallest-id":
            won = [
                x
                for x in proposers
                if not any(q < x and q in adjacency[x] for q in proposers)
            ]
        else:
            won = proposers
        for x in won:
            connectors.add(x)
            ledger.record(x, IAM_CONNECTOR)
            first = first_of[(u, v, x)]
            edges.add(_edge(first, x))
            edges.add(_edge(x, v))

    # Round count, replaying the network timeline: proposals resolve
    # two rounds after start, claims land one round later (3); a slot-2
    # cascade adds the propose/resolve pair (5); re-broadcasts alone
    # quiesce after their delivery round (1); silence is 0 rounds.
    if second_arenas:
        rounds = 5
    elif arenas:
        rounds = 3
    elif any_message:
        rounds = 1
    else:
        rounds = 0
    return ConnectorOutcome(
        connectors=frozenset(connectors),
        cds_edges=frozenset(edges),
        rounds=rounds,
        stats=ledger,
    )
