"""The CDS family: CDS, CDS', ICDS, ICDS' from the two protocol phases.

Definitions (paper Section III-A/B):

* **CDS** — dominators plus connectors, with exactly the edges the
  connector elections certified (the backbone);
* **CDS'** — CDS plus every dominatee-to-dominator edge (the extended
  backbone every node can reach);
* **ICDS** — the unit disk graph *induced* on the CDS node set (all
  links of length at most the radius between backbone nodes);
* **ICDS'** — ICDS plus every dominatee-to-dominator edge.

Building ICDS/ICDS' after CDS costs one extra broadcast per node — the
``Status`` message telling neighbors whether the sender is a
dominator, dominatee or connector — which we charge explicitly so the
communication benchmarks reproduce the paper's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geometry.primitives import dist_sq
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.clustering import (
    ClusteringOutcome,
    PriorityFn,
    run_clustering,
)
from repro.protocols.cds_fast import fast_clustering, fast_connectors
from repro.protocols.connectors import ConnectorOutcome, run_connectors
from repro.sim.messages import STATUS
from repro.sim.stats import MessageStats

#: Construction modes: ``protocol`` replays the message-passing
#: reference implementation round by round; ``fast`` computes the same
#: fixed point directly (see :mod:`repro.protocols.cds_fast`) with
#: bit-identical output.
MODES = ("protocol", "fast")


@dataclass(frozen=True)
class CDSFamily:
    """All four CDS-derived graphs plus the roles and the ledger."""

    udg: UnitDiskGraph
    dominators: frozenset[int]
    connectors: frozenset[int]
    cds: Graph
    cds_prime: Graph
    icds: Graph
    icds_prime: Graph
    clustering: ClusteringOutcome
    connector_outcome: ConnectorOutcome
    #: Cumulative message ledger: clustering + connectors + Status.
    stats: MessageStats

    @property
    def backbone_nodes(self) -> frozenset[int]:
        return self.dominators | self.connectors

    @property
    def dominatees(self) -> frozenset[int]:
        return frozenset(self.udg.nodes()) - self.backbone_nodes


def _dominatee_edges(clustering: ClusteringOutcome) -> list[tuple[int, int]]:
    edges = []
    for dominatee, doms in clustering.dominators_of.items():
        for d in doms:
            edges.append((dominatee, d))
    return edges


def induced_udg_subgraph(udg: UnitDiskGraph, nodes: frozenset[int], name: str) -> Graph:
    """UDG links among ``nodes`` (original node ids, full vertex set)."""
    graph = Graph(udg.positions, name=name)
    members = sorted(nodes)
    r_sq = udg.radius * udg.radius
    for i, u in enumerate(members):
        pu = udg.positions[u]
        for v in members[i + 1 :]:
            if dist_sq(pu, udg.positions[v]) <= r_sq:
                graph.add_edge(u, v)
    return graph


def build_cds_family(
    udg: UnitDiskGraph,
    *,
    priority: Optional[PriorityFn] = None,
    election: str = "smallest-id",
    clustering: Optional[ClusteringOutcome] = None,
    mode: str = "protocol",
) -> CDSFamily:
    """Run clustering + Algorithm 1 and materialize the CDS family.

    Pass a precomputed ``clustering`` outcome to reuse it (the ablation
    benchmarks sweep the connector rule against a fixed clustering).
    ``mode="fast"`` computes the protocols' fixed point directly with
    bit-identical output (same sets, rounds, and message ledgers).
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; known: {MODES}")
    stats = MessageStats()
    if clustering is None:
        if mode == "fast":
            clustering = fast_clustering(udg, priority=priority)
        else:
            clustering = run_clustering(udg, priority=priority)
    stats.merge(clustering.stats)

    if mode == "fast":
        connector_outcome = fast_connectors(udg, clustering, election=election)
    else:
        connector_outcome = run_connectors(udg, clustering, election=election)
    stats.merge(connector_outcome.stats)

    # One Status broadcast per node announces its final role so that
    # every backbone node can locally assemble its ICDS links.
    for node in udg.nodes():
        stats.record(node, STATUS)

    cds = Graph(udg.positions, connector_outcome.cds_edges, name="CDS")
    cds_prime = Graph(udg.positions, connector_outcome.cds_edges, name="CDS'")
    for u, v in _dominatee_edges(clustering):
        cds_prime.add_edge(u, v)

    backbone = clustering.dominators | connector_outcome.connectors
    icds = induced_udg_subgraph(udg, backbone, "ICDS")
    icds_prime = Graph(udg.positions, icds.edges(), name="ICDS'")
    for u, v in _dominatee_edges(clustering):
        icds_prime.add_edge(u, v)

    return CDSFamily(
        udg=udg,
        dominators=clustering.dominators,
        connectors=connector_outcome.connectors,
        cds=cds,
        cds_prime=cds_prime,
        icds=icds,
        icds_prime=icds_prime,
        clustering=clustering,
        connector_outcome=connector_outcome,
        stats=stats,
    )
