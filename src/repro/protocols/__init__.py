"""The paper's distributed algorithms, run on the message simulator.

* :mod:`~repro.protocols.clustering` — lowest-ID maximal-independent-set
  election (dominators / dominatees).
* :mod:`~repro.protocols.connectors` — Algorithm 1, gateway election for
  dominator pairs 2 and 3 hops apart.
* :mod:`~repro.protocols.cds` — orchestration of the two phases into the
  CDS / CDS' / ICDS / ICDS' family.
* :mod:`~repro.protocols.ldel_protocol` — Algorithms 2 and 3, the
  distributed localized Delaunay construction and planarization.
* :mod:`~repro.protocols.cds_fast` / :mod:`~repro.protocols.ldel_fast`
  — direct fixed-point computation of the same protocols (oracle
  mode), bit-identical and an order of magnitude faster.
* :mod:`~repro.protocols.backbone` — the full pipeline producing
  LDel(ICDS) and LDel(ICDS').
"""

from repro.protocols.clustering import ClusteringOutcome, run_clustering
from repro.protocols.async_clustering import (
    AsyncClusteringOutcome,
    run_async_clustering,
)
from repro.protocols.connectors import ConnectorOutcome, run_connectors
from repro.protocols.cds import MODES, CDSFamily, build_cds_family
from repro.protocols.cds_fast import fast_clustering, fast_connectors
from repro.protocols.ldel_fast import fast_ldel_protocol
from repro.protocols.ldel_protocol import LDelProtocolOutcome, run_ldel_protocol
from repro.protocols.ldel2_protocol import LDel2Outcome, run_ldel2_protocol
from repro.protocols.backbone import BackbonePipelineResult, run_backbone_pipeline
from repro.protocols.wu_li import WuLiOutcome, wu_li_cds
from repro.protocols.maxmin_cluster import MaxMinOutcome, run_maxmin_clustering
from repro.protocols.routing_protocol import PacketOutcome, run_routing_protocol
from repro.protocols.convergecast import ConvergecastOutcome, run_convergecast
from repro.protocols.neighbor_discovery import (
    DiscoveryOutcome,
    NeighborChange,
    detect_changes,
)

__all__ = [
    "ClusteringOutcome",
    "run_clustering",
    "AsyncClusteringOutcome",
    "run_async_clustering",
    "ConnectorOutcome",
    "run_connectors",
    "CDSFamily",
    "MODES",
    "build_cds_family",
    "fast_clustering",
    "fast_connectors",
    "fast_ldel_protocol",
    "LDelProtocolOutcome",
    "run_ldel_protocol",
    "LDel2Outcome",
    "run_ldel2_protocol",
    "BackbonePipelineResult",
    "run_backbone_pipeline",
    "WuLiOutcome",
    "wu_li_cds",
    "MaxMinOutcome",
    "run_maxmin_clustering",
    "PacketOutcome",
    "run_routing_protocol",
    "ConvergecastOutcome",
    "run_convergecast",
    "DiscoveryOutcome",
    "NeighborChange",
    "detect_changes",
]
